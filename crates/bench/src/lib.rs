//! Shared scenario builders for the experiment harness.
//!
//! Every benchmark and the `figures` report binary build their inputs from
//! these functions so that Criterion runs and the printed tables measure
//! the same workloads. The scenario is §7.1's water-contamination
//! incident: synthetic hydrology (List 6 shape) + synthetic chemical sites
//! (List 7 shape) + the three roles' policies (List 8 shape).

// The scenario builders moved to `grdf_workload::incident` so non-bench
// consumers (`grdf-cli`'s policy analysis, CI gates) can share them; this
// crate re-exports them under the original paths.
pub use grdf_workload::incident::{
    incident_graph, incident_graph_scaled, incident_store, incident_store_scaled, roles,
    scenario_policies, sensitive_properties, xacml_policies,
};

#[cfg(test)]
mod tests {
    use super::*;
    use grdf_rdf::vocab::grdf;
    use grdf_security::views::{secure_view, view_property_count};

    #[test]
    fn incident_graph_scales_with_inputs() {
        let small = incident_graph(10, 10, 1);
        let large = incident_graph(50, 50, 1);
        assert!(large.len() > 3 * small.len());
    }

    #[test]
    fn scenario_roles_have_expected_visibility() {
        let mut store = incident_store(20, 20, 7);
        store.materialize();
        let ps = scenario_policies();
        let chem_prop = grdf::app("hasChemicalInfo");

        let (mr_view, _) = secure_view(store.graph(), &ps, &roles::main_repair());
        assert_eq!(
            view_property_count(&mr_view, &chem_prop),
            0,
            "main repair: no chemistry"
        );
        assert!(view_property_count(&mr_view, &grdf::iri("isBoundedBy")) > 0);

        let (hz_view, _) = secure_view(store.graph(), &ps, &roles::hazmat());
        assert!(
            view_property_count(&hz_view, &chem_prop) > 0,
            "hazmat sees chemicals"
        );
        assert_eq!(
            view_property_count(&hz_view, &grdf::app("hasContactPhone")),
            0,
            "hazmat must not see contacts"
        );

        let (em_view, _) = secure_view(store.graph(), &ps, &roles::emergency());
        assert!(view_property_count(&em_view, &grdf::app("hasContactPhone")) > 0);
    }

    #[test]
    fn xacml_baseline_leaks_for_main_repair() {
        let mut store = incident_store(10, 20, 7);
        store.materialize();
        let (view, _) = xacml_policies().view(store.graph(), &roles::main_repair());
        // The object-level grant exposes the chemical link it was supposed
        // to hide — the measurable granularity gap.
        assert!(view_property_count(&view, &grdf::app("hasChemicalInfo")) > 0);
    }
}
