//! Shared scenario builders for the experiment harness.
//!
//! Every benchmark and the `figures` report binary build their inputs from
//! these functions so that Criterion runs and the printed tables measure
//! the same workloads. The scenario is §7.1's water-contamination
//! incident: synthetic hydrology (List 6 shape) + synthetic chemical sites
//! (List 7 shape) + the three roles' policies (List 8 shape).

use grdf_core::store::GrdfStore;
use grdf_feature::rdf_codec::encode_feature;
use grdf_rdf::graph::Graph;
use grdf_rdf::vocab::grdf;
use grdf_security::geoxacml::{XacmlPolicySet, XacmlRule};
use grdf_security::policy::{Policy, PolicySet};
use grdf_workload::chemical::{alignment_axioms, generate_chemical_sites, ChemicalConfig};
use grdf_workload::hydrology::{generate_hydrology, HydrologyConfig};

/// Role IRIs of the §7.1 scenario.
pub mod roles {
    use grdf_rdf::vocab::grdf;

    /// 'main repair': wastewater pipe crews — extent-only access.
    pub fn main_repair() -> String {
        grdf::sec("MainRep")
    }

    /// 'hazmat personnel': chemical clean-up — chemicals + extents.
    pub fn hazmat() -> String {
        grdf::sec("Hazmat")
    }

    /// 'emergency response': administrative — full access.
    pub fn emergency() -> String {
        grdf::sec("Emergency")
    }
}

/// Build the merged incident dataset: `streams` hydrology features plus
/// `sites` chemical sites (with linked ChemInfo records and ~10%
/// duplicates), plus the alignment axioms. Deterministic per `seed`.
pub fn incident_graph(streams: usize, sites: usize, seed: u64) -> Graph {
    let hydro = generate_hydrology(&HydrologyConfig {
        streams,
        seed,
        ..Default::default()
    });
    let chem = generate_chemical_sites(&ChemicalConfig {
        sites,
        seed: seed + 1,
        ..Default::default()
    });
    let mut g = grdf_rdf::turtle::parse(alignment_axioms()).expect("axioms parse");
    for f in hydro.features.iter().chain(chem.features.iter()) {
        encode_feature(&mut g, f);
    }
    g
}

/// An incident store (GRDF ontology + incident data), not yet materialized.
pub fn incident_store(streams: usize, sites: usize, seed: u64) -> GrdfStore {
    let mut store = GrdfStore::new();
    store.merge_graph(&incident_graph(streams, sites, seed));
    store
}

/// The three-role GRDF policy set of §7.1 (fine-grained, List 8 style).
pub fn scenario_policies() -> PolicySet {
    PolicySet::new(vec![
        // 'main repair': low-security role; extent only on chemical data,
        // full hydrology.
        Policy::permit_properties(
            &grdf::sec("MainRepPolicy1"),
            &roles::main_repair(),
            &grdf::app("ChemSite"),
            &[&grdf::iri("isBoundedBy"), &grdf::iri("hasGeometry")],
        ),
        Policy::permit(
            &grdf::sec("MainRepPolicy2"),
            &roles::main_repair(),
            &grdf::app("Stream"),
        ),
        // 'hazmat personnel': chemicals and locations, but no contacts.
        Policy::permit_properties(
            &grdf::sec("HazmatPolicy1"),
            &roles::hazmat(),
            &grdf::app("ChemSite"),
            &[
                &grdf::iri("isBoundedBy"),
                &grdf::iri("hasGeometry"),
                &grdf::app("hasChemicalInfo"),
                &grdf::app("hasSiteName"),
            ],
        ),
        Policy::permit(
            &grdf::sec("HazmatPolicy2"),
            &roles::hazmat(),
            &grdf::app("ChemInfo"),
        ),
        Policy::permit(
            &grdf::sec("HazmatPolicy3"),
            &roles::hazmat(),
            &grdf::app("Stream"),
        ),
        // 'emergency response': administrative role, full access.
        Policy::permit(
            &grdf::sec("EmPolicy1"),
            &roles::emergency(),
            &grdf::app("ChemSite"),
        ),
        Policy::permit(
            &grdf::sec("EmPolicy2"),
            &roles::emergency(),
            &grdf::app("ChemInfo"),
        ),
        Policy::permit(
            &grdf::sec("EmPolicy3"),
            &roles::emergency(),
            &grdf::app("Stream"),
        ),
    ])
}

/// The closest object-level (GeoXACML-style) approximation of the same
/// intent: 'main repair' must be granted whole ChemSites (it needs their
/// extents) — which is exactly the over-grant the paper criticizes.
pub fn xacml_policies() -> XacmlPolicySet {
    XacmlPolicySet::new(vec![
        XacmlRule::permit(&roles::main_repair(), &grdf::app("ChemSite")),
        XacmlRule::permit(&roles::main_repair(), &grdf::app("Stream")),
        XacmlRule::permit(&roles::hazmat(), &grdf::app("ChemSite")),
        XacmlRule::permit(&roles::hazmat(), &grdf::app("ChemInfo")),
        XacmlRule::permit(&roles::hazmat(), &grdf::app("Stream")),
        XacmlRule::permit(&roles::emergency(), &grdf::app("ChemSite")),
        XacmlRule::permit(&roles::emergency(), &grdf::app("ChemInfo")),
        XacmlRule::permit(&roles::emergency(), &grdf::app("Stream")),
    ])
}

/// Properties the 'main repair' role must never see — the leak probes of
/// experiment E5.
pub fn sensitive_properties() -> Vec<String> {
    vec![
        grdf::app("hasChemicalInfo"),
        grdf::app("hasContactPhone"),
        grdf::app("hasSiteId"),
        grdf::app("hasChemCode"),
        grdf::app("hasChemName"),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use grdf_security::views::{secure_view, view_property_count};

    #[test]
    fn incident_graph_scales_with_inputs() {
        let small = incident_graph(10, 10, 1);
        let large = incident_graph(50, 50, 1);
        assert!(large.len() > 3 * small.len());
    }

    #[test]
    fn scenario_roles_have_expected_visibility() {
        let mut store = incident_store(20, 20, 7);
        store.materialize();
        let ps = scenario_policies();
        let chem_prop = grdf::app("hasChemicalInfo");

        let (mr_view, _) = secure_view(store.graph(), &ps, &roles::main_repair());
        assert_eq!(
            view_property_count(&mr_view, &chem_prop),
            0,
            "main repair: no chemistry"
        );
        assert!(view_property_count(&mr_view, &grdf::iri("isBoundedBy")) > 0);

        let (hz_view, _) = secure_view(store.graph(), &ps, &roles::hazmat());
        assert!(
            view_property_count(&hz_view, &chem_prop) > 0,
            "hazmat sees chemicals"
        );
        assert_eq!(
            view_property_count(&hz_view, &grdf::app("hasContactPhone")),
            0,
            "hazmat must not see contacts"
        );

        let (em_view, _) = secure_view(store.graph(), &ps, &roles::emergency());
        assert!(view_property_count(&em_view, &grdf::app("hasContactPhone")) > 0);
    }

    #[test]
    fn xacml_baseline_leaks_for_main_repair() {
        let mut store = incident_store(10, 20, 7);
        store.materialize();
        let (view, _) = xacml_policies().view(store.graph(), &roles::main_repair());
        // The object-level grant exposes the chemical link it was supposed
        // to hide — the measurable granularity gap.
        assert!(view_property_count(&view, &grdf::app("hasChemicalInfo")) > 0);
    }
}
