//! Metrics snapshot for CI: runs the E6 request-stream workload against
//! an instrumented G-SACS service and writes the registry *delta*
//! (workload-attributable counters and histograms, excluding
//! construction-time activity) as JSON.
//!
//! Usage: `cargo run --release -p grdf-bench --bin metrics-snapshot [PATH]`
//! (default `BENCH_METRICS.json`). The human-readable rendering goes to
//! stdout so CI logs show the numbers next to the uploaded artifact.

use grdf_bench::{incident_graph, roles, scenario_policies};
use grdf_core::ontology::grdf_ontology;
use grdf_obs::Obs;
use grdf_security::gsacs::{ClientRequest, GSacs, OntoRepository, OwlHorstEngine};
use grdf_security::ResilienceConfig;
use grdf_workload::requests::{generate_requests, RequestConfig};

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_METRICS.json".to_string());
    let obs = Obs::new();
    let config = ResilienceConfig {
        obs: obs.clone(),
        ..ResilienceConfig::default()
    };
    let mut repo = OntoRepository::new();
    repo.register("grdf", grdf_ontology());
    repo.register("seconto", grdf_security::ontology::security_ontology());
    let svc = GSacs::with_resilience(
        repo,
        scenario_policies(),
        Box::<OwlHorstEngine>::default(),
        incident_graph(100, 100, 17),
        64,
        config,
    );
    // Pre-build role views so the delta measures request handling, then
    // baseline *after* construction: the snapshot attributes only the
    // workload itself.
    for role in [roles::main_repair(), roles::hazmat(), roles::emergency()] {
        let _ = svc.view_for(&role);
    }
    let baseline = obs.registry().snapshot();
    let requests: Vec<ClientRequest> = generate_requests(&RequestConfig {
        count: 200,
        distinct_queries: 100,
        zipf_s: 1.2,
        seed: 23,
        ..Default::default()
    })
    .into_iter()
    .map(|r| ClientRequest {
        role: r.role,
        query: r.query,
    })
    .collect();
    let mut rows = 0usize;
    for r in &requests {
        rows += svc.handle(r).map_or(0, |res| res.select_rows().len());
    }
    let delta = obs.registry().snapshot().delta(&baseline);
    std::fs::write(&path, delta.to_json()).expect("write metrics json");
    println!(
        "e6 request stream: {} requests, {} result rows",
        requests.len(),
        rows
    );
    println!("{}", delta.render());
    eprintln!("wrote {path}");
}
