//! Metrics snapshot for CI: runs the E6 request-stream workload against
//! an instrumented G-SACS service and writes the registry *delta*
//! (workload-attributable counters and histograms, excluding
//! construction-time activity) as JSON.
//!
//! Snapshots are stamped with a **run id** minted from the durable
//! store's boot counter (`--state-dir`, default `target/metrics-state`):
//! counters reset to zero on restart, so a delta across process
//! lifetimes is meaningless. The diff mode refuses exactly that.
//!
//! Usage:
//!
//! * `metrics-snapshot [PATH]` — run the workload, write the run-id
//!   stamped delta to `PATH` (default `BENCH_METRICS.json`).
//! * `metrics-snapshot --diff BASE.json CURRENT.json [OUT.json]` — delta
//!   two previously written snapshots. Exits 2 with an explanation when
//!   the files carry different run ids.

use grdf_bench::{incident_graph, roles, scenario_policies};
use grdf_core::ontology::grdf_ontology;
use grdf_obs::{MetricsSnapshot, Obs};
use grdf_security::gsacs::{ClientRequest, GSacs, OntoRepository, OwlHorstEngine};
use grdf_security::ResilienceConfig;
use grdf_store::{bump_boot, FsBackend};
use grdf_workload::requests::{generate_requests, RequestConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--diff") {
        diff_mode(&args[1..]);
        return;
    }
    let mut path = "BENCH_METRICS.json".to_string();
    let mut state_dir = "target/metrics-state".to_string();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        if a == "--state-dir" {
            state_dir = it.next().expect("--state-dir needs a directory");
        } else {
            path = a;
        }
    }
    let run_id = mint_run_id(&state_dir);
    let obs = Obs::new();
    let config = ResilienceConfig {
        obs: obs.clone(),
        ..ResilienceConfig::default()
    };
    let mut repo = OntoRepository::new();
    repo.register("grdf", grdf_ontology());
    repo.register("seconto", grdf_security::ontology::security_ontology());
    let svc = GSacs::with_resilience(
        repo,
        scenario_policies(),
        Box::<OwlHorstEngine>::default(),
        incident_graph(100, 100, 17),
        64,
        config,
    );
    // Pre-build role views so the delta measures request handling, then
    // baseline *after* construction: the snapshot attributes only the
    // workload itself.
    for role in [roles::main_repair(), roles::hazmat(), roles::emergency()] {
        let _ = svc.view_for(&role);
    }
    let baseline = obs.registry().snapshot().with_run_id(run_id);
    let requests: Vec<ClientRequest> = generate_requests(&RequestConfig {
        count: 200,
        distinct_queries: 100,
        zipf_s: 1.2,
        seed: 23,
        ..Default::default()
    })
    .into_iter()
    .map(|r| ClientRequest {
        role: r.role,
        query: r.query,
    })
    .collect();
    let mut rows = 0usize;
    for r in &requests {
        rows += svc.handle(r).map_or(0, |res| res.select_rows().len());
    }
    let current = obs.registry().snapshot().with_run_id(run_id);
    let delta = current
        .try_delta(&baseline)
        .expect("same-process snapshots share a run id");
    std::fs::write(&path, delta.to_json()).expect("write metrics json");
    println!(
        "e6 request stream: {} requests, {} result rows (run id {run_id})",
        requests.len(),
        rows
    );
    println!("{}", delta.render());
    eprintln!("wrote {path}");
}

/// Boot-counter bump in `state_dir`: each invocation gets a fresh,
/// monotonically increasing run id, so two tool runs never share one.
fn mint_run_id(state_dir: &str) -> u64 {
    let backend = FsBackend::open(state_dir)
        .unwrap_or_else(|e| panic!("cannot open state dir {state_dir}: {e}"));
    bump_boot(&backend).unwrap_or_else(|e| panic!("cannot bump boot counter: {e}"))
}

/// `--diff BASE CURRENT [OUT]`: subtract two snapshot files, refusing
/// run-id mismatches (the cross-restart case the stamp exists to catch).
fn diff_mode(args: &[String]) {
    let [base_path, current_path, rest @ ..] = args else {
        eprintln!("usage: metrics-snapshot --diff BASE.json CURRENT.json [OUT.json]");
        std::process::exit(1);
    };
    let base = read_snapshot(base_path);
    let current = read_snapshot(current_path);
    match current.try_delta(&base) {
        Ok(delta) => {
            print!("{}", delta.render());
            if let Some(out) = rest.first() {
                std::fs::write(out, delta.to_json()).expect("write delta json");
                eprintln!("wrote {out}");
            }
        }
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    }
}

fn read_snapshot(path: &str) -> MetricsSnapshot {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
    MetricsSnapshot::from_json(&text).unwrap_or_else(|e| panic!("cannot parse {path}: {e}"))
}
