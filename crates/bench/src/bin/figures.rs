//! Regenerate every experiment table (E1–E6) from DESIGN.md §5.
//!
//! Usage: `cargo run --release -p grdf-bench --bin figures [--json PATH]`
//!
//! The paper reports no absolute numbers (its artifacts are an ontology
//! diagram, listings, and an architecture figure); these tables quantify
//! the claims each artifact supports, and EXPERIMENTS.md records a
//! reference run.

use std::time::Instant;

use grdf_bench::{
    incident_graph, incident_store, roles, scenario_policies, sensitive_properties, xacml_policies,
};
use grdf_core::ontology::{grdf_ontology, stats};
use grdf_core::store::GrdfStore;
use grdf_rdf::graph::{Graph, IndexMode};
use grdf_rdf::term::Term;
use grdf_rdf::vocab::{grdf, rdf};
use grdf_security::gsacs::{ClientRequest, GSacs, OntoRepository, OwlHorstEngine};
use grdf_security::views::{secure_view, view_property_count};
use grdf_topology::model::{DirectedEdge, TopologyModel};
use grdf_workload::requests::{generate_requests, RequestConfig};

#[derive(Default)]
struct Report {
    e1: Vec<E1Row>,
    e2: Vec<E2Row>,
    e3: Vec<E3Row>,
    e4: Vec<E4Row>,
    e5: Vec<E5Row>,
    e6: Vec<E6Row>,
}

fn main() {
    let json_path = std::env::args().skip_while(|a| a != "--json").nth(1);
    let mut report = Report::default();

    println!("# GRDF experiment tables (regenerated)\n");
    e1_ontology(&mut report);
    e2_gml(&mut report);
    e3_topology(&mut report);
    e4_aggregation(&mut report);
    e5_security(&mut report);
    e6_gsacs(&mut report);

    if let Some(path) = json_path {
        let json = to_json(&report);
        std::fs::write(&path, json).expect("write json");
        println!("\nwrote {path}");
    }
}

fn to_json(report: &Report) -> String {
    // serde_json is not in the allowed set, so emit compact JSON by hand
    // from the typed rows.
    let mut s = String::from("{\n");
    macro_rules! section {
        ($name:literal, $rows:expr, $fmt:expr) => {
            s.push_str(&format!("  \"{}\": [\n", $name));
            for (i, r) in $rows.iter().enumerate() {
                s.push_str(&format!(
                    "    {}{}\n",
                    $fmt(r),
                    if i + 1 < $rows.len() { "," } else { "" }
                ));
            }
            s.push_str("  ],\n");
        };
    }
    section!("e1", report.e1, |r: &E1Row| format!(
        r#"{{"features": {}, "triples": {}, "inferred": {}, "materialize_ms": {:.1}, "match_full_ms": {:.2}, "match_spo_only_ms": {:.2}}}"#,
        r.features, r.triples, r.inferred, r.materialize_ms, r.match_full_ms, r.match_spo_only_ms
    ));
    section!("e2", report.e2, |r: &E2Row| format!(
        r#"{{"features": {}, "gml_to_grdf_ms": {:.1}, "grdf_to_gml_ms": {:.1}, "fixpoint": {}}}"#,
        r.features, r.gml_to_grdf_ms, r.grdf_to_gml_ms, r.fixpoint
    ));
    section!("e3", report.e3, |r: &E3Row| format!(
        r#"{{"faces": {}, "build_ms": {:.2}, "connectivity_ms": {:.2}, "euler": {}, "realize_ms": {:.2}}}"#,
        r.faces, r.build_ms, r.connectivity_ms, r.euler, r.realize_ms
    ));
    section!("e4", report.e4, |r: &E4Row| format!(
        r#"{{"streams": {}, "sites": {}, "silo_answers": {}, "merged_answers": {}, "identities_no_reasoning": {}, "identities_reasoning": {}, "materialize_ms": {:.1}, "query_ms": {:.2}}}"#,
        r.streams,
        r.sites,
        r.silo_answers,
        r.merged_answers,
        r.identities_no_reasoning,
        r.identities_reasoning,
        r.materialize_ms,
        r.query_ms
    ));
    section!("e5", report.e5, |r: &E5Row| format!(
        r#"{{"role": "{}", "model": "{}", "view_triples": {}, "leaked_sensitive": {}, "aligned_covered": {}, "view_ms": {:.1}}}"#,
        r.role, r.model, r.view_triples, r.leaked_sensitive, r.aligned_covered, r.view_ms
    ));
    section!("e6", report.e6, |r: &E6Row| format!(
        r#"{{"zipf_s": {}, "cache": {}, "requests": {}, "hit_rate": {:.3}, "throughput_rps": {:.0}}}"#,
        r.zipf_s, r.cache, r.requests, r.hit_rate, r.throughput_rps
    ));
    // Trim the trailing comma of the last section.
    if s.ends_with(",\n") {
        s.truncate(s.len() - 2);
        s.push('\n');
    }
    s.push('}');
    s
}

fn ms(t: Instant) -> f64 {
    t.elapsed().as_secs_f64() * 1e3
}

// ---------------------------------------------------------------------------
// E1 — Fig. 1: the GRDF ontology; load/materialize scaling; index ablation.
// ---------------------------------------------------------------------------

struct E1Row {
    features: usize,
    triples: usize,
    inferred: usize,
    materialize_ms: f64,
    match_full_ms: f64,
    match_spo_only_ms: f64,
}

fn e1_ontology(report: &mut Report) {
    let onto = grdf_ontology();
    let s = stats(&onto);
    println!("## E1 — Fig. 1: GRDF ontology\n");
    println!(
        "ontology: {} classes, {} object properties, {} datatype properties, {} axiom triples\n",
        s.classes, s.object_properties, s.datatype_properties, s.triples
    );
    println!("| features | triples | inferred | materialize (ms) | match full-idx (ms) | match spo-only (ms) |");
    println!("|---|---|---|---|---|---|");
    for features in [500usize, 2_000, 8_000] {
        let streams = features / 2;
        let sites = features / 6; // each site contributes ~3 features
        let mut store = incident_store(streams, sites, 11);
        let triples = store.len();
        let t = Instant::now();
        let rs = store.materialize();
        let materialize_ms = ms(t);

        // Index ablation: answer the same ?s type pattern under both modes.
        let probe = Term::iri(&grdf::app("ChemSite"));
        let t = Instant::now();
        for _ in 0..50 {
            store
                .graph()
                .count_pattern(None, Some(&Term::iri(rdf::TYPE)), Some(&probe));
        }
        let match_full_ms = ms(t);
        let mut lean = Graph::with_index_mode(IndexMode::SpoOnly);
        lean.extend_from(store.graph());
        let t = Instant::now();
        for _ in 0..50 {
            lean.count_pattern(None, Some(&Term::iri(rdf::TYPE)), Some(&probe));
        }
        let match_spo_only_ms = ms(t);

        println!(
            "| {features} | {triples} | {} | {materialize_ms:.1} | {match_full_ms:.2} | {match_spo_only_ms:.2} |",
            rs.inferred
        );
        report.e1.push(E1Row {
            features,
            triples,
            inferred: rs.inferred,
            materialize_ms,
            match_full_ms,
            match_spo_only_ms,
        });
    }
    println!();
}

// ---------------------------------------------------------------------------
// E2 — List 1 / §3.2: GML↔GRDF conversion.
// ---------------------------------------------------------------------------

struct E2Row {
    features: usize,
    gml_to_grdf_ms: f64,
    grdf_to_gml_ms: f64,
    fixpoint: bool,
}

fn e2_gml(report: &mut Report) {
    println!("## E2 — §3.2 / List 1: GML ⇄ GRDF conversion\n");
    println!("| features | GML→GRDF (ms) | GRDF→GML (ms) | roundtrip fixpoint |");
    println!("|---|---|---|---|");
    for features in [200usize, 1_000, 4_000] {
        let hydro = grdf_workload::hydrology::generate_hydrology(
            &grdf_workload::hydrology::HydrologyConfig {
                streams: features,
                seed: 3,
                ..Default::default()
            },
        );
        let gml = grdf_gml::write::write_gml(&hydro);
        let t = Instant::now();
        let g = grdf_gml::convert::gml_to_grdf(&gml).expect("convert");
        let gml_to_grdf_ms = ms(t);
        let t = Instant::now();
        let gml2 = grdf_gml::convert::grdf_to_gml(&g);
        let grdf_to_gml_ms = ms(t);
        let g2 = grdf_gml::convert::gml_to_grdf(&gml2).expect("convert back");
        let fixpoint = g.len() == g2.len();
        println!("| {features} | {gml_to_grdf_ms:.1} | {grdf_to_gml_ms:.1} | {fixpoint} |");
        report.e2.push(E2Row {
            features,
            gml_to_grdf_ms,
            grdf_to_gml_ms,
            fixpoint,
        });
    }
    println!();
}

// ---------------------------------------------------------------------------
// E3 — Fig. 2 / List 5: topology without coordinates + realization.
// ---------------------------------------------------------------------------

struct E3Row {
    faces: usize,
    build_ms: f64,
    connectivity_ms: f64,
    euler: i64,
    realize_ms: f64,
}

/// Build an n×n grid mesh (each cell one square face).
fn grid_mesh(n: usize) -> (TopologyModel, Vec<Vec<grdf_topology::model::NodeId>>) {
    let mut m = TopologyModel::new();
    let nodes: Vec<Vec<_>> = (0..=n)
        .map(|_| (0..=n).map(|_| m.add_node()).collect())
        .collect();
    // Horizontal and vertical edges.
    let mut h = vec![vec![None; n]; n + 1];
    let mut v = vec![vec![None; n + 1]; n];
    for (r, row) in nodes.iter().enumerate() {
        for c in 0..n {
            h[r][c] = Some(m.add_edge(row[c], row[c + 1]).unwrap());
        }
    }
    for r in 0..n {
        for c in 0..=n {
            v[r][c] = Some(m.add_edge(nodes[r][c], nodes[r + 1][c]).unwrap());
        }
    }
    for r in 0..n {
        for c in 0..n {
            m.add_face(vec![
                DirectedEdge::forward(h[r][c].unwrap()),
                DirectedEdge::forward(v[r][c + 1].unwrap()),
                DirectedEdge::reverse(h[r + 1][c].unwrap()),
                DirectedEdge::reverse(v[r][c].unwrap()),
            ])
            .unwrap();
        }
    }
    (m, nodes)
}

fn e3_topology(report: &mut Report) {
    println!("## E3 — Fig. 2 / List 5: topology model\n");
    println!("| faces | build (ms) | 100 connectivity queries (ms) | Euler χ | realization (ms) |");
    println!("|---|---|---|---|---|");
    for n in [10usize, 30, 70] {
        let t = Instant::now();
        let (m, nodes) = grid_mesh(n);
        let build_ms = ms(t);
        let t = Instant::now();
        for i in 0..100 {
            let a = nodes[i % (n + 1)][0];
            let b = nodes[(i * 7) % (n + 1)][n];
            assert!(m.connected(a, b));
        }
        let connectivity_ms = ms(t);
        let euler = m.euler_characteristic();

        // Realize every node/edge with straight-line geometry.
        let coords: std::collections::HashMap<_, _> = nodes
            .iter()
            .enumerate()
            .flat_map(|(r, row)| {
                row.iter()
                    .enumerate()
                    .map(move |(c, id)| (*id, grdf_geometry::coord::Coord::xy(c as f64, r as f64)))
            })
            .collect();
        let t = Instant::now();
        let real =
            grdf_topology::realize::Realization::realize_graph_straight(&m, &coords).unwrap();
        let realize_ms = ms(t);
        assert!(real.total_edge_length() > 0.0);

        println!(
            "| {} | {build_ms:.2} | {connectivity_ms:.2} | {euler} | {realize_ms:.2} |",
            m.face_count()
        );
        report.e3.push(E3Row {
            faces: m.face_count(),
            build_ms,
            connectivity_ms,
            euler,
            realize_ms,
        });
    }
    println!();
}

// ---------------------------------------------------------------------------
// E4 — Lists 6–7: cross-domain aggregation and inference.
// ---------------------------------------------------------------------------

struct E4Row {
    streams: usize,
    sites: usize,
    silo_answers: usize,
    merged_answers: usize,
    identities_no_reasoning: usize,
    identities_reasoning: usize,
    materialize_ms: f64,
    query_ms: f64,
}

fn e4_aggregation(report: &mut Report) {
    println!("## E4 — Lists 6–7: heterogeneous aggregation\n");
    println!("| streams | sites | silo answers | merged answers | identities (no reasoning) | identities (reasoning) | materialize (ms) | cross-domain query (ms) |");
    println!("|---|---|---|---|---|---|---|---|");
    let cross_query = format!(
        "PREFIX app: <{}>\nSELECT ?site ?stream WHERE {{\n  ?site a app:ChemSite . ?stream a app:Stream .\n  FILTER(grdf:distance(?site, ?stream) < 20000)\n}}",
        grdf::APP_NS
    );
    for (streams, sites) in [(50usize, 50usize), (200, 200), (500, 500)] {
        // Siloed: the hydrology store alone cannot answer the cross-domain
        // question (no ChemSite bindings).
        let mut hydro_only = GrdfStore::new();
        let hydro = grdf_workload::hydrology::generate_hydrology(
            &grdf_workload::hydrology::HydrologyConfig {
                streams,
                seed: 11,
                ..Default::default()
            },
        );
        for f in &hydro.features {
            hydro_only.insert_feature(f).unwrap();
        }
        let silo_answers = hydro_only.query(&cross_query).unwrap().select_rows().len();

        // Merged GRDF store.
        let mut store = incident_store(streams, sites, 11);
        let identities_no_reasoning = store.same_as_links().len();
        let t = Instant::now();
        store.materialize();
        let materialize_ms = ms(t);
        let identities_reasoning = store.same_as_links().len();
        let t = Instant::now();
        let merged_answers = store.query(&cross_query).unwrap().select_rows().len();
        let query_ms = ms(t);

        println!(
            "| {streams} | {sites} | {silo_answers} | {merged_answers} | {identities_no_reasoning} | {identities_reasoning} | {materialize_ms:.1} | {query_ms:.2} |"
        );
        report.e4.push(E4Row {
            streams,
            sites,
            silo_answers,
            merged_answers,
            identities_no_reasoning,
            identities_reasoning,
            materialize_ms,
            query_ms,
        });
    }
    println!();
    e4b_spatial_index();
}

/// E4b ablation: spatial window probes through the R-tree vs linear scan.
fn e4b_spatial_index() {
    use grdf_geometry::coord::Coord;
    use grdf_geometry::envelope::Envelope;
    println!("### E4b — spatial index ablation (window probes over the merged store)\n");
    println!("| features indexed | window hits | 100 probes via R-tree (ms) | 100 probes via scan (ms) | index build (ms) |");
    println!("|---|---|---|---|---|");
    for size in [200usize, 800] {
        let mut store = incident_store(size, size, 11);
        store.materialize();
        let t = Instant::now();
        let index = store.spatial_index();
        let build_ms = ms(t);
        let window = Envelope::new(
            Coord::xy(2_520_000.0, 7_060_000.0),
            Coord::xy(2_560_000.0, 7_100_000.0),
        );
        let hits = index.count_in(&window);
        assert_eq!(hits, store.features_in_window_scan(&window).len());
        let t = Instant::now();
        for _ in 0..100 {
            std::hint::black_box(index.count_in(&window));
        }
        let rtree_ms = ms(t);
        let t = Instant::now();
        for _ in 0..100 {
            std::hint::black_box(store.features_in_window_scan(&window).len());
        }
        let scan_ms = ms(t);
        println!(
            "| {} | {hits} | {rtree_ms:.2} | {scan_ms:.2} | {build_ms:.2} |",
            index.len()
        );
    }
    println!();
}

// ---------------------------------------------------------------------------
// E5 — List 8 / §7.1: fine-grained vs object-level access control.
// ---------------------------------------------------------------------------

struct E5Row {
    role: String,
    model: String,
    view_triples: usize,
    leaked_sensitive: usize,
    aligned_covered: bool,
    view_ms: f64,
}

fn e5_security(report: &mut Report) {
    println!("## E5 — List 8 / §7.1: fine-grained vs object-level security\n");
    let mut store = incident_store(100, 100, 13);
    // Aggregate a second vocabulary aligned by subclassing (merge test).
    store
        .load_turtle(
            r#"@prefix app: <http://grdf.org/app#> .
               @prefix wx: <urn:wx#> .
               @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
               wx:MonitoredFacility rdfs:subClassOf app:ChemSite .
               wx:station77 a wx:MonitoredFacility ;
                  app:hasChemicalInfo wx:station77chem ;
                  app:hasSiteName "Aligned Facility 77" .
            "#,
        )
        .unwrap();
    // The GeoXACML baseline has no reasoner: it sees the raw merged graph.
    let raw = store.graph().clone();
    store.materialize();
    let data = store.graph();
    let sensitive = sensitive_properties();
    let grdf_ps = scenario_policies();
    let xacml_ps = xacml_policies();
    let aligned_subject = "urn:wx#station77";

    println!("| role | model | view triples | leaked sensitive triples | aligned facility covered | view build (ms) |");
    println!("|---|---|---|---|---|---|");
    for role in [roles::main_repair(), roles::hazmat(), roles::emergency()] {
        // GRDF fine-grained.
        let t = Instant::now();
        let (gview, _) = secure_view(data, &grdf_ps, &role);
        let gms = ms(t);
        let gleak = leak_count(&gview, &role, &sensitive);
        let gcovered = covered(&gview, aligned_subject, &role);
        print_e5(report, &role, "GRDF", gview.len(), gleak, gcovered, gms);

        // GeoXACML object-level, over the unmaterialized graph.
        let t = Instant::now();
        let (xview, _) = xacml_ps.view(&raw, &role);
        let xms = ms(t);
        let xleak = leak_count(&xview, &role, &sensitive);
        let xcovered = covered(&xview, aligned_subject, &role);
        print_e5(report, &role, "GeoXACML", xview.len(), xleak, xcovered, xms);
    }
    println!();
    println!(
        "(leaks are counted for roles that must not see chemistry/contact data: 'main repair' all five sensitive properties, 'hazmat' contacts+ids only; 'covered' = the subclass-aligned facility from the merged vocabulary is governed+visible per that role's policy)\n"
    );
}

fn leak_count(view: &Graph, role: &str, sensitive: &[String]) -> usize {
    // What counts as a leak depends on the role's intent.
    let forbidden: Vec<&String> = if role.ends_with("MainRep") {
        sensitive.iter().collect()
    } else if role.ends_with("Hazmat") {
        sensitive
            .iter()
            .filter(|p| p.ends_with("hasContactPhone") || p.ends_with("hasSiteId"))
            .collect()
    } else {
        Vec::new() // emergency response may see everything
    };
    forbidden.iter().map(|p| view_property_count(view, p)).sum()
}

fn covered(view: &Graph, subject: &str, role: &str) -> bool {
    // Coverage means: the role that should see the site's extent/name can
    // see *something* about it. Emergency and hazmat should; main repair
    // sees at least its type. For the XACML baseline the aligned facility
    // simply vanishes (its asserted type is alien to the rules).
    let _ = role;
    !view
        .match_pattern(Some(&Term::iri(subject)), None, None)
        .is_empty()
}

fn print_e5(
    report: &mut Report,
    role: &str,
    model: &str,
    view_triples: usize,
    leaked: usize,
    aligned_covered: bool,
    view_ms: f64,
) {
    let short = role.rsplit('#').next().unwrap_or(role);
    println!(
        "| {short} | {model} | {view_triples} | {leaked} | {aligned_covered} | {view_ms:.1} |"
    );
    report.e5.push(E5Row {
        role: short.to_string(),
        model: model.to_string(),
        view_triples,
        leaked_sensitive: leaked,
        aligned_covered,
        view_ms,
    });
}

// ---------------------------------------------------------------------------
// E6 — Fig. 3: G-SACS query cache.
// ---------------------------------------------------------------------------

struct E6Row {
    zipf_s: f64,
    cache: usize,
    requests: usize,
    hit_rate: f64,
    throughput_rps: f64,
}

fn e6_gsacs(report: &mut Report) {
    println!("## E6 — Fig. 3: G-SACS architecture (query cache sweep)\n");
    println!("| zipf s | cache entries | requests | hit rate | throughput (req/s) |");
    println!("|---|---|---|---|---|");
    let data = incident_graph(150, 150, 17);
    for zipf_s in [0.8f64, 1.2] {
        for cache in [0usize, 64, 1024] {
            let mut repo = OntoRepository::new();
            repo.register("grdf", grdf_ontology());
            repo.register("seconto", grdf_security::ontology::security_ontology());
            let svc = GSacs::new(
                repo,
                scenario_policies(),
                Box::<OwlHorstEngine>::default(),
                data.clone(),
                cache,
            );
            let reqs = generate_requests(&RequestConfig {
                count: 600,
                distinct_queries: 100,
                zipf_s,
                seed: 23,
                ..Default::default()
            });
            // Warm the per-role views outside the timed section (view
            // construction is measured in E5).
            for role in [roles::main_repair(), roles::hazmat(), roles::emergency()] {
                let _ = svc.view_for(&role);
            }
            let t = Instant::now();
            for r in &reqs {
                svc.handle(&ClientRequest {
                    role: r.role.clone(),
                    query: r.query.clone(),
                })
                .expect("request succeeds");
            }
            let secs = t.elapsed().as_secs_f64();
            let hit_rate = svc.cache_hit_rate();
            let throughput = reqs.len() as f64 / secs;
            println!(
                "| {zipf_s} | {cache} | {} | {hit_rate:.3} | {throughput:.0} |",
                reqs.len()
            );
            report.e6.push(E6Row {
                zipf_s,
                cache,
                requests: reqs.len(),
                hit_rate,
                throughput_rps: throughput,
            });
        }
    }
    println!();
}
