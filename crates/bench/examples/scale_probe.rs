//! One-off probe: materialization time at large E6 scales.
//! `cargo run --release -p grdf-bench --example scale_probe [streams] [sites]`

use std::time::Instant;

use grdf_bench::incident_graph_scaled;
use grdf_owl::reasoner::Reasoner;

fn main() {
    let mut args = std::env::args().skip(1);
    let streams: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(1000);
    let sites: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(1000);
    let detail: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(7);

    let t0 = Instant::now();
    let g = incident_graph_scaled(streams, sites, detail, 42);
    let gen_ms = t0.elapsed().as_secs_f64() * 1e3;
    println!(
        "generated {}x{}: {} triples in {:.1} ms",
        streams,
        sites,
        g.len(),
        gen_ms
    );

    for (name, r) in [
        ("semi_naive", Reasoner::default()),
        ("parallel4", Reasoner::parallel(4)),
    ] {
        let t1 = Instant::now();
        let mut m = g.clone();
        let clone_ms = t1.elapsed().as_secs_f64() * 1e3;
        let t2 = Instant::now();
        let stats = r.materialize(&mut m);
        let mat_ms = t2.elapsed().as_secs_f64() * 1e3;
        println!(
            "{name}: clone {clone_ms:.1} ms, materialize {mat_ms:.1} ms, inferred {}, passes {}, final {}",
            stats.inferred,
            stats.passes,
            m.len()
        );
    }
}
