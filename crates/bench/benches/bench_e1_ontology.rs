//! E1 (Fig. 1): ontology construction, materialization scaling, and the
//! triple-store index ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use grdf_bench::incident_store;
use grdf_core::ontology::grdf_ontology;
use grdf_rdf::graph::{Graph, IndexMode};
use grdf_rdf::term::Term;
use grdf_rdf::vocab::{grdf, rdf};

fn bench_ontology_build(c: &mut Criterion) {
    c.bench_function("e1/ontology_build", |b| {
        b.iter(|| black_box(grdf_ontology().len()));
    });
}

fn bench_materialize(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1/materialize");
    group.sample_size(10);
    for features in [500usize, 2000] {
        group.bench_with_input(BenchmarkId::from_parameter(features), &features, |b, &f| {
            b.iter_batched(
                || incident_store(f / 2, f / 6, 11),
                |mut store| black_box(store.materialize().inferred),
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

fn bench_index_ablation(c: &mut Criterion) {
    let store = {
        let mut s = incident_store(500, 100, 11);
        s.materialize();
        s
    };
    let full = store.graph().clone();
    let mut lean = Graph::with_index_mode(IndexMode::SpoOnly);
    lean.extend_from(&full);
    let ty = Term::iri(rdf::TYPE);
    let probe = Term::iri(&grdf::app("ChemSite"));

    let mut group = c.benchmark_group("e1/index_ablation");
    group.bench_function("full_indexes", |b| {
        b.iter(|| black_box(full.count_pattern(None, Some(&ty), Some(&probe))));
    });
    group.bench_function("spo_only", |b| {
        b.iter(|| black_box(lean.count_pattern(None, Some(&ty), Some(&probe))));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_ontology_build,
    bench_materialize,
    bench_index_ablation
);
criterion_main!(benches);
