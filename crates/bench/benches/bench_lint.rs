//! Lint throughput over the §7.1 incident workload (the E6 input): how
//! expensive is the full static-analysis pass relative to graph size,
//! and how much of it is the policy pass. The gate budget in DESIGN.md
//! assumes a full `lint_all` over the E6 store stays in the tens of
//! milliseconds; this bench is the number behind that claim.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use grdf_bench::{incident_graph, incident_store, scenario_policies};
use grdf_lint::{lint_all, lint_graph, lint_policies};
use grdf_security::labels::LabelIr;

fn bench_lint_graph_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("lint/graph_scaling");
    group.sample_size(10);
    for &n in &[10usize, 50, 100] {
        let g = incident_graph(n, n, 17);
        group.bench_with_input(BenchmarkId::from_parameter(g.len()), &g, |b, g| {
            b.iter(|| black_box(lint_graph(g).diagnostics.len()));
        });
    }
    group.finish();
}

fn bench_lint_passes(c: &mut Criterion) {
    // Same input, pass by pass, so regressions are attributable.
    let store = incident_store(100, 100, 17);
    let policies = scenario_policies();
    let g = store.graph();

    let mut group = c.benchmark_group("lint/passes");
    group.sample_size(10);
    group.bench_function("graph_only", |b| {
        b.iter(|| black_box(lint_graph(g).diagnostics.len()));
    });
    group.bench_function("policies_only", |b| {
        b.iter(|| black_box(lint_policies(g, &policies).diagnostics.len()));
    });
    group.bench_function("all", |b| {
        b.iter(|| black_box(lint_all(g, Some(&policies)).diagnostics.len()));
    });
    group.finish();
}

fn bench_report_rendering(c: &mut Criterion) {
    // A deliberately dirty graph (no ontology context, so the workload's
    // app: vocabulary is undeclared) exercising render/serialize paths.
    let g = incident_graph(100, 100, 17);
    let report = lint_all(&g, Some(&scenario_policies()));

    let mut group = c.benchmark_group("lint/render");
    group.bench_function("text", |b| {
        b.iter(|| black_box(report.render_text().len()));
    });
    group.bench_function("json", |b| {
        b.iter(|| black_box(report.to_json().len()));
    });
    group.finish();
}

fn bench_label_analysis(c: &mut Criterion) {
    // The new whole-policy-set machinery over the same E6-scale input:
    // label compilation (bitset assignment + role resolution), the
    // entailment-leak pass in isolation (per-role OWL-Horst closure of
    // the adversary graph), and the full S007–S010 analysis.
    let store = incident_store(100, 100, 17);
    let policies = scenario_policies();
    let g = store.graph();

    let mut group = c.benchmark_group("lint/labels");
    group.sample_size(10);
    group.bench_function("compile", |b| {
        b.iter(|| black_box(LabelIr::compile(g, &policies).width()));
    });
    let ir = LabelIr::compile(g, &policies);
    group.bench_function("entailment_leak_pass", |b| {
        b.iter(|| black_box(ir.entailment_leaks(g).len()));
    });
    group.bench_function("static_diagnostics", |b| {
        b.iter(|| black_box(ir.static_diagnostics(g, &policies).len()));
    });
    group.bench_function("verify_equivalence", |b| {
        b.iter(|| black_box(ir.verify_label_equivalence(g, &policies).len()));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_lint_graph_scaling,
    bench_lint_passes,
    bench_report_rendering,
    bench_label_analysis
);
criterion_main!(benches);
