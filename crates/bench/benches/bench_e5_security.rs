//! E5 (List 8 / §7.1): fine-grained (GRDF) vs object-level (GeoXACML)
//! view construction, plus the per-probe decision cost.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use grdf_bench::{incident_store, roles, scenario_policies, xacml_policies};
use grdf_rdf::term::Term;
use grdf_rdf::vocab::grdf;
use grdf_security::policy::Action;
use grdf_security::views::secure_view;

fn bench_view_build(c: &mut Criterion) {
    let mut store = incident_store(100, 100, 13);
    store.materialize();
    let data = store.graph().clone();
    let grdf_ps = scenario_policies();
    let xacml_ps = xacml_policies();

    let mut group = c.benchmark_group("e5/view_build");
    group.sample_size(10);
    group.bench_function("grdf_fine_grained", |b| {
        b.iter(|| black_box(secure_view(&data, &grdf_ps, &roles::main_repair()).0.len()));
    });
    group.bench_function("geoxacml_object_level", |b| {
        b.iter(|| black_box(xacml_ps.view(&data, &roles::main_repair()).0.len()));
    });
    group.finish();
}

fn bench_single_decision(c: &mut Criterion) {
    let mut store = incident_store(50, 50, 13);
    store.materialize();
    let data = store.graph().clone();
    let grdf_ps = scenario_policies();
    let xacml_ps = xacml_policies();
    // One concrete site subject.
    let site = data
        .subjects(
            &Term::iri(grdf_rdf::vocab::rdf::TYPE),
            &Term::iri(&grdf::app("ChemSite")),
        )
        .into_iter()
        .next()
        .expect("a site exists");
    let prop = grdf::app("hasChemicalInfo");

    let mut group = c.benchmark_group("e5/single_decision");
    group.bench_function("grdf_property_probe", |b| {
        b.iter(|| {
            black_box(grdf_ps.evaluate(&data, &roles::main_repair(), &site, &prop, Action::View))
        });
    });
    group.bench_function("geoxacml_object_probe", |b| {
        b.iter(|| black_box(xacml_ps.decide(&data, &roles::main_repair(), &site)));
    });
    group.finish();
}

criterion_group!(benches, bench_view_build, bench_single_decision);
criterion_main!(benches);
