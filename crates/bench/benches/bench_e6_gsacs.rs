//! E6 (Fig. 3): G-SACS end-to-end request handling under cache sweeps.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use grdf_bench::{incident_graph, roles, scenario_policies};
use grdf_core::ontology::grdf_ontology;
use grdf_security::gsacs::{ClientRequest, GSacs, OntoRepository, OwlHorstEngine};
use grdf_workload::requests::{generate_requests, RequestConfig};

fn service(cache: usize) -> GSacs {
    let mut repo = OntoRepository::new();
    repo.register("grdf", grdf_ontology());
    repo.register("seconto", grdf_security::ontology::security_ontology());
    let svc = GSacs::new(
        repo,
        scenario_policies(),
        Box::<OwlHorstEngine>::default(),
        incident_graph(100, 100, 17),
        cache,
    );
    // Pre-build role views so the sweep measures request handling.
    for role in [roles::main_repair(), roles::hazmat(), roles::emergency()] {
        let _ = svc.view_for(&role);
    }
    svc
}

fn bench_request_stream(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6/request_stream");
    group.sample_size(10);
    for cache in [0usize, 64, 1024] {
        let svc = service(cache);
        let reqs: Vec<ClientRequest> = generate_requests(&RequestConfig {
            count: 200,
            distinct_queries: 100,
            zipf_s: 1.2,
            seed: 23,
            ..Default::default()
        })
        .into_iter()
        .map(|r| ClientRequest {
            role: r.role,
            query: r.query,
        })
        .collect();
        group.bench_with_input(BenchmarkId::from_parameter(cache), &cache, |b, _| {
            b.iter(|| {
                let mut n = 0;
                for r in &reqs {
                    n += svc.handle(r).unwrap().select_rows().len();
                }
                black_box(n)
            });
        });
    }
    group.finish();
}

fn bench_cold_vs_warm(c: &mut Criterion) {
    let svc = service(1024);
    let req = ClientRequest {
        role: roles::emergency(),
        query: grdf_workload::requests::query_pool(1)[0].clone(),
    };
    // Warm the cache once.
    svc.handle(&req).unwrap();
    c.bench_function("e6/warm_cache_hit", |b| {
        b.iter(|| black_box(svc.handle(&req).unwrap().select_rows().len()));
    });

    let cold = service(0);
    c.bench_function("e6/uncached_request", |b| {
        b.iter(|| black_box(cold.handle(&req).unwrap().select_rows().len()));
    });
}

/// G-SACS is shared-state (`&self`) behind internal locks; measure the
/// same request stream handled by 1 vs 4 worker threads.
fn bench_concurrency(c: &mut Criterion) {
    let svc = service(1024);
    let reqs: Vec<ClientRequest> = generate_requests(&RequestConfig {
        count: 200,
        distinct_queries: 50,
        zipf_s: 1.0,
        seed: 29,
        ..Default::default()
    })
    .into_iter()
    .map(|r| ClientRequest {
        role: r.role,
        query: r.query,
    })
    .collect();

    let mut group = c.benchmark_group("e6/concurrency");
    group.sample_size(10);
    for threads in [1usize, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &n| {
            b.iter(|| {
                std::thread::scope(|scope| {
                    let chunk = reqs.len().div_ceil(n);
                    for part in reqs.chunks(chunk) {
                        let svc = &svc;
                        scope.spawn(move || {
                            let mut total = 0usize;
                            for r in part {
                                total += svc.handle(r).unwrap().select_rows().len();
                            }
                            black_box(total)
                        });
                    }
                });
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_request_stream,
    bench_cold_vs_warm,
    bench_concurrency
);
criterion_main!(benches);
