//! E3 (Fig. 2 / List 5): coordinate-free topology operations and
//! realization.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::collections::HashMap;
use std::hint::black_box;

use grdf_geometry::coord::Coord;
use grdf_topology::model::{DirectedEdge, NodeId, TopologyModel};
use grdf_topology::realize::Realization;

fn grid_mesh(n: usize) -> (TopologyModel, Vec<Vec<NodeId>>) {
    let mut m = TopologyModel::new();
    let nodes: Vec<Vec<_>> = (0..=n)
        .map(|_| (0..=n).map(|_| m.add_node()).collect())
        .collect();
    let mut h = vec![vec![None; n]; n + 1];
    let mut v = vec![vec![None; n + 1]; n];
    for (r, row) in nodes.iter().enumerate() {
        for c in 0..n {
            h[r][c] = Some(m.add_edge(row[c], row[c + 1]).unwrap());
        }
    }
    for r in 0..n {
        for c in 0..=n {
            v[r][c] = Some(m.add_edge(nodes[r][c], nodes[r + 1][c]).unwrap());
        }
    }
    for r in 0..n {
        for c in 0..n {
            m.add_face(vec![
                DirectedEdge::forward(h[r][c].unwrap()),
                DirectedEdge::forward(v[r][c + 1].unwrap()),
                DirectedEdge::reverse(h[r + 1][c].unwrap()),
                DirectedEdge::reverse(v[r][c].unwrap()),
            ])
            .unwrap();
        }
    }
    (m, nodes)
}

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3/mesh_build");
    for n in [10usize, 40] {
        group.bench_with_input(BenchmarkId::from_parameter(n * n), &n, |b, &n| {
            b.iter(|| black_box(grid_mesh(n).0.face_count()));
        });
    }
    group.finish();
}

fn bench_connectivity(c: &mut Criterion) {
    let (m, nodes) = grid_mesh(40);
    c.bench_function("e3/connectivity_query", |b| {
        b.iter(|| black_box(m.connected(nodes[0][0], nodes[40][40])));
    });
    c.bench_function("e3/shortest_path", |b| {
        b.iter(|| black_box(m.shortest_path(nodes[0][0], nodes[40][40]).unwrap().len()));
    });
}

fn bench_realization(c: &mut Criterion) {
    let (m, nodes) = grid_mesh(25);
    let coords: HashMap<NodeId, Coord> = nodes
        .iter()
        .enumerate()
        .flat_map(|(r, row)| {
            row.iter()
                .enumerate()
                .map(move |(col, id)| (*id, Coord::xy(col as f64, r as f64)))
        })
        .collect();
    c.bench_function("e3/realize_straight", |b| {
        b.iter(|| {
            black_box(
                Realization::realize_graph_straight(&m, &coords)
                    .unwrap()
                    .total_edge_length(),
            )
        });
    });
}

criterion_group!(benches, bench_build, bench_connectivity, bench_realization);
criterion_main!(benches);
