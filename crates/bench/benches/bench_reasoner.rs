//! Engine comparison for the materialization fixpoint: naive reference vs
//! semi-naive vs parallel semi-naive, over the E1 GRDF ontology and the
//! E6 incident store (ontology + incident data) at several scales.
//!
//! Unlike the criterion-style benches this is a hand-rolled harness so it
//! can emit a machine-readable snapshot (`--json <path>`, the format of
//! the checked-in `BENCH_reasoner.json`) and enforce engine invariants as
//! hard assertions: the semi-naive engine must never take more passes
//! than the naive engine and every arm must infer the same triple count.
//! `--quick` trims the scaling series for CI smoke runs; `--scale
//! streams,sites[,detail]` appends one extra fast-arm scenario at an
//! arbitrary point (e.g. `--scale 1000,1000,7` for the ~400 K-triple E6
//! point, which full mode also records by default).

use std::time::Instant;

use grdf_bench::{incident_graph_scaled, incident_store, incident_store_scaled};
use grdf_core::ontology::grdf_ontology;
use grdf_owl::reasoner::{Reasoner, ReasonerStats, Strategy};
use grdf_rdf::graph::Graph;

struct ArmResult {
    name: &'static str,
    millis: f64,
    stats: ReasonerStats,
}

struct ScenarioResult {
    name: String,
    input_triples: usize,
    output_triples: usize,
    arms: Vec<ArmResult>,
}

fn semi_naive() -> Reasoner {
    Reasoner {
        strategy: Strategy::SemiNaive,
        ..Reasoner::default()
    }
}

fn arms() -> Vec<(&'static str, Reasoner)> {
    vec![
        ("naive", Reasoner::naive()),
        ("semi_naive", semi_naive()),
        ("parallel4", Reasoner::parallel(4)),
    ]
}

/// Arms for the large scaling points, where the O(n²)-ish naive
/// reference would dominate the run by minutes without adding signal:
/// semi-naive becomes the reference arm.
fn fast_arms() -> Vec<(&'static str, Reasoner)> {
    vec![
        ("semi_naive", semi_naive()),
        ("parallel4", Reasoner::parallel(4)),
    ]
}

/// Run every arm over `input`; the first arm is the reference: every
/// other arm must reach the identical fixpoint with the same inferred
/// count in no more passes. Timed rounds interleave the arms (warmup
/// round first, best-of-`runs` minima after) so ambient load on a shared
/// machine biases all arms alike instead of whichever ran last.
fn run_scenario(
    name: &str,
    input: &Graph,
    runs: usize,
    arms: Vec<(&'static str, Reasoner)>,
) -> ScenarioResult {
    // Warmup round, untimed: capture each arm's stats and fixpoint (the
    // engine is deterministic, so any run's stats are the stats).
    let mut measured: Vec<(&'static str, Reasoner, ReasonerStats, Graph, f64)> = arms
        .into_iter()
        .map(|(arm_name, reasoner)| {
            let mut g = input.clone();
            let stats = reasoner.materialize(&mut g);
            (arm_name, reasoner, stats, g, f64::INFINITY)
        })
        .collect();
    // Rotate the arm order each round: a fixed order hands the later
    // arms a systematically hotter (boost-decayed) core, which shows up
    // as a phantom 1-2% loss on otherwise identical code paths.
    let n_arms = measured.len();
    for round in 0..runs {
        for i in 0..n_arms {
            let (_, reasoner, _, _, best) = &mut measured[(round + i) % n_arms];
            let mut g = input.clone();
            let start = Instant::now();
            reasoner.materialize(&mut g);
            let millis = start.elapsed().as_secs_f64() * 1e3;
            *best = best.min(millis);
        }
    }

    let mut results = Vec::new();
    let mut reference: Option<Graph> = None;
    let mut output_triples = 0;
    for (arm_name, _, stats, g, millis) in measured {
        match &reference {
            None => {
                output_triples = g.len();
                reference = Some(g);
            }
            Some(r) => assert_eq!(
                *r, g,
                "{name}/{arm_name}: fixpoint differs from the reference arm"
            ),
        }
        results.push(ArmResult {
            name: arm_name,
            millis,
            stats,
        });
    }
    let reference = &results[0];
    for arm in &results[1..] {
        assert_eq!(
            arm.stats.inferred, reference.stats.inferred,
            "{name}/{}: inferred-count mismatch vs {}",
            arm.name, reference.name
        );
        assert!(
            arm.stats.passes <= reference.stats.passes,
            "{name}/{}: {} passes exceeds {}'s {}",
            arm.name,
            arm.stats.passes,
            reference.name,
            reference.stats.passes
        );
    }
    ScenarioResult {
        name: name.to_string(),
        input_triples: input.len(),
        output_triples,
        arms: results,
    }
}

fn speedup(scenario: &ScenarioResult, arm: &ArmResult) -> f64 {
    scenario.arms[0].millis / arm.millis.max(1e-9)
}

fn to_json(mode: &str, scenarios: &[ScenarioResult]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"reasoner\",\n");
    out.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    out.push_str("  \"scenarios\": [\n");
    for (i, s) in scenarios.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"name\": \"{}\",\n", s.name));
        out.push_str(&format!("      \"input_triples\": {},\n", s.input_triples));
        out.push_str(&format!(
            "      \"output_triples\": {},\n",
            s.output_triples
        ));
        out.push_str(&format!(
            "      \"reference_arm\": \"{}\",\n",
            s.arms[0].name
        ));
        out.push_str("      \"arms\": [\n");
        for (j, arm) in s.arms.iter().enumerate() {
            out.push_str(&format!(
                "        {{\"name\": \"{}\", \"millis\": {:.3}, \"passes\": {}, \
                 \"inferred\": {}, \"speedup_vs_ref\": {:.2}}}{}\n",
                arm.name,
                arm.millis,
                arm.stats.passes,
                arm.stats.inferred,
                speedup(s, arm),
                if j + 1 < s.arms.len() { "," } else { "" }
            ));
        }
        out.push_str("      ]\n");
        out.push_str(&format!(
            "    }}{}\n",
            if i + 1 < scenarios.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args
        .iter()
        .any(|a| a.starts_with("--test") || a == "--list")
    {
        // `cargo test` probes bench binaries; nothing to run in test mode.
        println!("bench_reasoner: bench-only binary, skipped under test");
        return;
    }
    let quick = args.iter().any(|a| a == "--quick");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .map(|i| args.get(i + 1).expect("--json needs a path").clone());
    // `--scale S,S[,D]`: append one extra fast-arm scenario at an
    // arbitrary (streams, sites, detail) point without editing the
    // built-in series.
    let extra_scale: Option<(usize, usize, usize)> = args
        .iter()
        .position(|a| a == "--scale")
        .map(|i| {
            args.get(i + 1)
                .expect("--scale needs streams,sites[,detail]")
        })
        .map(|spec| {
            let parts: Vec<usize> = spec
                .split(',')
                .map(|p| p.trim().parse().expect("--scale takes integers"))
                .collect();
            match parts[..] {
                [streams, sites] => (streams, sites, 1),
                [streams, sites, detail] => (streams, sites, detail),
                _ => panic!("--scale takes streams,sites[,detail]"),
            }
        });

    let (runs, scales): (usize, &[(usize, usize)]) = if quick {
        (3, &[(25, 25), (50, 50)])
    } else {
        (25, &[(25, 25), (50, 50), (100, 100)])
    };
    // The large scaling points only run the fast arms (semi-naive as
    // the reference): columnar runs + id-batch joins are what's under
    // test there, and naive would take minutes at 400 K triples.
    let big_scales: &[(usize, usize, usize)] = if quick {
        &[]
    } else {
        &[(250, 250, 3), (1000, 1000, 7)]
    };

    let mut scenarios = Vec::new();
    scenarios.push(run_scenario("e1_ontology", &grdf_ontology(), runs, arms()));
    for &(streams, sites) in scales {
        // The E6 incident *store*: ontology + incident data, so the
        // fixpoint exercises the full GRDF schema, not just alignment
        // axioms.
        let store = incident_store(streams, sites, 11);
        scenarios.push(run_scenario(
            &format!("e6_incident_store_{streams}x{sites}"),
            store.graph(),
            runs,
            arms(),
        ));
    }
    for &(streams, sites, detail) in big_scales {
        let store = incident_store_scaled(streams, sites, detail, 11);
        scenarios.push(run_scenario(
            &format!("e6_incident_store_{streams}x{sites}_d{detail}"),
            store.graph(),
            15,
            fast_arms(),
        ));
    }
    if !quick {
        // The headline columnar-vs-BTree point: the raw incident *graph*
        // (alignment axioms only, no full ontology) at 1000×1000 detail
        // 7 — the exact workload and seed of the pre-PR BTree baseline
        // (246.6 ms semi-naive materialization at 429,738 triples).
        let graph = incident_graph_scaled(1000, 1000, 7, 42);
        scenarios.push(run_scenario(
            "e6_incident_graph_1000x1000_d7",
            &graph,
            15,
            fast_arms(),
        ));
    }
    if let Some((streams, sites, detail)) = extra_scale {
        let store = incident_store_scaled(streams, sites, detail, 11);
        scenarios.push(run_scenario(
            &format!("e6_incident_store_{streams}x{sites}_d{detail}_extra"),
            store.graph(),
            runs.min(3),
            fast_arms(),
        ));
    }

    for s in &scenarios {
        println!(
            "{} ({} -> {} triples)",
            s.name, s.input_triples, s.output_triples
        );
        for arm in &s.arms {
            println!(
                "  {:<10} {:>10.3} ms  {:>2} passes  {:>7} inferred  {:>6.2}x vs {}",
                arm.name,
                arm.millis,
                arm.stats.passes,
                arm.stats.inferred,
                speedup(s, arm),
                s.arms[0].name,
            );
        }
        // Satellite invariant (advisory here, hard in the recorded JSON):
        // adaptive sharding should keep parallel4 from losing to
        // semi_naive at any scale. Shared CI runners are too noisy for a
        // hard timing gate, so surface it loudly instead of asserting.
        let semi = s.arms.iter().find(|a| a.name == "semi_naive");
        let par = s.arms.iter().find(|a| a.name == "parallel4");
        if let (Some(semi), Some(par)) = (semi, par) {
            if par.millis > semi.millis {
                println!(
                    "  WARNING: parallel4 ({:.3} ms) slower than semi_naive ({:.3} ms)",
                    par.millis, semi.millis
                );
            }
        }
    }

    if let Some(path) = json_path {
        let json = to_json(if quick { "quick" } else { "full" }, &scenarios);
        std::fs::write(&path, json).expect("write json snapshot");
        println!("wrote {path}");
    }
}
