//! Engine comparison for the materialization fixpoint: naive reference vs
//! semi-naive vs parallel semi-naive, over the E1 GRDF ontology and the
//! E6 incident store (ontology + incident data) at several scales.
//!
//! Unlike the criterion-style benches this is a hand-rolled harness so it
//! can emit a machine-readable snapshot (`--json <path>`, the format of
//! the checked-in `BENCH_reasoner.json`) and enforce engine invariants as
//! hard assertions: the semi-naive engine must never take more passes
//! than the naive engine and every arm must infer the same triple count.
//! `--quick` trims the scaling series for CI smoke runs.

use std::time::Instant;

use grdf_bench::incident_store;
use grdf_core::ontology::grdf_ontology;
use grdf_owl::reasoner::{Reasoner, ReasonerStats, Strategy};
use grdf_rdf::graph::Graph;

struct ArmResult {
    name: &'static str,
    millis: f64,
    stats: ReasonerStats,
}

struct ScenarioResult {
    name: String,
    input_triples: usize,
    output_triples: usize,
    arms: Vec<ArmResult>,
}

fn arms() -> Vec<(&'static str, Reasoner)> {
    vec![
        ("naive", Reasoner::naive()),
        (
            "semi_naive",
            Reasoner {
                strategy: Strategy::SemiNaive,
                ..Reasoner::default()
            },
        ),
        ("parallel4", Reasoner::parallel(4)),
    ]
}

/// Best-of-`runs` wall time for a full materialization of `input`, plus
/// the stats of the final run (identical across runs — the engine is
/// deterministic).
fn measure(input: &Graph, reasoner: Reasoner, runs: usize) -> (f64, ReasonerStats, Graph) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..runs {
        let mut g = input.clone();
        let start = Instant::now();
        let stats = reasoner.materialize(&mut g);
        let millis = start.elapsed().as_secs_f64() * 1e3;
        best = best.min(millis);
        last = Some((stats, g));
    }
    let (stats, g) = last.expect("runs >= 1");
    (best, stats, g)
}

fn run_scenario(name: &str, input: &Graph, runs: usize) -> ScenarioResult {
    let mut results = Vec::new();
    let mut reference: Option<Graph> = None;
    let mut output_triples = 0;
    for (arm_name, reasoner) in arms() {
        let (millis, stats, g) = measure(input, reasoner, runs);
        match &reference {
            None => {
                output_triples = g.len();
                reference = Some(g);
            }
            Some(r) => assert_eq!(
                *r, g,
                "{name}/{arm_name}: fixpoint differs from the naive reference"
            ),
        }
        results.push(ArmResult {
            name: arm_name,
            millis,
            stats,
        });
    }
    let naive = &results[0];
    for arm in &results[1..] {
        assert_eq!(
            arm.stats.inferred, naive.stats.inferred,
            "{name}/{}: inferred-count mismatch vs naive",
            arm.name
        );
        assert!(
            arm.stats.passes <= naive.stats.passes,
            "{name}/{}: {} passes exceeds naive's {}",
            arm.name,
            arm.stats.passes,
            naive.stats.passes
        );
    }
    ScenarioResult {
        name: name.to_string(),
        input_triples: input.len(),
        output_triples,
        arms: results,
    }
}

fn speedup(scenario: &ScenarioResult, arm: &ArmResult) -> f64 {
    scenario.arms[0].millis / arm.millis.max(1e-9)
}

fn to_json(mode: &str, scenarios: &[ScenarioResult]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"reasoner\",\n");
    out.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    out.push_str("  \"scenarios\": [\n");
    for (i, s) in scenarios.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"name\": \"{}\",\n", s.name));
        out.push_str(&format!("      \"input_triples\": {},\n", s.input_triples));
        out.push_str(&format!(
            "      \"output_triples\": {},\n",
            s.output_triples
        ));
        out.push_str("      \"arms\": [\n");
        for (j, arm) in s.arms.iter().enumerate() {
            out.push_str(&format!(
                "        {{\"name\": \"{}\", \"millis\": {:.3}, \"passes\": {}, \
                 \"inferred\": {}, \"speedup_vs_naive\": {:.2}}}{}\n",
                arm.name,
                arm.millis,
                arm.stats.passes,
                arm.stats.inferred,
                speedup(s, arm),
                if j + 1 < s.arms.len() { "," } else { "" }
            ));
        }
        out.push_str("      ]\n");
        out.push_str(&format!(
            "    }}{}\n",
            if i + 1 < scenarios.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args
        .iter()
        .any(|a| a.starts_with("--test") || a == "--list")
    {
        // `cargo test` probes bench binaries; nothing to run in test mode.
        println!("bench_reasoner: bench-only binary, skipped under test");
        return;
    }
    let quick = args.iter().any(|a| a == "--quick");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .map(|i| args.get(i + 1).expect("--json needs a path").clone());

    let (runs, scales): (usize, &[(usize, usize)]) = if quick {
        (1, &[(25, 25), (50, 50)])
    } else {
        (3, &[(25, 25), (50, 50), (100, 100)])
    };

    let mut scenarios = Vec::new();
    scenarios.push(run_scenario("e1_ontology", &grdf_ontology(), runs));
    for &(streams, sites) in scales {
        // The E6 incident *store*: ontology + incident data, so the
        // fixpoint exercises the full GRDF schema, not just alignment
        // axioms.
        let store = incident_store(streams, sites, 11);
        scenarios.push(run_scenario(
            &format!("e6_incident_store_{streams}x{sites}"),
            store.graph(),
            runs,
        ));
    }

    for s in &scenarios {
        println!(
            "{} ({} -> {} triples)",
            s.name, s.input_triples, s.output_triples
        );
        for arm in &s.arms {
            println!(
                "  {:<10} {:>10.3} ms  {:>2} passes  {:>7} inferred  {:>6.2}x vs naive",
                arm.name,
                arm.millis,
                arm.stats.passes,
                arm.stats.inferred,
                speedup(s, arm)
            );
        }
    }

    if let Some(path) = json_path {
        let json = to_json(if quick { "quick" } else { "full" }, &scenarios);
        std::fs::write(&path, json).expect("write json snapshot");
        println!("wrote {path}");
    }
}
