//! Durability benchmarks for `grdf-store`: WAL append throughput per
//! fsync policy, checkpoint write latency, and crash recovery against the
//! E6 incident store — including the claim the store exists to back up:
//! recovering from a checkpoint + WAL replay is faster than re-ingesting
//! the sources and re-running the full materialization fixpoint.
//!
//! Hand-rolled harness (same shape as `bench_reasoner`): `--json <path>`
//! writes the checked-in `BENCH_store.json` format, `--quick` trims
//! scales and iteration counts for CI smoke runs, and `--scale
//! streams,sites[,detail]` appends an extra checkpoint-codec scaling
//! point (e.g. `--scale 1000,1000,7`). Everything runs on a
//! real filesystem (a fresh temp directory per arm) so fsync costs are
//! real, not simulated. Like `bench_reasoner`, the whole suite repeats
//! for several rounds and the snapshot keeps per-metric minima (maxima
//! for rates): fsync latency on a shared box jitters far more than the
//! code under test, and minima are the stable point of the distribution.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use grdf_bench::{incident_graph, incident_graph_scaled, scenario_policies};
use grdf_owl::reasoner::{Reasoner, Strategy};
use grdf_rdf::codec::{decode_graph, encode_graph};
use grdf_rdf::graph::Graph;
use grdf_security::policy_set_graph;
use grdf_store::{DurableStore, FsBackend, FsyncPolicy, LoggedOp, StorageBackend, StoreConfig};

struct Scenario {
    name: String,
    metrics: Vec<(&'static str, f64)>,
}

/// A fresh temp directory that is removed on drop.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let path =
            std::env::temp_dir().join(format!("grdf-bench-store-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).expect("create temp dir");
        TempDir(path)
    }

    fn backend(&self) -> Arc<dyn StorageBackend> {
        Arc::new(FsBackend::open(&self.0).expect("open fs backend"))
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Insert-op batches drawn from the incident graph, `batch` triples each.
fn batches(graph: &Graph, batch: usize) -> Vec<Vec<LoggedOp>> {
    let mut out = Vec::new();
    let mut cur = Vec::with_capacity(batch);
    for t in graph.iter() {
        cur.push(LoggedOp::Insert(t));
        if cur.len() == batch {
            out.push(std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

fn policy_name(policy: FsyncPolicy) -> &'static str {
    match policy {
        FsyncPolicy::Always => "always",
        FsyncPolicy::EveryN(_) => "every32",
        FsyncPolicy::Never => "never",
    }
}

/// WAL append throughput for one fsync policy: a fresh store, `ops` spread
/// over insert batches, one WAL record per batch.
fn bench_wal(graph: &Graph, policy: FsyncPolicy, max_batches: usize) -> Scenario {
    let dir = TempDir::new(&format!("wal-{}", policy_name(policy)));
    let config = StoreConfig {
        fsync: policy,
        // Appends only — rotation is measured separately.
        checkpoint_threshold: u64::MAX,
    };
    let store = DurableStore::create(dir.backend(), config, &Graph::new(), &Graph::new())
        .expect("create store");
    let work: Vec<Vec<LoggedOp>> = batches(graph, 8).into_iter().take(max_batches).collect();
    let ops: usize = work.iter().map(Vec::len).sum();
    let start = Instant::now();
    for b in &work {
        store.append_batch(b).expect("append");
    }
    let secs = start.elapsed().as_secs_f64();
    let bytes = store.wal_bytes();
    Scenario {
        name: format!("wal_append_fsync_{}", policy_name(policy)),
        metrics: vec![
            ("batches", work.len() as f64),
            ("ops", ops as f64),
            ("millis", secs * 1e3),
            ("batches_per_sec", work.len() as f64 / secs.max(1e-9)),
            ("wal_bytes", bytes as f64),
        ],
    }
}

/// Checkpoint write latency + size for the materialized-base scale, and
/// recovery time from that checkpoint plus a replayed WAL suffix,
/// compared against re-ingesting the sources and re-running the full
/// materialization fixpoint.
fn bench_checkpoint_and_recovery(
    streams: usize,
    sites: usize,
    replay_batches: usize,
) -> (Scenario, Scenario) {
    let base = incident_graph(streams, sites, 17);
    let policy_graph = policy_set_graph(&scenario_policies());
    let dir = TempDir::new(&format!("ckpt-{streams}x{sites}"));
    let config = StoreConfig {
        fsync: FsyncPolicy::EveryN(32),
        checkpoint_threshold: u64::MAX,
    };
    let store =
        DurableStore::create(dir.backend(), config, &base, &policy_graph).expect("create store");
    // Measured checkpoint write: same state again, a fresh segment.
    let start = Instant::now();
    store.checkpoint(&base, &policy_graph).expect("checkpoint");
    let ckpt_millis = start.elapsed().as_secs_f64() * 1e3;
    let ckpt = Scenario {
        name: format!("checkpoint_e6_{streams}x{sites}"),
        metrics: vec![("base_triples", base.len() as f64), ("millis", ckpt_millis)],
    };

    // A WAL suffix to replay on top of the checkpoint: fresh triples not
    // in the base (a later seed), so replay does real insert work.
    let extra = incident_graph(streams / 2, sites / 2, 99);
    let mut replayed_ops = 0usize;
    for b in batches(&extra, 8).into_iter().take(replay_batches) {
        replayed_ops += b.len();
        store.append_batch(&b).expect("append");
    }
    drop(store);

    // Recovery arm: open the store on a fresh backend (as a restarted
    // process would) and re-materialize the recovered base.
    let reasoner = Reasoner {
        strategy: Strategy::SemiNaive,
        ..Reasoner::default()
    };
    let start = Instant::now();
    let (_store, recovered) =
        DurableStore::open(dir.backend(), StoreConfig::default()).expect("recover");
    let open_millis = start.elapsed().as_secs_f64() * 1e3;
    let mut recovered_graph = recovered.base.clone();
    reasoner.materialize(&mut recovered_graph);
    let recover_millis = start.elapsed().as_secs_f64() * 1e3;

    // Re-ingest arm: regenerate the same state from sources and run the
    // full fixpoint — what a store-less restart would have to do.
    let start = Instant::now();
    let mut reingested = incident_graph(streams, sites, 17);
    for b in batches(&extra, 8).into_iter().take(replay_batches) {
        for op in b {
            match op {
                LoggedOp::Insert(t) => {
                    reingested.insert(t);
                }
                LoggedOp::Delete(t) => {
                    reingested.remove(&t);
                }
            }
        }
    }
    reasoner.materialize(&mut reingested);
    let reingest_millis = start.elapsed().as_secs_f64() * 1e3;

    assert_eq!(
        recovered_graph, reingested,
        "recovery must reconstruct exactly the re-ingested state"
    );
    assert!(
        open_millis < reingest_millis,
        "checkpoint+WAL recovery ({open_millis:.1} ms) should beat \
         re-ingest + full re-materialization ({reingest_millis:.1} ms)"
    );
    let recovery = Scenario {
        name: format!("recovery_e6_{streams}x{sites}"),
        metrics: vec![
            ("recovered_triples", recovered.base.len() as f64),
            ("replayed_ops", replayed_ops as f64),
            ("open_millis", open_millis),
            ("recover_materialize_millis", recover_millis),
            ("reingest_materialize_millis", reingest_millis),
            (
                "open_speedup_vs_reingest",
                reingest_millis / open_millis.max(1e-9),
            ),
        ],
    };
    (ckpt, recovery)
}

/// Codec scaling point: encode the scaled E6 graph into the v2 columnar
/// checkpoint form and load it back. The v2 decode path is decode-free —
/// the triple section *is* a sorted SPO run, installed wholesale via
/// `Graph::from_parts` — so the load must come back as a pure run
/// (nothing in the novelty delta) and match the source exactly.
fn bench_checkpoint_codec(streams: usize, sites: usize, detail: usize) -> Scenario {
    let graph = incident_graph_scaled(streams, sites, detail, 17);

    let start = Instant::now();
    let bytes = encode_graph(&graph);
    let encode_millis = start.elapsed().as_secs_f64() * 1e3;

    let start = Instant::now();
    let decoded = decode_graph(&bytes).expect("v2 decode");
    let decode_millis = start.elapsed().as_secs_f64() * 1e3;

    assert_eq!(decoded, graph, "codec round-trip must preserve the graph");
    assert_eq!(
        decoded.run_len(),
        decoded.len(),
        "v2 load must land entirely in the columnar run"
    );
    assert_eq!(decoded.novelty_len(), 0, "v2 load must leave no novelty");

    Scenario {
        name: format!("checkpoint_codec_e6_{streams}x{sites}_d{detail}"),
        metrics: vec![
            ("triples", graph.len() as f64),
            ("bytes", bytes.len() as f64),
            ("encode_millis", encode_millis),
            ("decode_millis", decode_millis),
            (
                "decode_mtriples_per_sec",
                graph.len() as f64 / 1e3 / decode_millis.max(1e-9),
            ),
        ],
    }
}

/// Fold a repeat round into the best-so-far snapshot: timing metrics
/// keep their minimum, rate/speedup metrics their maximum. Counts and
/// sizes are deterministic (same workload every round) and pass through.
fn merge_round(best: &mut Scenario, next: Scenario) {
    assert_eq!(
        best.name, next.name,
        "round produced scenarios out of order"
    );
    for ((k, v), (nk, nv)) in best.metrics.iter_mut().zip(next.metrics) {
        assert_eq!(*k, nk, "round produced metrics out of order");
        if k.ends_with("millis") {
            *v = v.min(nv);
        } else if k.contains("per_sec") || k.contains("speedup") {
            *v = v.max(nv);
        }
    }
}

fn to_json(mode: &str, scenarios: &[Scenario]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"store\",\n");
    out.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    out.push_str("  \"scenarios\": [\n");
    for (i, s) in scenarios.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"name\": \"{}\"", s.name));
        for (k, v) in &s.metrics {
            out.push_str(&format!(",\n      \"{k}\": {v:.3}"));
        }
        out.push_str(&format!(
            "\n    }}{}\n",
            if i + 1 < scenarios.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args
        .iter()
        .any(|a| a.starts_with("--test") || a == "--list")
    {
        // `cargo test` probes bench binaries; nothing to run in test mode.
        println!("bench_store: bench-only binary, skipped under test");
        return;
    }
    let quick = args.iter().any(|a| a == "--quick");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .map(|i| args.get(i + 1).expect("--json needs a path").clone());
    // `--scale S,S[,D]`: append an extra codec scaling point.
    let extra_scale: Option<(usize, usize, usize)> = args
        .iter()
        .position(|a| a == "--scale")
        .map(|i| {
            args.get(i + 1)
                .expect("--scale needs streams,sites[,detail]")
        })
        .map(|spec| {
            let parts: Vec<usize> = spec
                .split(',')
                .map(|p| p.trim().parse().expect("--scale takes integers"))
                .collect();
            match parts[..] {
                [streams, sites] => (streams, sites, 1),
                [streams, sites, detail] => (streams, sites, detail),
                _ => panic!("--scale takes streams,sites[,detail]"),
            }
        });

    let (wal_batches, scale, replay) = if quick {
        (100, (50, 50), 20)
    } else {
        (1000, (100, 100), 100)
    };
    let codec_scales: &[(usize, usize, usize)] = if quick {
        &[(100, 100, 1)]
    } else {
        &[(100, 100, 1), (250, 250, 3), (1000, 1000, 7)]
    };

    let rounds = if quick { 2 } else { 5 };
    let wal_input = incident_graph(50, 50, 17);
    let mut scenarios: Vec<Scenario> = Vec::new();
    for round in 0..rounds {
        let mut pass = Vec::new();
        for policy in [
            FsyncPolicy::Always,
            FsyncPolicy::EveryN(32),
            FsyncPolicy::Never,
        ] {
            pass.push(bench_wal(&wal_input, policy, wal_batches));
        }
        let (ckpt, recovery) = bench_checkpoint_and_recovery(scale.0, scale.1, replay);
        pass.push(ckpt);
        pass.push(recovery);
        for &(streams, sites, detail) in codec_scales {
            pass.push(bench_checkpoint_codec(streams, sites, detail));
        }
        if let Some((streams, sites, detail)) = extra_scale {
            pass.push(bench_checkpoint_codec(streams, sites, detail));
        }
        if round == 0 {
            scenarios = pass;
        } else {
            for (best, next) in scenarios.iter_mut().zip(pass) {
                merge_round(best, next);
            }
        }
    }

    for s in &scenarios {
        println!("{}", s.name);
        for (k, v) in &s.metrics {
            println!("  {k:<30} {v:>12.3}");
        }
    }

    if let Some(path) = json_path {
        let json = to_json(if quick { "quick" } else { "full" }, &scenarios);
        std::fs::write(&path, json).expect("write json snapshot");
        println!("wrote {path}");
    }
}
