//! Query-engine microbenchmarks: BGP join ordering, property-path
//! closures, aggregates, and filter evaluation over the incident dataset.
//! Not tied to a paper figure; these guard the engine the experiments run
//! on.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use grdf_bench::incident_store;
use grdf_core::store::GrdfStore;
use grdf_rdf::vocab::grdf;

fn store() -> GrdfStore {
    let mut s = incident_store(200, 200, 31);
    s.materialize();
    s
}

fn bench_bgp_join(c: &mut Criterion) {
    let s = store();
    let q = format!(
        "PREFIX app: <{}>\nSELECT ?site ?i ?code WHERE {{\n  ?site a app:ChemSite ; app:hasChemicalInfo ?i .\n  ?i app:hasChemCode ?code .\n}}",
        grdf::APP_NS
    );
    c.bench_function("query/bgp_three_way_join", |b| {
        b.iter(|| black_box(s.query(&q).unwrap().select_rows().len()));
    });
}

fn bench_path_closure(c: &mut Criterion) {
    let s = store();
    // flowsInto chains: transitive closure from every stream.
    let q = format!(
        "PREFIX app: <{}>\nSELECT ?a ?b WHERE {{ ?a app:flowsInto+ ?b }}",
        grdf::APP_NS
    );
    let mut group = c.benchmark_group("query/path");
    group.sample_size(10);
    group.bench_function("flows_into_plus_unbounded", |b| {
        b.iter(|| black_box(s.query(&q).unwrap().select_rows().len()));
    });
    // Bound-subject variant (the common navigational probe).
    let one = s
        .query(&format!(
            "PREFIX app: <{}>\nSELECT ?s WHERE {{ ?s a app:Stream }} LIMIT 1",
            grdf::APP_NS
        ))
        .unwrap()
        .select_rows()[0]["s"]
        .clone();
    let q2 = format!(
        "PREFIX app: <{}>\nSELECT ?b WHERE {{ {} app:flowsInto+ ?b }}",
        grdf::APP_NS,
        one
    );
    group.bench_function("flows_into_plus_bound_subject", |b| {
        b.iter(|| black_box(s.query(&q2).unwrap().select_rows().len()));
    });
    group.finish();
}

fn bench_aggregates(c: &mut Criterion) {
    let s = store();
    let q = format!(
        "PREFIX app: <{}>\nSELECT ?t (COUNT(?s) AS ?n) WHERE {{ ?s a ?t }} GROUP BY ?t",
        grdf::APP_NS
    );
    c.bench_function("query/group_by_count", |b| {
        b.iter(|| black_box(s.query(&q).unwrap().select_rows().len()));
    });
}

fn bench_filters(c: &mut Criterion) {
    let s = store();
    let q = format!(
        "PREFIX app: <{}>\nSELECT ?s WHERE {{\n  ?s a app:ChemSite ; app:hasSiteName ?n .\n  FILTER(CONTAINS(?n, \"Energy\") || CONTAINS(?n, \"Chemical\"))\n}}",
        grdf::APP_NS
    );
    c.bench_function("query/string_filters", |b| {
        b.iter(|| black_box(s.query(&q).unwrap().select_rows().len()));
    });
    let q2 = format!(
        "PREFIX app: <{}>\nSELECT ?s WHERE {{\n  ?s a app:ChemSite .\n  FILTER(NOT EXISTS {{ ?s app:sourceState ?st }})\n}}",
        grdf::APP_NS
    );
    c.bench_function("query/not_exists", |b| {
        b.iter(|| black_box(s.query(&q2).unwrap().select_rows().len()));
    });
}

criterion_group!(
    benches,
    bench_bgp_join,
    bench_path_closure,
    bench_aggregates,
    bench_filters
);
criterion_main!(benches);
