//! E2 (§3.2 / List 1): GML ⇄ GRDF conversion throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use grdf_workload::hydrology::{generate_hydrology, HydrologyConfig};

fn bench_convert(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2/gml_convert");
    group.sample_size(20);
    for features in [200usize, 1000] {
        let fc = generate_hydrology(&HydrologyConfig {
            streams: features,
            seed: 3,
            ..Default::default()
        });
        let gml = grdf_gml::write::write_gml(&fc);
        let graph = grdf_gml::convert::gml_to_grdf(&gml).expect("convert");

        group.bench_with_input(BenchmarkId::new("gml_to_grdf", features), &gml, |b, gml| {
            b.iter(|| black_box(grdf_gml::convert::gml_to_grdf(gml).unwrap().len()));
        });
        group.bench_with_input(BenchmarkId::new("grdf_to_gml", features), &graph, |b, g| {
            b.iter(|| black_box(grdf_gml::convert::grdf_to_gml(g).len()));
        });
        group.bench_with_input(
            BenchmarkId::new("gml_parse_only", features),
            &gml,
            |b, gml| b.iter(|| black_box(grdf_gml::read::parse_gml(gml).unwrap().len())),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_convert);
criterion_main!(benches);
