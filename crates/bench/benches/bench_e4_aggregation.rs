//! E4 (Lists 6–7): heterogeneous aggregation, inference ablation, and the
//! cross-domain query.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use grdf_bench::incident_store;
use grdf_owl::reasoner::Reasoner;
use grdf_rdf::vocab::grdf;

fn cross_query() -> String {
    format!(
        "PREFIX app: <{}>\nSELECT ?site ?stream WHERE {{\n  ?site a app:ChemSite . ?stream a app:Stream .\n  FILTER(grdf:distance(?site, ?stream) < 20000)\n}}",
        grdf::APP_NS
    )
}

fn bench_merge(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4/merge_sources");
    group.sample_size(10);
    for size in [100usize, 400] {
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, &s| {
            b.iter(|| black_box(incident_store(s, s, 11).len()));
        });
    }
    group.finish();
}

fn bench_reasoning_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4/reasoning");
    group.sample_size(10);
    // Full OWL-Horst vs RDFS-only on the same merged dataset.
    for (name, reasoner) in [
        ("owl_horst", Reasoner::default()),
        ("rdfs_only", Reasoner::rdfs_only()),
    ] {
        group.bench_function(name, |b| {
            b.iter_batched(
                || incident_store(150, 150, 11),
                |mut store| black_box(store.materialize_with(&reasoner).inferred),
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

fn bench_cross_domain_query(c: &mut Criterion) {
    let mut store = incident_store(150, 150, 11);
    store.materialize();
    let q = cross_query();
    c.bench_function("e4/cross_domain_query", |b| {
        b.iter(|| black_box(store.query(&q).unwrap().select_rows().len()));
    });
}

fn bench_spatial_index_ablation(c: &mut Criterion) {
    use grdf_geometry::coord::Coord;
    use grdf_geometry::envelope::Envelope;
    let mut store = incident_store(400, 400, 11);
    store.materialize();
    let index = store.spatial_index();
    let window = Envelope::new(
        Coord::xy(2_520_000.0, 7_060_000.0),
        Coord::xy(2_560_000.0, 7_100_000.0),
    );
    // Both paths must agree before we time them.
    assert_eq!(
        index.count_in(&window),
        store.features_in_window_scan(&window).len()
    );

    let mut group = c.benchmark_group("e4/spatial_window");
    group.bench_function("rtree_query", |b| {
        b.iter(|| black_box(index.count_in(&window)));
    });
    group.bench_function("linear_scan", |b| {
        b.iter(|| black_box(store.features_in_window_scan(&window).len()));
    });
    group.bench_function("rtree_build", |b| {
        b.iter(|| black_box(store.spatial_index().len()));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_merge,
    bench_reasoning_ablation,
    bench_cross_domain_query,
    bench_spatial_index_ablation
);
criterion_main!(benches);
