//! Network-layer benchmarks for `grdf-server`: sustained mixed-tenant
//! throughput over real sockets, and a flood phase proving quota shedding
//! keeps the paced tenants' tail latency bounded.
//!
//! Hand-rolled harness (same shape as `bench_store`): `--json <path>`
//! writes the checked-in `BENCH_server.json`, `--quick` trims request
//! counts for CI smoke runs. Every request is a full TCP round trip
//! (connect → request → response → close), so connect and teardown costs
//! are in the numbers.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use grdf_feature::{encode_feature, Feature};
use grdf_obs::{Obs, WindowConfig};
use grdf_rdf::graph::Graph;
use grdf_rdf::vocab::grdf as ns;
use grdf_runtime::system_clock;
use grdf_security::gsacs::{GSacs, OntoRepository, OwlHorstEngine};
use grdf_security::policy::{Policy, PolicySet};
use grdf_security::resilience::ResilienceConfig;
use grdf_server::{build_request, GrdfServer, QuotaConfig, ServerConfig};

const TENANTS: usize = 8;

struct Scenario {
    name: String,
    metrics: Vec<(String, f64)>,
}

fn service(sites: usize) -> GSacs {
    service_with(sites, ResilienceConfig::default())
}

fn service_with(sites: usize, config: ResilienceConfig) -> GSacs {
    let mut data = Graph::new();
    for i in 0..sites {
        let mut site = Feature::new(&ns::app(&format!("site{i}")), "ChemSite");
        site.set_property("hasSiteName", format!("Site {i}").as_str());
        site.set_property("hasChemCode", format!("C{i}").as_str());
        encode_feature(&mut data, &site);
    }
    let policies = PolicySet::new(vec![Policy::permit(
        &ns::sec("E1"),
        &ns::sec("Emergency"),
        &ns::app("ChemSite"),
    )]);
    GSacs::with_resilience(
        OntoRepository::new(),
        policies,
        Box::<OwlHorstEngine>::default(),
        data,
        32,
        config,
    )
}

fn requests() -> Vec<Vec<u8>> {
    let select = format!(
        "PREFIX app: <{}>\nSELECT ?n WHERE {{ ?s app:hasSiteName ?n }}",
        ns::APP_NS
    );
    let ask = "ASK { ?s a ?t }".to_string();
    [select, ask]
        .iter()
        .map(|q| build_request("/query", &[("x-role", &ns::sec("Emergency"))], q.as_bytes()))
        .collect()
}

fn request_for_tenant(template: &[u8], tenant: &str) -> Vec<u8> {
    // Rebuild with the tenant header by splicing it after the request line.
    let pos = template
        .windows(2)
        .position(|w| w == b"\r\n")
        .map_or(0, |p| p + 2);
    let mut out = template[..pos].to_vec();
    out.extend_from_slice(format!("x-tenant: {tenant}\r\n").as_bytes());
    out.extend_from_slice(&template[pos..]);
    out
}

/// One whole exchange; returns (status, latency).
fn exchange(addr: SocketAddr, wire: &[u8]) -> (u16, Duration) {
    let start = Instant::now();
    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s.set_nodelay(true).unwrap();
    s.write_all(wire).expect("write");
    let mut raw = Vec::new();
    let _ = s.read_to_end(&mut raw);
    let status = String::from_utf8_lossy(&raw)
        .split(' ')
        .nth(1)
        .and_then(|c| c.parse().ok())
        .unwrap_or(0);
    (status, start.elapsed())
}

fn percentile(sorted: &[Duration], p: usize) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = (sorted.len() * p).div_ceil(100).min(sorted.len()) - 1;
    sorted[idx].as_secs_f64() * 1e3
}

/// Closed-loop mixed-tenant drive against a running server; returns
/// (elapsed seconds, sorted latencies).
fn drive_mixed(addr: SocketAddr, templates: &[Vec<u8>], per_tenant: usize) -> (f64, Vec<Duration>) {
    let start = Instant::now();
    let latencies: Vec<Duration> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..TENANTS)
            .map(|t| {
                scope.spawn(move || {
                    let mut lat = Vec::with_capacity(per_tenant);
                    for i in 0..per_tenant {
                        let wire = request_for_tenant(
                            &templates[(t + i) % templates.len()],
                            &format!("t{t}"),
                        );
                        let (status, d) = exchange(addr, &wire);
                        assert_eq!(status, 200, "tenant t{t} request {i}");
                        lat.push(d);
                    }
                    lat
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });
    let secs = start.elapsed().as_secs_f64();
    let mut sorted = latencies;
    sorted.sort();
    (secs, sorted)
}

/// Sustained mixed workload: 8 tenants, closed loop, no quotas — the
/// server's raw capacity with full per-request accounting on.
fn bench_mixed(per_tenant: usize) -> Scenario {
    let cfg = ServerConfig {
        workers: 4,
        max_connections: 128,
        ..ServerConfig::default()
    };
    let server = GrdfServer::bind("127.0.0.1:0", service(50), cfg).expect("bind");
    let addr = server.local_addr();
    let templates = requests();

    let (secs, sorted) = drive_mixed(addr, &templates, per_tenant);
    let total = sorted.len();
    let (accepted, finished) = server.shutdown();
    assert_eq!(accepted, finished, "drain lost connections under load");

    Scenario {
        name: format!("mixed_{TENANTS}_tenants"),
        metrics: vec![
            ("tenants".to_string(), TENANTS as f64),
            ("requests".to_string(), total as f64),
            ("secs".to_string(), secs),
            ("qps".to_string(), total as f64 / secs.max(1e-9)),
            ("p50_ms".to_string(), percentile(&sorted, 50)),
            ("p99_ms".to_string(), percentile(&sorted, 99)),
            (
                "max_ms".to_string(),
                sorted.last().copied().unwrap_or_default().as_secs_f64() * 1e3,
            ),
        ],
    }
}

/// Flood phase: one tenant hammers a quota-limited server while the other
/// seven pace themselves inside the quota. The numbers to watch: the
/// flooder's shed ratio, and the paced tenants' p99 staying flat.
fn bench_flood(paced_per_tenant: usize, flood_requests: usize) -> Scenario {
    let cfg = ServerConfig {
        workers: 4,
        max_connections: 128,
        quota: QuotaConfig {
            rate_per_sec: 100.0,
            burst: 10.0,
        },
        ..ServerConfig::default()
    };
    let server = GrdfServer::bind("127.0.0.1:0", service(50), cfg).expect("bind");
    let addr = server.local_addr();
    let templates = requests();

    let (shed, flood_ok, paced_latencies) = std::thread::scope(|scope| {
        let flooder = {
            let templates = &templates;
            scope.spawn(move || {
                let mut ok = 0u64;
                let mut shed = 0u64;
                for i in 0..flood_requests {
                    let wire = request_for_tenant(&templates[i % templates.len()], "noisy");
                    match exchange(addr, &wire) {
                        (200, _) => ok += 1,
                        (429, _) => shed += 1,
                        (status, _) => panic!("unexpected status {status}"),
                    }
                }
                (ok, shed)
            })
        };
        let paced: Vec<_> = (0..TENANTS - 1)
            .map(|t| {
                let templates = &templates;
                scope.spawn(move || {
                    // Seven tenants at ~10 req/s each: 70/s against a
                    // 100/s-per-tenant quota — never shed.
                    let mut lat = Vec::with_capacity(paced_per_tenant);
                    for i in 0..paced_per_tenant {
                        let wire = request_for_tenant(
                            &templates[(t + i) % templates.len()],
                            &format!("calm{t}"),
                        );
                        let (status, d) = exchange(addr, &wire);
                        assert_eq!(status, 200, "paced tenant calm{t} was shed");
                        lat.push(d);
                        std::thread::sleep(Duration::from_millis(100));
                    }
                    lat
                })
            })
            .collect();
        let (ok, shed) = flooder.join().unwrap();
        let latencies: Vec<Duration> = paced.into_iter().flat_map(|h| h.join().unwrap()).collect();
        (shed, ok, latencies)
    });
    assert!(shed > 0, "the flood must provoke shedding to mean anything");

    let mut sorted = paced_latencies;
    sorted.sort();
    let snap = server.obs().registry().snapshot();
    let quota_sheds = snap.counters.get("server.shed.quota").copied().unwrap_or(0);
    server.shutdown();

    Scenario {
        name: "flood_one_tenant".to_string(),
        metrics: vec![
            ("flood_requests".to_string(), flood_requests as f64),
            ("flood_admitted".to_string(), flood_ok as f64),
            ("flood_shed".to_string(), shed as f64),
            (
                "flood_shed_ratio".to_string(),
                shed as f64 / (flood_requests as f64).max(1.0),
            ),
            ("paced_requests".to_string(), sorted.len() as f64),
            ("paced_p50_ms".to_string(), percentile(&sorted, 50)),
            ("paced_p99_ms".to_string(), percentile(&sorted, 99)),
            ("server_shed_quota".to_string(), quota_sheds as f64),
        ],
    }
}

/// One GET exchange returning the response body (for `/metrics` scrapes).
fn scrape(addr: SocketAddr, path: &str) -> String {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s.write_all(&build_request(path, &[], b"")).expect("write");
    let mut raw = Vec::new();
    let _ = s.read_to_end(&mut raw);
    let text = String::from_utf8_lossy(&raw);
    text.split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default()
}

/// Observability overhead: the same mixed closed loop against the seed
/// configuration (plain registry) and against the full stack — windowed
/// dual-ring store plus the 10 ms sampling profiler. Rounds alternate
/// between the two servers and each side keeps its best round, so
/// scheduler noise hits both equally. Optionally writes the obs-on
/// server's scraped `/metrics` text to `metrics_sample` for the CI
/// artifact + conformance gate.
fn bench_obs_overhead(per_tenant: usize, metrics_sample: Option<&str>) -> Scenario {
    let cfg = || ServerConfig {
        workers: 4,
        max_connections: 128,
        ..ServerConfig::default()
    };
    let full_obs = Obs::new()
        .with_windows(WindowConfig::default(), system_clock())
        .with_profiler(Duration::from_millis(10), system_clock());
    let server_off = GrdfServer::bind("127.0.0.1:0", service(50), cfg()).expect("bind");
    let server_on = GrdfServer::bind(
        "127.0.0.1:0",
        service_with(
            50,
            ResilienceConfig {
                obs: full_obs,
                ..ResilienceConfig::default()
            },
        ),
        cfg(),
    )
    .expect("bind");
    let templates = requests();

    let mut qps_off = 0.0f64;
    let mut qps_on = 0.0f64;
    for _round in 0..2 {
        let (secs, lat) = drive_mixed(server_off.local_addr(), &templates, per_tenant);
        qps_off = qps_off.max(lat.len() as f64 / secs.max(1e-9));
        let (secs, lat) = drive_mixed(server_on.local_addr(), &templates, per_tenant);
        qps_on = qps_on.max(lat.len() as f64 / secs.max(1e-9));
    }
    if let Some(path) = metrics_sample {
        let body = scrape(server_on.local_addr(), "/metrics");
        std::fs::write(path, &body).expect("write metrics sample");
        println!("wrote {path} ({} bytes)", body.len());
    }
    server_off.shutdown();
    server_on.shutdown();

    Scenario {
        name: "obs_overhead".to_string(),
        metrics: vec![
            (
                "requests_per_side".to_string(),
                (TENANTS * per_tenant * 2) as f64,
            ),
            ("qps_obs_off".to_string(), qps_off),
            ("qps_obs_on".to_string(), qps_on),
            (
                "overhead_pct".to_string(),
                (1.0 - qps_on / qps_off.max(1e-9)) * 100.0,
            ),
        ],
    }
}

fn to_json(mode: &str, scenarios: &[Scenario]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"server\",\n");
    out.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    out.push_str("  \"scenarios\": [\n");
    for (i, s) in scenarios.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"name\": \"{}\"", s.name));
        for (k, v) in &s.metrics {
            out.push_str(&format!(",\n      \"{k}\": {v:.3}"));
        }
        out.push_str(&format!(
            "\n    }}{}\n",
            if i + 1 < scenarios.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args
        .iter()
        .any(|a| a.starts_with("--test") || a == "--list")
    {
        println!("bench_server: bench-only binary, skipped under test");
        return;
    }
    let quick = args.iter().any(|a| a == "--quick");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .map(|i| args.get(i + 1).expect("--json needs a path").clone());
    let metrics_sample = args.iter().position(|a| a == "--metrics-sample").map(|i| {
        args.get(i + 1)
            .expect("--metrics-sample needs a path")
            .clone()
    });
    let assert_overhead: Option<f64> =
        args.iter().position(|a| a == "--assert-overhead").map(|i| {
            args.get(i + 1)
                .expect("--assert-overhead needs a percentage")
                .parse()
                .expect("--assert-overhead takes a number")
        });

    let (per_tenant, paced, flood) = if quick { (30, 5, 100) } else { (200, 20, 400) };

    let scenarios = vec![
        bench_mixed(per_tenant),
        bench_flood(paced, flood),
        bench_obs_overhead(per_tenant, metrics_sample.as_deref()),
    ];

    for s in &scenarios {
        println!("{}", s.name);
        for (k, v) in &s.metrics {
            println!("  {k:<30} {v:>12.3}");
        }
    }

    if let Some(path) = json_path {
        let json = to_json(if quick { "quick" } else { "full" }, &scenarios);
        std::fs::write(&path, json).expect("write json snapshot");
        println!("wrote {path}");
    }

    if let Some(limit) = assert_overhead {
        let measured = scenarios
            .iter()
            .find(|s| s.name == "obs_overhead")
            .and_then(|s| s.metrics.iter().find(|(k, _)| k == "overhead_pct"))
            .map(|(_, v)| *v)
            .expect("obs_overhead scenario ran");
        if measured > limit {
            eprintln!("obs overhead {measured:.2}% exceeds the {limit:.2}% budget");
            std::process::exit(1);
        }
        println!("obs overhead {measured:.2}% within the {limit:.2}% budget");
    }
}
