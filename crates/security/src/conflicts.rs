//! Policy conflict detection and combining algorithms.
//!
//! Paper §7: "In the case of multiple geospatial data servers, each node
//! may enforce its own set of policies … If the combination of policies
//! from participating systems is inconsistent, additional rules may be
//! needed to resolve conflicts." This module makes that concrete:
//! [`detect_conflicts`] finds the inconsistencies in a combined
//! [`PolicySet`], and [`CombiningAlgorithm`] supplies the "additional
//! rules" that resolve them deterministically.

use std::fmt;

use grdf_owl::hierarchy::Hierarchy;
use grdf_rdf::diagnostic::{Diagnostic, LintCode};
use grdf_rdf::graph::Graph;
use grdf_rdf::term::Term;

use crate::policy::{Condition, Decision, Policy, PolicySet};

/// How Permit/Deny collisions are resolved during evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CombiningAlgorithm {
    /// Any applicable Deny wins (the XACML default; what
    /// [`PolicySet::evaluate`] implements).
    #[default]
    DenyOverrides,
    /// Any applicable Permit wins.
    PermitOverrides,
    /// The policy whose resource designation is most specific wins: an
    /// instance-level policy beats a class-level one; a subclass-level
    /// policy beats a superclass-level one. Ties fall back to
    /// deny-overrides.
    MostSpecific,
}

/// A detected inconsistency between two policies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PolicyConflict {
    /// The same role gets Permit from one policy and Deny from another
    /// over overlapping resources (identical, or related by subclassing).
    PermitDenyOverlap {
        /// The permitting policy's id.
        permit: String,
        /// The denying policy's id.
        deny: String,
        /// The role both apply to.
        role: String,
        /// Description of the overlap (e.g. the shared resource).
        overlap: String,
    },
    /// Two Permit policies for the same role/resource disagree about the
    /// property conditions (one unconditional, one restricted): the
    /// restriction is unenforceable because the broader grant subsumes it.
    ShadowedRestriction {
        /// The broad (unconditional) policy's id.
        broad: String,
        /// The restricted policy's id, whose conditions have no effect.
        restricted: String,
        /// The role both apply to.
        role: String,
    },
    /// Two policies reference the same id with different content (merge
    /// artifact of combining clearinghouse policy sets).
    DuplicateId {
        /// The shared policy id.
        id: String,
    },
}

impl fmt::Display for PolicyConflict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolicyConflict::PermitDenyOverlap {
                permit,
                deny,
                role,
                overlap,
            } => write!(
                f,
                "role {role}: permit {permit} and deny {deny} overlap on {overlap}"
            ),
            PolicyConflict::ShadowedRestriction {
                broad,
                restricted,
                role,
            } => write!(
                f,
                "role {role}: unconditional {broad} shadows the property conditions of {restricted}"
            ),
            PolicyConflict::DuplicateId { id } => {
                write!(f, "two distinct policies share the id {id}")
            }
        }
    }
}

/// Detect conflicts in a combined policy set, using `data` for the class
/// hierarchy (materialize it first for full subclass coverage).
///
/// Designator overlap (equal, one a subclass of the other, or an instance
/// of the other) is answered by [`crate::labels::DesignatorIndex`], which
/// walks the hierarchy once per distinct designator instead of once per
/// policy pair.
pub fn detect_conflicts(data: &Graph, policies: &PolicySet) -> Vec<PolicyConflict> {
    let mut out = Vec::new();
    let ps = &policies.policies;
    let idx = crate::labels::DesignatorIndex::new(data, policies);

    for (i, a) in ps.iter().enumerate() {
        for b in &ps[i + 1..] {
            if a.id == b.id && a != b {
                out.push(PolicyConflict::DuplicateId { id: a.id.clone() });
                continue;
            }
            if a.role != b.role || a.action != b.action {
                continue;
            }
            if !idx.overlap(&a.resource, &b.resource) {
                continue;
            }
            match (a.decision, b.decision) {
                (Decision::Permit, Decision::Deny) => {
                    out.push(PolicyConflict::PermitDenyOverlap {
                        permit: a.id.clone(),
                        deny: b.id.clone(),
                        role: a.role.clone(),
                        overlap: overlap_desc(a, b),
                    });
                }
                (Decision::Deny, Decision::Permit) => {
                    out.push(PolicyConflict::PermitDenyOverlap {
                        permit: b.id.clone(),
                        deny: a.id.clone(),
                        role: a.role.clone(),
                        overlap: overlap_desc(a, b),
                    });
                }
                (Decision::Permit, Decision::Permit) => {
                    // Unconditional + conditioned on the SAME resource: the
                    // condition is dead letter.
                    if a.resource == b.resource {
                        match (a.conditions.is_empty(), b.conditions.is_empty()) {
                            (true, false) => out.push(PolicyConflict::ShadowedRestriction {
                                broad: a.id.clone(),
                                restricted: b.id.clone(),
                                role: a.role.clone(),
                            }),
                            (false, true) => out.push(PolicyConflict::ShadowedRestriction {
                                broad: b.id.clone(),
                                restricted: a.id.clone(),
                                role: a.role.clone(),
                            }),
                            _ => {}
                        }
                    }
                }
                (Decision::Deny, Decision::Deny) => {}
            }
        }
    }
    out
}

fn overlap_desc(a: &Policy, b: &Policy) -> String {
    if a.resource == b.resource {
        a.resource.clone()
    } else {
        format!("{} / {}", a.resource, b.resource)
    }
}

/// Resolve a Permit/Deny collision per the chosen algorithm; returns the
/// decision that should stand for probes in the overlap.
pub fn resolve(
    data: &Graph,
    algorithm: CombiningAlgorithm,
    permit: &Policy,
    deny: &Policy,
) -> Decision {
    match algorithm {
        CombiningAlgorithm::DenyOverrides => Decision::Deny,
        CombiningAlgorithm::PermitOverrides => Decision::Permit,
        CombiningAlgorithm::MostSpecific => {
            match specificity(data, &permit.resource).cmp(&specificity(data, &deny.resource)) {
                std::cmp::Ordering::Greater => Decision::Permit,
                std::cmp::Ordering::Less => Decision::Deny,
                std::cmp::Ordering::Equal => Decision::Deny, // tie → deny
            }
        }
    }
}

/// Resource specificity: instances (things with a type) rank above
/// classes; deeper classes rank above shallower ones.
fn specificity(data: &Graph, resource: &str) -> usize {
    let h = Hierarchy::new(data);
    let t = Term::iri(resource);
    if !h.types_of(&t).is_empty() {
        return 1000; // an individual
    }
    h.depth(&t) + 1
}

/// A policy set after conflict resolution: shadowed restrictions removed
/// (keeping the restrictive version, per least-privilege) and losing sides
/// of Permit/Deny overlaps dropped.
pub fn resolved_policy_set(
    data: &Graph,
    policies: &PolicySet,
    algorithm: CombiningAlgorithm,
) -> PolicySet {
    let conflicts = detect_conflicts(data, policies);
    let mut dropped: Vec<String> = Vec::new();
    for c in &conflicts {
        match c {
            PolicyConflict::PermitDenyOverlap { permit, deny, .. } => {
                let p = policies.policies.iter().find(|p| &p.id == permit);
                let d = policies.policies.iter().find(|p| &p.id == deny);
                if let (Some(p), Some(d)) = (p, d) {
                    match resolve(data, algorithm, p, d) {
                        Decision::Permit => dropped.push(deny.clone()),
                        Decision::Deny => dropped.push(permit.clone()),
                    }
                }
            }
            PolicyConflict::ShadowedRestriction { broad, .. } => {
                // Least privilege: drop the broad grant so the property
                // conditions take effect.
                dropped.push(broad.clone());
            }
            PolicyConflict::DuplicateId { .. } => {}
        }
    }
    PolicySet::new(
        policies
            .policies
            .iter()
            .filter(|p| !dropped.contains(&p.id))
            .cloned()
            .collect(),
    )
}

/// Structural sanity of a policy set independent of data, as typed
/// diagnostics (`S005 empty-designator`): empty roles, empty resources,
/// and property conditions that grant nothing.
pub fn structural_diagnostics(policies: &PolicySet) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for p in &policies.policies {
        let subject = Term::iri(&p.id);
        if p.role.is_empty() {
            out.push(
                Diagnostic::new(LintCode::EmptyDesignator, subject.clone(), "empty role")
                    .with_suggestion("set the policy's role IRI"),
            );
        }
        if p.resource.is_empty() {
            out.push(
                Diagnostic::new(LintCode::EmptyDesignator, subject.clone(), "empty resource")
                    .with_suggestion("set the policy's resource IRI"),
            );
        }
        for c in &p.conditions {
            let Condition::PropertyAccess(props) = c;
            if props.is_empty() {
                out.push(
                    Diagnostic::new(
                        LintCode::EmptyDesignator,
                        subject.clone(),
                        "property condition grants nothing",
                    )
                    .with_suggestion("list at least one property IRI, or drop the condition"),
                );
            }
        }
    }
    out
}

/// Convert one [`PolicyConflict`] into its typed [`Diagnostic`]:
/// Permit/Deny overlaps are `S001 contradictory-rule`, shadowed
/// restrictions `S003 shadowed-rule`, duplicate ids `S004
/// duplicate-policy-id`.
pub fn conflict_to_diagnostic(c: &PolicyConflict) -> Diagnostic {
    match c {
        PolicyConflict::PermitDenyOverlap {
            permit,
            deny,
            role,
            overlap,
        } => Diagnostic::new(
            LintCode::ContradictoryRule,
            Term::iri(permit),
            format!("role {role}: permit contradicts deny {deny} on {overlap}"),
        )
        .with_related(vec![Term::iri(deny), Term::iri(role)])
        .with_suggestion("pick a combining algorithm or drop one of the two rules"),
        PolicyConflict::ShadowedRestriction {
            broad,
            restricted,
            role,
        } => Diagnostic::new(
            LintCode::ShadowedRule,
            Term::iri(restricted),
            format!("role {role}: property conditions are dead letter under unconditional {broad}"),
        )
        .with_related(vec![Term::iri(broad), Term::iri(role)])
        .with_suggestion("drop the broad grant or merge its scope into the restricted rule"),
        PolicyConflict::DuplicateId { id } => Diagnostic::new(
            LintCode::DuplicatePolicyId,
            Term::iri(id),
            "two distinct policies share this id",
        )
        .with_suggestion("rename one policy so ids stay unique across merged sets"),
    }
}

/// Full typed policy analysis: structural checks plus hierarchy-aware
/// conflict detection over `data`. This is the policy pass G-SACS runs at
/// `init`/`update` time and `grdf-lint` builds on.
pub fn diagnostics(data: &Graph, policies: &PolicySet) -> Vec<Diagnostic> {
    let mut out = structural_diagnostics(policies);
    out.extend(
        detect_conflicts(data, policies)
            .iter()
            .map(conflict_to_diagnostic),
    );
    out
}

/// Quick structural sanity of a policy set independent of data: empty
/// property lists, empty roles, and policies with no resource.
///
/// Compatibility wrapper over [`structural_diagnostics`]; new code should
/// use the typed API.
pub fn lint(policies: &PolicySet) -> Vec<String> {
    structural_diagnostics(policies)
        .into_iter()
        .map(|d| format!("{}: {}", d.subject.as_iri().unwrap_or_default(), d.message))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Action;
    use grdf_rdf::vocab::{grdf, rdf, rdfs};

    fn data_with_hierarchy() -> Graph {
        let mut g = Graph::new();
        g.add(
            Term::iri(&grdf::app("Refinery")),
            Term::iri(rdfs::SUB_CLASS_OF),
            Term::iri(&grdf::app("ChemSite")),
        );
        g.add(
            Term::iri(&grdf::app("plant1")),
            Term::iri(rdf::TYPE),
            Term::iri(&grdf::app("Refinery")),
        );
        g
    }

    #[test]
    fn clean_sets_have_no_conflicts() {
        let data = data_with_hierarchy();
        let ps = PolicySet::new(vec![
            Policy::permit("urn:p1", "urn:roleA", &grdf::app("ChemSite")),
            Policy::permit("urn:p2", "urn:roleB", &grdf::app("ChemSite")),
            Policy::deny("urn:p3", "urn:roleA", &grdf::app("Stream")),
        ]);
        assert!(detect_conflicts(&data, &ps).is_empty());
    }

    #[test]
    fn permit_deny_overlap_on_same_class() {
        let data = data_with_hierarchy();
        let ps = PolicySet::new(vec![
            Policy::permit("urn:permit", "urn:r", &grdf::app("ChemSite")),
            Policy::deny("urn:deny", "urn:r", &grdf::app("ChemSite")),
        ]);
        let conflicts = detect_conflicts(&data, &ps);
        assert!(matches!(
            conflicts.as_slice(),
            [PolicyConflict::PermitDenyOverlap { .. }]
        ));
    }

    #[test]
    fn subclass_overlap_detected() {
        // Two clearinghouses: one permits ChemSite, one denies Refinery ⊑
        // ChemSite — an overlap only visible through the hierarchy.
        let data = data_with_hierarchy();
        let ps = PolicySet::new(vec![
            Policy::permit("urn:permit", "urn:r", &grdf::app("ChemSite")),
            Policy::deny("urn:deny", "urn:r", &grdf::app("Refinery")),
        ]);
        assert_eq!(detect_conflicts(&data, &ps).len(), 1);
    }

    #[test]
    fn instance_class_overlap_detected() {
        let data = data_with_hierarchy();
        let ps = PolicySet::new(vec![
            Policy::permit("urn:permit", "urn:r", &grdf::app("plant1")),
            Policy::deny("urn:deny", "urn:r", &grdf::app("ChemSite")),
        ]);
        assert_eq!(detect_conflicts(&data, &ps).len(), 1);
    }

    #[test]
    fn different_roles_or_actions_do_not_conflict() {
        let data = data_with_hierarchy();
        let mut edit = Policy::deny("urn:deny", "urn:r", &grdf::app("ChemSite"));
        edit.action = Action::Edit;
        let ps = PolicySet::new(vec![
            Policy::permit("urn:permit", "urn:r", &grdf::app("ChemSite")),
            edit,
            Policy::deny("urn:other", "urn:r2", &grdf::app("ChemSite")),
        ]);
        assert!(detect_conflicts(&data, &ps).is_empty());
    }

    #[test]
    fn shadowed_restriction_detected_and_resolved_least_privilege() {
        let data = data_with_hierarchy();
        let ps = PolicySet::new(vec![
            Policy::permit("urn:broad", "urn:r", &grdf::app("ChemSite")),
            Policy::permit_properties(
                "urn:narrow",
                "urn:r",
                &grdf::app("ChemSite"),
                &[&grdf::iri("isBoundedBy")],
            ),
        ]);
        let conflicts = detect_conflicts(&data, &ps);
        assert!(matches!(
            conflicts.as_slice(),
            [PolicyConflict::ShadowedRestriction { broad, .. }] if broad == "urn:broad"
        ));
        let resolved = resolved_policy_set(&data, &ps, CombiningAlgorithm::DenyOverrides);
        assert_eq!(resolved.policies.len(), 1);
        assert_eq!(resolved.policies[0].id, "urn:narrow");
        // The resolved set now actually restricts.
        let probe = Term::iri(&grdf::app("plant1"));
        let mut data2 = data.clone();
        grdf_owl::reasoner::Reasoner::default().materialize(&mut data2);
        assert_eq!(
            resolved.evaluate(
                &data2,
                "urn:r",
                &probe,
                &grdf::app("hasChemCode"),
                Action::View
            ),
            crate::policy::Access::Denied
        );
    }

    #[test]
    fn combining_algorithms_differ() {
        let data = data_with_hierarchy();
        let permit_instance = Policy::permit("urn:pi", "urn:r", &grdf::app("plant1"));
        let deny_class = Policy::deny("urn:dc", "urn:r", &grdf::app("ChemSite"));
        assert_eq!(
            resolve(
                &data,
                CombiningAlgorithm::DenyOverrides,
                &permit_instance,
                &deny_class
            ),
            Decision::Deny
        );
        assert_eq!(
            resolve(
                &data,
                CombiningAlgorithm::PermitOverrides,
                &permit_instance,
                &deny_class
            ),
            Decision::Permit
        );
        // Most-specific: the instance-level permit beats the class deny.
        assert_eq!(
            resolve(
                &data,
                CombiningAlgorithm::MostSpecific,
                &permit_instance,
                &deny_class
            ),
            Decision::Permit
        );
        // …but a subclass deny beats a superclass permit.
        let permit_super = Policy::permit("urn:ps", "urn:r", &grdf::app("ChemSite"));
        let deny_sub = Policy::deny("urn:ds", "urn:r", &grdf::app("Refinery"));
        assert_eq!(
            resolve(
                &data,
                CombiningAlgorithm::MostSpecific,
                &permit_super,
                &deny_sub
            ),
            Decision::Deny
        );
    }

    #[test]
    fn resolved_set_respects_permit_overrides() {
        let data = data_with_hierarchy();
        let ps = PolicySet::new(vec![
            Policy::permit("urn:permit", "urn:r", &grdf::app("ChemSite")),
            Policy::deny("urn:deny", "urn:r", &grdf::app("ChemSite")),
        ]);
        let resolved = resolved_policy_set(&data, &ps, CombiningAlgorithm::PermitOverrides);
        assert_eq!(resolved.policies.len(), 1);
        assert_eq!(resolved.policies[0].id, "urn:permit");
    }

    #[test]
    fn duplicate_ids_flagged() {
        let data = Graph::new();
        let ps = PolicySet::new(vec![
            Policy::permit("urn:same", "urn:r", &grdf::app("A")),
            Policy::permit("urn:same", "urn:r2", &grdf::app("B")),
        ]);
        assert!(matches!(
            detect_conflicts(&data, &ps).as_slice(),
            [PolicyConflict::DuplicateId { .. }]
        ));
    }

    #[test]
    fn lint_finds_structural_problems() {
        let ps = PolicySet::new(vec![
            Policy::permit("urn:ok", "urn:r", &grdf::app("A")),
            Policy {
                role: String::new(),
                ..Policy::permit("urn:bad1", "x", "urn:res")
            },
            Policy {
                conditions: vec![Condition::PropertyAccess(vec![])],
                ..Policy::permit("urn:bad2", "urn:r", "urn:res")
            },
        ]);
        let problems = lint(&ps);
        assert_eq!(problems.len(), 2);
    }

    #[test]
    fn typed_diagnostics_cover_structural_and_conflicts() {
        use grdf_rdf::diagnostic::LintCode;
        let data = data_with_hierarchy();
        let ps = PolicySet::new(vec![
            Policy::permit("urn:permit", "urn:r", &grdf::app("ChemSite")),
            Policy::deny("urn:deny", "urn:r", &grdf::app("Refinery")),
            Policy {
                role: String::new(),
                ..Policy::permit("urn:bad", "x", "urn:res")
            },
        ]);
        let ds = diagnostics(&data, &ps);
        assert!(ds.iter().any(|d| d.code == LintCode::ContradictoryRule));
        assert!(ds.iter().any(|d| d.code == LintCode::EmptyDesignator));
        // The wrapper agrees with the structural subset.
        assert_eq!(lint(&ps), vec!["urn:bad: empty role".to_string()]);
    }

    #[test]
    fn conflict_display() {
        let c = PolicyConflict::PermitDenyOverlap {
            permit: "urn:p".into(),
            deny: "urn:d".into(),
            role: "urn:r".into(),
            overlap: "urn:x".into(),
        };
        assert!(c.to_string().contains("urn:p"));
    }
}
