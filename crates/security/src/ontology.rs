//! The `SecOnto` security ontology: the OWL vocabulary List 8's policies
//! are written in.

use grdf_owl::model::OntologyBuilder;
use grdf_rdf::graph::Graph;
use grdf_rdf::vocab::grdf;

/// Build the security ontology graph (classes: `Subject`, `Role`,
/// `Policy`, `Action`, `ConditionValue`, `PolicyDecision`, `Resource`;
/// the actions `View`/`Edit`/`Delete` and decisions `Permit`/`Deny` as
/// individuals; and the linking properties used by List 8).
pub fn security_ontology() -> Graph {
    let mut b = OntologyBuilder::new(grdf::SEC_NS);
    b.class("Subject", None);
    b.comment("Subject", "A requesting principal (user or group).");
    b.class("Role", Some("Subject"));
    b.comment(
        "Role",
        "A named role grouping subjects, e.g. 'main repair'.",
    );
    b.class("Policy", None);
    b.comment("Policy", "An access control rule over resources.");
    b.class("Action", None);
    b.class("ConditionValue", None);
    b.comment(
        "ConditionValue",
        "A condition limiting a policy, e.g. property-level access (List 8).",
    );
    b.class("PolicyDecision", None);
    b.class("Resource", None);

    b.object_property("hasPolicy", Some("Subject"), Some("Policy"));
    b.object_property("hasAction", Some("Policy"), Some("Action"));
    b.object_property("hasCondition", Some("Policy"), Some("ConditionValue"));
    b.object_property("hasPolicyDecision", Some("Policy"), Some("PolicyDecision"));
    b.object_property("hasResource", Some("Policy"), Some("Resource"));
    b.object_property("condValDefinition", Some("ConditionValue"), None);
    b.object_property("hasPropertyAccess", Some("ConditionValue"), None);
    b.object_property("hasSpatialExtent", Some("ConditionValue"), None);
    b.object_property("subRoleOf", Some("Role"), Some("Role"));

    // Individuals used by every policy document.
    use grdf_rdf::term::Term;
    use grdf_rdf::vocab::rdf;
    let mut g = b.into_graph();
    for (name, class) in [
        ("View", "Action"),
        ("Edit", "Action"),
        ("Delete", "Action"),
        ("Permit", "PolicyDecision"),
        ("Deny", "PolicyDecision"),
    ] {
        g.add(
            Term::iri(&grdf::sec(name)),
            Term::iri(rdf::TYPE),
            Term::iri(&grdf::sec(class)),
        );
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use grdf_owl::consistency::check_consistency;
    use grdf_owl::hierarchy::Hierarchy;
    use grdf_rdf::term::Term;
    use grdf_rdf::vocab::rdf;

    #[test]
    fn ontology_declares_expected_classes() {
        let g = security_ontology();
        let h = Hierarchy::new(&g);
        let classes = h.classes();
        for name in [
            "Subject",
            "Role",
            "Policy",
            "Action",
            "ConditionValue",
            "PolicyDecision",
        ] {
            assert!(
                classes.contains(&Term::iri(&grdf::sec(name))),
                "missing {name}"
            );
        }
        // Role is a Subject.
        assert!(h.is_subclass_of(
            &Term::iri(&grdf::sec("Role")),
            &Term::iri(&grdf::sec("Subject"))
        ));
    }

    #[test]
    fn actions_and_decisions_are_individuals() {
        let g = security_ontology();
        assert!(g.has(
            &Term::iri(&grdf::sec("View")),
            &Term::iri(rdf::TYPE),
            &Term::iri(&grdf::sec("Action"))
        ));
        assert!(g.has(
            &Term::iri(&grdf::sec("Permit")),
            &Term::iri(rdf::TYPE),
            &Term::iri(&grdf::sec("PolicyDecision"))
        ));
    }

    #[test]
    fn ontology_is_consistent() {
        let mut g = security_ontology();
        grdf_owl::reasoner::Reasoner::default().materialize(&mut g);
        assert!(check_consistency(&g).is_empty());
    }
}
