//! Policies: native structures, the List 8 RDF encoding, and the
//! semantics-aware evaluator.

use grdf_obs::TraceId;
use grdf_owl::hierarchy::Hierarchy;
use grdf_rdf::graph::Graph;
use grdf_rdf::term::Term;
use grdf_rdf::vocab::{grdf, rdf, rdfs};

/// The action a policy governs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Action {
    /// Read access.
    View,
    /// Modification.
    Edit,
    /// Removal.
    Delete,
}

impl Action {
    /// IRI of the action individual.
    pub fn iri(self) -> String {
        grdf::sec(match self {
            Action::View => "View",
            Action::Edit => "Edit",
            Action::Delete => "Delete",
        })
    }

    fn from_iri(iri: &str) -> Option<Action> {
        match iri.strip_prefix(grdf::SEC_NS)? {
            "View" => Some(Action::View),
            "Edit" => Some(Action::Edit),
            "Delete" => Some(Action::Delete),
            _ => None,
        }
    }
}

/// The effect of a policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Access granted.
    Permit,
    /// Access refused.
    Deny,
}

impl Decision {
    /// IRI of the decision individual.
    pub fn iri(self) -> String {
        grdf::sec(match self {
            Decision::Permit => "Permit",
            Decision::Deny => "Deny",
        })
    }

    fn from_iri(iri: &str) -> Option<Decision> {
        match iri.strip_prefix(grdf::SEC_NS)? {
            "Permit" => Some(Decision::Permit),
            "Deny" => Some(Decision::Deny),
            _ => None,
        }
    }
}

/// A condition restricting what a Permit exposes — the paper's List 8
/// `ConditionValue` with `hasPropertyAccess`: "only the geographic extent
/// of the sites would be viewable to this group".
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Condition {
    /// Only the listed property IRIs are accessible; every other property
    /// of the resource is suppressed. Property matching is semantics-aware:
    /// a listed property also grants its `rdfs:subPropertyOf` descendants.
    PropertyAccess(Vec<String>),
}

/// One policy: a role's conditional grant over a resource class or
/// instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Policy {
    /// Policy IRI.
    pub id: String,
    /// The role (subject) IRI it applies to.
    pub role: String,
    /// Governed action.
    pub action: Action,
    /// Permit or Deny.
    pub decision: Decision,
    /// The protected resource: a class IRI (covers all members, including
    /// inferred ones) or an instance IRI.
    pub resource: String,
    /// Conditions (conjunctive).
    pub conditions: Vec<Condition>,
}

impl Policy {
    /// An unconditional permit for a role over a resource class.
    pub fn permit(id: &str, role: &str, resource: &str) -> Policy {
        Policy {
            id: id.to_string(),
            role: role.to_string(),
            action: Action::View,
            decision: Decision::Permit,
            resource: resource.to_string(),
            conditions: Vec::new(),
        }
    }

    /// A permit restricted to the given properties (fine-grained grant).
    pub fn permit_properties(id: &str, role: &str, resource: &str, props: &[&str]) -> Policy {
        Policy {
            conditions: vec![Condition::PropertyAccess(
                props.iter().map(std::string::ToString::to_string).collect(),
            )],
            ..Policy::permit(id, role, resource)
        }
    }

    /// An explicit deny.
    pub fn deny(id: &str, role: &str, resource: &str) -> Policy {
        Policy {
            decision: Decision::Deny,
            ..Policy::permit(id, role, resource)
        }
    }

    /// Encode this policy into `graph` in the List 8 shape.
    pub fn encode(&self, graph: &mut Graph) {
        let subject = Term::iri(&self.role);
        let policy = Term::iri(&self.id);
        graph.add(
            subject.clone(),
            Term::iri(rdf::TYPE),
            Term::iri(&grdf::sec("Subject")),
        );
        graph.add(subject, Term::iri(&grdf::sec("hasPolicy")), policy.clone());
        graph.add(
            policy.clone(),
            Term::iri(rdf::TYPE),
            Term::iri(&grdf::sec("Policy")),
        );
        graph.add(
            policy.clone(),
            Term::iri(&grdf::sec("hasAction")),
            Term::iri(&self.action.iri()),
        );
        graph.add(
            policy.clone(),
            Term::iri(&grdf::sec("hasPolicyDecision")),
            Term::iri(&self.decision.iri()),
        );
        graph.add(
            policy.clone(),
            Term::iri(&grdf::sec("hasResource")),
            Term::iri(&self.resource),
        );
        for (i, cond) in self.conditions.iter().enumerate() {
            let cnode = Term::iri(&format!("{}/cond{}", self.id, i));
            graph.add(
                policy.clone(),
                Term::iri(&grdf::sec("hasCondition")),
                cnode.clone(),
            );
            graph.add(
                cnode.clone(),
                Term::iri(rdf::TYPE),
                Term::iri(&grdf::sec("ConditionValue")),
            );
            match cond {
                Condition::PropertyAccess(props) => {
                    let def = Term::iri(&format!("{}/cond{}/def", self.id, i));
                    graph.add(
                        cnode,
                        Term::iri(&grdf::sec("condValDefinition")),
                        def.clone(),
                    );
                    for p in props {
                        graph.add(
                            def.clone(),
                            Term::iri(&grdf::sec("hasPropertyAccess")),
                            Term::iri(p),
                        );
                    }
                }
            }
        }
    }

    /// Decode every policy found in `graph`.
    pub fn decode_all(graph: &Graph) -> Vec<Policy> {
        let mut out = Vec::new();
        for t in graph.match_pattern(None, Some(&Term::iri(&grdf::sec("hasPolicy"))), None) {
            let (Some(role), Some(policy_iri)) = (t.subject.as_iri(), t.object.as_iri()) else {
                continue;
            };
            let pnode = t.object.clone();
            let action = graph
                .object(&pnode, &Term::iri(&grdf::sec("hasAction")))
                .and_then(|a| a.as_iri().and_then(Action::from_iri))
                .unwrap_or(Action::View);
            let decision = graph
                .object(&pnode, &Term::iri(&grdf::sec("hasPolicyDecision")))
                .and_then(|d| d.as_iri().and_then(Decision::from_iri))
                .unwrap_or(Decision::Deny);
            let Some(resource) = graph
                .object(&pnode, &Term::iri(&grdf::sec("hasResource")))
                .and_then(|r| r.as_iri().map(str::to_string))
            else {
                continue;
            };
            let mut conditions = Vec::new();
            for cnode in graph.objects(&pnode, &Term::iri(&grdf::sec("hasCondition"))) {
                for def in graph.objects(&cnode, &Term::iri(&grdf::sec("condValDefinition"))) {
                    let props: Vec<String> = graph
                        .objects(&def, &Term::iri(&grdf::sec("hasPropertyAccess")))
                        .into_iter()
                        .filter_map(|p| p.as_iri().map(str::to_string))
                        .collect();
                    if !props.is_empty() {
                        conditions.push(Condition::PropertyAccess(props));
                    }
                }
            }
            out.push(Policy {
                id: policy_iri.to_string(),
                role: role.to_string(),
                action,
                decision,
                resource,
                conditions,
            });
        }
        out
    }
}

/// What the evaluator concluded for a `(role, resource, property)` probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// The triple/property may be shown.
    Granted,
    /// Suppressed by a property condition or an explicit deny.
    Denied,
    /// No applicable policy — treated as deny-by-default.
    NotApplicable,
}

/// A set of policies with the semantics-aware evaluator.
#[derive(Debug, Clone, Default)]
pub struct PolicySet {
    /// The policies.
    pub policies: Vec<Policy>,
}

impl PolicySet {
    /// Build from policies.
    pub fn new(policies: Vec<Policy>) -> PolicySet {
        PolicySet { policies }
    }

    /// Add a policy.
    pub fn push(&mut self, p: Policy) {
        self.policies.push(p);
    }

    /// Policies applying to `role`.
    pub fn for_role(&self, role: &str) -> Vec<&Policy> {
        self.policies.iter().filter(|p| p.role == role).collect()
    }

    /// Evaluate access for `role` to `property` of the individual
    /// `resource` within `data` (which supplies types and the class
    /// hierarchy — run the reasoner over `data` first for full semantics-
    /// aware matching).
    ///
    /// Resolution: explicit Deny wins, then a Permit whose conditions allow
    /// the property, then deny-by-default.
    pub fn evaluate(
        &self,
        data: &Graph,
        role: &str,
        resource: &Term,
        property: &str,
        action: Action,
    ) -> Access {
        let h = Hierarchy::new(data);
        let types = data.objects(resource, &Term::iri(rdf::TYPE));
        let mut permitted = false;
        let mut applicable = false;
        for p in self.for_role(role) {
            if p.action != action {
                continue;
            }
            if !Self::resource_matches(&h, p, resource, &types) {
                continue;
            }
            applicable = true;
            match p.decision {
                Decision::Deny => return Access::Denied,
                Decision::Permit => {
                    if Self::conditions_allow(data, p, property) {
                        permitted = true;
                    }
                }
            }
        }
        if permitted {
            Access::Granted
        } else if applicable {
            Access::Denied
        } else {
            Access::NotApplicable
        }
    }

    /// Like [`PolicySet::evaluate`], but also reports *which* policies
    /// applied and how — the raw material of a [`DecisionTrace`]. The
    /// decision logic is identical (deny-wins, permit-with-conditions,
    /// deny-by-default); only the bookkeeping differs, so the plain
    /// evaluator stays allocation-free on the view-build hot path.
    pub fn evaluate_explained(
        &self,
        data: &Graph,
        role: &str,
        resource: &Term,
        property: &str,
        action: Action,
    ) -> (Access, Vec<PolicyMatch>) {
        let h = Hierarchy::new(data);
        let types = data.objects(resource, &Term::iri(rdf::TYPE));
        let mut matches = Vec::new();
        let mut permitted = false;
        let mut applicable = false;
        for p in self.for_role(role) {
            if p.action != action {
                continue;
            }
            let Some(inference) = Self::resource_match_basis(&h, p, resource, &types) else {
                continue;
            };
            applicable = true;
            match p.decision {
                Decision::Deny => {
                    matches.push(PolicyMatch {
                        policy: p.id.clone(),
                        decision: Decision::Deny,
                        allowed: false,
                        inference,
                    });
                    return (Access::Denied, matches);
                }
                Decision::Permit => {
                    let allowed = Self::conditions_allow(data, p, property);
                    permitted |= allowed;
                    matches.push(PolicyMatch {
                        policy: p.id.clone(),
                        decision: Decision::Permit,
                        allowed,
                        inference,
                    });
                }
            }
        }
        let access = if permitted {
            Access::Granted
        } else if applicable {
            Access::Denied
        } else {
            Access::NotApplicable
        };
        (access, matches)
    }

    /// Does the policy's resource designate this individual? Either the
    /// instance itself, or a class the individual belongs to — directly or
    /// via the subclass hierarchy (semantics-aware matching).
    fn resource_matches(h: &Hierarchy<'_>, p: &Policy, resource: &Term, types: &[Term]) -> bool {
        if resource.as_iri() == Some(p.resource.as_str()) {
            return true;
        }
        let target = Term::iri(&p.resource);
        types
            .iter()
            .any(|t| t == &target || h.is_subclass_of(t, &target))
    }

    /// [`PolicySet::resource_matches`], additionally reporting *why* the
    /// policy applied: `Some(None)` for an instance or direct-type match,
    /// `Some(Some(step))` when the subclass hierarchy supplied the link,
    /// `None` when the policy does not apply.
    fn resource_match_basis(
        h: &Hierarchy<'_>,
        p: &Policy,
        resource: &Term,
        types: &[Term],
    ) -> Option<Option<String>> {
        if resource.as_iri() == Some(p.resource.as_str()) {
            return Some(None);
        }
        let target = Term::iri(&p.resource);
        for t in types {
            if t == &target {
                return Some(None);
            }
            if h.is_subclass_of(t, &target) {
                return Some(Some(format!(
                    "{} rdfs:subClassOf* {}",
                    t.as_iri().unwrap_or("_"),
                    p.resource
                )));
            }
        }
        None
    }

    /// Property conditions, semantics-aware: a listed property grants
    /// itself and any subproperty of it.
    fn conditions_allow(data: &Graph, p: &Policy, property: &str) -> bool {
        if p.conditions.is_empty() {
            return true;
        }
        // rdf:type is always visible on permitted resources, otherwise the
        // client cannot even tell what it is looking at.
        if property == rdf::TYPE {
            return true;
        }
        p.conditions.iter().all(|c| match c {
            Condition::PropertyAccess(props) => props
                .iter()
                .any(|allowed| allowed == property || is_subproperty_of(data, property, allowed)),
        })
    }
}

/// One applicable policy's contribution to an access decision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolicyMatch {
    /// Policy IRI.
    pub policy: String,
    /// The policy's effect.
    pub decision: Decision,
    /// For permits: whether its conditions passed for the property asked
    /// about (a permit whose conditions failed suppresses nothing by
    /// itself — deny-by-default does).
    pub allowed: bool,
    /// The inference step that made the policy applicable, when the
    /// subclass hierarchy (not a direct type) supplied the link.
    pub inference: Option<String>,
}

/// The structured explanation of one G-SACS access decision: which
/// policies were consulted, which permitted or denied, and what inference
/// steps connected data to policy — linked to the audit log by
/// [`TraceId`]. Emitted when a role's secure view is built and stamped
/// per request by the service.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DecisionTrace {
    /// The id of the request whose view build produced this decision.
    pub trace_id: TraceId,
    /// The requesting role.
    pub role: String,
    /// Every policy consulted for the role (id order preserved).
    pub consulted: Vec<String>,
    /// Permit policies that granted at least one triple.
    pub permitting: Vec<String>,
    /// Deny policies that fired at least once.
    pub denying: Vec<String>,
    /// Distinct inference steps used to make policies applicable.
    pub inference: Vec<String>,
    /// Triples granted into the view.
    pub granted: usize,
    /// Triples suppressed by policy (or deny-by-default).
    pub suppressed: usize,
    /// Whether the decision was taken in degraded (conservative) mode.
    pub degraded: bool,
}

impl DecisionTrace {
    /// Multi-line human-readable rendering (used by `grdf-cli trace`).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "decision trace {} role {}", self.trace_id, self.role);
        let _ = writeln!(
            out,
            "  consulted:  {}",
            if self.consulted.is_empty() {
                "(no policy for role)".to_string()
            } else {
                self.consulted.join(", ")
            }
        );
        if !self.permitting.is_empty() {
            let _ = writeln!(out, "  permitting: {}", self.permitting.join(", "));
        }
        if !self.denying.is_empty() {
            let _ = writeln!(out, "  denying:    {}", self.denying.join(", "));
        }
        if self.permitting.is_empty() && self.denying.is_empty() {
            let _ = writeln!(out, "  outcome:    deny-by-default (no policy fired)");
        }
        for step in &self.inference {
            let _ = writeln!(out, "  inference:  {step}");
        }
        let _ = writeln!(
            out,
            "  view:       {} granted, {} suppressed{}",
            self.granted,
            self.suppressed,
            if self.degraded {
                " [degraded: conservative view]"
            } else {
                ""
            }
        );
        out
    }
}

/// Transitive `rdfs:subPropertyOf` check.
fn is_subproperty_of(data: &Graph, sub: &str, sup: &str) -> bool {
    if sub == sup {
        return true;
    }
    let mut stack = vec![Term::iri(sub)];
    let mut seen = std::collections::HashSet::new();
    while let Some(cur) = stack.pop() {
        for parent in data.objects(&cur, &Term::iri(rdfs::SUB_PROPERTY_OF)) {
            if parent.as_iri() == Some(sup) {
                return true;
            }
            if seen.insert(parent.clone()) {
                stack.push(parent);
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use grdf_owl::reasoner::Reasoner;

    fn iri(s: &str) -> Term {
        Term::iri(s)
    }

    /// Scenario data: a chemical site typed app:ChemSite with three
    /// properties, plus class hierarchy.
    fn scenario() -> Graph {
        let mut g = Graph::new();
        let site = iri("http://grdf.org/app#NTEnergy");
        g.add(
            site.clone(),
            Term::iri(rdf::TYPE),
            iri(&grdf::app("ChemSite")),
        );
        g.add(
            site.clone(),
            iri(&grdf::app("hasSiteName")),
            Term::string("NT Energy"),
        );
        g.add(
            site.clone(),
            iri(&grdf::iri("BoundedBy")),
            Term::string("0,0 10,10"),
        );
        g.add(site, iri(&grdf::app("hasChemCode")), Term::string("121NR"));
        g
    }

    /// The List 8 policy: 'main repair' may View ChemSites, but only their
    /// BoundedBy property.
    fn main_repair_policy() -> Policy {
        Policy::permit_properties(
            &grdf::sec("MainRepPolicy1"),
            &grdf::sec("MainRep"),
            &grdf::app("ChemSite"),
            &[&grdf::iri("BoundedBy")],
        )
    }

    #[test]
    fn list8_policy_grants_extent_only() {
        let g = scenario();
        let ps = PolicySet::new(vec![main_repair_policy()]);
        let site = iri("http://grdf.org/app#NTEnergy");
        let role = grdf::sec("MainRep");
        assert_eq!(
            ps.evaluate(&g, &role, &site, &grdf::iri("BoundedBy"), Action::View),
            Access::Granted
        );
        assert_eq!(
            ps.evaluate(&g, &role, &site, &grdf::app("hasChemCode"), Action::View),
            Access::Denied,
            "chemical info must be suppressed for 'main repair'"
        );
        assert_eq!(
            ps.evaluate(&g, &role, &site, rdf::TYPE, Action::View),
            Access::Granted,
            "type stays visible"
        );
    }

    #[test]
    fn unconditional_permit_grants_everything() {
        // 'emergency response' has an administrative role: full access.
        let g = scenario();
        let ps = PolicySet::new(vec![Policy::permit(
            &grdf::sec("EmergencyPolicy"),
            &grdf::sec("Emergency"),
            &grdf::app("ChemSite"),
        )]);
        let site = iri("http://grdf.org/app#NTEnergy");
        assert_eq!(
            ps.evaluate(
                &g,
                &grdf::sec("Emergency"),
                &site,
                &grdf::app("hasChemCode"),
                Action::View
            ),
            Access::Granted
        );
    }

    #[test]
    fn no_policy_means_not_applicable() {
        let g = scenario();
        let ps = PolicySet::default();
        let site = iri("http://grdf.org/app#NTEnergy");
        assert_eq!(
            ps.evaluate(
                &g,
                "urn:role",
                &site,
                &grdf::app("hasSiteName"),
                Action::View
            ),
            Access::NotApplicable
        );
    }

    #[test]
    fn explicit_deny_wins_over_permit() {
        let g = scenario();
        let role = grdf::sec("Contractor");
        let ps = PolicySet::new(vec![
            Policy::permit("urn:p1", &role, &grdf::app("ChemSite")),
            Policy::deny("urn:p2", &role, &grdf::app("ChemSite")),
        ]);
        let site = iri("http://grdf.org/app#NTEnergy");
        assert_eq!(
            ps.evaluate(&g, &role, &site, &grdf::app("hasSiteName"), Action::View),
            Access::Denied
        );
    }

    #[test]
    fn policy_applies_to_subclasses_after_reasoning() {
        // Merge robustness: weather data types its sites as
        // wx:MonitoredSite ⊑ app:ChemSite; the same policy keeps working.
        let mut g = scenario();
        let wx_site = iri("urn:wx#station9");
        g.add(
            wx_site.clone(),
            Term::iri(rdf::TYPE),
            iri("urn:wx#MonitoredSite"),
        );
        g.add(
            iri("urn:wx#MonitoredSite"),
            Term::iri(rdfs::SUB_CLASS_OF),
            iri(&grdf::app("ChemSite")),
        );
        g.add(
            wx_site.clone(),
            iri(&grdf::app("hasChemCode")),
            Term::string("999"),
        );
        Reasoner::default().materialize(&mut g);
        let ps = PolicySet::new(vec![main_repair_policy()]);
        assert_eq!(
            ps.evaluate(
                &g,
                &grdf::sec("MainRep"),
                &wx_site,
                &grdf::app("hasChemCode"),
                Action::View
            ),
            Access::Denied,
            "policy still applies (and still suppresses) after aggregation"
        );
        assert_eq!(
            ps.evaluate(
                &g,
                &grdf::sec("MainRep"),
                &wx_site,
                &grdf::iri("BoundedBy"),
                Action::View
            ),
            Access::Granted
        );
    }

    #[test]
    fn property_conditions_cover_subproperties() {
        let mut g = scenario();
        // hasPreciseExtent ⊑ BoundedBy.
        g.add(
            iri(&grdf::app("hasPreciseExtent")),
            Term::iri(rdfs::SUB_PROPERTY_OF),
            iri(&grdf::iri("BoundedBy")),
        );
        let ps = PolicySet::new(vec![main_repair_policy()]);
        let site = iri("http://grdf.org/app#NTEnergy");
        assert_eq!(
            ps.evaluate(
                &g,
                &grdf::sec("MainRep"),
                &site,
                &grdf::app("hasPreciseExtent"),
                Action::View
            ),
            Access::Granted,
            "subproperty of a granted property is granted"
        );
    }

    #[test]
    fn action_mismatch_is_not_applicable() {
        let g = scenario();
        let ps = PolicySet::new(vec![main_repair_policy()]); // View only
        let site = iri("http://grdf.org/app#NTEnergy");
        assert_eq!(
            ps.evaluate(
                &g,
                &grdf::sec("MainRep"),
                &site,
                &grdf::iri("BoundedBy"),
                Action::Edit
            ),
            Access::NotApplicable
        );
    }

    #[test]
    fn instance_level_policy() {
        let g = scenario();
        let site = iri("http://grdf.org/app#NTEnergy");
        let ps = PolicySet::new(vec![Policy::permit(
            "urn:p",
            "urn:role",
            "http://grdf.org/app#NTEnergy",
        )]);
        assert_eq!(
            ps.evaluate(
                &g,
                "urn:role",
                &site,
                &grdf::app("hasSiteName"),
                Action::View
            ),
            Access::Granted
        );
        assert_eq!(
            ps.evaluate(
                &g,
                "urn:role",
                &iri("urn:other"),
                &grdf::app("hasSiteName"),
                Action::View
            ),
            Access::NotApplicable
        );
    }

    #[test]
    fn encode_decode_roundtrip_list8() {
        let p = main_repair_policy();
        let mut g = Graph::new();
        p.encode(&mut g);
        // The List 8 shape is present.
        assert!(g.has(
            &iri(&grdf::sec("MainRep")),
            &iri(&grdf::sec("hasPolicy")),
            &iri(&grdf::sec("MainRepPolicy1"))
        ));
        let decoded = Policy::decode_all(&g);
        assert_eq!(decoded.len(), 1);
        assert_eq!(decoded[0], p);
    }

    #[test]
    fn decode_multiple_policies() {
        let mut g = Graph::new();
        main_repair_policy().encode(&mut g);
        Policy::permit(
            &grdf::sec("P2"),
            &grdf::sec("Emergency"),
            &grdf::app("ChemSite"),
        )
        .encode(&mut g);
        Policy::deny(
            &grdf::sec("P3"),
            &grdf::sec("Blocked"),
            &grdf::app("Stream"),
        )
        .encode(&mut g);
        let decoded = Policy::decode_all(&g);
        assert_eq!(decoded.len(), 3);
        assert!(decoded.iter().any(|p| p.decision == Decision::Deny));
    }
}
