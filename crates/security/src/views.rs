//! Middleware "layered views" (§7.1): "before presenting the layered view,
//! middleware needs to eliminate data that violates security with respect
//! to this role."
//!
//! [`secure_view`] filters a (merged, possibly materialized) graph down to
//! the triples a role may see under a [`PolicySet`], keeping the subtrees
//! (geometry nodes, envelope nodes) of granted properties reachable.

use std::collections::HashSet;

use grdf_rdf::graph::Graph;
use grdf_rdf::term::{Term, Triple};
#[cfg(test)]
use grdf_rdf::vocab::grdf;
use grdf_rdf::vocab::rdf;

use crate::policy::{Access, Action, Decision, DecisionTrace, PolicySet};

/// Statistics from building a view.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ViewStats {
    /// Triples visible in the view.
    pub granted: usize,
    /// Triples suppressed by policy.
    pub suppressed: usize,
    /// Subjects with no applicable policy (all their triples suppressed,
    /// deny-by-default).
    pub unmatched_subjects: usize,
}

/// Build the role's view of `data`. `data` should already be materialized
/// if semantics-aware resource matching across subclasses is wanted.
///
/// Schema-level triples (subjects that are classes/properties — i.e. have
/// no `rdf:type` linking them to application classes) are not copied; the
/// view contains instance data only.
pub fn secure_view(data: &Graph, policies: &PolicySet, role: &str) -> (Graph, ViewStats) {
    secure_view_inner(data, policies, role, None)
}

/// [`secure_view`] that additionally returns the [`DecisionTrace`] for
/// the build: which policies were consulted, which permitted or denied
/// triples, and the inference steps that made them applicable. The
/// caller (G-SACS) stamps the trace id.
pub fn secure_view_explained(
    data: &Graph,
    policies: &PolicySet,
    role: &str,
) -> (Graph, ViewStats, DecisionTrace) {
    let mut trace = DecisionTrace {
        role: role.to_string(),
        consulted: policies
            .for_role(role)
            .iter()
            .map(|p| p.id.clone())
            .collect(),
        ..DecisionTrace::default()
    };
    let (view, stats) = secure_view_inner(data, policies, role, Some(&mut trace));
    trace.granted = stats.granted;
    trace.suppressed = stats.suppressed;
    (view, stats, trace)
}

fn secure_view_inner(
    data: &Graph,
    policies: &PolicySet,
    role: &str,
    mut trace: Option<&mut DecisionTrace>,
) -> (Graph, ViewStats) {
    let _span = grdf_obs::span("view.build").tag("role", role);
    let mut view = Graph::new();
    let mut stats = ViewStats::default();
    let mut included_objects: HashSet<Term> = HashSet::new();
    let mut inference_seen: HashSet<String> = HashSet::new();

    for subject in data.all_subjects() {
        // Only instance subjects: those with at least one type that is not
        // an OWL/RDFS meta-class.
        let types = data.objects(&subject, &Term::iri(rdf::TYPE));
        let is_instance = types.iter().any(|t| {
            t.as_iri().is_some_and(|i| {
                !i.starts_with(grdf_rdf::vocab::owl::NS)
                    && !i.starts_with(grdf_rdf::vocab::rdfs::NS)
            })
        });
        if !is_instance {
            continue;
        }
        // Skip structural helper nodes (geometry/envelope blanks) here;
        // they are pulled in via their owning property below.
        if subject.is_blank() {
            continue;
        }

        let mut any_granted = false;
        for t in data.match_pattern(Some(&subject), None, None) {
            let Some(pred) = t.predicate.as_iri() else {
                continue;
            };
            let access = match trace.as_deref_mut() {
                None => policies.evaluate(data, role, &subject, pred, Action::View),
                Some(rec) => {
                    let (access, matches) =
                        policies.evaluate_explained(data, role, &subject, pred, Action::View);
                    for m in matches {
                        let fired = match m.decision {
                            Decision::Permit => m.allowed,
                            Decision::Deny => true,
                        };
                        if fired {
                            let bucket = match m.decision {
                                Decision::Permit => &mut rec.permitting,
                                Decision::Deny => &mut rec.denying,
                            };
                            if !bucket.contains(&m.policy) {
                                bucket.push(m.policy);
                            }
                            if let Some(step) = m.inference {
                                if inference_seen.insert(step.clone()) {
                                    rec.inference.push(step);
                                }
                            }
                        }
                    }
                    access
                }
            };
            match access {
                Access::Granted => {
                    any_granted = true;
                    stats.granted += 1;
                    if t.object.is_blank() {
                        included_objects.insert(t.object.clone());
                    }
                    view.insert(t);
                }
                Access::Denied | Access::NotApplicable => {
                    stats.suppressed += 1;
                }
            }
        }
        if !any_granted {
            stats.unmatched_subjects += 1;
        }
    }

    // Pull in the helper subtrees of granted object properties (geometry
    // and envelope blank nodes).
    let mut frontier: Vec<Term> = included_objects.into_iter().collect();
    let mut seen: HashSet<Term> = HashSet::new();
    while let Some(node) = frontier.pop() {
        if !seen.insert(node.clone()) {
            continue;
        }
        for t in data.match_pattern(Some(&node), None, None) {
            if t.object.is_blank() && !seen.contains(&t.object) {
                frontier.push(t.object.clone());
            }
            view.insert(Triple::new(t.subject, t.predicate, t.object));
        }
    }

    grdf_obs::incr("view.builds");
    grdf_obs::add("view.granted", stats.granted as u64);
    grdf_obs::add("view.suppressed", stats.suppressed as u64);
    (view, stats)
}

/// Most-restrictive view for degraded mode, where the reasoner is
/// unavailable and `data` is un-inferred.
///
/// Deny policies may rely on entailments (a deny on a superclass must
/// catch instances typed only with a subclass), so without inference they
/// cannot be evaluated safely: a role subject to *any* Deny policy gets an
/// empty view. Roles with only Permit policies fall through to
/// [`secure_view`] over the un-inferred graph, which is already
/// conservative — permits that need inference simply do not fire, and
/// deny-by-default suppresses the rest.
pub fn conservative_view(data: &Graph, policies: &PolicySet, role: &str) -> (Graph, ViewStats) {
    let (view, stats, _) = conservative_view_explained(data, policies, role);
    (view, stats)
}

/// [`conservative_view`] with its [`DecisionTrace`]; the trace is marked
/// degraded and, for deny-bearing roles, names the deny policies that
/// forced the empty view.
pub fn conservative_view_explained(
    data: &Graph,
    policies: &PolicySet,
    role: &str,
) -> (Graph, ViewStats, DecisionTrace) {
    let denies: Vec<String> = policies
        .for_role(role)
        .iter()
        .filter(|p| p.decision == Decision::Deny)
        .map(|p| p.id.clone())
        .collect();
    if !denies.is_empty() {
        grdf_obs::incr("view.conservative_empty");
        let stats = ViewStats {
            granted: 0,
            suppressed: data.len(),
            unmatched_subjects: 0,
        };
        let trace = DecisionTrace {
            role: role.to_string(),
            consulted: policies
                .for_role(role)
                .iter()
                .map(|p| p.id.clone())
                .collect(),
            denying: denies,
            inference: vec![
                "reasoner unavailable: deny policies may depend on missing entailments".to_string(),
            ],
            suppressed: stats.suppressed,
            degraded: true,
            ..DecisionTrace::default()
        };
        return (Graph::new(), stats, trace);
    }
    let (view, stats, mut trace) = secure_view_explained(data, policies, role);
    trace.degraded = true;
    (view, stats, trace)
}

/// Convenience: is the literal/IRI value of `(subject, property)` visible
/// in the view?
pub fn view_exposes(view: &Graph, subject: &str, property: &str) -> bool {
    !view
        .match_pattern(Some(&Term::iri(subject)), Some(&Term::iri(property)), None)
        .is_empty()
}

/// Count value-bearing triples of `property` anywhere in the view.
pub fn view_property_count(view: &Graph, property: &str) -> usize {
    view.count_pattern(None, Some(&Term::iri(property)), None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Policy;
    use grdf_feature::feature::Feature;
    use grdf_feature::rdf_codec::encode_feature;
    use grdf_geometry::primitives::Point;

    /// The §7.1 dataset in miniature: one chemical site with name, chem
    /// code and geometry; one hydrology stream.
    fn incident_data() -> Graph {
        let mut g = Graph::new();
        let mut site = Feature::new(&grdf::app("NTEnergy"), "ChemSite");
        site.set_property("hasSiteName", "North Texas Energy");
        site.set_property("hasChemCode", "121NR");
        site.set_geometry(Point::new(5.0, 5.0).into());
        encode_feature(&mut g, &site);
        let mut stream = Feature::new(&grdf::app("WhiteRock"), "Stream");
        stream.set_property("hasObjectID", 11070i64);
        stream.set_geometry(Point::new(2.0, 2.0).into());
        encode_feature(&mut g, &stream);
        g
    }

    fn main_repair_policies() -> PolicySet {
        PolicySet::new(vec![
            // Extent-only on chemical sites (List 8)…
            Policy::permit_properties(
                &grdf::sec("MainRepPolicy1"),
                &grdf::sec("MainRep"),
                &grdf::app("ChemSite"),
                &[&grdf::iri("hasGeometry"), &grdf::iri("isBoundedBy")],
            ),
            // …and full access to the open hydrology layer.
            Policy::permit(
                &grdf::sec("MainRepPolicy2"),
                &grdf::sec("MainRep"),
                &grdf::app("Stream"),
            ),
        ])
    }

    #[test]
    fn main_repair_sees_extent_not_chemistry() {
        let data = incident_data();
        let (view, stats) = secure_view(&data, &main_repair_policies(), &grdf::sec("MainRep"));
        // Geometry visible.
        assert!(view_exposes(
            &view,
            &grdf::app("NTEnergy"),
            &grdf::iri("hasGeometry")
        ));
        // Chemistry suppressed.
        assert!(!view_exposes(
            &view,
            &grdf::app("NTEnergy"),
            &grdf::app("hasChemCode")
        ));
        assert!(!view_exposes(
            &view,
            &grdf::app("NTEnergy"),
            &grdf::app("hasSiteName")
        ));
        // Stream fully visible.
        assert!(view_exposes(
            &view,
            &grdf::app("WhiteRock"),
            &grdf::app("hasObjectID")
        ));
        assert!(stats.suppressed >= 2);
        assert!(stats.granted > 0);
    }

    #[test]
    fn geometry_subtree_is_reachable_in_view() {
        let data = incident_data();
        let (view, _) = secure_view(&data, &main_repair_policies(), &grdf::sec("MainRep"));
        // The blank geometry node's own triples came along.
        let gnode = view
            .object(
                &Term::iri(&grdf::app("NTEnergy")),
                &Term::iri(&grdf::iri("hasGeometry")),
            )
            .expect("geometry link visible");
        assert!(
            !view.match_pattern(Some(&gnode), None, None).is_empty(),
            "geometry node triples must be present"
        );
    }

    #[test]
    fn admin_role_sees_everything() {
        let data = incident_data();
        let ps = PolicySet::new(vec![
            Policy::permit("urn:pe1", &grdf::sec("Emergency"), &grdf::app("ChemSite")),
            Policy::permit("urn:pe2", &grdf::sec("Emergency"), &grdf::app("Stream")),
        ]);
        let (view, stats) = secure_view(&data, &ps, &grdf::sec("Emergency"));
        assert!(view_exposes(
            &view,
            &grdf::app("NTEnergy"),
            &grdf::app("hasChemCode")
        ));
        assert_eq!(stats.suppressed, 0);
    }

    #[test]
    fn unknown_role_sees_nothing() {
        let data = incident_data();
        let (view, stats) = secure_view(&data, &main_repair_policies(), "urn:nobody");
        assert_eq!(view.len(), 0);
        assert_eq!(stats.granted, 0);
        assert!(stats.suppressed > 0);
    }

    #[test]
    fn hazmat_gets_chemicals_but_not_contacts() {
        // 'hazmat personnel' need chemical names, not everything.
        let mut data = incident_data();
        data.add(
            Term::iri(&grdf::app("NTEnergy")),
            Term::iri(&grdf::app("hasContactPhone")),
            Term::string("555-0100"),
        );
        let ps = PolicySet::new(vec![Policy::permit_properties(
            &grdf::sec("HazmatPolicy"),
            &grdf::sec("Hazmat"),
            &grdf::app("ChemSite"),
            &[
                &grdf::app("hasChemCode"),
                &grdf::iri("hasGeometry"),
                &grdf::iri("isBoundedBy"),
            ],
        )]);
        let (view, _) = secure_view(&data, &ps, &grdf::sec("Hazmat"));
        assert!(view_exposes(
            &view,
            &grdf::app("NTEnergy"),
            &grdf::app("hasChemCode")
        ));
        assert!(!view_exposes(
            &view,
            &grdf::app("NTEnergy"),
            &grdf::app("hasContactPhone")
        ));
    }

    #[test]
    fn property_counts() {
        let data = incident_data();
        let (view, _) = secure_view(&data, &main_repair_policies(), &grdf::sec("MainRep"));
        assert_eq!(view_property_count(&view, &grdf::app("hasChemCode")), 0);
        assert_eq!(view_property_count(&view, &grdf::iri("hasGeometry")), 2);
    }
}
