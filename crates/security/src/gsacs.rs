//! G-SACS — the Geospatial Security Access Control System of Fig. 3.
//!
//! "G-SACS provides the front-end interface to accept client requests and
//! respond back. This module only defines communication points and hides
//! the internal details of the system from clients." Behind the front-end
//! sit the decision engine (policy evaluation + view filtering), a query
//! cache ("having a caching mechanism that stores the queries and
//! corresponding answers would provide a significant performance boost"),
//! a plug-and-play reasoning engine ("any OWL reasoning engine could be
//! plugged into the system"), and the ontology repository ("a database of
//! ontologies needed to perform the reasoning; GRDF would reside in this
//! repository").
//!
//! The service is fail-closed (see [`crate::resilience`]): every request
//! outcome — success, parse error, deadline expiry, load shed — is
//! audited, internal failures deny rather than leak, the reasoning engine
//! sits behind a circuit breaker, and when it is unavailable the service
//! degrades to serving un-inferred data through conservative views.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use grdf_obs::{Counter, Obs, TraceId};
use grdf_owl::reasoner::Reasoner;
use grdf_query::eval::{execute_with_deadline, QueryResult};
use grdf_rdf::diagnostic::{LintReport, Severity};
use grdf_rdf::graph::Graph;
use grdf_rdf::term::{Term, Triple};
use grdf_rdf::vocab::{owl as vocab_owl, rdf, rdfs as vocab_rdfs};
use grdf_runtime::{Budget, Deadline};
use grdf_store::{DurableStore, LoggedOp, Recovered, StorageBackend, StoreConfig, StoreError};
use std::time::Duration;

use crate::policy::{DecisionTrace, Policy, PolicySet};
use crate::resilience::{
    AdmissionGate, Durability, EngineError, GsacsError, HealthReport, LatencyHistogram, LintGate,
    ResilienceConfig, ResilientEngine, Stage,
};
use crate::views::{conservative_view_explained, secure_view_explained, ViewStats};

/// The pluggable reasoning component (Fig. 3 "Reasoning engine").
///
/// Fallible by contract: a real engine can crash, run out of resources, or
/// blow the request deadline, and the service must fail closed rather than
/// trust its output.
pub trait ReasoningEngine: Send + Sync {
    /// Materialize entailments into the graph, polling `deadline`
    /// cooperatively; returns the number of inferred triples.
    fn materialize(&self, graph: &mut Graph, deadline: &Deadline) -> Result<usize, EngineError>;

    /// Derive the consequences of just the triples inserted since
    /// `from_generation` (a [`Graph::generation`] marker taken when the
    /// graph was last fully materialized). Only sound for purely-additive
    /// changes. The default falls back to a full materialization, which
    /// is always correct on an already-materialized graph — engines with
    /// a real delta mode override it.
    fn materialize_delta(
        &self,
        graph: &mut Graph,
        from_generation: u64,
        deadline: &Deadline,
    ) -> Result<usize, EngineError> {
        let _ = from_generation;
        self.materialize(graph, deadline)
    }

    /// Short name for reports.
    fn name(&self) -> &'static str;
}

/// The built-in OWL-Horst reasoner.
#[derive(Debug, Default)]
pub struct OwlHorstEngine {
    reasoner: Reasoner,
}

impl OwlHorstEngine {
    /// Engine with a custom reasoner configuration.
    pub fn with(reasoner: Reasoner) -> OwlHorstEngine {
        OwlHorstEngine { reasoner }
    }
}

impl ReasoningEngine for OwlHorstEngine {
    fn materialize(&self, graph: &mut Graph, deadline: &Deadline) -> Result<usize, EngineError> {
        self.reasoner
            .materialize_with_deadline(graph, deadline)
            .map(|stats| stats.inferred)
            .map_err(|_| EngineError::DeadlineExceeded)
    }

    fn materialize_delta(
        &self,
        graph: &mut Graph,
        from_generation: u64,
        deadline: &Deadline,
    ) -> Result<usize, EngineError> {
        self.reasoner
            .materialize_delta(graph, from_generation, deadline)
            .map(|stats| stats.inferred)
            .map_err(|_| EngineError::DeadlineExceeded)
    }

    fn name(&self) -> &'static str {
        "owl-horst"
    }
}

/// A no-op engine — the "reasoning off" ablation arm.
#[derive(Debug, Default)]
pub struct NoReasoning;

impl ReasoningEngine for NoReasoning {
    fn materialize(&self, _graph: &mut Graph, _deadline: &Deadline) -> Result<usize, EngineError> {
        Ok(0)
    }

    fn materialize_delta(
        &self,
        _graph: &mut Graph,
        _from_generation: u64,
        _deadline: &Deadline,
    ) -> Result<usize, EngineError> {
        Ok(0)
    }

    fn name(&self) -> &'static str {
        "none"
    }
}

/// The ontology repository: named ontology graphs (GRDF itself, the
/// security ontology, domain ontologies).
#[derive(Debug, Default)]
pub struct OntoRepository {
    ontologies: HashMap<String, Graph>,
}

impl OntoRepository {
    /// Empty repository.
    pub fn new() -> OntoRepository {
        OntoRepository::default()
    }

    /// Store (or replace) an ontology under a name.
    pub fn register(&mut self, name: &str, ontology: Graph) {
        self.ontologies.insert(name.to_string(), ontology);
    }

    /// Fetch an ontology by name.
    pub fn get(&self, name: &str) -> Option<&Graph> {
        self.ontologies.get(name)
    }

    /// Names in the repository.
    pub fn names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.ontologies.keys().map(String::as_str).collect();
        names.sort_unstable();
        names
    }

    /// Merge every registered ontology into one graph.
    pub fn merged(&self) -> Graph {
        let mut g = Graph::new();
        for onto in self.ontologies.values() {
            g.extend_from(onto);
        }
        g
    }
}

/// Sentinel index for the LRU list's nil link.
const NIL: usize = usize::MAX;

#[derive(Debug)]
struct CacheNode {
    key: (String, String),
    value: QueryResult,
    prev: usize,
    next: usize,
}

/// LRU query cache (Fig. 3 "Query Cache").
///
/// The recency list is an intrusive doubly-linked list over a slab, so
/// `get`/`put` are O(1) — a hot cache no longer pays an O(n) scan per
/// touch.
#[derive(Debug)]
pub struct QueryCache {
    capacity: usize,
    map: HashMap<(String, String), usize>,
    nodes: Vec<Option<CacheNode>>,
    free: Vec<usize>,
    /// Most recently used.
    head: usize,
    /// Least recently used (eviction end).
    tail: usize,
    hits: u64,
    misses: u64,
    lookups: u64,
}

impl QueryCache {
    /// Cache with the given capacity (0 disables caching).
    pub fn new(capacity: usize) -> QueryCache {
        QueryCache {
            capacity,
            map: HashMap::new(),
            nodes: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            hits: 0,
            misses: 0,
            lookups: 0,
        }
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = {
            let n = self.nodes[idx].as_ref().expect("linked node present");
            (n.prev, n.next)
        };
        match prev {
            NIL => self.head = next,
            p => self.nodes[p].as_mut().expect("prev node present").next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.nodes[n].as_mut().expect("next node present").prev = prev,
        }
    }

    fn push_front(&mut self, idx: usize) {
        {
            let n = self.nodes[idx].as_mut().expect("node present");
            n.prev = NIL;
            n.next = self.head;
        }
        match self.head {
            NIL => self.tail = idx,
            h => self.nodes[h].as_mut().expect("head node present").prev = idx,
        }
        self.head = idx;
    }

    /// Look up a cached result.
    pub fn get(&mut self, role: &str, query: &str) -> Option<QueryResult> {
        self.lookups += 1;
        if self.capacity == 0 {
            self.misses += 1;
            return None;
        }
        let key = (role.to_string(), query.to_string());
        if let Some(idx) = self.map.get(&key).copied() {
            self.hits += 1;
            self.unlink(idx);
            self.push_front(idx);
            Some(
                self.nodes[idx]
                    .as_ref()
                    .expect("hit node present")
                    .value
                    .clone(),
            )
        } else {
            self.misses += 1;
            None
        }
    }

    /// Insert a result, evicting the least recently used entry if full.
    pub fn put(&mut self, role: &str, query: &str, result: QueryResult) {
        if self.capacity == 0 {
            return;
        }
        let key = (role.to_string(), query.to_string());
        if let Some(idx) = self.map.get(&key).copied() {
            self.nodes[idx].as_mut().expect("node present").value = result;
            self.unlink(idx);
            self.push_front(idx);
            return;
        }
        if self.map.len() >= self.capacity {
            let lru = self.tail;
            self.unlink(lru);
            let node = self.nodes[lru].take().expect("tail node present");
            self.map.remove(&node.key);
            self.free.push(lru);
        }
        let idx = if let Some(i) = self.free.pop() {
            i
        } else {
            self.nodes.push(None);
            self.nodes.len() - 1
        };
        self.nodes[idx] = Some(CacheNode {
            key: key.clone(),
            value: result,
            prev: NIL,
            next: NIL,
        });
        self.map.insert(key, idx);
        self.push_front(idx);
    }

    /// `(hits, misses)` so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Total lookups; always equals hits + misses.
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    /// Hit rate in `[0, 1]`; 0 when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Drop only one role's entries — the selective form used after an
    /// incremental update that provably cannot change other roles' views.
    pub fn invalidate_role(&mut self, role: &str) {
        let idxs: Vec<usize> = self
            .map
            .iter()
            .filter(|(key, _)| key.0 == role)
            .map(|(_, &idx)| idx)
            .collect();
        for idx in idxs {
            self.unlink(idx);
            let node = self.nodes[idx].take().expect("mapped node present");
            self.map.remove(&node.key);
            self.free.push(idx);
        }
    }

    /// Drop all entries (e.g. after data changes); hit/miss counters are
    /// retained.
    pub fn invalidate(&mut self) {
        self.map.clear();
        self.nodes.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }
}

/// Bounded audit log: a ring buffer that drops the oldest entries once
/// full, counting what it dropped (capacity 0 = unbounded).
#[derive(Debug, Default)]
pub struct AuditLog {
    capacity: usize,
    entries: VecDeque<AuditEntry>,
    dropped: u64,
}

impl AuditLog {
    /// Log retaining at most `capacity` entries.
    pub fn new(capacity: usize) -> AuditLog {
        AuditLog {
            capacity,
            entries: VecDeque::new(),
            dropped: 0,
        }
    }

    /// Append an entry, dropping the oldest when at capacity.
    pub fn push(&mut self, entry: AuditEntry) {
        if self.capacity > 0 && self.entries.len() >= self.capacity {
            self.entries.pop_front();
            self.dropped += 1;
        }
        self.entries.push_back(entry);
    }

    /// Retained entries, oldest first.
    pub fn snapshot(&self) -> Vec<AuditEntry> {
        self.entries.iter().cloned().collect()
    }

    /// Entries dropped by the ring buffer.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Retained entry count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// A client request (Fig. 3 "Client system" → G-SACS).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ClientRequest {
    /// The requesting role's IRI.
    pub role: String,
    /// A SPARQL-subset query to run against the role's secure view.
    pub query: String,
}

/// One mutation in an update request.
#[derive(Debug, Clone, PartialEq)]
pub enum UpdateOp {
    /// Add a triple (requires `sec:Edit` on the subject's resource).
    Insert(grdf_rdf::term::Triple),
    /// Remove a triple (requires `sec:Delete`).
    Delete(grdf_rdf::term::Triple),
}

/// A mutation request: all operations are checked first; the request is
/// applied only when every operation is permitted (atomic deny).
#[derive(Debug, Clone, PartialEq)]
pub struct UpdateRequest {
    /// The requesting role's IRI.
    pub role: String,
    /// The operations, applied in order.
    pub ops: Vec<UpdateOp>,
}

/// Outcome of an update request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UpdateOutcome {
    /// All operations applied; count of triples actually changed.
    Applied(usize),
    /// Denied; the 1-based index and reason of the first refused op.
    Denied {
        /// Index of the eager refusal; `0` when the whole request was
        /// refused (the lint gate vets the post-update graph as a unit,
        /// not op by op).
        op_index: usize,
        /// Human-readable reason.
        reason: String,
    },
}

/// One audit record — every security-relevant decision G-SACS makes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditEntry {
    /// The requesting role (`"system"` for service-level events).
    pub role: String,
    /// `query`, `update-insert`, `update-delete`, or `degrade`/`recover`.
    pub action: String,
    /// The affected resource (subject IRI) or query text.
    pub target: String,
    /// Whether it was allowed.
    pub allowed: bool,
    /// Trace that produced this entry ([`TraceId::NONE`] when the event
    /// happened outside any observability scope). Lets an auditor join the
    /// log against exported spans and decision traces.
    pub trace_id: TraceId,
}

/// Per-role view caches, guarded by one lock so concurrent first requests
/// for the same role build its view exactly once.
#[derive(Debug, Default)]
struct ViewState {
    views: HashMap<String, Arc<Graph>>,
    stats: HashMap<String, ViewStats>,
    /// Decision trace from each role's most recent view build.
    traces: HashMap<String, DecisionTrace>,
    /// Cumulative builds per role (survives invalidation).
    builds: HashMap<String, u64>,
}

/// Pre-resolved counter handles for the request hot path, so `handle`
/// pays one atomic add per event instead of a registry lookup
/// (`RwLock` read + `BTreeMap` probe) per event.
struct HotCounters {
    requests: Counter,
    errors: Counter,
    cache_hit: Counter,
    cache_miss: Counter,
}

impl HotCounters {
    fn new(obs: &Obs) -> HotCounters {
        let reg = obs.registry();
        HotCounters {
            requests: reg.counter("gsacs.requests"),
            errors: reg.counter("gsacs.errors"),
            cache_hit: reg.counter("gsacs.cache.hit"),
            cache_miss: reg.counter("gsacs.cache.miss"),
        }
    }
}

/// The G-SACS service: front-end + decision engine + caches + reasoner +
/// ontology repository, wrapped in the fail-closed resilience layer.
pub struct GSacs {
    /// Ontology repository (Fig. 3).
    pub repository: OntoRepository,
    policies: PolicySet,
    engine: Arc<ResilientEngine>,
    /// Un-inferred base: ontologies + instance data, no entailments. The
    /// single source of truth that updates mutate.
    base: Graph,
    /// Served dataset: `base` plus entailments, rebuilt from `base` on
    /// every re-materialization (or a plain copy of `base` when degraded).
    data: Graph,
    /// Inferred-triple count from the last materialization.
    pub inferred: usize,
    /// Whether the service is running without reasoning (conservative
    /// views over un-inferred data).
    degraded: AtomicBool,
    config: ResilienceConfig,
    gate: AdmissionGate,
    latency: LatencyHistogram,
    requests: AtomicU64,
    query_cache: Mutex<QueryCache>,
    views: Mutex<ViewState>,
    /// Security decision log (bounded ring buffer).
    audit: Mutex<AuditLog>,
    /// Durable write-ahead store when [`Durability::Wal`] is configured.
    store: Option<Arc<DurableStore>>,
    /// Failed appends to the durable audit sink (observability loss only —
    /// never a denial).
    audit_sink_errors: AtomicU64,
    /// Observability context (from [`ResilienceConfig::obs`]): every
    /// request runs inside a scope on it, so spans and metrics from the
    /// query, reasoner, and view layers land in one registry/sink.
    obs: Obs,
    hot: HotCounters,
    /// Set when [`LintGate::Enforce`] found error-level diagnostics at
    /// `init` time; the service then fails closed — every request returns
    /// [`GsacsError::LintRejected`] until it is rebuilt with fixed inputs.
    lint_rejected: Option<String>,
}

impl GSacs {
    /// Assemble the service with default resilience settings: the instance
    /// `data` is merged with every ontology in `repository` and
    /// materialized with `reasoner`.
    pub fn new(
        repository: OntoRepository,
        policies: PolicySet,
        reasoner: Box<dyn ReasoningEngine>,
        data: Graph,
        cache_capacity: usize,
    ) -> GSacs {
        GSacs::with_resilience(
            repository,
            policies,
            reasoner,
            data,
            cache_capacity,
            ResilienceConfig::default(),
        )
    }

    /// Assemble the service with explicit resilience settings.
    ///
    /// When `config.durability` is [`Durability::Wal`], the attached store
    /// must already hold a checkpoint of this exact initial state — use
    /// [`GSacs::create_durable`] (fresh store) or
    /// [`GSacs::recover_with_resilience`] (existing store), which guarantee
    /// that; attaching a store whose contents diverge from the assembled
    /// base would recover a different graph than the one served.
    pub fn with_resilience(
        repository: OntoRepository,
        policies: PolicySet,
        reasoner: Box<dyn ReasoningEngine>,
        data: Graph,
        cache_capacity: usize,
        config: ResilienceConfig,
    ) -> GSacs {
        let mut base = repository.merged();
        base.extend_from(&data);
        GSacs::assemble(repository, policies, reasoner, base, cache_capacity, config)
    }

    /// Shared assembly path: `base` is the already-merged un-inferred
    /// graph (ontologies + instance data, or a recovered checkpoint +
    /// WAL-replay state).
    fn assemble(
        repository: OntoRepository,
        policies: PolicySet,
        reasoner: Box<dyn ReasoningEngine>,
        base: Graph,
        cache_capacity: usize,
        config: ResilienceConfig,
    ) -> GSacs {
        let engine =
            ResilientEngine::new(reasoner, config.clock.clone(), config.breaker, config.retry);
        // With a seed lane configured, breaker half-open jitter derives
        // from the master seed instead of the process-global counter, so
        // a simulated run replays bit-identically.
        let engine = Arc::new(match &config.seeds {
            Some(tree) => engine.with_jitter_seed(tree.child("breaker.jitter").seed()),
            None => engine,
        });
        let gate = AdmissionGate::new(config.max_in_flight);
        let audit = Mutex::new(AuditLog::new(config.audit_capacity));
        let obs = config.obs.clone();
        let hot = HotCounters::new(&obs);
        let store = match &config.durability {
            Durability::Ephemeral => None,
            Durability::Wal(s) => Some(Arc::clone(s)),
        };
        let mut svc = GSacs {
            repository,
            policies,
            engine,
            base,
            data: Graph::new(),
            inferred: 0,
            degraded: AtomicBool::new(false),
            config,
            gate,
            latency: LatencyHistogram::default(),
            requests: AtomicU64::new(0),
            query_cache: Mutex::new(QueryCache::new(cache_capacity)),
            views: Mutex::new(ViewState::default()),
            audit,
            store,
            audit_sink_errors: AtomicU64::new(0),
            obs,
            hot,
            lint_rejected: None,
        };
        {
            // Construction-time materialization runs inside its own scope
            // so the reasoner's spans/counters are captured even before
            // the first request. A nested scope joins the ambient trace,
            // so a CLI-level scope sees these spans under its TraceId.
            let obs = svc.obs.clone();
            let _scope = obs.scope("gsacs.init");
            svc.rematerialize();
            svc.lint_at_init();
        }
        svc
    }

    /// Like [`GSacs::with_resilience`], but surfaces an init-time lint
    /// rejection ([`LintGate::Enforce`] + error-level findings) as an
    /// error instead of handing back a service that fails closed.
    pub fn try_with_resilience(
        repository: OntoRepository,
        policies: PolicySet,
        reasoner: Box<dyn ReasoningEngine>,
        data: Graph,
        cache_capacity: usize,
        config: ResilienceConfig,
    ) -> Result<GSacs, GsacsError> {
        let svc =
            GSacs::with_resilience(repository, policies, reasoner, data, cache_capacity, config);
        match &svc.lint_rejected {
            Some(m) => Err(GsacsError::LintRejected(m.clone())),
            None => Ok(svc),
        }
    }

    /// Create a fresh durable service: initialize `backend` with a
    /// checkpoint of the assembled initial state (ontologies + `data`,
    /// plus the List-8 encoding of the policy set), then run with
    /// [`Durability::Wal`] so every accepted update is write-ahead logged.
    ///
    /// Fails if the backend already holds a store (use
    /// [`GSacs::recover_with_resilience`] to reattach) or the initial
    /// checkpoint cannot be written.
    #[allow(clippy::too_many_arguments)]
    pub fn create_durable(
        backend: Arc<dyn StorageBackend>,
        store_config: StoreConfig,
        repository: OntoRepository,
        policies: PolicySet,
        reasoner: Box<dyn ReasoningEngine>,
        data: Graph,
        cache_capacity: usize,
        mut config: ResilienceConfig,
    ) -> Result<GSacs, StoreError> {
        let mut base = repository.merged();
        base.extend_from(&data);
        let policy_graph = policy_set_graph(&policies);
        let store = DurableStore::create(backend, store_config, &base, &policy_graph)?;
        config.durability = Durability::Wal(Arc::new(store));
        Ok(GSacs::assemble(
            repository,
            policies,
            reasoner,
            base,
            cache_capacity,
            config,
        ))
    }

    /// Reopen a durable service from `backend`: load the newest valid
    /// checkpoint, replay the WAL suffix (torn tails truncated, interior
    /// corruption fails closed), decode the policy set from its RDF
    /// encoding, and re-materialize entailments with `reasoner`. The
    /// returned [`Recovered`] reports what recovery reconstructed.
    ///
    /// Recovered ontology triples live in the service's base graph rather
    /// than a reconstructed [`OntoRepository`] — checkpoints persist the
    /// merged un-inferred base, which is the single source of truth
    /// updates mutate.
    pub fn recover_with_resilience(
        backend: Arc<dyn StorageBackend>,
        store_config: StoreConfig,
        reasoner: Box<dyn ReasoningEngine>,
        cache_capacity: usize,
        mut config: ResilienceConfig,
    ) -> Result<(GSacs, Recovered), StoreError> {
        let (store, recovered) = DurableStore::open(backend, store_config)?;
        let policies = PolicySet::new(Policy::decode_all(&recovered.policy_graph));
        config.durability = Durability::Wal(Arc::new(store));
        let svc = GSacs::assemble(
            OntoRepository::new(),
            policies,
            reasoner,
            recovered.base.clone(),
            cache_capacity,
            config,
        );
        Ok((svc, recovered))
    }

    /// Run the static-analysis passes the service can check on its own
    /// inputs — structural policy problems, policy conflicts through the
    /// subclass hierarchy, whole-policy-set label analysis (shadowing,
    /// contradictory overlap, entailment leaks, hierarchy monotonicity),
    /// and OWL consistency — over the served dataset.
    /// Instrumented: a `gsacs.lint` span plus `gsacs.lint.*` counters.
    pub fn lint(&self) -> LintReport {
        self.lint_graph(&self.data)
    }

    fn lint_graph(&self, data: &Graph) -> LintReport {
        let span = grdf_obs::span("gsacs.lint");
        let mut diags = crate::conflicts::diagnostics(data, &self.policies);
        diags.extend(crate::labels::diagnostics(data, &self.policies));
        diags.extend(grdf_owl::consistency::lint(data));
        let report = LintReport::from_diagnostics(diags);
        let errors = report.count(Severity::Error);
        let warnings = report.count(Severity::Warning);
        let reg = self.obs.registry();
        reg.counter("gsacs.lint.runs").inc();
        reg.counter("gsacs.lint.errors").add(errors as u64);
        reg.counter("gsacs.lint.warnings").add(warnings as u64);
        drop(span.tag("errors", errors).tag("warnings", warnings));
        report
    }

    /// The construction-time lint gate: audit the findings and, under
    /// [`LintGate::Enforce`], reject the service when any are errors.
    /// Also runs the differential label verifier — label-filtered scans
    /// must equal materialized secure views for every role; a divergence
    /// under Enforce fails the service closed, under Flag it is audited.
    fn lint_at_init(&mut self) {
        if self.config.lint_gate == LintGate::Off {
            return;
        }
        let report = self.lint();
        let summary = format!(
            "{} error(s), {} warning(s)",
            report.count(Severity::Error),
            report.count(Severity::Warning)
        );
        let rejected = self.config.lint_gate == LintGate::Enforce && report.has_errors();
        self.audit_push(AuditEntry {
            role: "system".to_string(),
            action: "lint".to_string(),
            target: format!("init: {summary}"),
            allowed: !rejected,
            trace_id: grdf_obs::current_trace_id().unwrap_or(TraceId::NONE),
        });
        if rejected {
            let first = report
                .diagnostics
                .iter()
                .find(|d| d.severity == Severity::Error)
                .map(std::string::ToString::to_string)
                .unwrap_or_default();
            self.lint_rejected = Some(format!("{summary}; first: {first}"));
            return;
        }
        if !self.policies.policies.is_empty() {
            let ir = crate::labels::LabelIr::compile(&self.data, &self.policies);
            let divergences = ir.verify_label_equivalence(&self.data, &self.policies);
            if !divergences.is_empty() {
                let detail = format!(
                    "label/view divergence ({}): {}",
                    divergences.len(),
                    divergences[0]
                );
                let fail = self.config.lint_gate == LintGate::Enforce;
                self.audit_push(AuditEntry {
                    role: "system".to_string(),
                    action: "label-verify".to_string(),
                    target: format!("init: {detail}"),
                    allowed: !fail,
                    trace_id: grdf_obs::current_trace_id().unwrap_or(TraceId::NONE),
                });
                if fail {
                    self.lint_rejected = Some(detail);
                }
            }
        }
    }

    /// Rebuild the served dataset from the un-inferred base through the
    /// circuit-breaking engine. On failure the service degrades: it serves
    /// the base graph with conservative views until a later
    /// re-materialization succeeds. Every transition is audited.
    fn rematerialize(&mut self) {
        self.rematerialize_with_budget(self.config.request_budget);
    }

    /// [`GSacs::rematerialize`] under an explicit (already-tightened)
    /// budget, for network callers whose deadline must bound the rebuild.
    fn rematerialize_with_budget(&mut self, budget: Budget) {
        let deadline = Deadline::armed(self.config.clock.clone(), budget);
        let mut materialized = self.base.clone();
        let span = grdf_obs::span("reasoner.materialize").tag("engine", self.engine.name());
        let outcome = self.engine.materialize(&mut materialized, &deadline);
        drop(span.tag("ok", outcome.is_ok()));
        let trace_id = grdf_obs::current_trace_id().unwrap_or(TraceId::NONE);
        match outcome {
            Ok(inferred) => {
                let was_degraded = self.degraded.swap(false, Ordering::AcqRel);
                self.data = materialized;
                self.inferred = inferred;
                if was_degraded {
                    self.audit_push(AuditEntry {
                        role: "system".to_string(),
                        action: "recover".to_string(),
                        target: format!("reasoner {} recovered", self.engine.name()),
                        allowed: true,
                        trace_id,
                    });
                }
            }
            Err(e) => {
                self.degraded.store(true, Ordering::Release);
                self.data = self.base.clone();
                self.inferred = 0;
                self.audit_push(AuditEntry {
                    role: "system".to_string(),
                    action: "degrade".to_string(),
                    target: format!("reasoner unavailable ({e}); serving conservative views"),
                    allowed: false,
                    trace_id,
                });
            }
        }
    }

    /// Name of the plugged-in reasoning engine.
    pub fn reasoner_name(&self) -> &'static str {
        self.engine.name()
    }

    /// The materialized dataset (ontologies + instance data + inferences;
    /// un-inferred base when degraded).
    pub fn dataset(&self) -> &Graph {
        &self.data
    }

    /// The un-inferred base graph the service serves from — the durable
    /// contract: a checkpoint plus WAL replay must reconstruct exactly
    /// this (the simulation's durability oracle compares against it).
    pub fn base_graph(&self) -> &Graph {
        &self.base
    }

    /// Whether the service is degraded (reasoner unavailable).
    pub fn is_degraded(&self) -> bool {
        self.degraded.load(Ordering::Acquire)
    }

    /// The secure view for a role (cached). Concurrent first requests for
    /// a role build its view once: the build happens under the cache lock.
    pub fn view_for(&self, role: &str) -> Arc<Graph> {
        let mut state = self.views.lock();
        if let Some(v) = state.views.get(role) {
            return Arc::clone(v);
        }
        *state.builds.entry(role.to_string()).or_insert(0) += 1;
        let (view, stats, mut trace) = if self.is_degraded() {
            conservative_view_explained(&self.data, &self.policies, role)
        } else {
            secure_view_explained(&self.data, &self.policies, role)
        };
        trace.trace_id = grdf_obs::current_trace_id().unwrap_or(TraceId::NONE);
        let view = Arc::new(view);
        state.views.insert(role.to_string(), Arc::clone(&view));
        state.stats.insert(role.to_string(), stats);
        state.traces.insert(role.to_string(), trace);
        view
    }

    /// The decision trace from a role's most recent view build: which
    /// policies were consulted, which permit/deny rules matched, and the
    /// inference steps that connected resources to policy targets.
    pub fn decision_trace_for(&self, role: &str) -> Option<DecisionTrace> {
        self.views.lock().traces.get(role).cloned()
    }

    /// The service's observability context (metrics registry + trace
    /// sink).
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Declared service-level objectives (from the resilience config);
    /// the server layer evaluates these for its degraded-admission hook.
    pub fn slos(&self) -> &[grdf_obs::Objective] {
        &self.config.slos
    }

    /// View construction statistics for a role (if its view was built).
    pub fn view_stats_for(&self, role: &str) -> Option<ViewStats> {
        self.views.lock().stats.get(role).copied()
    }

    /// Cumulative number of times a role's view was (re)built.
    pub fn view_builds_for(&self, role: &str) -> u64 {
        self.views.lock().builds.get(role).copied().unwrap_or(0)
    }

    fn inject(&self, stage: Stage) -> Result<(), GsacsError> {
        match &self.config.fault_injector {
            Some(f) => f.inject(stage, self.config.clock.as_ref()),
            None => Ok(()),
        }
    }

    /// Record a security decision: tee it to the durable JSONL sink (when
    /// configured) and push it onto the in-memory ring. A failed append is
    /// retried a bounded number of times with doubling backoff (slept on
    /// the injected clock) — transient sink hiccups lose no audit lines —
    /// but a persistently failing sink is observability loss, never a
    /// denial: the exhausted attempt is counted, not raised, and decision
    /// handling proceeds. Ring overflow (the push evicting the oldest
    /// entry) is surfaced on the `gsacs.audit.dropped` metric so silent
    /// loss is visible.
    fn audit_push(&self, entry: AuditEntry) {
        /// Retries after the first failed append (3 total attempts).
        const SINK_RETRIES: u32 = 2;
        /// First backoff; doubles per retry.
        const SINK_BACKOFF_BASE: Duration = Duration::from_millis(1);
        if let Some(store) = &self.store {
            let line = audit_entry_json(&entry);
            let mut ok = store.append_audit_line(&line).is_ok();
            let mut attempt = 0;
            while !ok && attempt < SINK_RETRIES {
                self.config
                    .clock
                    .sleep(SINK_BACKOFF_BASE * 2u32.saturating_pow(attempt));
                grdf_obs::incr("gsacs.audit.sink_retries");
                // Windowed tee: lets the sim's bounded-retry-storm oracle
                // (and burn-rate alerting) see retry bursts in-window
                // instead of only as a lifetime total.
                grdf_obs::win_add("gsacs.audit.sink_retries", 1);
                ok = store.append_audit_line(&line).is_ok();
                attempt += 1;
            }
            if !ok {
                self.audit_sink_errors.fetch_add(1, Ordering::Relaxed);
                grdf_obs::incr("gsacs.audit.sink_errors");
            }
        }
        let mut log = self.audit.lock();
        let before = log.dropped();
        log.push(entry);
        if log.dropped() > before {
            grdf_obs::incr("gsacs.audit.dropped");
        }
    }

    /// Rotate the durable store to a fresh checkpoint when the active WAL
    /// segment has crossed the configured threshold. Called after applied
    /// updates; failure keeps the (still-valid) old checkpoint + longer
    /// WAL, so it is audited but does not fail the update.
    fn checkpoint_if_due(&self, trace_id: TraceId) {
        let Some(store) = &self.store else { return };
        if !store.should_checkpoint() {
            return;
        }
        let policy_graph = policy_set_graph(&self.policies);
        let ckpt_span = grdf_obs::span("store.ckpt.rotate").tag("triples", self.base.len());
        let rotated = store.checkpoint(&self.base, &policy_graph);
        drop(ckpt_span.tag("ok", rotated.is_ok()));
        match rotated {
            Ok(seq) => self.audit_push(AuditEntry {
                role: "system".to_string(),
                action: "checkpoint".to_string(),
                target: format!("rotated to checkpoint {seq}"),
                allowed: true,
                trace_id,
            }),
            Err(e) => {
                grdf_obs::incr("gsacs.ckpt.failed");
                self.audit_push(AuditEntry {
                    role: "system".to_string(),
                    action: "checkpoint".to_string(),
                    target: format!("checkpoint failed: {e}"),
                    allowed: false,
                    trace_id,
                });
            }
        }
    }

    /// The durable store backing this service, when configured.
    pub fn durable_store(&self) -> Option<&Arc<DurableStore>> {
        self.store.as_ref()
    }

    /// This boot's run id (durable services only; monotonic across
    /// restarts of the same store directory).
    pub fn run_id(&self) -> Option<u64> {
        self.store.as_ref().map(|s| s.run_id())
    }

    /// Failed appends to the durable audit sink since construction.
    pub fn audit_sink_errors(&self) -> u64 {
        self.audit_sink_errors.load(Ordering::Relaxed)
    }

    /// Handle a client request: admission → cache lookup → secure view →
    /// deadline-bounded query. Fail-closed: every outcome, success or
    /// failure, produces exactly one audit entry, and no error path
    /// returns data.
    pub fn handle(&self, request: &ClientRequest) -> Result<QueryResult, GsacsError> {
        self.handle_with_budget(request, Budget::UNLIMITED)
    }

    /// [`GSacs::handle`] with a caller-supplied budget (e.g. a network
    /// request's `Deadline-Ms` header). The effective deadline is the
    /// *stricter* of `budget` and the service-wide request budget — a
    /// remote caller can tighten its own deadline but never extend the
    /// service's, and the deadline propagates into view construction,
    /// query evaluation, and the reasoner fixpoint.
    pub fn handle_with_budget(
        &self,
        request: &ClientRequest,
        budget: Budget,
    ) -> Result<QueryResult, GsacsError> {
        let scope = self.obs.scope("gsacs.request");
        self.hot.requests.inc();
        // The HotCounters handles bypass the registry lookup *and* the
        // thread-local window tee, so per-tenant attribution needs the
        // explicit window-only tee beside each of them.
        grdf_obs::win_add("gsacs.requests", 1);
        self.requests.fetch_add(1, Ordering::Relaxed);
        let start = self.config.clock.now();
        let result = self.handle_inner(request, budget.tighter(self.config.request_budget));
        let wall = self.config.clock.now().saturating_sub(start);
        self.latency.record(wall);
        grdf_obs::win_observe(
            "gsacs.wall_us",
            u64::try_from(wall.as_micros()).unwrap_or(u64::MAX),
        );
        if result.is_err() {
            self.hot.errors.inc();
            grdf_obs::win_add("gsacs.errors", 1);
        }
        if grdf_obs::tracing_active() {
            grdf_obs::tag_current("role", &request.role);
            grdf_obs::tag_current("ok", result.is_ok());
            if self.is_degraded() {
                grdf_obs::tag_current("degraded", true);
            }
        }
        self.audit_push(AuditEntry {
            role: request.role.clone(),
            action: "query".to_string(),
            target: request.query.clone(),
            allowed: result.is_ok(),
            trace_id: scope.trace_id(),
        });
        result
    }

    fn handle_inner(
        &self,
        request: &ClientRequest,
        budget: Budget,
    ) -> Result<QueryResult, GsacsError> {
        if let Some(m) = &self.lint_rejected {
            return Err(GsacsError::LintRejected(m.clone()));
        }
        let admission = grdf_obs::span("gsacs.admission");
        let _permit = self.gate.try_acquire()?;
        let deadline = Deadline::armed(self.config.clock.clone(), budget);
        self.inject(Stage::Admission)?;
        deadline.check().map_err(|_| GsacsError::DeadlineExceeded {
            stage: Stage::Admission,
        })?;
        drop(admission);
        let cache_span = grdf_obs::span("gsacs.cache");
        if let Some(hit) = self.query_cache.lock().get(&request.role, &request.query) {
            self.hot.cache_hit.inc();
            grdf_obs::win_add("gsacs.cache.hit", 1);
            drop(cache_span.tag("result", "hit"));
            return Ok(hit);
        }
        self.hot.cache_miss.inc();
        grdf_obs::win_add("gsacs.cache.miss", 1);
        drop(cache_span.tag("result", "miss"));
        self.inject(Stage::View)?;
        deadline
            .check()
            .map_err(|_| GsacsError::DeadlineExceeded { stage: Stage::View })?;
        let view = self.view_for(&request.role);
        // Per-tenant cost accounting: the view is the candidate set the
        // query evaluator walks, so its size is the "triples scanned"
        // charge for this request.
        grdf_obs::win_add("gsacs.scanned", view.len() as u64);
        if grdf_obs::tracing_active() {
            let span = grdf_obs::span("gsacs.decision");
            if let Some(t) = self.decision_trace_for(&request.role) {
                drop(
                    span.tag("permitting", t.permitting.len())
                        .tag("denying", t.denying.len())
                        .tag("granted", t.granted),
                );
            }
        }
        self.inject(Stage::Query)?;
        let result = execute_with_deadline(&view, &request.query, &deadline)?;
        self.query_cache
            .lock()
            .put(&request.role, &request.query, result.clone());
        Ok(result)
    }

    /// Handle a mutation: every operation is policy-checked with the
    /// matching action (`Edit` for inserts, `Delete` for deletions); on the
    /// first refusal nothing is applied. Successful updates mutate the
    /// un-inferred base, re-materialize from it (so deleted triples cannot
    /// leave stale entailments behind), and invalidate the caches.
    pub fn handle_update(&mut self, request: &UpdateRequest) -> UpdateOutcome {
        self.handle_update_with_budget(request, Budget::UNLIMITED)
    }

    /// [`GSacs::handle_update`] with a caller-supplied budget bounding the
    /// post-apply materialization (incremental or full rebuild); as with
    /// [`GSacs::handle_with_budget`], the stricter of the caller's and the
    /// service's budget wins. Policy checks and the WAL append are not
    /// deadline-bounded — an accepted batch is never half-applied.
    pub fn handle_update_with_budget(
        &mut self,
        request: &UpdateRequest,
        budget: Budget,
    ) -> UpdateOutcome {
        use crate::policy::{Access, Action};
        let budget = budget.tighter(self.config.request_budget);
        let obs = self.obs.clone();
        let scope = obs.scope("gsacs.update");
        let trace_id = scope.trace_id();
        if let Some(m) = &self.lint_rejected {
            return UpdateOutcome::Denied {
                op_index: 0,
                reason: format!("lint gate rejected service inputs: {m}"),
            };
        }
        // Phase 1: check all ops.
        for (i, op) in request.ops.iter().enumerate() {
            let (triple, action, action_name) = match op {
                UpdateOp::Insert(t) => (t, Action::Edit, "update-insert"),
                UpdateOp::Delete(t) => (t, Action::Delete, "update-delete"),
            };
            let pred = triple.predicate.as_iri().unwrap_or_default().to_string();
            let access =
                self.policies
                    .evaluate(&self.data, &request.role, &triple.subject, &pred, action);
            let allowed = access == Access::Granted;
            self.audit_push(AuditEntry {
                role: request.role.clone(),
                action: action_name.to_string(),
                target: triple.subject.to_string(),
                allowed,
                trace_id,
            });
            if !allowed {
                return UpdateOutcome::Denied {
                    op_index: i + 1,
                    reason: format!(
                        "{action_name} on {} denied for role {} ({access:?})",
                        triple.subject, request.role
                    ),
                };
            }
        }
        // Phase 1.5: the lint gate vets the post-update graph as a whole
        // before anything is applied. The ops land on a tentative copy of
        // the un-inferred base; error-level findings deny the request
        // under `Enforce` and are audited-but-allowed under `Flag`.
        if self.config.lint_gate != LintGate::Off {
            let mut tentative = self.base.clone();
            for op in &request.ops {
                match op {
                    UpdateOp::Insert(t) => {
                        tentative.insert(t.clone());
                    }
                    UpdateOp::Delete(t) => {
                        tentative.remove(t);
                    }
                }
            }
            let report = self.lint_graph(&tentative);
            if report.has_errors() {
                let enforce = self.config.lint_gate == LintGate::Enforce;
                let first = report
                    .diagnostics
                    .iter()
                    .find(|d| d.severity == Severity::Error)
                    .map(std::string::ToString::to_string)
                    .unwrap_or_default();
                self.audit_push(AuditEntry {
                    role: request.role.clone(),
                    action: "lint".to_string(),
                    target: first.clone(),
                    allowed: !enforce,
                    trace_id,
                });
                if enforce {
                    return UpdateOutcome::Denied {
                        op_index: 0,
                        reason: format!(
                            "update would introduce error-level lint findings: {first}"
                        ),
                    };
                }
            }
        }
        // Phase 1.75: write-ahead. The accepted batch is appended to the
        // WAL as one record *before* any in-memory state changes, so a
        // crash at any later point replays exactly this batch on
        // recovery. A failed append poisons the store and denies the
        // update — durability is part of the admission contract, not
        // best-effort.
        if let Some(store) = &self.store {
            let logged: Vec<LoggedOp> = request.ops.iter().map(to_logged).collect();
            let wal_span = grdf_obs::span("store.wal.append").tag("ops", logged.len());
            let appended = store.append_batch(&logged);
            drop(wal_span.tag("ok", appended.is_ok()));
            if let Err(e) = appended {
                grdf_obs::incr("gsacs.update.wal_failed");
                self.audit_push(AuditEntry {
                    role: request.role.clone(),
                    action: "wal-append".to_string(),
                    target: format!("batch of {} op(s)", request.ops.len()),
                    allowed: false,
                    trace_id,
                });
                return UpdateOutcome::Denied {
                    op_index: 0,
                    reason: format!("write-ahead log append failed ({e}); update refused"),
                };
            }
        }
        // Phase 2: apply to the un-inferred base.
        let additive = request
            .ops
            .iter()
            .all(|op| matches!(op, UpdateOp::Insert(_)));
        let mut changed = 0;
        for op in &request.ops {
            match op {
                UpdateOp::Insert(t) => {
                    if self.base.insert(t.clone()) {
                        changed += 1;
                    }
                }
                UpdateOp::Delete(t) => {
                    if self.base.remove(t) {
                        changed += 1;
                    }
                }
            }
        }
        if changed > 0 {
            // Purely-additive batches extend the already-materialized
            // dataset incrementally; deletions (or a degraded service,
            // which serves un-materialized data) force the full rebuild —
            // retraction requires recomputing the fixpoint from the base.
            if additive && !self.is_degraded() {
                self.apply_incremental(&request.ops, budget);
            } else {
                grdf_obs::incr("gsacs.update.full");
                self.rematerialize_with_budget(budget);
                self.invalidate();
            }
            self.checkpoint_if_due(trace_id);
        }
        UpdateOutcome::Applied(changed)
    }

    /// Extend the served dataset with an additive batch: insert the new
    /// triples, run the engine's delta materialization from a generation
    /// marker, and invalidate only the roles whose secure views the delta
    /// can affect. Any engine failure falls back to the full rebuild path
    /// (which handles degradation and auditing).
    fn apply_incremental(&mut self, ops: &[UpdateOp], budget: Budget) {
        let span = grdf_obs::span("gsacs.update.incremental").tag("engine", self.engine.name());
        let deadline = Deadline::armed(self.config.clock.clone(), budget);
        let mark = self.data.generation();
        for op in ops {
            if let UpdateOp::Insert(t) = op {
                self.data.insert(t.clone());
            }
        }
        match self
            .engine
            .materialize_delta(&mut self.data, mark, &deadline)
        {
            Ok(inferred) => {
                self.inferred += inferred;
                let delta = self.data.delta_since(mark);
                let span = span
                    .tag("ok", true)
                    .tag("delta", delta.len())
                    .tag("inferred", inferred);
                if let Some(roles) = self.affected_roles(&delta) {
                    self.invalidate_roles(&roles);
                    drop(span.tag("invalidated_roles", roles.len()));
                } else {
                    // Schema-level delta: every view may change.
                    self.invalidate();
                    drop(span.tag("invalidated_roles", "all"));
                }
                grdf_obs::incr("gsacs.update.incremental");
            }
            Err(e) => {
                drop(span.tag("ok", false).tag("error", e));
                grdf_obs::incr("gsacs.update.full");
                self.rematerialize_with_budget(budget);
                self.invalidate();
            }
        }
    }

    /// The roles whose secure views an additive delta can change, or
    /// `None` when every view must be rebuilt. A role is affected when a
    /// delta triple's subject is (or is typed as) a resource one of the
    /// role's policies governs — permits can reveal the new triples, and
    /// denies can newly suppress the subject's existing ones. Deltas that
    /// touch RDFS/OWL vocabulary change the hierarchy the policy matcher
    /// and view builder consult, so they invalidate everything.
    fn affected_roles(&self, delta: &[Triple]) -> Option<HashSet<String>> {
        let ty = Term::iri(rdf::TYPE);
        let mut roles = HashSet::new();
        for t in delta {
            let pred = t.predicate.as_iri()?;
            if pred.starts_with(vocab_rdfs::NS) || pred.starts_with(vocab_owl::NS) {
                return None;
            }
            for policy in &self.policies.policies {
                if roles.contains(&policy.role) {
                    continue;
                }
                let resource = Term::iri(&policy.resource);
                if t.subject == resource || self.data.has(&t.subject, &ty, &resource) {
                    roles.insert(policy.role.clone());
                }
            }
        }
        Some(roles)
    }

    /// Selective cache invalidation: drop only the named roles' cached
    /// queries and secure views.
    fn invalidate_roles(&self, roles: &HashSet<String>) {
        {
            let mut cache = self.query_cache.lock();
            for role in roles {
                cache.invalidate_role(role);
            }
        }
        let mut views = self.views.lock();
        for role in roles {
            views.views.remove(role);
            views.stats.remove(role);
            views.traces.remove(role);
        }
    }

    /// The retained audit log, oldest first.
    pub fn audit_log(&self) -> Vec<AuditEntry> {
        self.audit.lock().snapshot()
    }

    /// Audit entries dropped by the ring buffer.
    pub fn audit_dropped(&self) -> u64 {
        self.audit.lock().dropped()
    }

    /// Denied entries in the retained audit log.
    pub fn audit_denials(&self) -> Vec<AuditEntry> {
        self.audit
            .lock()
            .entries
            .iter()
            .filter(|e| !e.allowed)
            .cloned()
            .collect()
    }

    /// Query-cache `(hits, misses)`.
    pub fn cache_stats(&self) -> (u64, u64) {
        self.query_cache.lock().stats()
    }

    /// Query-cache lookups (always hits + misses).
    pub fn cache_lookups(&self) -> u64 {
        self.query_cache.lock().lookups()
    }

    /// Query-cache hit rate.
    pub fn cache_hit_rate(&self) -> f64 {
        self.query_cache.lock().hit_rate()
    }

    /// Invalidate caches (after a data change).
    pub fn invalidate(&self) {
        self.query_cache.lock().invalidate();
        let mut views = self.views.lock();
        views.views.clear();
        views.stats.clear();
        views.traces.clear();
    }

    /// A point-in-time health snapshot. When objectives are declared in
    /// [`ResilienceConfig::slos`] and the obs handle carries a window
    /// store, each objective is evaluated here (multi-window burn rate,
    /// see [`grdf_obs::SloEngine`]) and surfaced in the report's `slo`
    /// section.
    pub fn health(&self) -> HealthReport {
        let slo = match self.obs.windows() {
            Some(ws) if !self.config.slos.is_empty() => {
                grdf_obs::SloEngine::new(self.config.slos.clone()).evaluate(ws)
            }
            _ => Vec::new(),
        };
        let (cache_hits, cache_misses) = self.cache_stats();
        let (view_cache_entries, audit_entries, audit_dropped) = {
            let views = self.views.lock();
            let audit = self.audit.lock();
            (views.views.len(), audit.len(), audit.dropped())
        };
        HealthReport {
            reasoner: self.engine.name(),
            breaker: self.engine.state(),
            breaker_trips: self.engine.trips(),
            degraded: self.is_degraded(),
            requests: self.requests.load(Ordering::Relaxed),
            shed: self.gate.shed_total(),
            in_flight: self.gate.in_flight(),
            cache_hits,
            cache_misses,
            cache_hit_rate: self.cache_hit_rate(),
            view_cache_entries,
            audit_entries,
            audit_dropped,
            p50: self.latency.quantile(0.5),
            p99: self.latency.quantile(0.99),
            slo,
        }
    }
}

/// Encode a policy set into its List-8 RDF graph form — the
/// representation checkpoints persist and
/// [`GSacs::recover_with_resilience`] decodes back with
/// [`Policy::decode_all`].
pub fn policy_set_graph(policies: &PolicySet) -> Graph {
    let mut g = Graph::new();
    for p in &policies.policies {
        p.encode(&mut g);
    }
    g
}

fn to_logged(op: &UpdateOp) -> LoggedOp {
    match op {
        UpdateOp::Insert(t) => LoggedOp::Insert(t.clone()),
        UpdateOp::Delete(t) => LoggedOp::Delete(t.clone()),
    }
}

/// One audit entry as a single JSON line for the durable sink.
fn audit_entry_json(entry: &AuditEntry) -> String {
    let mut out = String::with_capacity(96);
    out.push_str("{\"role\":");
    push_json_string(&mut out, &entry.role);
    out.push_str(",\"action\":");
    push_json_string(&mut out, &entry.action);
    out.push_str(",\"target\":");
    push_json_string(&mut out, &entry.target);
    out.push_str(",\"allowed\":");
    out.push_str(if entry.allowed { "true" } else { "false" });
    out.push_str(",\"trace_id\":");
    push_json_string(&mut out, &entry.trace_id.to_string());
    out.push('}');
    out
}

fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ontology::security_ontology;
    use crate::policy::Policy;
    use crate::resilience::{BreakerConfig, BreakerState};
    use grdf_feature::feature::Feature;
    use grdf_feature::rdf_codec::encode_feature;
    use grdf_rdf::vocab::grdf;
    use grdf_runtime::Clock;
    use grdf_runtime::ManualClock;
    use std::time::Duration;

    fn service(cache: usize) -> GSacs {
        service_with(
            cache,
            ResilienceConfig::default(),
            Box::<OwlHorstEngine>::default(),
        )
    }

    fn service_with(
        cache: usize,
        config: ResilienceConfig,
        engine: Box<dyn ReasoningEngine>,
    ) -> GSacs {
        let mut data = Graph::new();
        let mut site = Feature::new(&grdf::app("NTEnergy"), "ChemSite");
        site.set_property("hasSiteName", "NT Energy");
        site.set_property("hasChemCode", "121NR");
        encode_feature(&mut data, &site);
        let mut stream = Feature::new(&grdf::app("WhiteRock"), "Stream");
        stream.set_property("hasObjectID", 11070i64);
        encode_feature(&mut data, &stream);

        let mut repo = OntoRepository::new();
        repo.register("seconto", security_ontology());

        let policies = PolicySet::new(vec![
            Policy::permit_properties(
                &grdf::sec("MainRepPolicy1"),
                &grdf::sec("MainRep"),
                &grdf::app("ChemSite"),
                &[&grdf::iri("isBoundedBy")],
            ),
            Policy::permit(
                &grdf::sec("MainRepPolicy2"),
                &grdf::sec("MainRep"),
                &grdf::app("Stream"),
            ),
            Policy::permit(
                &grdf::sec("E1"),
                &grdf::sec("Emergency"),
                &grdf::app("ChemSite"),
            ),
            Policy::permit(
                &grdf::sec("E2"),
                &grdf::sec("Emergency"),
                &grdf::app("Stream"),
            ),
        ]);
        GSacs::with_resilience(repo, policies, engine, data, cache, config)
    }

    fn chem_query() -> String {
        format!(
            "PREFIX app: <{}>\nSELECT ?c WHERE {{ ?s app:hasChemCode ?c }}",
            grdf::APP_NS
        )
    }

    /// An engine that always fails — a permanently-down reasoner.
    struct FailingEngine;

    impl ReasoningEngine for FailingEngine {
        fn materialize(
            &self,
            _graph: &mut Graph,
            _deadline: &Deadline,
        ) -> Result<usize, EngineError> {
            Err(EngineError::Failed("reasoner down".to_string()))
        }

        fn name(&self) -> &'static str {
            "failing"
        }
    }

    #[test]
    fn roles_get_different_answers() {
        let svc = service(16);
        let main_repair = ClientRequest {
            role: grdf::sec("MainRep"),
            query: chem_query(),
        };
        let emergency = ClientRequest {
            role: grdf::sec("Emergency"),
            query: chem_query(),
        };
        assert_eq!(svc.handle(&main_repair).unwrap().select_rows().len(), 0);
        assert_eq!(svc.handle(&emergency).unwrap().select_rows().len(), 1);
    }

    #[test]
    fn cache_hits_on_repeat() {
        let svc = service(16);
        let req = ClientRequest {
            role: grdf::sec("Emergency"),
            query: chem_query(),
        };
        svc.handle(&req).unwrap();
        svc.handle(&req).unwrap();
        svc.handle(&req).unwrap();
        let (hits, misses) = svc.cache_stats();
        assert_eq!(hits, 2);
        assert_eq!(misses, 1);
        assert!(svc.cache_hit_rate() > 0.6);
        assert_eq!(svc.cache_lookups(), hits + misses);
    }

    #[test]
    fn zero_capacity_disables_cache() {
        let svc = service(0);
        let req = ClientRequest {
            role: grdf::sec("Emergency"),
            query: chem_query(),
        };
        svc.handle(&req).unwrap();
        svc.handle(&req).unwrap();
        let (hits, _) = svc.cache_stats();
        assert_eq!(hits, 0);
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut cache = QueryCache::new(2);
        cache.put("r", "q1", QueryResult::Boolean(true));
        cache.put("r", "q2", QueryResult::Boolean(true));
        assert!(cache.get("r", "q1").is_some()); // q1 now most recent
        cache.put("r", "q3", QueryResult::Boolean(true)); // evicts q2
        assert!(cache.get("r", "q2").is_none());
        assert!(cache.get("r", "q1").is_some());
        assert!(cache.get("r", "q3").is_some());
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn lru_is_correct_under_churn() {
        // Slab indices are recycled through the free list; interleaved
        // evictions and re-inserts must keep the recency list consistent.
        let mut cache = QueryCache::new(3);
        for i in 0..50 {
            let q = format!("q{}", i % 7);
            if cache.get("r", &q).is_none() {
                cache.put("r", &q, QueryResult::Boolean(i % 2 == 0));
            }
            assert!(cache.len() <= 3);
        }
        assert_eq!(cache.lookups(), 50);
        let (hits, misses) = cache.stats();
        assert_eq!(hits + misses, 50);
    }

    #[test]
    fn cache_keys_include_role() {
        let mut cache = QueryCache::new(4);
        cache.put("role-a", "q", QueryResult::Boolean(true));
        assert!(
            cache.get("role-b", "q").is_none(),
            "another role must not see it"
        );
    }

    #[test]
    fn pluggable_reasoner() {
        use grdf_rdf::term::Term;
        use grdf_rdf::vocab::{rdf, rdfs};
        // Data whose class hierarchy implies extra memberships.
        let mut data = Graph::new();
        data.add(
            Term::iri(&grdf::app("Creek")),
            Term::iri(rdfs::SUB_CLASS_OF),
            Term::iri(&grdf::app("Stream")),
        );
        data.add(
            Term::iri(&grdf::app("c1")),
            Term::iri(rdf::TYPE),
            Term::iri(&grdf::app("Creek")),
        );

        let svc = GSacs::new(
            OntoRepository::new(),
            PolicySet::default(),
            Box::<OwlHorstEngine>::default(),
            data.clone(),
            4,
        );
        assert_eq!(svc.reasoner_name(), "owl-horst");
        assert!(svc.inferred > 0, "Creek ⊑ Stream must fire");

        let svc2 = GSacs::new(
            OntoRepository::new(),
            PolicySet::default(),
            Box::new(NoReasoning),
            data,
            4,
        );
        assert_eq!(svc2.reasoner_name(), "none");
        assert_eq!(svc2.inferred, 0);
    }

    #[test]
    fn repository_merges() {
        let mut repo = OntoRepository::new();
        repo.register("sec", security_ontology());
        let mut g = Graph::new();
        g.add(
            grdf_rdf::term::Term::iri("urn:a"),
            grdf_rdf::term::Term::iri("urn:p"),
            grdf_rdf::term::Term::iri("urn:b"),
        );
        repo.register("app", g);
        assert_eq!(repo.names(), vec!["app", "sec"]);
        assert!(repo.get("sec").is_some());
        let merged = repo.merged();
        assert!(merged.len() > security_ontology().len());
    }

    #[test]
    fn view_stats_recorded() {
        let svc = service(4);
        let _ = svc.view_for(&grdf::sec("MainRep"));
        let stats = svc.view_stats_for(&grdf::sec("MainRep")).unwrap();
        assert!(stats.suppressed > 0, "chem data suppressed for main repair");
        assert_eq!(svc.view_builds_for(&grdf::sec("MainRep")), 1);
        let _ = svc.view_for(&grdf::sec("MainRep"));
        assert_eq!(
            svc.view_builds_for(&grdf::sec("MainRep")),
            1,
            "cached view not rebuilt"
        );
    }

    #[test]
    fn invalidate_clears_caches() {
        let svc = service(8);
        let req = ClientRequest {
            role: grdf::sec("Emergency"),
            query: chem_query(),
        };
        svc.handle(&req).unwrap();
        svc.invalidate();
        svc.handle(&req).unwrap();
        let (hits, misses) = svc.cache_stats();
        assert_eq!(hits, 0);
        assert_eq!(misses, 2);
    }

    #[test]
    fn updates_enforced_per_action() {
        use crate::policy::Action;
        use grdf_rdf::term::{Term, Triple};
        let mut data = Graph::new();
        let site = Term::iri(&grdf::app("NTEnergy"));
        data.add(
            site.clone(),
            Term::iri(grdf_rdf::vocab::rdf::TYPE),
            Term::iri(&grdf::app("ChemSite")),
        );
        let editor_policy = crate::policy::Policy {
            action: Action::Edit,
            ..crate::policy::Policy::permit("urn:pe", &grdf::sec("Editor"), &grdf::app("ChemSite"))
        };
        let mut svc = GSacs::new(
            OntoRepository::new(),
            PolicySet::new(vec![editor_policy]),
            Box::new(NoReasoning),
            data,
            4,
        );
        let insert = UpdateOp::Insert(Triple::new(
            site.clone(),
            Term::iri(&grdf::app("hasSiteName")),
            Term::string("NT Energy"),
        ));
        // Editor may insert.
        let out = svc.handle_update(&UpdateRequest {
            role: grdf::sec("Editor"),
            ops: vec![insert.clone()],
        });
        assert_eq!(out, UpdateOutcome::Applied(1));
        // …but not delete (no Delete policy).
        let out = svc.handle_update(&UpdateRequest {
            role: grdf::sec("Editor"),
            ops: vec![UpdateOp::Delete(Triple::new(
                site.clone(),
                Term::iri(&grdf::app("hasSiteName")),
                Term::string("NT Energy"),
            ))],
        });
        assert!(matches!(out, UpdateOutcome::Denied { op_index: 1, .. }));
        // The denied delete left the data intact.
        assert!(svc.dataset().has(
            &site,
            &Term::iri(&grdf::app("hasSiteName")),
            &Term::string("NT Energy")
        ));
        // Strangers may do nothing.
        let out = svc.handle_update(&UpdateRequest {
            role: "urn:nobody".into(),
            ops: vec![insert],
        });
        assert!(matches!(out, UpdateOutcome::Denied { .. }));
    }

    #[test]
    fn update_batches_are_atomic_on_denial() {
        use crate::policy::Action;
        use grdf_rdf::term::{Term, Triple};
        let mut data = Graph::new();
        let a = Term::iri(&grdf::app("a"));
        let b = Term::iri(&grdf::app("b"));
        data.add(
            a.clone(),
            Term::iri(grdf_rdf::vocab::rdf::TYPE),
            Term::iri(&grdf::app("Open")),
        );
        data.add(
            b.clone(),
            Term::iri(grdf_rdf::vocab::rdf::TYPE),
            Term::iri(&grdf::app("Locked")),
        );
        let edit_open = crate::policy::Policy {
            action: Action::Edit,
            ..crate::policy::Policy::permit("urn:pe", "urn:r", &grdf::app("Open"))
        };
        let mut svc = GSacs::new(
            OntoRepository::new(),
            PolicySet::new(vec![edit_open]),
            Box::new(NoReasoning),
            data,
            0,
        );
        let ok_op = UpdateOp::Insert(Triple::new(
            a.clone(),
            Term::iri("urn:p"),
            Term::string("v"),
        ));
        let bad_op = UpdateOp::Insert(Triple::new(b, Term::iri("urn:p"), Term::string("v")));
        let out = svc.handle_update(&UpdateRequest {
            role: "urn:r".into(),
            ops: vec![ok_op, bad_op],
        });
        assert!(matches!(out, UpdateOutcome::Denied { op_index: 2, .. }));
        // The permitted first op must NOT have been applied.
        assert!(!svc
            .dataset()
            .has(&a, &Term::iri("urn:p"), &Term::string("v")));
    }

    #[test]
    fn audit_log_records_decisions() {
        let svc = service(4);
        svc.handle(&ClientRequest {
            role: grdf::sec("Emergency"),
            query: chem_query(),
        })
        .unwrap();
        let log = svc.audit_log();
        assert_eq!(log.len(), 1);
        assert!(log[0].allowed);
        assert_eq!(log[0].action, "query");
        assert!(svc.audit_denials().is_empty());
    }

    #[test]
    fn errors_are_audited_as_denied() {
        let svc = service(4);
        let req = ClientRequest {
            role: grdf::sec("Emergency"),
            query: "NOT SPARQL".into(),
        };
        assert!(matches!(svc.handle(&req), Err(GsacsError::Parse(_))));
        let denials = svc.audit_denials();
        assert_eq!(denials.len(), 1, "failed requests must be audited");
        assert_eq!(denials[0].action, "query");
        assert!(!denials[0].allowed);
    }

    #[test]
    fn audit_ring_buffer_drops_oldest() {
        let config = ResilienceConfig {
            audit_capacity: 2,
            ..ResilienceConfig::default()
        };
        let svc = service_with(4, config, Box::new(NoReasoning));
        for i in 0..3 {
            let _ = svc.handle(&ClientRequest {
                role: grdf::sec("Emergency"),
                query: format!("bad query {i}"),
            });
        }
        let log = svc.audit_log();
        assert_eq!(log.len(), 2, "ring buffer caps retention");
        assert_eq!(svc.audit_dropped(), 1);
        assert!(
            log[0].target.contains("bad query 1"),
            "oldest entry dropped first"
        );
    }

    #[test]
    fn stale_entailments_are_retracted_on_delete() {
        use grdf_rdf::term::{Term, Triple};
        use grdf_rdf::vocab::{rdf, rdfs};
        let mut data = Graph::new();
        let creek = Term::iri(&grdf::app("Creek"));
        let stream = Term::iri(&grdf::app("Stream"));
        let c1 = Term::iri(&grdf::app("c1"));
        data.add(creek.clone(), Term::iri(rdfs::SUB_CLASS_OF), stream.clone());
        data.add(c1.clone(), Term::iri(rdf::TYPE), creek.clone());
        let delete_all = crate::policy::Policy {
            action: crate::policy::Action::Delete,
            ..crate::policy::Policy::permit("urn:pd", "urn:admin", &grdf::app("Creek"))
        };
        let mut svc = GSacs::new(
            OntoRepository::new(),
            PolicySet::new(vec![delete_all]),
            Box::<OwlHorstEngine>::default(),
            data,
            4,
        );
        let inferred_triple = Triple::new(c1.clone(), Term::iri(rdf::TYPE), stream.clone());
        assert!(
            svc.dataset().has(&c1, &Term::iri(rdf::TYPE), &stream),
            "entailment present"
        );
        // Deleting the asserted type must retract the inferred one too.
        let out = svc.handle_update(&UpdateRequest {
            role: "urn:admin".into(),
            ops: vec![UpdateOp::Delete(Triple::new(
                c1.clone(),
                Term::iri(rdf::TYPE),
                creek.clone(),
            ))],
        });
        assert_eq!(out, UpdateOutcome::Applied(1));
        assert!(
            !svc.dataset().has(
                &inferred_triple.subject,
                &inferred_triple.predicate,
                &inferred_triple.object
            ),
            "stale entailment must not survive re-materialization"
        );
        assert_eq!(
            svc.inferred, 0,
            "inferred counter reflects the rebuild, not a running sum"
        );
    }

    #[test]
    fn successful_update_invalidates_query_cache() {
        use crate::policy::Action;
        use grdf_rdf::term::{Term, Triple};
        let mut data = Graph::new();
        let site = Term::iri(&grdf::app("s1"));
        data.add(
            site.clone(),
            Term::iri(grdf_rdf::vocab::rdf::TYPE),
            Term::iri(&grdf::app("ChemSite")),
        );
        let view_all = crate::policy::Policy::permit("urn:v", "urn:r", &grdf::app("ChemSite"));
        let edit_all = crate::policy::Policy {
            action: Action::Edit,
            ..crate::policy::Policy::permit("urn:e", "urn:r", &grdf::app("ChemSite"))
        };
        let mut svc = GSacs::new(
            OntoRepository::new(),
            PolicySet::new(vec![view_all, edit_all]),
            Box::new(NoReasoning),
            data,
            8,
        );
        let q = format!(
            "PREFIX app: <{}>\nSELECT ?n WHERE {{ ?s app:hasSiteName ?n }}",
            grdf::APP_NS
        );
        let before = svc
            .handle(&ClientRequest {
                role: "urn:r".into(),
                query: q.clone(),
            })
            .unwrap();
        assert_eq!(before.select_rows().len(), 0);
        svc.handle_update(&UpdateRequest {
            role: "urn:r".into(),
            ops: vec![UpdateOp::Insert(Triple::new(
                site,
                Term::iri(&grdf::app("hasSiteName")),
                Term::string("New Name"),
            ))],
        });
        let after = svc
            .handle(&ClientRequest {
                role: "urn:r".into(),
                query: q,
            })
            .unwrap();
        assert_eq!(
            after.select_rows().len(),
            1,
            "stale cache must have been dropped"
        );
    }

    #[test]
    fn additive_update_materializes_incrementally() {
        use grdf_rdf::term::{Term, Triple};
        use grdf_rdf::vocab::{rdf, rdfs};
        let mut onto = Graph::new();
        let creek = Term::iri(&grdf::app("Creek"));
        let stream = Term::iri(&grdf::app("Stream"));
        onto.add(creek.clone(), Term::iri(rdfs::SUB_CLASS_OF), stream.clone());
        let mut repo = OntoRepository::new();
        repo.register("hydro", onto);
        let c2 = Term::iri(&grdf::app("c2"));
        let edit_c2 = crate::policy::Policy {
            action: crate::policy::Action::Edit,
            ..Policy::permit("urn:pe", "urn:editor", &grdf::app("c2"))
        };
        let mut svc = GSacs::new(
            repo,
            PolicySet::new(vec![edit_c2]),
            Box::<OwlHorstEngine>::default(),
            Graph::new(),
            4,
        );
        let incremental = svc.obs().registry().counter("gsacs.update.incremental");
        let full = svc.obs().registry().counter("gsacs.update.full");
        assert_eq!((incremental.get(), full.get()), (0, 0));
        // Additive insert: the delta path runs and derives the entailment.
        let out = svc.handle_update(&UpdateRequest {
            role: "urn:editor".into(),
            ops: vec![UpdateOp::Insert(Triple::new(
                c2.clone(),
                Term::iri(rdf::TYPE),
                creek.clone(),
            ))],
        });
        assert_eq!(out, UpdateOutcome::Applied(1));
        assert_eq!((incremental.get(), full.get()), (1, 0));
        assert!(
            svc.dataset().has(&c2, &Term::iri(rdf::TYPE), &stream),
            "incremental update must still materialize entailments"
        );
        // The incremental result equals a from-scratch rebuild.
        let mut scratch = svc.base.clone();
        Reasoner::default().materialize(&mut scratch);
        assert_eq!(*svc.dataset(), scratch);
        // A deletion forces the full rebuild path.
        let delete_c2 = crate::policy::Policy {
            action: crate::policy::Action::Delete,
            ..Policy::permit("urn:pd", "urn:editor", &grdf::app("c2"))
        };
        svc.policies.push(delete_c2);
        let out = svc.handle_update(&UpdateRequest {
            role: "urn:editor".into(),
            ops: vec![UpdateOp::Delete(Triple::new(
                c2.clone(),
                Term::iri(rdf::TYPE),
                creek,
            ))],
        });
        assert_eq!(out, UpdateOutcome::Applied(1));
        assert_eq!((incremental.get(), full.get()), (1, 1));
        assert!(
            !svc.dataset().has(&c2, &Term::iri(rdf::TYPE), &stream),
            "deletion retracts the entailment via the full rebuild"
        );
    }

    #[test]
    fn incremental_update_preserves_unaffected_role_caches() {
        use grdf_rdf::term::{Term, Triple};
        use grdf_rdf::vocab::rdf;
        let mut data = Graph::new();
        let site = Term::iri(&grdf::app("s1"));
        let brook = Term::iri(&grdf::app("b1"));
        data.add(
            site.clone(),
            Term::iri(rdf::TYPE),
            Term::iri(&grdf::app("ChemSite")),
        );
        data.add(
            brook.clone(),
            Term::iri(rdf::TYPE),
            Term::iri(&grdf::app("Stream")),
        );
        let policies = PolicySet::new(vec![
            Policy::permit("urn:v1", "urn:chem-viewer", &grdf::app("ChemSite")),
            Policy::permit("urn:v2", "urn:stream-viewer", &grdf::app("Stream")),
            crate::policy::Policy {
                action: crate::policy::Action::Edit,
                ..Policy::permit("urn:e1", "urn:chem-viewer", &grdf::app("ChemSite"))
            },
        ]);
        let mut svc = GSacs::new(
            OntoRepository::new(),
            policies,
            Box::new(NoReasoning),
            data,
            8,
        );
        svc.view_for("urn:chem-viewer");
        svc.view_for("urn:stream-viewer");
        assert_eq!(svc.view_builds_for("urn:chem-viewer"), 1);
        assert_eq!(svc.view_builds_for("urn:stream-viewer"), 1);
        // Additive update touching only ChemSite resources.
        let out = svc.handle_update(&UpdateRequest {
            role: "urn:chem-viewer".into(),
            ops: vec![UpdateOp::Insert(Triple::new(
                site,
                Term::iri(&grdf::app("hasSiteName")),
                Term::string("NT Energy"),
            ))],
        });
        assert_eq!(out, UpdateOutcome::Applied(1));
        // Affected role: view dropped and rebuilt on next access.
        svc.view_for("urn:chem-viewer");
        assert_eq!(svc.view_builds_for("urn:chem-viewer"), 2);
        // Unaffected role: cached view survives the update.
        svc.view_for("urn:stream-viewer");
        assert_eq!(
            svc.view_builds_for("urn:stream-viewer"),
            1,
            "selective invalidation must not evict unaffected roles"
        );
    }

    #[test]
    fn incremental_update_emits_span() {
        use grdf_rdf::term::{Term, Triple};
        use grdf_rdf::vocab::rdf;
        let mut data = Graph::new();
        let site = Term::iri(&grdf::app("s1"));
        data.add(
            site.clone(),
            Term::iri(rdf::TYPE),
            Term::iri(&grdf::app("ChemSite")),
        );
        let config = ResilienceConfig {
            obs: Obs::with_tracing(16),
            ..ResilienceConfig::default()
        };
        let policies = PolicySet::new(vec![crate::policy::Policy {
            action: crate::policy::Action::Edit,
            ..Policy::permit("urn:e1", "urn:r", &grdf::app("ChemSite"))
        }]);
        let mut svc = GSacs::with_resilience(
            OntoRepository::new(),
            policies,
            Box::<OwlHorstEngine>::default(),
            data,
            4,
            config,
        );
        svc.handle_update(&UpdateRequest {
            role: "urn:r".into(),
            ops: vec![UpdateOp::Insert(Triple::new(
                site,
                Term::iri(&grdf::app("hasSiteName")),
                Term::string("NT Energy"),
            ))],
        });
        let records = svc.obs().sink().records();
        let spans: Vec<_> = records
            .iter()
            .flat_map(|r| r.spans_named("gsacs.update.incremental"))
            .collect();
        assert_eq!(spans.len(), 1, "additive update emits the incremental span");
        assert_eq!(spans[0].tag("ok"), Some("true"));
        assert_eq!(spans[0].tag("invalidated_roles"), Some("1"));
        assert!(
            records
                .iter()
                .all(|r| r.spans_named("reasoner.materialize").len() <= 1),
            "no full re-materialization inside the update trace"
        );
    }

    #[test]
    fn bad_query_surfaces_error() {
        let svc = service(4);
        let req = ClientRequest {
            role: grdf::sec("Emergency"),
            query: "NOT SPARQL".into(),
        };
        assert!(svc.handle(&req).is_err());
    }

    #[test]
    fn failed_reasoner_degrades_but_still_serves() {
        let clock = Arc::new(ManualClock::new());
        let config = ResilienceConfig {
            clock: clock.clone(),
            breaker: BreakerConfig {
                failure_threshold: 1,
                cooldown: Duration::from_secs(30),
                half_open_successes: 1,
                half_open_jitter: 0.0,
            },
            ..ResilienceConfig::default()
        };
        let svc = service_with(8, config, Box::new(FailingEngine));
        assert!(
            svc.is_degraded(),
            "construction-time engine failure degrades"
        );
        let health = svc.health();
        assert!(health.degraded);
        assert_eq!(
            health.breaker,
            BreakerState::Open,
            "one failure trips threshold 1"
        );
        // The degradation itself is audited.
        let denials = svc.audit_denials();
        assert!(denials
            .iter()
            .any(|e| e.action == "degrade" && e.role == "system"));
        // Direct (non-inferred) data is still served under conservative
        // views: Emergency's permits need no inference here.
        let req = ClientRequest {
            role: grdf::sec("Emergency"),
            query: chem_query(),
        };
        assert_eq!(svc.handle(&req).unwrap().select_rows().len(), 1);
    }

    #[test]
    fn degraded_service_recovers_when_engine_heals() {
        use grdf_rdf::term::{Term, Triple};
        /// Fails the first `n` calls, then works.
        struct HealingEngine {
            failures_left: Mutex<u32>,
        }
        impl ReasoningEngine for HealingEngine {
            fn materialize(
                &self,
                graph: &mut Graph,
                deadline: &Deadline,
            ) -> Result<usize, EngineError> {
                let mut left = self.failures_left.lock();
                if *left > 0 {
                    *left -= 1;
                    return Err(EngineError::Failed("warming up".to_string()));
                }
                OwlHorstEngine::default().materialize(graph, deadline)
            }
            fn name(&self) -> &'static str {
                "healing"
            }
        }

        let clock = Arc::new(ManualClock::new());
        let config = ResilienceConfig {
            clock: clock.clone(),
            retry: crate::resilience::RetryPolicy {
                max_attempts: 1,
                backoff_base: Duration::from_millis(1),
            },
            ..ResilienceConfig::default()
        };
        let mut data = Graph::new();
        let site = Term::iri(&grdf::app("s1"));
        data.add(
            site.clone(),
            Term::iri(grdf_rdf::vocab::rdf::TYPE),
            Term::iri(&grdf::app("ChemSite")),
        );
        let edit_all = crate::policy::Policy {
            action: crate::policy::Action::Edit,
            ..crate::policy::Policy::permit("urn:e", "urn:r", &grdf::app("ChemSite"))
        };
        let mut svc = GSacs::with_resilience(
            OntoRepository::new(),
            PolicySet::new(vec![edit_all]),
            Box::new(HealingEngine {
                failures_left: Mutex::new(1),
            }),
            data,
            4,
            config,
        );
        assert!(svc.is_degraded());
        // A successful update re-materializes through the healed engine.
        let out = svc.handle_update(&UpdateRequest {
            role: "urn:r".into(),
            ops: vec![UpdateOp::Insert(Triple::new(
                site,
                Term::iri(&grdf::app("hasSiteName")),
                Term::string("n"),
            ))],
        });
        assert_eq!(out, UpdateOutcome::Applied(1));
        assert!(
            !svc.is_degraded(),
            "successful re-materialization clears degradation"
        );
        let log = svc.audit_log();
        assert!(log.iter().any(|e| e.action == "recover" && e.allowed));
    }

    #[test]
    fn health_report_is_coherent() {
        let svc = service(16);
        let req = ClientRequest {
            role: grdf::sec("Emergency"),
            query: chem_query(),
        };
        svc.handle(&req).unwrap();
        svc.handle(&req).unwrap();
        let _ = svc.handle(&ClientRequest {
            role: grdf::sec("Emergency"),
            query: "NOT SPARQL".into(),
        });
        let h = svc.health();
        assert_eq!(h.reasoner, "owl-horst");
        assert_eq!(h.breaker, BreakerState::Closed);
        assert!(!h.degraded);
        assert_eq!(h.requests, 3);
        assert_eq!(h.shed, 0);
        assert_eq!(h.in_flight, 0);
        assert_eq!(h.cache_hits + h.cache_misses, svc.cache_lookups());
        assert_eq!(h.audit_entries, 3, "every request audited exactly once");
        assert_eq!(h.audit_dropped, 0);
        assert!(h.slo.is_empty(), "no objectives declared, no slo section");
        assert!(!h.render().is_empty());
    }

    #[test]
    fn health_evaluates_declared_slos_on_the_window_store() {
        let clock = Arc::new(ManualClock::new());
        let config = ResilienceConfig {
            clock: Arc::clone(&clock) as Arc<dyn Clock>,
            obs: grdf_obs::Obs::new().with_windows(
                grdf_obs::WindowConfig::default(),
                Arc::clone(&clock) as Arc<dyn Clock>,
            ),
            slos: vec![
                grdf_obs::Objective::parse("wall: p99(gsacs.wall_us) < 60s over 1m").unwrap(),
                grdf_obs::Objective::parse(
                    "errors: rate(gsacs.errors) / rate(gsacs.requests) < 50% over 1m",
                )
                .unwrap(),
            ],
            ..ResilienceConfig::default()
        };
        let svc = service_with(16, config, Box::<OwlHorstEngine>::default());
        let req = ClientRequest {
            role: grdf::sec("Emergency"),
            query: chem_query(),
        };
        svc.handle(&req).unwrap();
        svc.handle(&req).unwrap();
        let h = svc.health();
        assert_eq!(h.slo.len(), 2);
        assert_eq!(h.slo[0].name, "wall");
        assert_eq!(h.slo[0].state, grdf_obs::SloState::Ok);
        assert_eq!(h.slo[1].state, grdf_obs::SloState::Ok);
        assert!(!h.slo_burning());
        assert!(h.render().contains("slo:"));
        assert!(h.to_json().contains("\"slo\": [{\"name\": \"wall\""));
        // Every request now fails: the error-budget objective burns on
        // both windows (the fast window *is* all history so far).
        for _ in 0..50 {
            let _ = svc.handle(&ClientRequest {
                role: grdf::sec("Emergency"),
                query: "NOT SPARQL".into(),
            });
        }
        let h = svc.health();
        assert_eq!(
            h.slo[1].state,
            grdf_obs::SloState::Burning,
            "{:?}",
            h.slo[1]
        );
        assert!(h.slo_burning());
        assert!(h.to_json().contains("\"state\": \"burning\""));
    }

    /// A minimal service whose policy set carries an error-level lint
    /// finding (S005: empty role designator).
    fn broken_policy_service(gate: crate::resilience::LintGate) -> GSacs {
        let config = ResilienceConfig {
            lint_gate: gate,
            ..ResilienceConfig::default()
        };
        let policies = PolicySet::new(vec![
            crate::policy::Policy::permit("urn:ok", &grdf::sec("Emergency"), &grdf::app("Stream")),
            crate::policy::Policy::permit("urn:bad", "", &grdf::app("Stream")),
        ]);
        GSacs::with_resilience(
            OntoRepository::new(),
            policies,
            Box::new(NoReasoning),
            Graph::new(),
            4,
            config,
        )
    }

    #[test]
    fn lint_reports_policy_defects() {
        use grdf_rdf::diagnostic::LintCode;
        let svc = broken_policy_service(crate::resilience::LintGate::Off);
        let report = svc.lint();
        assert!(report.has_errors());
        assert_eq!(report.with_code(LintCode::EmptyDesignator).len(), 1);
        assert!(
            svc.obs().registry().counter("gsacs.lint.runs").get() >= 1,
            "lint run is instrumented"
        );
    }

    #[test]
    fn lint_gate_flag_audits_but_serves() {
        let svc = broken_policy_service(crate::resilience::LintGate::Flag);
        let log = svc.audit_log();
        let lint_entries: Vec<_> = log.iter().filter(|e| e.action == "lint").collect();
        assert_eq!(lint_entries.len(), 1);
        assert!(lint_entries[0].allowed, "Flag records but does not reject");
        assert!(lint_entries[0].target.contains("error(s)"));
        // The service still serves.
        let req = ClientRequest {
            role: grdf::sec("Emergency"),
            query: chem_query(),
        };
        assert!(svc.handle(&req).is_ok());
    }

    #[test]
    fn lint_gate_enforce_fails_closed_at_init() {
        let svc = broken_policy_service(crate::resilience::LintGate::Enforce);
        let req = ClientRequest {
            role: grdf::sec("Emergency"),
            query: chem_query(),
        };
        let err = svc.handle(&req).unwrap_err();
        assert!(matches!(err, GsacsError::LintRejected(_)), "{err}");
        assert!(err.to_string().contains("lint gate"), "{err}");
        // The rejection itself is audited as denied.
        assert!(svc
            .audit_denials()
            .iter()
            .any(|e| e.action == "lint" && e.role == "system"));
        // The Result constructor surfaces the rejection eagerly.
        let config = ResilienceConfig {
            lint_gate: crate::resilience::LintGate::Enforce,
            ..ResilienceConfig::default()
        };
        let out = GSacs::try_with_resilience(
            OntoRepository::new(),
            PolicySet::new(vec![crate::policy::Policy::permit(
                "urn:bad",
                "",
                &grdf::app("Stream"),
            )]),
            Box::new(NoReasoning),
            Graph::new(),
            4,
            config,
        );
        assert!(matches!(out, Err(GsacsError::LintRejected(_))));
    }

    #[test]
    fn lint_gate_enforce_denies_bad_updates() {
        use crate::policy::Action;
        use grdf_rdf::term::{Term, Triple};
        use grdf_rdf::vocab::{owl, rdf};
        let mut data = Graph::new();
        let x = Term::iri(&grdf::app("x"));
        data.add(
            x.clone(),
            Term::iri(rdf::TYPE),
            Term::iri(&grdf::app("Open")),
        );
        let edit_open = crate::policy::Policy {
            action: Action::Edit,
            ..crate::policy::Policy::permit("urn:pe", "urn:r", &grdf::app("Open"))
        };
        let config = ResilienceConfig {
            lint_gate: crate::resilience::LintGate::Enforce,
            ..ResilienceConfig::default()
        };
        let mut svc = GSacs::with_resilience(
            OntoRepository::new(),
            PolicySet::new(vec![edit_open]),
            Box::new(NoReasoning),
            data,
            4,
            config,
        );
        assert!(svc.lint().is_clean(), "inputs start clean");
        // Typing x as owl:Nothing is an error-level finding (G014); the
        // gate must refuse the update before it lands.
        let bad = UpdateOp::Insert(Triple::new(
            x.clone(),
            Term::iri(rdf::TYPE),
            Term::iri(owl::NOTHING),
        ));
        let out = svc.handle_update(&UpdateRequest {
            role: "urn:r".into(),
            ops: vec![bad],
        });
        match out {
            UpdateOutcome::Denied { op_index, reason } => {
                assert_eq!(op_index, 0, "whole-request refusal");
                assert!(reason.contains("G014"), "{reason}");
            }
            other => panic!("expected lint denial, got {other:?}"),
        }
        assert!(
            !svc.dataset()
                .has(&x, &Term::iri(rdf::TYPE), &Term::iri(owl::NOTHING)),
            "denied op must not have been applied"
        );
        // A harmless update still goes through the gate.
        let ok = UpdateOp::Insert(Triple::new(
            x.clone(),
            Term::iri(&grdf::app("hasSiteName")),
            Term::string("n"),
        ));
        let out = svc.handle_update(&UpdateRequest {
            role: "urn:r".into(),
            ops: vec![ok],
        });
        assert_eq!(out, UpdateOutcome::Applied(1));
    }

    // --- durability -----------------------------------------------------

    use grdf_store::{CrashBackend, MemBackend};

    /// A minimal editable world: one typed site plus an `Editor` role that
    /// may both insert and delete on it.
    fn editable_fixture() -> (Graph, PolicySet, Term) {
        use crate::policy::Action;
        let mut data = Graph::new();
        let site = Term::iri(&grdf::app("NTEnergy"));
        data.add(
            site.clone(),
            Term::iri(grdf_rdf::vocab::rdf::TYPE),
            Term::iri(&grdf::app("ChemSite")),
        );
        let edit = crate::policy::Policy {
            action: Action::Edit,
            ..Policy::permit("urn:pe", &grdf::sec("Editor"), &grdf::app("ChemSite"))
        };
        let delete = crate::policy::Policy {
            action: Action::Delete,
            ..Policy::permit("urn:pd", &grdf::sec("Editor"), &grdf::app("ChemSite"))
        };
        (data, PolicySet::new(vec![edit, delete]), site)
    }

    fn reopen(mem: &Arc<MemBackend>) -> Arc<dyn StorageBackend> {
        Arc::new(MemBackend::from_files(mem.clone_files()))
    }

    #[test]
    fn durable_updates_survive_reopen() {
        let mem = Arc::new(MemBackend::new());
        let (data, policies, site) = editable_fixture();
        let mut svc = GSacs::create_durable(
            Arc::clone(&mem) as Arc<dyn StorageBackend>,
            StoreConfig::default(),
            OntoRepository::new(),
            policies,
            Box::new(NoReasoning),
            data,
            4,
            ResilienceConfig::default(),
        )
        .unwrap();
        assert!(svc.run_id().is_some());
        let name = Term::iri(&grdf::app("hasSiteName"));
        let out = svc.handle_update(&UpdateRequest {
            role: grdf::sec("Editor"),
            ops: vec![
                UpdateOp::Insert(Triple::new(site.clone(), name.clone(), Term::string("NT"))),
                UpdateOp::Insert(Triple::new(site.clone(), name.clone(), Term::string("old"))),
            ],
        });
        assert_eq!(out, UpdateOutcome::Applied(2));
        let out = svc.handle_update(&UpdateRequest {
            role: grdf::sec("Editor"),
            ops: vec![UpdateOp::Delete(Triple::new(
                site.clone(),
                name.clone(),
                Term::string("old"),
            ))],
        });
        assert_eq!(out, UpdateOutcome::Applied(1));
        let expected = svc.base.clone();
        drop(svc);

        // "Restart": a fresh backend over the same files.
        let (svc2, recovered) = GSacs::recover_with_resilience(
            reopen(&mem),
            StoreConfig::default(),
            Box::new(NoReasoning),
            4,
            ResilienceConfig::default(),
        )
        .unwrap();
        assert_eq!(recovered.replayed_batches, 2);
        assert_eq!(recovered.replayed_ops, 3);
        assert_eq!(svc2.base, expected, "recovered base == pre-crash base");
        assert!(svc2.dataset().has(&site, &name, &Term::string("NT")));
        assert!(!svc2.dataset().has(&site, &name, &Term::string("old")));
        assert_eq!(svc2.policies.policies.len(), 2, "policies round-trip");
        // Restarts mint fresh, monotonically increasing run ids.
        assert!(svc2.run_id().unwrap() > 1);
    }

    #[test]
    fn denied_updates_are_not_logged() {
        let mem = Arc::new(MemBackend::new());
        let (data, policies, site) = editable_fixture();
        let mut svc = GSacs::create_durable(
            Arc::clone(&mem) as Arc<dyn StorageBackend>,
            StoreConfig::default(),
            OntoRepository::new(),
            policies,
            Box::new(NoReasoning),
            data,
            4,
            ResilienceConfig::default(),
        )
        .unwrap();
        let wal_before = svc.durable_store().unwrap().wal_bytes();
        let out = svc.handle_update(&UpdateRequest {
            role: "urn:nobody".into(),
            ops: vec![UpdateOp::Insert(Triple::new(
                site.clone(),
                Term::iri(&grdf::app("hasSiteName")),
                Term::string("x"),
            ))],
        });
        assert!(matches!(out, UpdateOutcome::Denied { .. }));
        assert_eq!(
            svc.durable_store().unwrap().wal_bytes(),
            wal_before,
            "denied batches never reach the WAL"
        );
    }

    #[test]
    fn wal_append_failure_denies_and_leaves_state_untouched() {
        // Build a real store, then reopen it through a crash backend whose
        // budget covers exactly the boot-counter bump (8 bytes): recovery
        // succeeds, and the first WAL append fails mid-record.
        let mem = Arc::new(MemBackend::new());
        let (data, policies, site) = editable_fixture();
        let svc = GSacs::create_durable(
            Arc::clone(&mem) as Arc<dyn StorageBackend>,
            StoreConfig::default(),
            OntoRepository::new(),
            policies,
            Box::new(NoReasoning),
            data,
            4,
            ResilienceConfig::default(),
        )
        .unwrap();
        drop(svc);
        let crashy: Arc<dyn StorageBackend> = Arc::new(CrashBackend::new(
            MemBackend::from_files(mem.clone_files()),
            8,
        ));
        let (mut svc, _recovered) = GSacs::recover_with_resilience(
            crashy,
            StoreConfig::default(),
            Box::new(NoReasoning),
            4,
            ResilienceConfig::default(),
        )
        .unwrap();
        let base_before = svc.base.clone();
        let req = UpdateRequest {
            role: grdf::sec("Editor"),
            ops: vec![UpdateOp::Insert(Triple::new(
                site.clone(),
                Term::iri(&grdf::app("hasSiteName")),
                Term::string("NT"),
            ))],
        };
        let out = svc.handle_update(&req);
        match out {
            UpdateOutcome::Denied { op_index, reason } => {
                assert_eq!(op_index, 0);
                assert!(reason.contains("write-ahead log append failed"), "{reason}");
            }
            other => panic!("expected WAL-failure denial, got {other:?}"),
        }
        assert_eq!(svc.base, base_before, "failed append must not mutate state");
        assert!(svc.durable_store().unwrap().is_poisoned());
        // The store stays poisoned: later updates fail closed too.
        let out = svc.handle_update(&req);
        assert!(matches!(out, UpdateOutcome::Denied { op_index: 0, .. }));
    }

    /// A backend that fails appends to the audit sink (only) a
    /// configurable number of times — `u64::MAX` means forever. Every
    /// other operation passes through untouched.
    #[derive(Debug)]
    struct FlakyAuditBackend {
        inner: MemBackend,
        audit_failures_left: AtomicU64,
        audit_attempts: AtomicU64,
    }

    impl FlakyAuditBackend {
        fn new(failures: u64) -> FlakyAuditBackend {
            FlakyAuditBackend {
                inner: MemBackend::new(),
                audit_failures_left: AtomicU64::new(failures),
                audit_attempts: AtomicU64::new(0),
            }
        }
    }

    impl StorageBackend for FlakyAuditBackend {
        fn read(&self, name: &str) -> std::io::Result<Vec<u8>> {
            self.inner.read(name)
        }
        fn write_all(&self, name: &str, data: &[u8]) -> std::io::Result<()> {
            self.inner.write_all(name, data)
        }
        fn append(&self, name: &str, data: &[u8]) -> std::io::Result<()> {
            if name == "audit.jsonl" {
                self.audit_attempts.fetch_add(1, Ordering::Relaxed);
                let left = self.audit_failures_left.load(Ordering::Relaxed);
                if left > 0 {
                    if left != u64::MAX {
                        self.audit_failures_left.fetch_sub(1, Ordering::Relaxed);
                    }
                    return Err(std::io::Error::other("audit sink down"));
                }
            }
            self.inner.append(name, data)
        }
        fn sync(&self, name: &str) -> std::io::Result<()> {
            self.inner.sync(name)
        }
        fn rename(&self, from: &str, to: &str) -> std::io::Result<()> {
            self.inner.rename(from, to)
        }
        fn delete(&self, name: &str) -> std::io::Result<()> {
            self.inner.delete(name)
        }
        fn list(&self) -> std::io::Result<Vec<String>> {
            self.inner.list()
        }
        fn len(&self, name: &str) -> std::io::Result<u64> {
            self.inner.len(name)
        }
        fn truncate(&self, name: &str, len: u64) -> std::io::Result<()> {
            self.inner.truncate(name, len)
        }
    }

    fn durable_on_flaky_audit(
        failures: u64,
        clock: Arc<ManualClock>,
    ) -> (GSacs, Arc<FlakyAuditBackend>) {
        let backend = Arc::new(FlakyAuditBackend::new(failures));
        let (data, policies, _site) = editable_fixture();
        let svc = GSacs::create_durable(
            Arc::clone(&backend) as Arc<dyn StorageBackend>,
            StoreConfig::default(),
            OntoRepository::new(),
            policies,
            Box::new(NoReasoning),
            data,
            4,
            ResilienceConfig {
                clock,
                ..ResilienceConfig::default()
            },
        )
        .unwrap();
        (svc, backend)
    }

    #[test]
    fn transient_audit_sink_failures_are_retried_without_loss() {
        let clock = Arc::new(ManualClock::new());
        // Two transient failures: the first line lands on the 3rd (last)
        // attempt — within the retry budget, so nothing is lost.
        let (svc, backend) = durable_on_flaky_audit(2, clock.clone());
        let before = clock.now();
        let _ = svc.handle(&ClientRequest {
            role: grdf::sec("Editor"),
            query: "SELECT ?s WHERE { ?s ?p ?o }".to_string(),
        });
        assert_eq!(svc.audit_sink_errors(), 0, "transient failure recovered");
        assert_eq!(backend.audit_attempts.load(Ordering::Relaxed), 3);
        // Backoff slept on the injected clock: 1ms + 2ms.
        assert_eq!(clock.now().saturating_sub(before), Duration::from_millis(3));
        let audit = backend.inner.read("audit.jsonl").unwrap();
        assert!(
            std::str::from_utf8(&audit).unwrap().contains("\"query\""),
            "the retried line reached the sink"
        );
    }

    #[test]
    fn permanently_failing_audit_sink_never_blocks_decisions() {
        let clock = Arc::new(ManualClock::new());
        let (mut svc, backend) = durable_on_flaky_audit(u64::MAX, clock);
        let attempts_base = backend.audit_attempts.load(Ordering::Relaxed);
        let errors_base = svc.audit_sink_errors();
        // Queries still answer and updates still apply.
        let out = svc.handle(&ClientRequest {
            role: grdf::sec("Editor"),
            query: "SELECT ?s WHERE { ?s ?p ?o }".to_string(),
        });
        assert!(out.is_ok(), "decision handling unaffected: {out:?}");
        let site = Term::iri(&grdf::app("NTEnergy"));
        let out = svc.handle_update(&UpdateRequest {
            role: grdf::sec("Editor"),
            ops: vec![UpdateOp::Insert(Triple::new(
                site,
                Term::iri(&grdf::app("hasSiteName")),
                Term::string("NT"),
            ))],
        });
        assert_eq!(out, UpdateOutcome::Applied(1));
        let errors = svc.audit_sink_errors() - errors_base;
        assert!(errors >= 2, "every exhausted line is counted: {errors}");
        // Bounded attempts: exactly 3 per audited line, never unbounded.
        let attempts = backend.audit_attempts.load(Ordering::Relaxed) - attempts_base;
        assert_eq!(attempts, 3 * errors, "3 attempts per line");
        // The in-memory ring still has the entries the sink lost.
        assert!(svc.audit_log().iter().any(|e| e.action == "query"));
    }

    #[test]
    fn checkpoint_rotates_when_wal_crosses_threshold() {
        let mem = Arc::new(MemBackend::new());
        let (data, policies, site) = editable_fixture();
        let cfg = StoreConfig {
            checkpoint_threshold: 64,
            ..StoreConfig::default()
        };
        let mut svc = GSacs::create_durable(
            Arc::clone(&mem) as Arc<dyn StorageBackend>,
            cfg,
            OntoRepository::new(),
            policies,
            Box::new(NoReasoning),
            data,
            4,
            ResilienceConfig::default(),
        )
        .unwrap();
        let name = Term::iri(&grdf::app("hasSiteName"));
        for i in 0..8 {
            let out = svc.handle_update(&UpdateRequest {
                role: grdf::sec("Editor"),
                ops: vec![UpdateOp::Insert(Triple::new(
                    site.clone(),
                    name.clone(),
                    Term::string(&format!("v{i}")),
                ))],
            });
            assert_eq!(out, UpdateOutcome::Applied(1));
        }
        let store = svc.durable_store().unwrap();
        assert!(store.seq() > 0, "threshold crossings rotate the segment");
        assert!(
            store.wal_bytes() < 64 + 64,
            "active WAL restarts small after rotation"
        );
        let rotations = store.seq();
        let expected = svc.base.clone();
        drop(svc);
        let (svc2, recovered) = GSacs::recover_with_resilience(
            reopen(&mem),
            StoreConfig::default(),
            Box::new(NoReasoning),
            4,
            ResilienceConfig::default(),
        )
        .unwrap();
        assert_eq!(recovered.ckpt_seq, rotations);
        assert_eq!(svc2.base, expected);
    }

    #[test]
    fn audit_entries_tee_to_durable_sink() {
        let mem = Arc::new(MemBackend::new());
        let (data, policies, _site) = editable_fixture();
        let svc = GSacs::create_durable(
            Arc::clone(&mem) as Arc<dyn StorageBackend>,
            StoreConfig::default(),
            OntoRepository::new(),
            policies,
            Box::new(NoReasoning),
            data,
            4,
            ResilienceConfig::default(),
        )
        .unwrap();
        let req = ClientRequest {
            role: grdf::sec("Editor"),
            query: chem_query(),
        };
        let _ = svc.handle(&req);
        assert!(svc.durable_store().unwrap().audit_lines() > 0);
        let raw = mem.clone_files();
        let log = raw
            .iter()
            .find_map(|(k, v)| k.starts_with("audit").then_some(v))
            .expect("audit log file exists");
        let text = String::from_utf8(log.clone()).unwrap();
        let line = text.lines().last().unwrap();
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        assert!(line.contains("\"action\":\"query\""), "{line}");
        assert_eq!(svc.audit_sink_errors(), 0);
    }
}
