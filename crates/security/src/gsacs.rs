//! G-SACS — the Geospatial Security Access Control System of Fig. 3.
//!
//! "G-SACS provides the front-end interface to accept client requests and
//! respond back. This module only defines communication points and hides
//! the internal details of the system from clients." Behind the front-end
//! sit the decision engine (policy evaluation + view filtering), a query
//! cache ("having a caching mechanism that stores the queries and
//! corresponding answers would provide a significant performance boost"),
//! a plug-and-play reasoning engine ("any OWL reasoning engine could be
//! plugged into the system"), and the ontology repository ("a database of
//! ontologies needed to perform the reasoning; GRDF would reside in this
//! repository").

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use grdf_owl::reasoner::Reasoner;
use grdf_query::eval::{execute, QueryError, QueryResult};
use grdf_rdf::graph::Graph;

use crate::policy::PolicySet;
use crate::views::{secure_view, ViewStats};

/// The pluggable reasoning component (Fig. 3 "Reasoning engine").
pub trait ReasoningEngine: Send + Sync {
    /// Materialize entailments into the graph; returns the number of
    /// inferred triples.
    fn materialize(&self, graph: &mut Graph) -> usize;

    /// Short name for reports.
    fn name(&self) -> &'static str;
}

/// The built-in OWL-Horst reasoner.
#[derive(Debug, Default)]
pub struct OwlHorstEngine {
    reasoner: Reasoner,
}

impl OwlHorstEngine {
    /// Engine with a custom reasoner configuration.
    pub fn with(reasoner: Reasoner) -> OwlHorstEngine {
        OwlHorstEngine { reasoner }
    }
}

impl ReasoningEngine for OwlHorstEngine {
    fn materialize(&self, graph: &mut Graph) -> usize {
        self.reasoner.materialize(graph).inferred
    }

    fn name(&self) -> &'static str {
        "owl-horst"
    }
}

/// A no-op engine — the "reasoning off" ablation arm.
#[derive(Debug, Default)]
pub struct NoReasoning;

impl ReasoningEngine for NoReasoning {
    fn materialize(&self, _graph: &mut Graph) -> usize {
        0
    }

    fn name(&self) -> &'static str {
        "none"
    }
}

/// The ontology repository: named ontology graphs (GRDF itself, the
/// security ontology, domain ontologies).
#[derive(Debug, Default)]
pub struct OntoRepository {
    ontologies: HashMap<String, Graph>,
}

impl OntoRepository {
    /// Empty repository.
    pub fn new() -> OntoRepository {
        OntoRepository::default()
    }

    /// Store (or replace) an ontology under a name.
    pub fn register(&mut self, name: &str, ontology: Graph) {
        self.ontologies.insert(name.to_string(), ontology);
    }

    /// Fetch an ontology by name.
    pub fn get(&self, name: &str) -> Option<&Graph> {
        self.ontologies.get(name)
    }

    /// Names in the repository.
    pub fn names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.ontologies.keys().map(String::as_str).collect();
        names.sort();
        names
    }

    /// Merge every registered ontology into one graph.
    pub fn merged(&self) -> Graph {
        let mut g = Graph::new();
        for onto in self.ontologies.values() {
            g.extend_from(onto);
        }
        g
    }
}

/// LRU query cache (Fig. 3 "Query Cache").
#[derive(Debug)]
pub struct QueryCache {
    capacity: usize,
    entries: HashMap<(String, String), QueryResult>,
    /// Usage order: least-recently-used first.
    order: Vec<(String, String)>,
    hits: u64,
    misses: u64,
}

impl QueryCache {
    /// Cache with the given capacity (0 disables caching).
    pub fn new(capacity: usize) -> QueryCache {
        QueryCache {
            capacity,
            entries: HashMap::new(),
            order: Vec::new(),
            hits: 0,
            misses: 0,
        }
    }

    fn touch(&mut self, key: &(String, String)) {
        if let Some(pos) = self.order.iter().position(|k| k == key) {
            let k = self.order.remove(pos);
            self.order.push(k);
        }
    }

    /// Look up a cached result.
    pub fn get(&mut self, role: &str, query: &str) -> Option<QueryResult> {
        if self.capacity == 0 {
            self.misses += 1;
            return None;
        }
        let key = (role.to_string(), query.to_string());
        match self.entries.get(&key).cloned() {
            Some(v) => {
                self.hits += 1;
                self.touch(&key);
                Some(v)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Insert a result, evicting the least recently used entry if full.
    pub fn put(&mut self, role: &str, query: &str, result: QueryResult) {
        if self.capacity == 0 {
            return;
        }
        let key = (role.to_string(), query.to_string());
        if self.entries.contains_key(&key) {
            self.entries.insert(key.clone(), result);
            self.touch(&key);
            return;
        }
        if self.entries.len() >= self.capacity {
            let lru = self.order.remove(0);
            self.entries.remove(&lru);
        }
        self.entries.insert(key.clone(), result);
        self.order.push(key);
    }

    /// `(hits, misses)` so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Hit rate in `[0, 1]`; 0 when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drop all entries (e.g. after data changes).
    pub fn invalidate(&mut self) {
        self.entries.clear();
        self.order.clear();
    }
}

/// A client request (Fig. 3 "Client system" → G-SACS).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ClientRequest {
    /// The requesting role's IRI.
    pub role: String,
    /// A SPARQL-subset query to run against the role's secure view.
    pub query: String,
}

/// One mutation in an update request.
#[derive(Debug, Clone, PartialEq)]
pub enum UpdateOp {
    /// Add a triple (requires `sec:Edit` on the subject's resource).
    Insert(grdf_rdf::term::Triple),
    /// Remove a triple (requires `sec:Delete`).
    Delete(grdf_rdf::term::Triple),
}

/// A mutation request: all operations are checked first; the request is
/// applied only when every operation is permitted (atomic deny).
#[derive(Debug, Clone, PartialEq)]
pub struct UpdateRequest {
    /// The requesting role's IRI.
    pub role: String,
    /// The operations, applied in order.
    pub ops: Vec<UpdateOp>,
}

/// Outcome of an update request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UpdateOutcome {
    /// All operations applied; count of triples actually changed.
    Applied(usize),
    /// Denied; the 1-based index and reason of the first refused op.
    Denied {
        /// Index of the eager refusal.
        op_index: usize,
        /// Human-readable reason.
        reason: String,
    },
}

/// One audit record — every security-relevant decision G-SACS makes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditEntry {
    /// The requesting role.
    pub role: String,
    /// `query`, `update-insert`, or `update-delete`.
    pub action: String,
    /// The affected resource (subject IRI) or query text.
    pub target: String,
    /// Whether it was allowed.
    pub allowed: bool,
}

/// The G-SACS service: front-end + decision engine + caches + reasoner +
/// ontology repository.
pub struct GSacs {
    /// Ontology repository (Fig. 3).
    pub repository: OntoRepository,
    policies: PolicySet,
    reasoner: Box<dyn ReasoningEngine>,
    /// Materialized data + ontologies.
    data: Graph,
    /// Inferred-triple count from the last materialization.
    pub inferred: usize,
    query_cache: Mutex<QueryCache>,
    /// Per-role secure views, built lazily.
    view_cache: Mutex<HashMap<String, Arc<Graph>>>,
    /// View construction statistics per role.
    view_stats: Mutex<HashMap<String, ViewStats>>,
    /// Security decision log.
    audit: Mutex<Vec<AuditEntry>>,
}

impl GSacs {
    /// Assemble the service: the instance `data` is merged with every
    /// ontology in `repository` and materialized with `reasoner`.
    pub fn new(
        repository: OntoRepository,
        policies: PolicySet,
        reasoner: Box<dyn ReasoningEngine>,
        data: Graph,
        cache_capacity: usize,
    ) -> GSacs {
        let mut merged = repository.merged();
        merged.extend_from(&data);
        let inferred = reasoner.materialize(&mut merged);
        GSacs {
            repository,
            policies,
            reasoner,
            data: merged,
            inferred,
            query_cache: Mutex::new(QueryCache::new(cache_capacity)),
            view_cache: Mutex::new(HashMap::new()),
            view_stats: Mutex::new(HashMap::new()),
            audit: Mutex::new(Vec::new()),
        }
    }

    /// Name of the plugged-in reasoning engine.
    pub fn reasoner_name(&self) -> &'static str {
        self.reasoner.name()
    }

    /// The materialized dataset (ontologies + instance data + inferences).
    pub fn dataset(&self) -> &Graph {
        &self.data
    }

    /// The secure view for a role (cached).
    pub fn view_for(&self, role: &str) -> Arc<Graph> {
        if let Some(v) = self.view_cache.lock().get(role) {
            return Arc::clone(v);
        }
        let (view, stats) = secure_view(&self.data, &self.policies, role);
        let view = Arc::new(view);
        self.view_cache.lock().insert(role.to_string(), Arc::clone(&view));
        self.view_stats.lock().insert(role.to_string(), stats);
        view
    }

    /// View construction statistics for a role (if its view was built).
    pub fn view_stats_for(&self, role: &str) -> Option<ViewStats> {
        self.view_stats.lock().get(role).copied()
    }

    /// Handle a client request: cache lookup → secure view → query.
    pub fn handle(&self, request: &ClientRequest) -> Result<QueryResult, QueryError> {
        if let Some(hit) = self.query_cache.lock().get(&request.role, &request.query) {
            return Ok(hit);
        }
        let view = self.view_for(&request.role);
        let result = execute(&view, &request.query)?;
        self.query_cache.lock().put(&request.role, &request.query, result.clone());
        self.audit.lock().push(AuditEntry {
            role: request.role.clone(),
            action: "query".to_string(),
            target: request.query.clone(),
            allowed: true,
        });
        Ok(result)
    }

    /// Handle a mutation: every operation is policy-checked with the
    /// matching action (`Edit` for inserts, `Delete` for deletions); on the
    /// first refusal nothing is applied. Successful updates invalidate the
    /// caches and re-materialize inference.
    pub fn handle_update(&mut self, request: &UpdateRequest) -> UpdateOutcome {
        use crate::policy::{Access, Action};
        // Phase 1: check all ops.
        for (i, op) in request.ops.iter().enumerate() {
            let (triple, action, action_name) = match op {
                UpdateOp::Insert(t) => (t, Action::Edit, "update-insert"),
                UpdateOp::Delete(t) => (t, Action::Delete, "update-delete"),
            };
            let pred = triple.predicate.as_iri().unwrap_or_default().to_string();
            let access =
                self.policies.evaluate(&self.data, &request.role, &triple.subject, &pred, action);
            let allowed = access == Access::Granted;
            self.audit.lock().push(AuditEntry {
                role: request.role.clone(),
                action: action_name.to_string(),
                target: triple.subject.to_string(),
                allowed,
            });
            if !allowed {
                return UpdateOutcome::Denied {
                    op_index: i + 1,
                    reason: format!(
                        "{action_name} on {} denied for role {} ({access:?})",
                        triple.subject, request.role
                    ),
                };
            }
        }
        // Phase 2: apply.
        let mut changed = 0;
        for op in &request.ops {
            match op {
                UpdateOp::Insert(t) => {
                    if self.data.insert(t.clone()) {
                        changed += 1;
                    }
                }
                UpdateOp::Delete(t) => {
                    if self.data.remove(t) {
                        changed += 1;
                    }
                }
            }
        }
        if changed > 0 {
            self.inferred += self.reasoner.materialize(&mut self.data);
            self.invalidate();
        }
        UpdateOutcome::Applied(changed)
    }

    /// The audit log so far (clone; the log keeps growing).
    pub fn audit_log(&self) -> Vec<AuditEntry> {
        self.audit.lock().clone()
    }

    /// Denied entries in the audit log.
    pub fn audit_denials(&self) -> Vec<AuditEntry> {
        self.audit.lock().iter().filter(|e| !e.allowed).cloned().collect()
    }

    /// Query-cache `(hits, misses)`.
    pub fn cache_stats(&self) -> (u64, u64) {
        self.query_cache.lock().stats()
    }

    /// Query-cache hit rate.
    pub fn cache_hit_rate(&self) -> f64 {
        self.query_cache.lock().hit_rate()
    }

    /// Invalidate caches (after a data change).
    pub fn invalidate(&self) {
        self.query_cache.lock().invalidate();
        self.view_cache.lock().clear();
        self.view_stats.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ontology::security_ontology;
    use crate::policy::Policy;
    use grdf_feature::feature::Feature;
    use grdf_feature::rdf_codec::encode_feature;
    use grdf_rdf::vocab::grdf;

    fn service(cache: usize) -> GSacs {
        let mut data = Graph::new();
        let mut site = Feature::new(&grdf::app("NTEnergy"), "ChemSite");
        site.set_property("hasSiteName", "NT Energy");
        site.set_property("hasChemCode", "121NR");
        encode_feature(&mut data, &site);
        let mut stream = Feature::new(&grdf::app("WhiteRock"), "Stream");
        stream.set_property("hasObjectID", 11070i64);
        encode_feature(&mut data, &stream);

        let mut repo = OntoRepository::new();
        repo.register("seconto", security_ontology());

        let policies = PolicySet::new(vec![
            Policy::permit_properties(
                &grdf::sec("MainRepPolicy1"),
                &grdf::sec("MainRep"),
                &grdf::app("ChemSite"),
                &[&grdf::iri("isBoundedBy")],
            ),
            Policy::permit(&grdf::sec("MainRepPolicy2"), &grdf::sec("MainRep"), &grdf::app("Stream")),
            Policy::permit(&grdf::sec("E1"), &grdf::sec("Emergency"), &grdf::app("ChemSite")),
            Policy::permit(&grdf::sec("E2"), &grdf::sec("Emergency"), &grdf::app("Stream")),
        ]);
        GSacs::new(repo, policies, Box::<OwlHorstEngine>::default(), data, cache)
    }

    fn chem_query() -> String {
        format!(
            "PREFIX app: <{}>\nSELECT ?c WHERE {{ ?s app:hasChemCode ?c }}",
            grdf::APP_NS
        )
    }

    #[test]
    fn roles_get_different_answers() {
        let svc = service(16);
        let main_repair = ClientRequest { role: grdf::sec("MainRep"), query: chem_query() };
        let emergency = ClientRequest { role: grdf::sec("Emergency"), query: chem_query() };
        assert_eq!(svc.handle(&main_repair).unwrap().select_rows().len(), 0);
        assert_eq!(svc.handle(&emergency).unwrap().select_rows().len(), 1);
    }

    #[test]
    fn cache_hits_on_repeat() {
        let svc = service(16);
        let req = ClientRequest { role: grdf::sec("Emergency"), query: chem_query() };
        svc.handle(&req).unwrap();
        svc.handle(&req).unwrap();
        svc.handle(&req).unwrap();
        let (hits, misses) = svc.cache_stats();
        assert_eq!(hits, 2);
        assert_eq!(misses, 1);
        assert!(svc.cache_hit_rate() > 0.6);
    }

    #[test]
    fn zero_capacity_disables_cache() {
        let svc = service(0);
        let req = ClientRequest { role: grdf::sec("Emergency"), query: chem_query() };
        svc.handle(&req).unwrap();
        svc.handle(&req).unwrap();
        let (hits, _) = svc.cache_stats();
        assert_eq!(hits, 0);
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut cache = QueryCache::new(2);
        cache.put("r", "q1", QueryResult::Boolean(true));
        cache.put("r", "q2", QueryResult::Boolean(true));
        assert!(cache.get("r", "q1").is_some()); // q1 now most recent
        cache.put("r", "q3", QueryResult::Boolean(true)); // evicts q2
        assert!(cache.get("r", "q2").is_none());
        assert!(cache.get("r", "q1").is_some());
        assert!(cache.get("r", "q3").is_some());
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn cache_keys_include_role() {
        let mut cache = QueryCache::new(4);
        cache.put("role-a", "q", QueryResult::Boolean(true));
        assert!(cache.get("role-b", "q").is_none(), "another role must not see it");
    }

    #[test]
    fn pluggable_reasoner() {
        use grdf_rdf::term::Term;
        use grdf_rdf::vocab::{rdf, rdfs};
        // Data whose class hierarchy implies extra memberships.
        let mut data = Graph::new();
        data.add(
            Term::iri(&grdf::app("Creek")),
            Term::iri(rdfs::SUB_CLASS_OF),
            Term::iri(&grdf::app("Stream")),
        );
        data.add(
            Term::iri(&grdf::app("c1")),
            Term::iri(rdf::TYPE),
            Term::iri(&grdf::app("Creek")),
        );

        let svc = GSacs::new(
            OntoRepository::new(),
            PolicySet::default(),
            Box::<OwlHorstEngine>::default(),
            data.clone(),
            4,
        );
        assert_eq!(svc.reasoner_name(), "owl-horst");
        assert!(svc.inferred > 0, "Creek ⊑ Stream must fire");

        let svc2 = GSacs::new(
            OntoRepository::new(),
            PolicySet::default(),
            Box::new(NoReasoning),
            data,
            4,
        );
        assert_eq!(svc2.reasoner_name(), "none");
        assert_eq!(svc2.inferred, 0);
    }

    #[test]
    fn repository_merges() {
        let mut repo = OntoRepository::new();
        repo.register("sec", security_ontology());
        let mut g = Graph::new();
        g.add(
            grdf_rdf::term::Term::iri("urn:a"),
            grdf_rdf::term::Term::iri("urn:p"),
            grdf_rdf::term::Term::iri("urn:b"),
        );
        repo.register("app", g);
        assert_eq!(repo.names(), vec!["app", "sec"]);
        assert!(repo.get("sec").is_some());
        let merged = repo.merged();
        assert!(merged.len() > security_ontology().len());
    }

    #[test]
    fn view_stats_recorded() {
        let svc = service(4);
        let _ = svc.view_for(&grdf::sec("MainRep"));
        let stats = svc.view_stats_for(&grdf::sec("MainRep")).unwrap();
        assert!(stats.suppressed > 0, "chem data suppressed for main repair");
    }

    #[test]
    fn invalidate_clears_caches() {
        let svc = service(8);
        let req = ClientRequest { role: grdf::sec("Emergency"), query: chem_query() };
        svc.handle(&req).unwrap();
        svc.invalidate();
        svc.handle(&req).unwrap();
        let (hits, misses) = svc.cache_stats();
        assert_eq!(hits, 0);
        assert_eq!(misses, 2);
    }

    #[test]
    fn updates_enforced_per_action() {
        use crate::policy::Action;
        use grdf_rdf::term::{Term, Triple};
        let mut data = Graph::new();
        let site = Term::iri(&grdf::app("NTEnergy"));
        data.add(
            site.clone(),
            Term::iri(grdf_rdf::vocab::rdf::TYPE),
            Term::iri(&grdf::app("ChemSite")),
        );
        let editor_policy = crate::policy::Policy {
            action: Action::Edit,
            ..crate::policy::Policy::permit("urn:pe", &grdf::sec("Editor"), &grdf::app("ChemSite"))
        };
        let mut svc = GSacs::new(
            OntoRepository::new(),
            PolicySet::new(vec![editor_policy]),
            Box::new(NoReasoning),
            data,
            4,
        );
        let insert = UpdateOp::Insert(Triple::new(
            site.clone(),
            Term::iri(&grdf::app("hasSiteName")),
            Term::string("NT Energy"),
        ));
        // Editor may insert.
        let out = svc.handle_update(&UpdateRequest {
            role: grdf::sec("Editor"),
            ops: vec![insert.clone()],
        });
        assert_eq!(out, UpdateOutcome::Applied(1));
        // …but not delete (no Delete policy).
        let out = svc.handle_update(&UpdateRequest {
            role: grdf::sec("Editor"),
            ops: vec![UpdateOp::Delete(Triple::new(
                site.clone(),
                Term::iri(&grdf::app("hasSiteName")),
                Term::string("NT Energy"),
            ))],
        });
        assert!(matches!(out, UpdateOutcome::Denied { op_index: 1, .. }));
        // The denied delete left the data intact.
        assert!(svc.dataset().has(
            &site,
            &Term::iri(&grdf::app("hasSiteName")),
            &Term::string("NT Energy")
        ));
        // Strangers may do nothing.
        let out = svc.handle_update(&UpdateRequest {
            role: "urn:nobody".into(),
            ops: vec![insert],
        });
        assert!(matches!(out, UpdateOutcome::Denied { .. }));
    }

    #[test]
    fn update_batches_are_atomic_on_denial() {
        use crate::policy::Action;
        use grdf_rdf::term::{Term, Triple};
        let mut data = Graph::new();
        let a = Term::iri(&grdf::app("a"));
        let b = Term::iri(&grdf::app("b"));
        data.add(a.clone(), Term::iri(grdf_rdf::vocab::rdf::TYPE), Term::iri(&grdf::app("Open")));
        data.add(b.clone(), Term::iri(grdf_rdf::vocab::rdf::TYPE), Term::iri(&grdf::app("Locked")));
        let edit_open = crate::policy::Policy {
            action: Action::Edit,
            ..crate::policy::Policy::permit("urn:pe", "urn:r", &grdf::app("Open"))
        };
        let mut svc = GSacs::new(
            OntoRepository::new(),
            PolicySet::new(vec![edit_open]),
            Box::new(NoReasoning),
            data,
            0,
        );
        let ok_op = UpdateOp::Insert(Triple::new(a.clone(), Term::iri("urn:p"), Term::string("v")));
        let bad_op = UpdateOp::Insert(Triple::new(b, Term::iri("urn:p"), Term::string("v")));
        let out = svc.handle_update(&UpdateRequest {
            role: "urn:r".into(),
            ops: vec![ok_op, bad_op],
        });
        assert!(matches!(out, UpdateOutcome::Denied { op_index: 2, .. }));
        // The permitted first op must NOT have been applied.
        assert!(!svc.dataset().has(&a, &Term::iri("urn:p"), &Term::string("v")));
    }

    #[test]
    fn audit_log_records_decisions() {
        let svc = service(4);
        svc.handle(&ClientRequest { role: grdf::sec("Emergency"), query: chem_query() })
            .unwrap();
        let log = svc.audit_log();
        assert_eq!(log.len(), 1);
        assert!(log[0].allowed);
        assert_eq!(log[0].action, "query");
        assert!(svc.audit_denials().is_empty());
    }

    #[test]
    fn successful_update_invalidates_query_cache() {
        use crate::policy::Action;
        use grdf_rdf::term::{Term, Triple};
        let mut data = Graph::new();
        let site = Term::iri(&grdf::app("s1"));
        data.add(
            site.clone(),
            Term::iri(grdf_rdf::vocab::rdf::TYPE),
            Term::iri(&grdf::app("ChemSite")),
        );
        let view_all =
            crate::policy::Policy::permit("urn:v", "urn:r", &grdf::app("ChemSite"));
        let edit_all = crate::policy::Policy {
            action: Action::Edit,
            ..crate::policy::Policy::permit("urn:e", "urn:r", &grdf::app("ChemSite"))
        };
        let mut svc = GSacs::new(
            OntoRepository::new(),
            PolicySet::new(vec![view_all, edit_all]),
            Box::new(NoReasoning),
            data,
            8,
        );
        let q = format!(
            "PREFIX app: <{}>\nSELECT ?n WHERE {{ ?s app:hasSiteName ?n }}",
            grdf::APP_NS
        );
        let before = svc
            .handle(&ClientRequest { role: "urn:r".into(), query: q.clone() })
            .unwrap();
        assert_eq!(before.select_rows().len(), 0);
        svc.handle_update(&UpdateRequest {
            role: "urn:r".into(),
            ops: vec![UpdateOp::Insert(Triple::new(
                site,
                Term::iri(&grdf::app("hasSiteName")),
                Term::string("New Name"),
            ))],
        });
        let after = svc.handle(&ClientRequest { role: "urn:r".into(), query: q }).unwrap();
        assert_eq!(after.select_rows().len(), 1, "stale cache must have been dropped");
    }

    #[test]
    fn bad_query_surfaces_error() {
        let svc = service(4);
        let req = ClientRequest { role: grdf::sec("Emergency"), query: "NOT SPARQL".into() };
        assert!(svc.handle(&req).is_err());
    }
}
