//! The GeoXACML-style baseline: object-level access control.
//!
//! Paper §7: GeoXACML "views geographic resources as objects that can be
//! associated with either a class or instance of the class. As such, it is
//! unable to provide a fine-grain access control. For instance, consider
//! granting access to a Building object to a user. The conferred privilege
//! is going to allow a user to access all the Building properties…".
//!
//! This module reproduces that model faithfully so the benchmarks can
//! measure the two gaps the paper claims GRDF closes:
//!
//! * **granularity** — a grant exposes *every* property of the object
//!   (no `hasPropertyAccess` conditions exist in the model), and
//! * **merge fragility** — resource matching is *syntactic*: a rule for
//!   class `C` matches only objects whose asserted `rdf:type` is literally
//!   `C`. Types contributed by another source's vocabulary (aligned via
//!   `rdfs:subClassOf` / `owl:equivalentClass`) are invisible because the
//!   XACML parser does no reasoning.

use grdf_rdf::graph::Graph;
use grdf_rdf::term::Term;
use grdf_rdf::vocab::rdf;

use crate::policy::Decision;
use crate::views::ViewStats;

/// One object-level rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XacmlRule {
    /// The role the rule applies to.
    pub role: String,
    /// Exact class IRI or instance IRI the rule targets.
    pub resource: String,
    /// Permit or Deny.
    pub decision: Decision,
}

impl XacmlRule {
    /// A permit rule.
    pub fn permit(role: &str, resource: &str) -> XacmlRule {
        XacmlRule {
            role: role.to_string(),
            resource: resource.to_string(),
            decision: Decision::Permit,
        }
    }

    /// A deny rule.
    pub fn deny(role: &str, resource: &str) -> XacmlRule {
        XacmlRule {
            role: role.to_string(),
            resource: resource.to_string(),
            decision: Decision::Deny,
        }
    }
}

/// An object-level policy set.
#[derive(Debug, Clone, Default)]
pub struct XacmlPolicySet {
    /// The rules.
    pub rules: Vec<XacmlRule>,
}

impl XacmlPolicySet {
    /// Build from rules.
    pub fn new(rules: Vec<XacmlRule>) -> XacmlPolicySet {
        XacmlPolicySet { rules }
    }

    /// Object-level decision for `(role, object)`: deny-overrides, then
    /// permit, else deny-by-default. Matching is syntactic on the asserted
    /// `rdf:type` IRIs and the object IRI — deliberately no inference.
    pub fn decide(&self, data: &Graph, role: &str, object: &Term) -> Decision {
        let types: Vec<String> = data
            .objects(object, &Term::iri(rdf::TYPE))
            .into_iter()
            .filter_map(|t| t.as_iri().map(str::to_string))
            .collect();
        let mut permitted = false;
        for rule in &self.rules {
            if rule.role != role {
                continue;
            }
            let matches = object.as_iri() == Some(rule.resource.as_str())
                || types.iter().any(|t| t == &rule.resource);
            if matches {
                match rule.decision {
                    Decision::Deny => return Decision::Deny,
                    Decision::Permit => permitted = true,
                }
            }
        }
        if permitted {
            Decision::Permit
        } else {
            Decision::Deny
        }
    }

    /// Build the role's view: whole objects in or out. A permitted object
    /// contributes **all** of its triples (including blank-node subtrees) —
    /// the granularity limitation under measurement.
    pub fn view(&self, data: &Graph, role: &str) -> (Graph, ViewStats) {
        let mut view = Graph::new();
        let mut stats = ViewStats::default();
        for subject in data.all_subjects() {
            if subject.is_blank() {
                continue;
            }
            let triples = data.match_pattern(Some(&subject), None, None);
            if triples.is_empty() {
                continue;
            }
            // Only consider instance subjects (same scoping as secure_view).
            let is_instance = data
                .objects(&subject, &Term::iri(rdf::TYPE))
                .iter()
                .any(|t| {
                    t.as_iri().is_some_and(|i| {
                        !i.starts_with(grdf_rdf::vocab::owl::NS)
                            && !i.starts_with(grdf_rdf::vocab::rdfs::NS)
                    })
                });
            if !is_instance {
                continue;
            }
            match self.decide(data, role, &subject) {
                Decision::Permit => {
                    let mut frontier = vec![subject.clone()];
                    let mut seen = std::collections::HashSet::new();
                    while let Some(node) = frontier.pop() {
                        if !seen.insert(node.clone()) {
                            continue;
                        }
                        for t in data.match_pattern(Some(&node), None, None) {
                            if t.object.is_blank() {
                                frontier.push(t.object.clone());
                            }
                            stats.granted += 1;
                            view.insert(t);
                        }
                    }
                }
                Decision::Deny => {
                    stats.suppressed += triples.len();
                    stats.unmatched_subjects += 1;
                }
            }
        }
        (view, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::views::view_exposes;
    use grdf_feature::feature::Feature;
    use grdf_feature::rdf_codec::encode_feature;
    use grdf_rdf::vocab::{grdf, rdfs};

    fn data() -> Graph {
        let mut g = Graph::new();
        let mut site = Feature::new(&grdf::app("NTEnergy"), "ChemSite");
        site.set_property("hasSiteName", "NT Energy");
        site.set_property("hasChemCode", "121NR");
        encode_feature(&mut g, &site);
        g
    }

    #[test]
    fn permit_exposes_all_properties() {
        // The granularity gap: an object-level grant leaks every property.
        let g = data();
        let ps = XacmlPolicySet::new(vec![XacmlRule::permit(
            "main-repair",
            &grdf::app("ChemSite"),
        )]);
        let (view, _) = ps.view(&g, "main-repair");
        assert!(
            view_exposes(&view, &grdf::app("NTEnergy"), &grdf::app("hasChemCode")),
            "object-level control cannot suppress a single property"
        );
    }

    #[test]
    fn deny_by_default_and_deny_overrides() {
        let g = data();
        let ps = XacmlPolicySet::new(vec![
            XacmlRule::permit("r", &grdf::app("ChemSite")),
            XacmlRule::deny("r", &grdf::app("NTEnergy")),
        ]);
        assert_eq!(
            ps.decide(&g, "r", &Term::iri(&grdf::app("NTEnergy"))),
            Decision::Deny
        );
        assert_eq!(
            ps.decide(&g, "other", &Term::iri(&grdf::app("NTEnergy"))),
            Decision::Deny
        );
    }

    #[test]
    fn no_inference_over_merged_vocabularies() {
        // Merge fragility: an aligned subclass from another source is not
        // matched by the syntactic rule, even though reasoning would cover
        // it.
        let mut g = data();
        g.add(
            Term::iri("urn:wx#station"),
            Term::iri(rdf::TYPE),
            Term::iri("urn:wx#MonitoredSite"),
        );
        g.add(
            Term::iri("urn:wx#MonitoredSite"),
            Term::iri(rdfs::SUB_CLASS_OF),
            Term::iri(&grdf::app("ChemSite")),
        );
        let ps = XacmlPolicySet::new(vec![XacmlRule::permit("r", &grdf::app("ChemSite"))]);
        assert_eq!(
            ps.decide(&g, "r", &Term::iri("urn:wx#station")),
            Decision::Deny,
            "syntactic matcher cannot see the subclass alignment"
        );
    }

    #[test]
    fn instance_rules_match_exactly() {
        let g = data();
        let ps = XacmlPolicySet::new(vec![XacmlRule::permit("r", &grdf::app("NTEnergy"))]);
        assert_eq!(
            ps.decide(&g, "r", &Term::iri(&grdf::app("NTEnergy"))),
            Decision::Permit
        );
    }

    #[test]
    fn view_stats_track_suppression() {
        let g = data();
        let ps = XacmlPolicySet::default();
        let (view, stats) = ps.view(&g, "anyone");
        assert!(view.is_empty());
        assert!(stats.suppressed > 0);
        assert_eq!(stats.unmatched_subjects, 1);
    }
}
