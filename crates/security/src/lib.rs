//! GRDF security constructs (paper §7) and the G-SACS architecture (§8,
//! Fig. 3).
//!
//! The paper's security claim is threefold:
//!
//! 1. **Fine-grained access control.** GeoXACML "views geographic
//!    resources as objects that can be associated with either a class or
//!    instance of the class; as such, it is unable to provide fine-grain
//!    access control" — granting a Building grants its exit doors and
//!    telecom towers too. GRDF's security ontology conditions policies on
//!    *properties* (List 8's `hasPropertyAccess grdf:BoundedBy`), so the
//!    'main repair' role sees a site's extent but not its chemistry.
//! 2. **Merge robustness.** "If base data model changes or \[is\] aggregated
//!    with other data sources, the same security framework will continue to
//!    work" — because policy applicability is decided by a reasoner
//!    (subclass/equivalence inference), not by exact schema matching.
//! 3. **An architecture** (Fig. 3): client → G-SACS front-end → decision
//!    engine + query cache + pluggable reasoning engine + ontology
//!    repository.
//!
//! Modules:
//!
//! * [`ontology`] — the `SecOnto` vocabulary as an OWL ontology.
//! * [`policy`] — policies (native structs ⇄ List 8 RDF encoding) and the
//!   semantics-aware evaluator.
//! * [`views`] — middleware "layered views": filtering a merged graph down
//!   to what a role may see.
//! * [`geoxacml`] — the object-level baseline comparator.
//! * [`labels`] — the policy label compiler: List 8 policy sets + the
//!   `sec:subRoleOf` hierarchy compiled to per-triple visibility bitsets,
//!   with whole-set static analyses (S007–S010, including the OWL-Horst
//!   entailment-leak pass) and a differential verifier proving the
//!   label-filtered scan equals the materialized secure views.
//! * [`gsacs`] — the Fig. 3 runtime: front-end, decision engine, LRU query
//!   cache, pluggable [`gsacs::ReasoningEngine`], ontology repository.
//! * [`resilience`] — the fail-closed service layer: unified error
//!   taxonomy, per-request deadlines, circuit-breaking reasoner with
//!   degraded conservative views, admission control, health reporting, and
//!   a deterministic fault-injection harness.
//!
//! The whole stack is instrumented through `grdf_obs`: G-SACS runs each
//! request inside an observability scope, secure-view builds produce
//! [`policy::DecisionTrace`]s explaining which policies matched and why,
//! and audit entries carry the request's `TraceId` so the log joins
//! against exported spans.

pub mod conflicts;
pub mod geoxacml;
pub mod gsacs;
pub mod labels;
pub mod ontology;
pub mod policy;
pub mod resilience;
pub mod views;

pub use conflicts::{
    conflict_to_diagnostic, detect_conflicts, resolved_policy_set, structural_diagnostics,
    CombiningAlgorithm, PolicyConflict,
};
pub use gsacs::{
    policy_set_graph, AuditEntry, AuditLog, ClientRequest, GSacs, OntoRepository, QueryCache,
    ReasoningEngine, UpdateOp, UpdateOutcome, UpdateRequest,
};
pub use labels::{CompiledPolicy, DesignatorIndex, Explanation, LabelIr, RoleHierarchy};
pub use policy::{Action, Condition, Decision, DecisionTrace, Policy, PolicyMatch, PolicySet};
pub use resilience::{
    AdmissionGate, BreakerConfig, BreakerState, Durability, EngineError, FaultInjector, FaultKind,
    FaultPlan, FaultyEngine, GsacsError, HealthReport, LatencyHistogram, LintGate, NoFaults,
    ResilienceConfig, ResilientEngine, RetryPolicy, Stage,
};
pub use views::{
    conservative_view, conservative_view_explained, secure_view, secure_view_explained, ViewStats,
};
