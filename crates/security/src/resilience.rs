//! Fault tolerance for the G-SACS service layer.
//!
//! The paper's Fig. 3 architecture assumes every component answers; this
//! module makes the service survive components that don't:
//!
//! * [`GsacsError`] — the unified, fail-closed error taxonomy. Every
//!   internal failure maps to a denied request plus an audit entry; no
//!   error path returns data.
//! * [`ResilientEngine`] — retry-with-backoff and a circuit breaker
//!   around the pluggable [`ReasoningEngine`](crate::gsacs::ReasoningEngine).
//!   After [`BreakerConfig::failure_threshold`] consecutive failures the
//!   breaker opens and the service degrades to un-inferred data with
//!   conservative secure views; after [`BreakerConfig::cooldown`] a
//!   half-open trial may close it again.
//! * [`AdmissionGate`] — a bounded in-flight gate that sheds load with
//!   [`GsacsError::Overloaded`] instead of queueing without bound.
//! * [`LatencyHistogram`] — fixed log-bucket request latencies for the
//!   p50/p99 figures in [`HealthReport`].
//! * [`FaultPlan`] / [`FaultyEngine`] — a deterministic, seeded fault
//!   injection harness: per pipeline [`Stage`] the plan decides
//!   error/latency faults reproducibly, and latency is expressed through
//!   the injected [`Clock`] so deadline expiry is exercised without wall
//!   sleeps.
//!
//! All time flows through [`grdf_runtime::Clock`], so every behavior here
//! — backoff, cooldown, deadline expiry, latency percentiles — is testable
//! with a [`ManualClock`](grdf_runtime::ManualClock).

use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use grdf_query::eval::QueryError;
use grdf_rdf::graph::Graph;
use grdf_runtime::{splitmix64, Budget, Clock, Deadline, SeedTree, SeededDecider};

use crate::gsacs::ReasoningEngine;

// ---------------------------------------------------------------------------
// Error taxonomy
// ---------------------------------------------------------------------------

/// The pipeline stage a fault or deadline is attributed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Admission control, before any work.
    Admission,
    /// Secure-view construction.
    View,
    /// Query parse + evaluation.
    Query,
    /// Reasoner materialization.
    Reasoning,
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Stage::Admission => "admission",
            Stage::View => "view",
            Stage::Query => "query",
            Stage::Reasoning => "reasoning",
        })
    }
}

/// Unified G-SACS service error. Fail-closed: every variant means the
/// request was denied and audited; none carries result data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GsacsError {
    /// The query text did not parse.
    Parse(String),
    /// The request's deadline budget was exhausted at `stage`.
    DeadlineExceeded {
        /// Where the budget ran out.
        stage: Stage,
    },
    /// Admission control shed the request.
    Overloaded {
        /// Requests in flight when this one arrived.
        in_flight: usize,
        /// The configured bound.
        limit: usize,
    },
    /// The reasoning engine failed (and, when the breaker is open, keeps
    /// being assumed failed until cooldown).
    Engine(String),
    /// Any other internal failure — including injected faults.
    Internal(String),
    /// The lint gate rejected the service's graph/policy set: error-level
    /// diagnostics were found at `init` time with [`LintGate::Enforce`],
    /// and the service fails closed until the inputs are fixed.
    LintRejected(String),
}

impl fmt::Display for GsacsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GsacsError::Parse(m) => write!(f, "query parse error: {m}"),
            GsacsError::DeadlineExceeded { stage } => {
                write!(f, "deadline exceeded during {stage}")
            }
            GsacsError::Overloaded { in_flight, limit } => {
                write!(
                    f,
                    "overloaded: {in_flight} requests in flight (limit {limit})"
                )
            }
            GsacsError::Engine(m) => write!(f, "reasoning engine failure: {m}"),
            GsacsError::Internal(m) => write!(f, "internal error: {m}"),
            GsacsError::LintRejected(m) => write!(f, "lint gate rejected service inputs: {m}"),
        }
    }
}

impl std::error::Error for GsacsError {}

impl From<QueryError> for GsacsError {
    fn from(e: QueryError) -> Self {
        match e {
            QueryError::Parse(m) => GsacsError::Parse(m),
            QueryError::DeadlineExceeded => GsacsError::DeadlineExceeded {
                stage: Stage::Query,
            },
        }
    }
}

/// Failure of one reasoning-engine call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The request deadline expired inside materialization.
    DeadlineExceeded,
    /// The engine itself failed (crash, resource exhaustion, injected
    /// fault). The string is diagnostic only.
    Failed(String),
    /// The circuit breaker is open; the call was not attempted.
    CircuitOpen,
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::DeadlineExceeded => f.write_str("deadline exceeded"),
            EngineError::Failed(m) => write!(f, "engine failed: {m}"),
            EngineError::CircuitOpen => f.write_str("circuit breaker open"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<EngineError> for GsacsError {
    fn from(e: EngineError) -> Self {
        match e {
            EngineError::DeadlineExceeded => GsacsError::DeadlineExceeded {
                stage: Stage::Reasoning,
            },
            other => GsacsError::Engine(other.to_string()),
        }
    }
}

// ---------------------------------------------------------------------------
// Circuit breaker + retry around the reasoning engine
// ---------------------------------------------------------------------------

/// Circuit-breaker tuning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerConfig {
    /// Consecutive failures that open the breaker.
    pub failure_threshold: u32,
    /// How long the breaker stays open before allowing a half-open trial.
    pub cooldown: Duration,
    /// Successful half-open trials required to close again.
    pub half_open_successes: u32,
    /// Fraction of `cooldown` added as deterministic per-breaker jitter to
    /// each open period, in `[0, 1]`. With many tenants each owning a
    /// breaker, a shared-cause outage would otherwise trip them together
    /// and have them all probe the recovering engine in lockstep; jitter
    /// spreads the half-open trials across `cooldown * jitter`. `0.0`
    /// (the default) keeps the exact classic schedule.
    pub half_open_jitter: f64,
}

impl Default for BreakerConfig {
    fn default() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 3,
            cooldown: Duration::from_secs(30),
            half_open_successes: 1,
            half_open_jitter: 0.0,
        }
    }
}

/// Retry tuning for one engine call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (1 = no retry).
    pub max_attempts: u32,
    /// First backoff; doubles per retry. Slept on the injected clock, so
    /// manual-clock tests pay no wall time.
    pub backoff_base: Duration,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 2,
            backoff_base: Duration::from_millis(25),
        }
    }
}

/// Observable breaker state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy; calls pass through.
    Closed,
    /// Tripped; calls fail fast until cooldown elapses.
    Open,
    /// Cooldown elapsed; the next call is a trial.
    HalfOpen,
}

impl fmt::Display for BreakerState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        })
    }
}

#[derive(Debug)]
struct BreakerCore {
    state: BreakerState,
    consecutive_failures: u32,
    /// Clock time the breaker opened (meaningful while `Open`).
    opened_at: Duration,
    /// Jitter added to this open period's cooldown (recomputed per trip).
    cooldown_extra: Duration,
    half_open_successes: u32,
}

/// Retry + circuit breaker around a pluggable [`ReasoningEngine`].
///
/// The wrapper is itself an engine-shaped component, but it is *fallible
/// by contract*: when the breaker is open it fails fast with
/// [`EngineError::CircuitOpen`] instead of calling through, bounding the
/// damage a broken reasoner can do to request latency.
pub struct ResilientEngine {
    inner: Box<dyn ReasoningEngine>,
    clock: Arc<dyn Clock>,
    breaker: BreakerConfig,
    retry: RetryPolicy,
    core: Mutex<BreakerCore>,
    /// Seed for deterministic per-trip cooldown jitter; distinct per
    /// engine instance so co-tripping breakers desynchronize.
    jitter_seed: u64,
    /// Times the breaker tripped open.
    trips: AtomicU64,
    /// Total failed attempts (including retries).
    failed_attempts: AtomicU64,
}

impl ResilientEngine {
    /// Wrap `inner` with breaker + retry behavior on `clock`.
    pub fn new(
        inner: Box<dyn ReasoningEngine>,
        clock: Arc<dyn Clock>,
        breaker: BreakerConfig,
        retry: RetryPolicy,
    ) -> ResilientEngine {
        static NEXT_SEED: AtomicU64 = AtomicU64::new(1);
        ResilientEngine {
            inner,
            clock,
            breaker,
            retry,
            core: Mutex::new(BreakerCore {
                state: BreakerState::Closed,
                consecutive_failures: 0,
                opened_at: Duration::ZERO,
                cooldown_extra: Duration::ZERO,
                half_open_successes: 0,
            }),
            jitter_seed: splitmix64(NEXT_SEED.fetch_add(1, Ordering::Relaxed)),
            trips: AtomicU64::new(0),
            failed_attempts: AtomicU64::new(0),
        }
    }

    /// Pin the jitter seed (tests; production instances draw distinct
    /// seeds automatically).
    #[must_use]
    pub fn with_jitter_seed(mut self, seed: u64) -> ResilientEngine {
        self.jitter_seed = seed;
        self
    }

    /// The wrapped engine's name.
    pub fn name(&self) -> &'static str {
        self.inner.name()
    }

    /// Current breaker state, applying the open→half-open transition when
    /// the cooldown has elapsed.
    pub fn state(&self) -> BreakerState {
        let mut core = self.core.lock();
        if core.state == BreakerState::Open
            && self.clock.now() >= core.opened_at + self.breaker.cooldown + core.cooldown_extra
        {
            core.state = BreakerState::HalfOpen;
            core.half_open_successes = 0;
            grdf_obs::incr("breaker.half_open");
        }
        core.state
    }

    /// Times the breaker has tripped open.
    pub fn trips(&self) -> u64 {
        self.trips.load(Ordering::Relaxed)
    }

    /// Total failed engine attempts, retries included.
    pub fn failed_attempts(&self) -> u64 {
        self.failed_attempts.load(Ordering::Relaxed)
    }

    /// Materialize entailments of `graph` through the breaker. Failures
    /// are retried per [`RetryPolicy`] (except deadline expiry, which
    /// retrying cannot fix); the final failure is counted against the
    /// breaker.
    pub fn materialize(
        &self,
        graph: &mut Graph,
        deadline: &Deadline,
    ) -> Result<usize, EngineError> {
        self.drive(graph, deadline, |engine, g, d| engine.materialize(g, d))
    }

    /// Incremental counterpart of [`ResilientEngine::materialize`]: derive
    /// the consequences of triples inserted since `from_generation`, with
    /// the same breaker and retry behavior. Retrying is safe — the delta
    /// pass is idempotent over an additive graph.
    pub fn materialize_delta(
        &self,
        graph: &mut Graph,
        from_generation: u64,
        deadline: &Deadline,
    ) -> Result<usize, EngineError> {
        self.drive(graph, deadline, |engine, g, d| {
            engine.materialize_delta(g, from_generation, d)
        })
    }

    fn drive(
        &self,
        graph: &mut Graph,
        deadline: &Deadline,
        call: impl Fn(&dyn ReasoningEngine, &mut Graph, &Deadline) -> Result<usize, EngineError>,
    ) -> Result<usize, EngineError> {
        let state = self.state();
        if state == BreakerState::Open {
            return Err(EngineError::CircuitOpen);
        }
        // Half-open allows exactly one attempt; closed allows retries.
        let attempts = if state == BreakerState::HalfOpen {
            1
        } else {
            self.retry.max_attempts
        };
        let mut last = EngineError::Failed("no attempt made".to_string());
        for attempt in 0..attempts.max(1) {
            if attempt > 0 {
                let backoff = self.retry.backoff_base * 2u32.saturating_pow(attempt - 1);
                // Observable retry storms: lifetime counters plus the
                // windowed series the sim's bounded-backoff oracle (and
                // burn-rate alerting) read.
                grdf_obs::incr("resilience.retries");
                grdf_obs::win_add(
                    "resilience.backoff_ms",
                    u64::try_from(backoff.as_millis()).unwrap_or(u64::MAX),
                );
                self.clock.sleep(backoff);
                if deadline.expired() {
                    last = EngineError::DeadlineExceeded;
                    break;
                }
            }
            match call(self.inner.as_ref(), graph, deadline) {
                Ok(n) => {
                    self.record_success();
                    return Ok(n);
                }
                Err(e) => {
                    self.failed_attempts.fetch_add(1, Ordering::Relaxed);
                    let fatal = e == EngineError::DeadlineExceeded;
                    last = e;
                    if fatal {
                        break;
                    }
                }
            }
        }
        self.record_failure();
        Err(last)
    }

    fn record_success(&self) {
        let mut core = self.core.lock();
        match core.state {
            BreakerState::Closed => core.consecutive_failures = 0,
            BreakerState::HalfOpen => {
                core.half_open_successes += 1;
                if core.half_open_successes >= self.breaker.half_open_successes {
                    core.state = BreakerState::Closed;
                    core.consecutive_failures = 0;
                    grdf_obs::incr("breaker.closed");
                }
            }
            // A success can't be observed while open (no call went out).
            BreakerState::Open => {}
        }
    }

    fn record_failure(&self) {
        let mut core = self.core.lock();
        match core.state {
            BreakerState::Closed => {
                core.consecutive_failures += 1;
                if core.consecutive_failures >= self.breaker.failure_threshold {
                    self.open(&mut core);
                }
            }
            // Failed trial: re-open for another cooldown.
            BreakerState::HalfOpen => self.open(&mut core),
            BreakerState::Open => {}
        }
    }

    /// Trip to `Open`, scheduling this period's half-open probe with
    /// deterministic jitter: a pure function of `(jitter_seed, trip #)`,
    /// so replays are exact while distinct breakers (and successive trips
    /// of one breaker) spread their probes apart.
    fn open(&self, core: &mut BreakerCore) {
        core.state = BreakerState::Open;
        core.opened_at = self.clock.now();
        let trip = self.trips.fetch_add(1, Ordering::Relaxed);
        let jitter = self.breaker.half_open_jitter.clamp(0.0, 1.0);
        core.cooldown_extra = if jitter > 0.0 {
            #[allow(clippy::cast_precision_loss)]
            let unit = splitmix64(self.jitter_seed ^ trip) as f64 / u64::MAX as f64;
            self.breaker.cooldown.mul_f64(jitter * unit)
        } else {
            Duration::ZERO
        };
        grdf_obs::incr("breaker.opened");
    }
}

// ---------------------------------------------------------------------------
// Admission control
// ---------------------------------------------------------------------------

/// Bounded in-flight request gate. A limit of 0 means unbounded.
#[derive(Debug, Default)]
pub struct AdmissionGate {
    limit: usize,
    in_flight: AtomicUsize,
    shed: AtomicU64,
}

impl AdmissionGate {
    /// Gate admitting at most `limit` concurrent requests (0 = unbounded).
    pub fn new(limit: usize) -> AdmissionGate {
        AdmissionGate {
            limit,
            in_flight: AtomicUsize::new(0),
            shed: AtomicU64::new(0),
        }
    }

    /// Try to admit a request; the permit releases its slot on drop.
    pub fn try_acquire(&self) -> Result<Permit<'_>, GsacsError> {
        let prev = self.in_flight.fetch_add(1, Ordering::AcqRel);
        if self.limit > 0 && prev >= self.limit {
            self.in_flight.fetch_sub(1, Ordering::AcqRel);
            self.shed.fetch_add(1, Ordering::Relaxed);
            grdf_obs::incr("admission.shed");
            return Err(GsacsError::Overloaded {
                in_flight: prev,
                limit: self.limit,
            });
        }
        Ok(Permit { gate: self })
    }

    /// Requests currently admitted.
    pub fn in_flight(&self) -> usize {
        self.in_flight.load(Ordering::Acquire)
    }

    /// Requests shed so far.
    pub fn shed_total(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }
}

/// RAII admission slot.
pub struct Permit<'a> {
    gate: &'a AdmissionGate,
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        self.gate.in_flight.fetch_sub(1, Ordering::AcqRel);
    }
}

// ---------------------------------------------------------------------------
// Latency histogram
// ---------------------------------------------------------------------------

/// Fixed log₂-bucket latency histogram with lock-free recording, in
/// microsecond units over [`grdf_obs::LogHistogram`].
///
/// Quantiles are interpolated within the bucket holding the target rank
/// and clamped to the largest recorded sample. (The PR 1 version returned
/// the bucket *upper* bound, overstating p50/p99 by up to 2×.)
#[derive(Default)]
pub struct LatencyHistogram {
    core: grdf_obs::LogHistogram,
}

impl LatencyHistogram {
    /// Record one request latency.
    pub fn record(&self, latency: Duration) {
        self.core
            .record(latency.as_micros().min(u128::from(u64::MAX)) as u64);
    }

    /// Recorded samples.
    pub fn count(&self) -> u64 {
        self.core.count()
    }

    /// Approximate quantile (`0.0..=1.0`), interpolated within the log₂
    /// bucket holding the target rank and clamped to the recorded
    /// maximum; zero when empty.
    pub fn quantile(&self, q: f64) -> Duration {
        Duration::from_micros(self.core.quantile(q))
    }
}

impl fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("count", &self.count())
            .field("p50", &self.quantile(0.5))
            .field("p99", &self.quantile(0.99))
            .finish()
    }
}

// ---------------------------------------------------------------------------
// Health reporting
// ---------------------------------------------------------------------------

/// A point-in-time health snapshot of a [`GSacs`](crate::gsacs::GSacs)
/// service.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthReport {
    /// Name of the plugged-in reasoning engine.
    pub reasoner: &'static str,
    /// Circuit-breaker state.
    pub breaker: BreakerState,
    /// Times the breaker has tripped.
    pub breaker_trips: u64,
    /// Whether the service is serving un-inferred data with conservative
    /// views.
    pub degraded: bool,
    /// Requests handled (admitted or shed).
    pub requests: u64,
    /// Requests shed by admission control.
    pub shed: u64,
    /// Requests currently in flight.
    pub in_flight: usize,
    /// Query-cache hits.
    pub cache_hits: u64,
    /// Query-cache misses.
    pub cache_misses: u64,
    /// Query-cache hit rate in `[0, 1]`.
    pub cache_hit_rate: f64,
    /// Secure views currently cached.
    pub view_cache_entries: usize,
    /// Audit entries currently retained.
    pub audit_entries: usize,
    /// Audit entries dropped by the ring buffer.
    pub audit_dropped: u64,
    /// Median request latency (interpolated within the log₂ bucket).
    pub p50: Duration,
    /// 99th-percentile request latency (interpolated within the log₂
    /// bucket).
    pub p99: Duration,
    /// Declared SLOs evaluated at snapshot time (empty when no
    /// objectives are configured or the obs handle has no window store).
    pub slo: Vec<grdf_obs::SloStatus>,
}

impl HealthReport {
    /// Whether any declared objective is currently burning its error
    /// budget on both alert windows.
    pub fn slo_burning(&self) -> bool {
        self.slo
            .iter()
            .any(|s| s.state == grdf_obs::SloState::Burning)
    }

    /// Multi-line human-readable rendering (used by `grdf-cli health`).
    pub fn render(&self) -> String {
        let mut out = format!(
            "reasoner:        {}\n\
             breaker:         {} (trips: {})\n\
             degraded:        {}\n\
             requests:        {} ({} shed, {} in flight)\n\
             query cache:     {} hits / {} misses ({:.1}% hit rate)\n\
             view cache:      {} entries\n\
             audit log:       {} entries ({} dropped)\n\
             latency:         p50 ≤ {:?}, p99 ≤ {:?}",
            self.reasoner,
            self.breaker,
            self.breaker_trips,
            if self.degraded {
                "YES — serving un-inferred data, conservative views"
            } else {
                "no"
            },
            self.requests,
            self.shed,
            self.in_flight,
            self.cache_hits,
            self.cache_misses,
            self.cache_hit_rate * 100.0,
            self.view_cache_entries,
            self.audit_entries,
            self.audit_dropped,
            self.p50,
            self.p99,
        );
        for s in &self.slo {
            out.push_str("\nslo:             ");
            out.push_str(&s.render_line());
        }
        out
    }

    /// Machine-readable JSON rendering, shared by `grdf-cli health --json`
    /// and the server's `/health` endpoint. Latencies are integer
    /// microseconds; field order is stable for external probes.
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"reasoner\": \"{}\",\n  \"breaker\": \"{}\",\n  \"breaker_trips\": {},\n  \
             \"degraded\": {},\n  \"requests\": {},\n  \"shed\": {},\n  \"in_flight\": {},\n  \
             \"cache_hits\": {},\n  \"cache_misses\": {},\n  \"cache_hit_rate\": {:.4},\n  \
             \"view_cache_entries\": {},\n  \"audit_entries\": {},\n  \"audit_dropped\": {},\n  \
             \"p50_us\": {},\n  \"p99_us\": {},\n  \"slo\": {}\n}}",
            self.reasoner,
            self.breaker,
            self.breaker_trips,
            self.degraded,
            self.requests,
            self.shed,
            self.in_flight,
            self.cache_hits,
            self.cache_misses,
            self.cache_hit_rate,
            self.view_cache_entries,
            self.audit_entries,
            self.audit_dropped,
            self.p50.as_micros(),
            self.p99.as_micros(),
            grdf_obs::statuses_json(&self.slo),
        )
    }
}

// ---------------------------------------------------------------------------
// Deterministic fault injection
// ---------------------------------------------------------------------------

/// One injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The stage fails with an error.
    Error,
    /// The stage stalls for the given duration (advanced on the injected
    /// clock, so deadlines fire without wall time passing).
    Latency(Duration),
}

/// A hook that may fail or stall a pipeline stage. The default
/// implementation injects nothing.
pub trait FaultInjector: Send + Sync {
    /// Called before `stage` runs; an `Err` aborts the request.
    fn inject(&self, stage: Stage, clock: &dyn Clock) -> Result<(), GsacsError>;
}

/// An injector that never injects (useful as an explicit default).
#[derive(Debug, Default, Clone, Copy)]
pub struct NoFaults;

impl FaultInjector for NoFaults {
    fn inject(&self, _stage: Stage, _clock: &dyn Clock) -> Result<(), GsacsError> {
        Ok(())
    }
}

/// Deterministic, seeded fault plan. The decision for call `n` at a stage
/// is a pure function of `(seed, stage, n)` via the workspace-shared
/// [`SeededDecider`] — the same primitive behind storage fault injection
/// and the socket chaos client, so one [`SeedTree`] lane drives them all.
#[derive(Debug)]
pub struct FaultPlan {
    decider: SeededDecider,
    /// Probability a call errors.
    error_rate: f64,
    /// Probability a call stalls (checked after the error draw).
    latency_rate: f64,
    /// Stall duration for latency faults.
    latency: Duration,
    /// Per-stage call sequence numbers.
    seq: Mutex<[u64; 4]>,
    /// Faults actually injected, per kind.
    injected_errors: AtomicU64,
    injected_stalls: AtomicU64,
}

impl FaultPlan {
    /// A plan injecting errors and stalls at the given rates.
    pub fn new(seed: u64, error_rate: f64, latency_rate: f64, latency: Duration) -> FaultPlan {
        FaultPlan {
            decider: SeededDecider::new(seed),
            error_rate: error_rate.clamp(0.0, 1.0),
            latency_rate: latency_rate.clamp(0.0, 1.0),
            latency,
            seq: Mutex::new([0; 4]),
            injected_errors: AtomicU64::new(0),
            injected_stalls: AtomicU64::new(0),
        }
    }

    /// A plan drawing from a [`SeedTree`] lane (hierarchical master-seed
    /// derivation — see `grdf_runtime::SeedTree`).
    pub fn from_tree(
        tree: &SeedTree,
        error_rate: f64,
        latency_rate: f64,
        latency: Duration,
    ) -> FaultPlan {
        FaultPlan::new(tree.seed(), error_rate, latency_rate, latency)
    }

    /// The seed this plan replays from.
    pub fn seed(&self) -> u64 {
        self.decider.seed()
    }

    fn stage_index(stage: Stage) -> usize {
        match stage {
            Stage::Admission => 0,
            Stage::View => 1,
            Stage::Query => 2,
            Stage::Reasoning => 3,
        }
    }

    fn stage_lane(stage: Stage) -> &'static str {
        match stage {
            Stage::Admission => "fault.admission",
            Stage::View => "fault.view",
            Stage::Query => "fault.query",
            Stage::Reasoning => "fault.reasoning",
        }
    }

    /// The fault (if any) for the next call at `stage`. Consumes one
    /// sequence number per call.
    pub fn decide(&self, stage: Stage) -> Option<FaultKind> {
        let idx = Self::stage_index(stage);
        let n = {
            let mut seq = self.seq.lock();
            let n = seq[idx];
            seq[idx] += 1;
            n
        };
        let word = self.decider.draw(Self::stage_lane(stage), n);
        let draw = (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        if draw < self.error_rate {
            self.injected_errors.fetch_add(1, Ordering::Relaxed);
            Some(FaultKind::Error)
        } else if draw < self.error_rate + self.latency_rate {
            self.injected_stalls.fetch_add(1, Ordering::Relaxed);
            Some(FaultKind::Latency(self.latency))
        } else {
            None
        }
    }

    /// `(errors, stalls)` injected so far.
    pub fn injected(&self) -> (u64, u64) {
        (
            self.injected_errors.load(Ordering::Relaxed),
            self.injected_stalls.load(Ordering::Relaxed),
        )
    }
}

impl FaultInjector for FaultPlan {
    fn inject(&self, stage: Stage, clock: &dyn Clock) -> Result<(), GsacsError> {
        match self.decide(stage) {
            None => Ok(()),
            Some(FaultKind::Latency(d)) => {
                drop(
                    grdf_obs::span("fault.injected")
                        .tag("kind", "stall")
                        .tag("stage", stage),
                );
                grdf_obs::incr("faults.injected");
                clock.sleep(d);
                Ok(())
            }
            Some(FaultKind::Error) => {
                drop(
                    grdf_obs::span("fault.injected")
                        .tag("kind", "error")
                        .tag("stage", stage),
                );
                grdf_obs::incr("faults.injected");
                Err(GsacsError::Internal(format!(
                    "injected fault at {stage} stage"
                )))
            }
        }
    }
}

/// A [`ReasoningEngine`] wrapper that injects faults from a [`FaultPlan`]
/// before delegating — the engine-side half of the harness.
pub struct FaultyEngine {
    inner: Box<dyn ReasoningEngine>,
    plan: Arc<FaultPlan>,
    clock: Arc<dyn Clock>,
}

impl FaultyEngine {
    /// Wrap `inner`, consulting `plan` on every materialization.
    pub fn new(
        inner: Box<dyn ReasoningEngine>,
        plan: Arc<FaultPlan>,
        clock: Arc<dyn Clock>,
    ) -> FaultyEngine {
        FaultyEngine { inner, plan, clock }
    }
}

impl ReasoningEngine for FaultyEngine {
    fn materialize(&self, graph: &mut Graph, deadline: &Deadline) -> Result<usize, EngineError> {
        match self.plan.decide(Stage::Reasoning) {
            Some(FaultKind::Error) => {
                // Mark the injected fault in the trace so degraded-mode
                // requests are visibly attributable to it.
                drop(
                    grdf_obs::span("fault.injected")
                        .tag("kind", "error")
                        .tag("stage", Stage::Reasoning),
                );
                grdf_obs::incr("faults.injected");
                return Err(EngineError::Failed("injected reasoner fault".to_string()));
            }
            Some(FaultKind::Latency(d)) => {
                drop(
                    grdf_obs::span("fault.injected")
                        .tag("kind", "stall")
                        .tag("stage", Stage::Reasoning),
                );
                grdf_obs::incr("faults.injected");
                self.clock.sleep(d);
                if deadline.expired() {
                    return Err(EngineError::DeadlineExceeded);
                }
            }
            None => {}
        }
        self.inner.materialize(graph, deadline)
    }

    fn name(&self) -> &'static str {
        "faulty"
    }
}

// ---------------------------------------------------------------------------
// Service-level resilience configuration
// ---------------------------------------------------------------------------

/// Whether (and how hard) G-SACS runs the static-analysis policy passes
/// over its inputs at `init` and `update` time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LintGate {
    /// No linting (the historical behavior).
    #[default]
    Off,
    /// Lint and record findings (audit entry + metrics), but serve anyway.
    Flag,
    /// Lint and fail closed on error-level findings: `init` rejects the
    /// service (every request returns [`GsacsError::LintRejected`]) and
    /// updates that would introduce error-level findings are denied.
    Enforce,
}

/// Whether G-SACS state survives a process crash.
///
/// `Ephemeral` is the historical in-memory behavior. `Wal` mounts a
/// [`DurableStore`]: every accepted update batch is appended to the
/// write-ahead log *before* any in-memory mutation, checkpoints rotate by
/// WAL-size threshold, and audit entries stream to the store's JSONL sink.
/// Recover a crashed service with
/// [`GSacs::recover_with_resilience`](crate::gsacs::GSacs::recover_with_resilience).
#[derive(Clone, Default)]
pub enum Durability {
    /// In-memory only; a crash loses graph, policies, and audit trail.
    #[default]
    Ephemeral,
    /// Write-ahead durability through the given store.
    Wal(Arc<grdf_store::DurableStore>),
}

impl fmt::Debug for Durability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Durability::Ephemeral => write!(f, "Ephemeral"),
            Durability::Wal(store) => write!(f, "Wal(run_id={})", store.run_id()),
        }
    }
}

/// Resilience knobs for a [`GSacs`](crate::gsacs::GSacs) instance.
#[derive(Clone)]
pub struct ResilienceConfig {
    /// Time source for deadlines, backoff, and cooldowns.
    pub clock: Arc<dyn Clock>,
    /// Per-request budget; unlimited by default.
    pub request_budget: Budget,
    /// Circuit-breaker tuning for the reasoning engine.
    pub breaker: BreakerConfig,
    /// Retry tuning for the reasoning engine.
    pub retry: RetryPolicy,
    /// Maximum concurrent requests (0 = unbounded).
    pub max_in_flight: usize,
    /// Audit-log ring-buffer capacity (0 = unbounded, discouraged).
    pub audit_capacity: usize,
    /// Optional fault-injection hook (tests only).
    pub fault_injector: Option<Arc<dyn FaultInjector>>,
    /// Observability handle: the metrics registry every pipeline stage
    /// records into, and the trace sink request spans flush to (disabled
    /// by default — enable with [`grdf_obs::Obs::with_tracing`]).
    pub obs: grdf_obs::Obs,
    /// Static-analysis gate over policies + data at `init`/`update` time.
    pub lint_gate: LintGate,
    /// Crash durability: [`Durability::Ephemeral`] (default) or a mounted
    /// write-ahead store.
    pub durability: Durability,
    /// Declared service-level objectives, evaluated against the obs
    /// handle's window store on every [`HealthReport`] snapshot (no-ops
    /// when `obs` has no windows configured).
    pub slos: Vec<grdf_obs::Objective>,
    /// Hierarchical seed lane for every randomized decision this service
    /// makes (breaker half-open jitter today). `None` (the default) keeps
    /// the historical behavior — a process-global counter desynchronizes
    /// co-created instances — while a simulated world pins a lane so the
    /// whole run replays bit-identically from one master seed.
    pub seeds: Option<SeedTree>,
}

impl Default for ResilienceConfig {
    fn default() -> ResilienceConfig {
        ResilienceConfig {
            clock: grdf_runtime::system_clock(),
            request_budget: Budget::UNLIMITED,
            breaker: BreakerConfig::default(),
            retry: RetryPolicy::default(),
            max_in_flight: 1024,
            audit_capacity: 65_536,
            fault_injector: None,
            obs: grdf_obs::Obs::new(),
            lint_gate: LintGate::default(),
            durability: Durability::default(),
            slos: Vec::new(),
            seeds: None,
        }
    }
}

impl fmt::Debug for ResilienceConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ResilienceConfig")
            .field("request_budget", &self.request_budget)
            .field("breaker", &self.breaker)
            .field("retry", &self.retry)
            .field("max_in_flight", &self.max_in_flight)
            .field("audit_capacity", &self.audit_capacity)
            .field("fault_injector", &self.fault_injector.is_some())
            .field("tracing", &self.obs.tracing_enabled())
            .field("durability", &self.durability)
            .field("slos", &self.slos.len())
            .field("seeds", &self.seeds)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gsacs::NoReasoning;
    use grdf_runtime::ManualClock;

    /// An engine that fails a configurable number of times, then succeeds.
    struct FlakyEngine {
        failures_left: Mutex<u32>,
    }

    impl ReasoningEngine for FlakyEngine {
        fn materialize(
            &self,
            _graph: &mut Graph,
            _deadline: &Deadline,
        ) -> Result<usize, EngineError> {
            let mut left = self.failures_left.lock();
            if *left > 0 {
                *left -= 1;
                Err(EngineError::Failed("flaky".to_string()))
            } else {
                Ok(7)
            }
        }

        fn name(&self) -> &'static str {
            "flaky"
        }
    }

    fn resilient(failures: u32, clock: Arc<ManualClock>) -> ResilientEngine {
        ResilientEngine::new(
            Box::new(FlakyEngine {
                failures_left: Mutex::new(failures),
            }),
            clock,
            BreakerConfig {
                failure_threshold: 2,
                cooldown: Duration::from_secs(10),
                half_open_successes: 1,
                half_open_jitter: 0.0,
            },
            RetryPolicy {
                max_attempts: 1,
                backoff_base: Duration::from_millis(10),
            },
        )
    }

    #[test]
    fn breaker_opens_after_threshold_and_recovers_after_cooldown() {
        let clock = Arc::new(ManualClock::new());
        let engine = resilient(2, clock.clone());
        let mut g = Graph::new();
        let d = Deadline::never();

        // Two failures trip the breaker (threshold 2).
        assert!(engine.materialize(&mut g, &d).is_err());
        assert_eq!(engine.state(), BreakerState::Closed);
        assert!(engine.materialize(&mut g, &d).is_err());
        assert_eq!(engine.state(), BreakerState::Open);
        assert_eq!(engine.trips(), 1);

        // While open: fail fast without touching the engine.
        assert_eq!(
            engine.materialize(&mut g, &d),
            Err(EngineError::CircuitOpen)
        );

        // Cooldown elapses → half-open → successful trial closes it.
        clock.advance(Duration::from_secs(10));
        assert_eq!(engine.state(), BreakerState::HalfOpen);
        assert_eq!(engine.materialize(&mut g, &d), Ok(7));
        assert_eq!(engine.state(), BreakerState::Closed);
    }

    #[test]
    fn failed_half_open_trial_reopens() {
        let clock = Arc::new(ManualClock::new());
        let engine = resilient(3, clock.clone());
        let mut g = Graph::new();
        let d = Deadline::never();
        assert!(engine.materialize(&mut g, &d).is_err());
        assert!(engine.materialize(&mut g, &d).is_err());
        assert_eq!(engine.state(), BreakerState::Open);
        clock.advance(Duration::from_secs(10));
        // Trial fails (third configured failure) → open again.
        assert!(engine.materialize(&mut g, &d).is_err());
        assert_eq!(engine.state(), BreakerState::Open);
        assert_eq!(engine.trips(), 2);
        // Second cooldown → trial succeeds.
        clock.advance(Duration::from_secs(10));
        assert_eq!(engine.materialize(&mut g, &d), Ok(7));
        assert_eq!(engine.state(), BreakerState::Closed);
    }

    #[test]
    fn jitter_spreads_lockstep_half_open_probes() {
        // Eight tenants' breakers trip on the same shared-cause failure at
        // t=0; with 50% jitter their half-open probes must not land on one
        // instant, or the recovering engine takes the whole herd at once.
        let clock = Arc::new(ManualClock::new());
        let cooldown = Duration::from_secs(10);
        let engines: Vec<ResilientEngine> = (0..8u64)
            .map(|i| {
                ResilientEngine::new(
                    Box::new(FlakyEngine {
                        failures_left: Mutex::new(u32::MAX),
                    }),
                    clock.clone(),
                    BreakerConfig {
                        failure_threshold: 1,
                        cooldown,
                        half_open_successes: 1,
                        half_open_jitter: 0.5,
                    },
                    RetryPolicy {
                        max_attempts: 1,
                        backoff_base: Duration::from_millis(10),
                    },
                )
                .with_jitter_seed(i)
            })
            .collect();
        let mut g = Graph::new();
        let d = Deadline::never();
        for e in &engines {
            assert!(e.materialize(&mut g, &d).is_err());
            assert_eq!(e.state(), BreakerState::Open);
        }

        // Walk time forward and record each breaker's probe instant.
        let mut probe_at: Vec<Option<Duration>> = vec![None; engines.len()];
        let step = Duration::from_millis(100);
        while clock.now() < cooldown + cooldown / 2 + step {
            clock.advance(step);
            for (e, slot) in engines.iter().zip(probe_at.iter_mut()) {
                if slot.is_none() && e.state() == BreakerState::HalfOpen {
                    *slot = Some(clock.now());
                }
            }
        }

        let times: Vec<Duration> = probe_at.into_iter().map(Option::unwrap).collect();
        for &t in &times {
            assert!(t >= cooldown, "probe before base cooldown: {t:?}");
            assert!(
                t <= cooldown + cooldown / 2 + step,
                "probe past max jitter: {t:?}"
            );
        }
        let distinct: std::collections::BTreeSet<Duration> = times.iter().copied().collect();
        assert!(
            distinct.len() >= 4,
            "probes still in lockstep: {distinct:?}"
        );
    }

    #[test]
    fn zero_jitter_keeps_the_exact_cooldown_schedule() {
        let clock = Arc::new(ManualClock::new());
        let engine = resilient(u32::MAX, clock.clone()).with_jitter_seed(42);
        let mut g = Graph::new();
        let d = Deadline::never();
        assert!(engine.materialize(&mut g, &d).is_err());
        assert!(engine.materialize(&mut g, &d).is_err());
        assert_eq!(engine.state(), BreakerState::Open);
        clock.advance(Duration::from_secs(10) - Duration::from_nanos(1));
        assert_eq!(engine.state(), BreakerState::Open);
        clock.advance(Duration::from_nanos(1));
        assert_eq!(engine.state(), BreakerState::HalfOpen);
    }

    #[test]
    fn retries_succeed_within_one_call_and_backoff_uses_clock() {
        let clock = Arc::new(ManualClock::new());
        let engine = ResilientEngine::new(
            Box::new(FlakyEngine {
                failures_left: Mutex::new(2),
            }),
            clock.clone(),
            BreakerConfig::default(),
            RetryPolicy {
                max_attempts: 3,
                backoff_base: Duration::from_millis(10),
            },
        );
        let mut g = Graph::new();
        assert_eq!(engine.materialize(&mut g, &Deadline::never()), Ok(7));
        // Two retries: 10ms + 20ms of backoff on the manual clock.
        assert_eq!(clock.now(), Duration::from_millis(30));
        assert_eq!(engine.failed_attempts(), 2);
        assert_eq!(engine.state(), BreakerState::Closed);
    }

    #[test]
    fn deadline_expiry_is_not_retried() {
        struct DeadlineEater;
        impl ReasoningEngine for DeadlineEater {
            fn materialize(&self, _g: &mut Graph, _d: &Deadline) -> Result<usize, EngineError> {
                Err(EngineError::DeadlineExceeded)
            }
            fn name(&self) -> &'static str {
                "eater"
            }
        }
        let clock = Arc::new(ManualClock::new());
        let engine = ResilientEngine::new(
            Box::new(DeadlineEater),
            clock.clone(),
            BreakerConfig::default(),
            RetryPolicy {
                max_attempts: 5,
                backoff_base: Duration::from_millis(10),
            },
        );
        let mut g = Graph::new();
        assert_eq!(
            engine.materialize(&mut g, &Deadline::never()),
            Err(EngineError::DeadlineExceeded)
        );
        assert_eq!(
            engine.failed_attempts(),
            1,
            "no retry after deadline expiry"
        );
        assert_eq!(clock.now(), Duration::ZERO, "no backoff slept");
    }

    #[test]
    fn admission_gate_sheds_beyond_limit() {
        let gate = AdmissionGate::new(2);
        let p1 = gate.try_acquire().unwrap();
        let _p2 = gate.try_acquire().unwrap();
        assert!(matches!(
            gate.try_acquire(),
            Err(GsacsError::Overloaded {
                in_flight: 2,
                limit: 2
            })
        ));
        assert_eq!(gate.shed_total(), 1);
        drop(p1);
        assert!(gate.try_acquire().is_ok());
        assert_eq!(gate.in_flight(), 1, "permits release on drop");
    }

    #[test]
    fn unbounded_gate_never_sheds() {
        let gate = AdmissionGate::new(0);
        let permits: Vec<_> = (0..100).map(|_| gate.try_acquire().unwrap()).collect();
        assert_eq!(gate.in_flight(), 100);
        assert_eq!(gate.shed_total(), 0);
        drop(permits);
        assert_eq!(gate.in_flight(), 0);
    }

    #[test]
    fn histogram_quantiles_bracket_samples() {
        let h = LatencyHistogram::default();
        for _ in 0..99 {
            h.record(Duration::from_micros(100));
        }
        h.record(Duration::from_millis(500));
        assert_eq!(h.count(), 100);
        assert!(h.quantile(0.5) <= Duration::from_micros(256));
        assert!(h.quantile(0.99) >= Duration::from_micros(100));
        assert!(h.quantile(1.0) >= Duration::from_millis(500));
    }

    /// Pin exact interpolated quantiles on a known distribution: the old
    /// upper-bound quantile would report 1024 µs / 4096 µs here.
    #[test]
    fn histogram_quantiles_interpolate_within_bucket() {
        let h = LatencyHistogram::default();
        for _ in 0..50 {
            h.record(Duration::from_millis(1)); // bucket [512, 1024)
        }
        for _ in 0..50 {
            h.record(Duration::from_millis(4)); // bucket [2048, 4096)
        }
        // Rank 50 is the last of the 50 samples in [512, 1024): the
        // interpolated estimate is the bucket upper bound, well under the
        // old report's next-power-of-two for the 4 ms tail.
        assert_eq!(h.quantile(0.5), Duration::from_micros(1024));
        // Rank 99 → 49/50 through [2048, 4096): 2048 + 0.98·2048 ≈ 4055,
        // clamped to the recorded maximum of 4000.
        assert_eq!(h.quantile(0.99), Duration::from_millis(4));
        assert_eq!(h.quantile(1.0), Duration::from_millis(4));
        // Empty histogram stays at zero.
        assert_eq!(LatencyHistogram::default().quantile(0.5), Duration::ZERO);
    }

    #[test]
    fn fault_plan_is_deterministic() {
        let a = FaultPlan::new(42, 0.3, 0.2, Duration::from_millis(5));
        let b = FaultPlan::new(42, 0.3, 0.2, Duration::from_millis(5));
        for _ in 0..200 {
            assert_eq!(a.decide(Stage::Query), b.decide(Stage::Query));
            assert_eq!(a.decide(Stage::Reasoning), b.decide(Stage::Reasoning));
        }
        let c = FaultPlan::new(43, 0.3, 0.2, Duration::from_millis(5));
        let differs = (0..200).any(|_| {
            let x = FaultPlan::new(42, 0.3, 0.2, Duration::from_millis(5));
            let _ = x;
            a.decide(Stage::View) != c.decide(Stage::View)
        });
        assert!(differs, "different seeds must produce different plans");
    }

    #[test]
    fn faulty_engine_latency_consumes_deadline() {
        let clock = Arc::new(ManualClock::new());
        let plan = Arc::new(FaultPlan::new(7, 0.0, 1.0, Duration::from_millis(100)));
        let engine = FaultyEngine::new(Box::new(NoReasoning), plan, clock.clone());
        let mut g = Graph::new();
        let d = Deadline::armed(clock.clone(), Budget::with_time(Duration::from_millis(50)));
        assert_eq!(
            engine.materialize(&mut g, &d),
            Err(EngineError::DeadlineExceeded)
        );
        assert_eq!(
            clock.now(),
            Duration::from_millis(100),
            "stall advanced the clock"
        );
    }
}
