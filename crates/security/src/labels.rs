//! Label-compilation IR and the whole-policy-set static analyzer.
//!
//! This is ROADMAP item 1's substrate: compile the List-8 policy set plus
//! the role hierarchy (`sec:subRoleOf`) into per-triple visibility bitsets
//! over the interned-id graph — the Accumulo/GeoMesa cell-level model.
//! A session resolves its role(s) to an authorization bitset once
//! ([`LabelIr::authorizations`]); every scan then filters with a single
//! bitset intersection per triple, with zero per-role state.
//!
//! Compilation resolves the *effective* policy set per role up front: a
//! sub-role inherits every ancestor's policies and deny-overrides applies
//! across the merged set, so a role's bit already encodes hierarchy-aware
//! evaluation. The differential verifier
//! ([`LabelIr::verify_label_equivalence`]) proves that label-filtered
//! scans produce exactly the materialized secure views of
//! [`crate::views::secure_view`] for every role.
//!
//! On top of the IR sit four whole-policy-set static passes (surfaced by
//! `grdf-lint` and the G-SACS `LintGate`):
//!
//! * **S007 unreachable-policy** — removing the policy changes no role's
//!   compiled visibility (shadowing at the whole-set level, beyond the
//!   pairwise S003 check).
//! * **S008 contradictory-overlap** — an effective Permit and Deny of one
//!   role collide on a concrete subject in a way the pairwise S001
//!   designator check cannot see (inherited policies, or designators that
//!   only meet on a multi-typed individual).
//! * **S009 entailment-leak** — a role's permitted subgraph plus the
//!   public schema OWL-Horst-entails a triple about a subject that role is
//!   explicitly denied (reusing the semi-naive id-space reasoner).
//! * **S010 non-monotonic-authorization** — a sub-role's effective view
//!   loses a triple its super-role can see.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};

use grdf_owl::hierarchy::Hierarchy;
use grdf_owl::reasoner::Reasoner;
use grdf_rdf::diagnostic::{Diagnostic, LintCode};
use grdf_rdf::graph::{Graph, TermId};
use grdf_rdf::labels::{LabelColumn, TripleLabels, VisBitset};
use grdf_rdf::term::{Term, Triple};
use grdf_rdf::vocab::{grdf, owl, rdf, rdfs};

use crate::policy::{Action, Condition, Decision, PolicySet};
use crate::views::secure_view;

/// IRI of the role-hierarchy property: `(sub, sec:subRoleOf, super)`.
/// A sub-role inherits every policy of its (transitive) super-roles.
pub fn sub_role_of() -> String {
    grdf::sec("subRoleOf")
}

/// The `sec:subRoleOf` DAG, decoded from the graph. Cycle-safe: a cycle
/// makes the members mutually inherit without looping.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RoleHierarchy {
    /// sub-role → direct super-roles.
    supers: BTreeMap<String, BTreeSet<String>>,
}

impl RoleHierarchy {
    /// An empty hierarchy (every role stands alone).
    #[must_use]
    pub fn new() -> RoleHierarchy {
        RoleHierarchy::default()
    }

    /// Declare `sub` a sub-role of `sup`.
    pub fn add(&mut self, sub: &str, sup: &str) {
        self.supers
            .entry(sub.to_string())
            .or_default()
            .insert(sup.to_string());
    }

    /// Decode every `sec:subRoleOf` edge in `graph`.
    #[must_use]
    pub fn decode(graph: &Graph) -> RoleHierarchy {
        let mut h = RoleHierarchy::new();
        for t in graph.match_pattern(None, Some(&Term::iri(&sub_role_of())), None) {
            if let (Some(sub), Some(sup)) = (t.subject.as_iri(), t.object.as_iri()) {
                h.add(sub, sup);
            }
        }
        h
    }

    /// Encode the hierarchy as `sec:subRoleOf` triples.
    pub fn encode(&self, graph: &mut Graph) {
        let p = Term::iri(&sub_role_of());
        for (sub, sups) in &self.supers {
            for sup in sups {
                graph.add(Term::iri(sub), p.clone(), Term::iri(sup));
            }
        }
    }

    /// True when no edge is declared.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.supers.is_empty()
    }

    /// Every declared `(sub, super)` edge, sorted.
    #[must_use]
    pub fn edges(&self) -> Vec<(String, String)> {
        self.supers
            .iter()
            .flat_map(|(sub, sups)| sups.iter().map(move |s| (sub.clone(), s.clone())))
            .collect()
    }

    /// All roles mentioned by any edge, sorted.
    #[must_use]
    pub fn roles(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        for (sub, sups) in &self.supers {
            out.insert(sub.clone());
            out.extend(sups.iter().cloned());
        }
        out
    }

    /// Transitive super-roles of `role`, excluding itself, sorted.
    #[must_use]
    pub fn ancestors(&self, role: &str) -> BTreeSet<String> {
        let mut seen: BTreeSet<String> = BTreeSet::new();
        let mut queue: VecDeque<&str> = VecDeque::new();
        queue.push_back(role);
        while let Some(r) = queue.pop_front() {
            if let Some(sups) = self.supers.get(r) {
                for s in sups {
                    if s != role && seen.insert(s.clone()) {
                        queue.push_back(s.as_str());
                    }
                }
            }
        }
        seen
    }
}

/// Precomputed resource-designator relations for a policy set: the named
/// superclass cone and asserted types of each distinct designator IRI.
///
/// [`DesignatorIndex::overlap`] reproduces the legacy pairwise
/// `resources_overlap` semantics (equal, subclass either way, or
/// instance-of either way) with the hierarchy walked once per designator
/// instead of once per policy pair — the pairwise `conflicts` pass and the
/// S008 suppression both route through it.
#[derive(Debug, Clone, Default)]
pub struct DesignatorIndex {
    /// designator → its transitive named superclasses (excluding itself).
    supers: HashMap<String, BTreeSet<String>>,
    /// designator → `{t} ∪ superclasses(t)` for each asserted named type.
    type_cones: HashMap<String, BTreeSet<String>>,
}

impl DesignatorIndex {
    /// Index every distinct resource designator in `policies` against the
    /// (materialized) hierarchy of `data`.
    #[must_use]
    pub fn new(data: &Graph, policies: &PolicySet) -> DesignatorIndex {
        let h = Hierarchy::new(data);
        let mut idx = DesignatorIndex::default();
        for p in &policies.policies {
            let r = p.resource.as_str();
            if idx.supers.contains_key(r) {
                continue;
            }
            let term = Term::iri(r);
            let supers: BTreeSet<String> = h
                .superclasses(&term)
                .iter()
                .filter_map(|t| t.as_iri().map(str::to_string))
                .collect();
            let mut cone = BTreeSet::new();
            for t in h.types_of(&term) {
                if let Some(i) = t.as_iri() {
                    cone.insert(i.to_string());
                }
                for s in h.superclasses(&t) {
                    if let Some(i) = s.as_iri() {
                        cone.insert(i.to_string());
                    }
                }
            }
            idx.supers.insert(r.to_string(), supers);
            idx.type_cones.insert(r.to_string(), cone);
        }
        idx
    }

    /// Whether two designators overlap: equal, one a subclass of the
    /// other, or an instance of the other (either direction).
    #[must_use]
    pub fn overlap(&self, a: &str, b: &str) -> bool {
        if a == b {
            return true;
        }
        let sup_has = |x: &str, y: &str| self.supers.get(x).is_some_and(|s| s.contains(y));
        let cone_has = |x: &str, y: &str| self.type_cones.get(x).is_some_and(|s| s.contains(y));
        sup_has(a, b) || sup_has(b, a) || cone_has(a, b) || cone_has(b, a)
    }
}

/// One policy after compilation: its subject-match set resolved against
/// the graph and its property conditions resolved to a concrete predicate
/// set.
#[derive(Debug, Clone)]
pub struct CompiledPolicy {
    /// Index into the source [`PolicySet`].
    pub index: usize,
    /// Policy IRI.
    pub id: String,
    /// Declaring role IRI.
    pub role: String,
    /// Governed action.
    pub action: Action,
    /// Permit or Deny.
    pub decision: Decision,
    /// The raw resource designator.
    pub resource: String,
    /// Every graph subject the designator matches (instance IRI equality
    /// or a type inside the designator's subclass cone) — all subjects,
    /// not just instances; passes intersect with
    /// [`LabelIr::instance_subjects`] where view semantics demand it.
    pub matches: BTreeSet<TermId>,
    /// `None` for an unconditional policy; `Some(preds)` for a
    /// property-conditioned one (the predicate ids, of those present in
    /// the graph, that satisfy every condition). `rdf:type` is always
    /// visible on matched subjects regardless.
    pub allowed: Option<BTreeSet<TermId>>,
}

/// What one role's effective policies conclude about one subject.
#[derive(Debug, Clone, Default)]
struct SubjectGrant {
    /// An effective Deny matches: nothing is visible.
    denied: bool,
    /// At least one effective Permit matches (grants at least `rdf:type`).
    any_permit: bool,
    /// An unconditional Permit matches: every predicate visible.
    all_preds: bool,
    /// Predicates granted by conditioned permits.
    preds: BTreeSet<TermId>,
}

impl SubjectGrant {
    fn grants(&self, pred: TermId, type_id: Option<TermId>) -> bool {
        if self.denied || !self.any_permit {
            return false;
        }
        if Some(pred) == type_id {
            return true;
        }
        self.all_preds || self.preds.contains(&pred)
    }
}

/// The compiled label IR: roles, effective policy sets, per-policy match
/// sets, and the per-triple visibility table.
#[derive(Debug, Clone)]
pub struct LabelIr {
    /// Every role, sorted; a role's index is its bit in every
    /// [`VisBitset`].
    pub roles: Vec<String>,
    role_index: HashMap<String, usize>,
    /// The decoded `sec:subRoleOf` hierarchy.
    pub hierarchy: RoleHierarchy,
    /// Compiled policies, in source order.
    pub policies: Vec<CompiledPolicy>,
    /// Per role bit: indices of its effective policies (own plus every
    /// transitive ancestor's), ascending.
    pub effective: Vec<Vec<usize>>,
    /// The per-triple visibility table.
    pub labels: TripleLabels,
    /// The table sealed as a scan-order parallel column over the compile
    /// graph — the filtered scan's zero-hash fast path.
    pub column: LabelColumn,
    /// Subjects that pass the instance test (typed with at least one
    /// non-OWL/RDFS class) and are not blank — the subjects secure views
    /// evaluate policies over.
    pub instance_subjects: BTreeSet<TermId>,
    /// designator IRI → subject-match cone (the designator plus its
    /// named-path subclass closure), for matching subjects that only
    /// appear in derived graphs.
    cones: HashMap<String, HashSet<Term>>,
    type_id: Option<TermId>,
}

impl LabelIr {
    /// Compile `policies` (plus the `sec:subRoleOf` hierarchy found in
    /// `data`) into per-triple visibility bitsets over `data`. Materialize
    /// `data` first for full semantics-aware matching, exactly as for
    /// [`secure_view`].
    #[must_use]
    pub fn compile(data: &Graph, policies: &PolicySet) -> LabelIr {
        let _span = grdf_obs::span("labels.compile");
        let hierarchy = RoleHierarchy::decode(data);
        let mut role_set: BTreeSet<String> =
            policies.policies.iter().map(|p| p.role.clone()).collect();
        role_set.extend(hierarchy.roles());
        let roles: Vec<String> = role_set.into_iter().collect();
        let role_index: HashMap<String, usize> = roles
            .iter()
            .enumerate()
            .map(|(i, r)| (r.clone(), i))
            .collect();

        // Effective policy set per role: own plus transitive ancestors'.
        let effective: Vec<Vec<usize>> = roles
            .iter()
            .map(|r| {
                let anc = hierarchy.ancestors(r);
                policies
                    .policies
                    .iter()
                    .enumerate()
                    .filter(|(_, p)| p.role == *r || anc.contains(&p.role))
                    .map(|(i, _)| i)
                    .collect()
            })
            .collect();

        // Subject-match cones per distinct designator: the designator plus
        // every class reachable downward along named-class paths (blank
        // restriction classes are members but not expanded — mirroring
        // `Hierarchy::is_subclass_of`, whose upward walk only traverses
        // named superclasses).
        let sub_class_of = Term::iri(rdfs::SUB_CLASS_OF);
        let mut cones: HashMap<String, HashSet<Term>> = HashMap::new();
        for p in &policies.policies {
            if cones.contains_key(&p.resource) {
                continue;
            }
            let start = Term::iri(&p.resource);
            let mut cone: HashSet<Term> = HashSet::new();
            cone.insert(start.clone());
            let mut queue: VecDeque<Term> = VecDeque::new();
            queue.push_back(start);
            while let Some(c) = queue.pop_front() {
                for sub in data.subjects(&sub_class_of, &c) {
                    if cone.insert(sub.clone()) && !sub.is_blank() {
                        queue.push_back(sub);
                    }
                }
            }
            cones.insert(p.resource.clone(), cone);
        }

        // Distinct IRI predicates and their transitive superproperties
        // (walked through every parent, blank or named — mirroring the
        // evaluator's `is_subproperty_of`).
        let sub_prop_of = Term::iri(rdfs::SUB_PROPERTY_OF);
        let mut pred_terms: HashMap<TermId, Term> = HashMap::new();
        data.for_each_match_ids(None, None, None, |_, p, _| {
            pred_terms
                .entry(p)
                .or_insert_with(|| data.term_of(p).clone());
        });
        let mut pred_supers: HashMap<TermId, HashSet<String>> = HashMap::new();
        for (pid, pterm) in &pred_terms {
            if pterm.as_iri().is_none() {
                continue;
            }
            let mut supers: HashSet<String> = HashSet::new();
            let mut seen: HashSet<Term> = HashSet::new();
            let mut stack = vec![pterm.clone()];
            while let Some(cur) = stack.pop() {
                for parent in data.objects(&cur, &sub_prop_of) {
                    if let Some(i) = parent.as_iri() {
                        supers.insert(i.to_string());
                    }
                    if seen.insert(parent.clone()) {
                        stack.push(parent);
                    }
                }
            }
            pred_supers.insert(*pid, supers);
        }

        // Compile each policy: subject-match set plus resolved predicate
        // set for its conditions.
        let type_id = data.term_id(&Term::iri(rdf::TYPE));
        let all_subjects = data.all_subjects();
        let mut compiled: Vec<CompiledPolicy> = policies
            .policies
            .iter()
            .enumerate()
            .map(|(index, p)| {
                let allowed = if p.conditions.is_empty() {
                    None
                } else {
                    let mut preds = BTreeSet::new();
                    for (pid, pterm) in &pred_terms {
                        let Some(q) = pterm.as_iri() else { continue };
                        let empty = HashSet::new();
                        let supers = pred_supers.get(pid).unwrap_or(&empty);
                        let ok = p.conditions.iter().all(|c| match c {
                            Condition::PropertyAccess(props) => {
                                props.iter().any(|a| a.as_str() == q || supers.contains(a))
                            }
                        });
                        if ok {
                            preds.insert(*pid);
                        }
                    }
                    Some(preds)
                };
                CompiledPolicy {
                    index,
                    id: p.id.clone(),
                    role: p.role.clone(),
                    action: p.action,
                    decision: p.decision,
                    resource: p.resource.clone(),
                    matches: BTreeSet::new(),
                    allowed,
                }
            })
            .collect();

        // Instance test and subject-match sets in one subject sweep.
        let mut instance_subjects: BTreeSet<TermId> = BTreeSet::new();
        let type_term = Term::iri(rdf::TYPE);
        for subject in &all_subjects {
            let Some(sid) = data.term_id(subject) else {
                continue;
            };
            let types = data.objects(subject, &type_term);
            let is_instance = types.iter().any(|t| {
                t.as_iri()
                    .is_some_and(|i| !i.starts_with(owl::NS) && !i.starts_with(rdfs::NS))
            });
            if is_instance && !subject.is_blank() {
                instance_subjects.insert(sid);
            }
            for (p, c) in policies.policies.iter().zip(compiled.iter_mut()) {
                let hit = subject.as_iri() == Some(p.resource.as_str())
                    || types
                        .iter()
                        .any(|t| cones.get(&p.resource).is_some_and(|cone| cone.contains(t)));
                if hit {
                    c.matches.insert(sid);
                }
            }
        }

        let mut ir = LabelIr {
            roles,
            role_index,
            hierarchy,
            policies: compiled,
            effective,
            labels: TripleLabels::new(0, data.generation()),
            column: LabelColumn::default(),
            instance_subjects,
            cones,
            type_id,
        };
        ir.labels = ir.compile_labels(data, None);
        ir.column = ir.labels.to_column(data);
        ir
    }

    /// Number of role bits.
    #[must_use]
    pub fn width(&self) -> usize {
        self.roles.len()
    }

    /// The bit index of `role`, if it appears in the policy set or
    /// hierarchy.
    #[must_use]
    pub fn role_bit(&self, role: &str) -> Option<usize> {
        self.role_index.get(role).copied()
    }

    /// Resolve a role to its session authorization set. Effective
    /// (hierarchy-resolved, deny-overrides) evaluation is already folded
    /// into the role's own bit at compile time, so the set is a singleton;
    /// unknown roles get the empty set (see nothing).
    #[must_use]
    pub fn authorizations(&self, role: &str) -> VisBitset {
        let mut bits = VisBitset::new(self.width());
        if let Some(b) = self.role_bit(role) {
            bits.set(b);
        }
        bits
    }

    /// Authorization set for a principal holding several roles: the union
    /// of the per-role sets (a triple visible to any held role is
    /// visible).
    #[must_use]
    pub fn authorizations_for(&self, roles: &[&str]) -> VisBitset {
        let mut bits = VisBitset::new(self.width());
        for r in roles {
            if let Some(b) = self.role_bit(r) {
                bits.set(b);
            }
        }
        bits
    }

    /// The grant decision for `(subject, role bit)` under the role's
    /// effective policies, optionally with one policy excluded (the S007
    /// counterfactual). Only `Action::View` policies participate — views
    /// are read-side.
    fn subject_grant(&self, sid: TermId, bit: usize, exclude: Option<usize>) -> SubjectGrant {
        let mut g = SubjectGrant::default();
        for &i in &self.effective[bit] {
            if exclude == Some(i) {
                continue;
            }
            let c = &self.policies[i];
            if c.action != Action::View || !c.matches.contains(&sid) {
                continue;
            }
            match c.decision {
                Decision::Deny => g.denied = true,
                Decision::Permit => {
                    g.any_permit = true;
                    match &c.allowed {
                        None => g.all_preds = true,
                        Some(preds) => g.preds.extend(preds.iter().copied()),
                    }
                }
            }
        }
        g
    }

    /// Compile the per-triple bitset table: direct grants over instance
    /// subjects, then blank-subtree reachability propagation (granted
    /// object properties pull their helper subtrees per role, exactly as
    /// [`secure_view`] does).
    fn compile_labels(&self, data: &Graph, only_role: Option<usize>) -> TripleLabels {
        let width = self.width();
        let mut triple_bits: BTreeMap<(TermId, TermId, TermId), VisBitset> = BTreeMap::new();
        let bits_range: Vec<usize> = match only_role {
            Some(b) => vec![b],
            None => (0..width).collect(),
        };

        for &sid in &self.instance_subjects {
            let grants: Vec<(usize, SubjectGrant)> = bits_range
                .iter()
                .map(|&b| (b, self.subject_grant(sid, b, None)))
                .filter(|(_, g)| g.any_permit && !g.denied)
                .collect();
            if grants.is_empty() {
                continue;
            }
            data.for_each_match_ids(Some(sid), None, None, |s, p, o| {
                if data.term_of(p).as_iri().is_none() {
                    return;
                }
                let mut bits = VisBitset::new(width);
                let mut any = false;
                for (b, g) in &grants {
                    if g.grants(p, self.type_id) {
                        bits.set(*b);
                        any = true;
                    }
                }
                if any {
                    triple_bits.insert((s, p, o), bits);
                }
            });
        }

        // Blank-subtree propagation fixpoint: a blank object of a visible
        // triple exposes its whole subtree to the same roles.
        let mut node_bits: HashMap<TermId, VisBitset> = HashMap::new();
        let mut worklist: Vec<(TermId, VisBitset)> = Vec::new();
        for ((_, _, o), bits) in &triple_bits {
            if data.term_of(*o).is_blank() {
                worklist.push((*o, bits.clone()));
            }
        }
        while let Some((node, bits)) = worklist.pop() {
            let entry = node_bits
                .entry(node)
                .or_insert_with(|| VisBitset::new(width));
            if !entry.union_with(&bits) {
                continue; // no new bits: subtree already propagated
            }
            let current = entry.clone();
            data.for_each_match_ids(Some(node), None, None, |_, _, o| {
                if data.term_of(o).is_blank() {
                    worklist.push((o, current.clone()));
                }
            });
        }
        for (node, bits) in &node_bits {
            data.for_each_match_ids(Some(*node), None, None, |s, p, o| {
                triple_bits
                    .entry((s, p, o))
                    .or_insert_with(|| VisBitset::new(width))
                    .union_with(bits);
            });
        }

        let mut labels = TripleLabels::new(width, data.generation());
        for ((s, p, o), bits) in &triple_bits {
            labels.insert(*s, *p, *o, bits);
        }
        labels
    }

    /// Scan-time filter: the subgraph of `data` visible under `auths`.
    /// Proven equal to [`secure_view`] over the role's effective policy
    /// set by [`LabelIr::verify_label_equivalence`].
    #[must_use]
    pub fn filtered_view(&self, data: &Graph, auths: &VisBitset) -> Graph {
        // Columnar fast path: when `data` is still the graph the labels
        // were compiled against, the parallel column yields the visible
        // id-triples with one class intersection per label class and one
        // column load per scanned triple.
        if self.column.matches(data) {
            let mut view = Graph::new();
            let visible = self.column.visible_ids(data, auths);
            view.extend_triples(visible.into_iter().map(|(s, p, o)| {
                Triple::new(
                    data.term_of(s).clone(),
                    data.term_of(p).clone(),
                    data.term_of(o).clone(),
                )
            }));
            return view;
        }
        let mut view = Graph::new();
        for (&(s, p, o), id) in self.labels.iter() {
            if self.labels.class(id).is_some_and(|b| b.intersects(auths)) {
                view.add(
                    data.term_of(s).clone(),
                    data.term_of(p).clone(),
                    data.term_of(o).clone(),
                );
            }
        }
        view
    }

    /// The role's *effective* policy set: its own policies plus every
    /// transitive ancestor's, re-tagged to the role so the legacy
    /// evaluator applies them — the reference semantics the label table
    /// must reproduce.
    #[must_use]
    pub fn effective_policy_set(&self, policies: &PolicySet, role: &str) -> PolicySet {
        let anc = self.hierarchy.ancestors(role);
        PolicySet::new(
            policies
                .policies
                .iter()
                .filter(|p| p.role == role || anc.contains(&p.role))
                .map(|p| {
                    let mut p = p.clone();
                    p.role = role.to_string();
                    p
                })
                .collect(),
        )
    }

    /// Differential verifier: for every compiled role, prove
    /// label-filtered scanning ≡ the materialized secure view over the
    /// role's effective policy set. Returns one human-readable divergence
    /// description per mismatching triple (empty = equivalent).
    #[must_use]
    pub fn verify_label_equivalence(&self, data: &Graph, policies: &PolicySet) -> Vec<String> {
        let mut out = Vec::new();
        for role in &self.roles {
            let eff = self.effective_policy_set(policies, role);
            let (expected, _) = secure_view(data, &eff, role);
            let actual = self.filtered_view(data, &self.authorizations(role));
            let want: BTreeSet<Triple> = expected.iter().collect();
            let got: BTreeSet<Triple> = actual.iter().collect();
            for t in want.difference(&got) {
                out.push(format!(
                    "role {role}: label filter hides {t} (view shows it)"
                ));
            }
            for t in got.difference(&want) {
                out.push(format!(
                    "role {role}: label filter leaks {t} (view hides it)"
                ));
            }
        }
        out
    }

    /// Does any effective deny of `bit` match `subject` (by compiled match
    /// set, or — for subjects only present in derived graphs — by IRI
    /// equality or a type in the deny's designator cone)? Returns the
    /// matching deny policy ids.
    fn denies_matching(
        &self,
        bit: usize,
        sid: Option<TermId>,
        subject: &Term,
        types: &[Term],
    ) -> Vec<&CompiledPolicy> {
        self.effective[bit]
            .iter()
            .map(|&i| &self.policies[i])
            .filter(|c| c.action == Action::View && c.decision == Decision::Deny)
            .filter(|c| {
                if let Some(sid) = sid {
                    if c.matches.contains(&sid) {
                        return true;
                    }
                }
                subject.as_iri() == Some(c.resource.as_str())
                    || types.iter().any(|t| {
                        self.cones
                            .get(&c.resource)
                            .is_some_and(|cone| cone.contains(t))
                    })
            })
            .collect()
    }

    /// The public schema subgraph: what any adversary is assumed to know
    /// regardless of policy — ontology axioms (RDF/RDFS/OWL-namespace
    /// predicates) about non-instance subjects (classes, properties,
    /// restriction blanks). Instance data, including hidden helper
    /// subtrees, is excluded.
    fn schema_graph(&self, data: &Graph) -> Graph {
        let mut schema = Graph::new();
        let type_term = Term::iri(rdf::TYPE);
        for t in data.iter() {
            let Some(p) = t.predicate.as_iri() else {
                continue;
            };
            if !(p.starts_with(rdf::NS) || p.starts_with(rdfs::NS) || p.starts_with(owl::NS)) {
                continue;
            }
            let is_instance = data.objects(&t.subject, &type_term).iter().any(|ty| {
                ty.as_iri()
                    .is_some_and(|i| !i.starts_with(owl::NS) && !i.starts_with(rdfs::NS))
            });
            if !is_instance {
                schema.insert(t);
            }
        }
        schema
    }

    /// Run every whole-policy-set static pass (S007–S010) over the
    /// compiled IR. `data` must be the graph the IR was compiled from.
    #[must_use]
    pub fn static_diagnostics(&self, data: &Graph, policies: &PolicySet) -> Vec<Diagnostic> {
        let mut out = self.unreachable_policies(data, policies);
        out.extend(self.contradictory_overlaps(data, policies));
        out.extend(self.entailment_leaks(data));
        out.extend(self.non_monotonic_authorizations());
        out
    }

    /// S007: policies whose removal changes no role's compiled
    /// visibility. Policies already implicated in a pairwise conflict
    /// (S001/S003/S004) are skipped — those findings explain the dead rule
    /// better.
    fn unreachable_policies(&self, data: &Graph, policies: &PolicySet) -> Vec<Diagnostic> {
        let mut in_pairwise: HashSet<String> = HashSet::new();
        for c in crate::conflicts::detect_conflicts(data, policies) {
            match c {
                crate::conflicts::PolicyConflict::PermitDenyOverlap { permit, deny, .. } => {
                    in_pairwise.insert(permit);
                    in_pairwise.insert(deny);
                }
                crate::conflicts::PolicyConflict::ShadowedRestriction {
                    broad, restricted, ..
                } => {
                    in_pairwise.insert(broad);
                    in_pairwise.insert(restricted);
                }
                crate::conflicts::PolicyConflict::DuplicateId { id } => {
                    in_pairwise.insert(id);
                }
            }
        }
        let mut out = Vec::new();
        for c in &self.policies {
            if c.action != Action::View || in_pairwise.contains(&c.id) {
                continue;
            }
            let matched: Vec<TermId> = c
                .matches
                .iter()
                .copied()
                .filter(|s| self.instance_subjects.contains(s))
                .collect();
            if matched.is_empty() {
                continue; // S002's territory: the designator matches nothing.
            }
            // Roles whose effective set contains this policy.
            let affected: Vec<usize> = (0..self.width())
                .filter(|&b| self.effective[b].contains(&c.index))
                .collect();
            // A deny with no permit anywhere on its territory is merely
            // redundant with deny-by-default — defensive, not dead (and
            // the S009 leak pass needs such denies to state intent).
            if c.decision == Decision::Deny {
                let any_permit = affected.iter().any(|&b| {
                    matched
                        .iter()
                        .any(|&sid| self.subject_grant(sid, b, None).any_permit)
                });
                if !any_permit {
                    continue;
                }
            }
            let mut changes_something = false;
            'roles: for &b in &affected {
                for &sid in &matched {
                    let with = self.subject_grant(sid, b, None);
                    let without = self.subject_grant(sid, b, Some(c.index));
                    let mut differs = false;
                    data.for_each_match_ids(Some(sid), None, None, |_, p, _| {
                        if differs || data.term_of(p).as_iri().is_none() {
                            return;
                        }
                        if with.grants(p, self.type_id) != without.grants(p, self.type_id) {
                            differs = true;
                        }
                    });
                    if differs {
                        changes_something = true;
                        break 'roles;
                    }
                }
            }
            if !changes_something {
                out.push(
                    Diagnostic::new(
                        LintCode::UnreachablePolicy,
                        Term::iri(&c.id),
                        format!(
                            "removing this {} for role {} changes no compiled visibility: \
                             the rest of the policy set already decides every triple it touches",
                            decision_word(c.decision),
                            c.role
                        ),
                    )
                    .with_related(vec![Term::iri(&c.role)])
                    .with_suggestion("delete the policy, or narrow the policies that shadow it"),
                );
            }
        }
        out
    }

    /// S008: effective Permit/Deny collisions on a concrete subject that
    /// the pairwise designator check (S001) cannot see.
    fn contradictory_overlaps(&self, data: &Graph, policies: &PolicySet) -> Vec<Diagnostic> {
        let idx = DesignatorIndex::new(data, policies);
        // (permit id, deny id, role) → best witness subject.
        let mut hits: BTreeMap<(String, String, String), Term> = BTreeMap::new();
        for (b, role) in self.roles.iter().enumerate() {
            for &sid in &self.instance_subjects {
                let eff: Vec<&CompiledPolicy> = self.effective[b]
                    .iter()
                    .map(|&i| &self.policies[i])
                    .filter(|c| c.matches.contains(&sid))
                    .collect();
                for p in eff.iter().filter(|c| c.decision == Decision::Permit) {
                    for d in eff.iter().filter(|c| c.decision == Decision::Deny) {
                        if p.action != d.action {
                            continue;
                        }
                        // The pairwise pass already reports same-role
                        // designator overlaps as S001.
                        if p.role == d.role && idx.overlap(&p.resource, &d.resource) {
                            continue;
                        }
                        let key = (p.id.clone(), d.id.clone(), role.clone());
                        let subject = data.term_of(sid).clone();
                        let best = hits.entry(key).or_insert_with(|| subject.clone());
                        if subject < *best {
                            *best = subject;
                        }
                    }
                }
            }
        }
        hits.into_iter()
            .map(|((permit, deny, role), witness)| {
                Diagnostic::new(
                    LintCode::ContradictoryOverlap,
                    Term::iri(&permit),
                    format!(
                        "role {role}: effective permit contradicts deny {deny} on {witness} \
                         (invisible to the pairwise designator check)"
                    ),
                )
                .with_related(vec![Term::iri(&deny), Term::iri(&role), witness])
                .with_suggestion(
                    "split the designators so the collision is explicit, or drop one rule",
                )
            })
            .collect()
    }

    /// S009: for every deny-bearing role, materialize its permitted view
    /// plus the public schema with the OWL-Horst reasoner and flag derived
    /// triples about subjects the role is explicitly denied.
    pub fn entailment_leaks(&self, data: &Graph) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        let type_term = Term::iri(rdf::TYPE);
        let schema = self.schema_graph(data);
        for (b, role) in self.roles.iter().enumerate() {
            let has_deny = self.effective[b].iter().any(|&i| {
                let c = &self.policies[i];
                c.action == Action::View && c.decision == Decision::Deny
            });
            if !has_deny {
                continue;
            }
            let mut adversary = self.filtered_view(data, &self.authorizations(role));
            let baseline: HashSet<Triple> = adversary.iter().chain(schema.iter()).collect();
            adversary.extend_from(&schema);
            Reasoner::default().materialize(&mut adversary);
            // deny policy id → sorted witness triples.
            let mut leaks: BTreeMap<String, BTreeSet<Triple>> = BTreeMap::new();
            for t in adversary.iter() {
                if baseline.contains(&t) {
                    continue;
                }
                // Already visible in the full graph's labels? Not hidden.
                if let (Some(s), Some(p), Some(o)) = (
                    data.term_id(&t.subject),
                    data.term_id(&t.predicate),
                    data.term_id(&t.object),
                ) {
                    if self.labels.visible(s, p, o, &self.authorizations(role)) {
                        continue;
                    }
                }
                let sid = data.term_id(&t.subject);
                let types = adversary.objects(&t.subject, &type_term);
                for d in self.denies_matching(b, sid, &t.subject, &types) {
                    leaks.entry(d.id.clone()).or_default().insert(t.clone());
                }
            }
            for (deny, witnesses) in leaks {
                let first = witnesses.iter().next().expect("non-empty");
                out.push(
                    Diagnostic::new(
                        LintCode::EntailmentLeak,
                        Term::iri(&deny),
                        format!(
                            "role {role}: permitted view OWL-Horst-entails {} denied triple(s) \
                             about subjects this deny protects, e.g. {first}",
                            witnesses.len()
                        ),
                    )
                    .with_related(vec![Term::iri(role), first.subject.clone()])
                    .with_suggestion(
                        "deny the entailing properties too, or widen the deny to cover the \
                         premises the reasoner combines",
                    ),
                );
            }
        }
        out
    }

    /// S010: `sec:subRoleOf` edges where the sub-role's effective view
    /// loses triples the super-role can see.
    fn non_monotonic_authorizations(&self) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for (sub, sup) in self.hierarchy.edges() {
            let (Some(sub_bit), Some(sup_bit)) = (self.role_bit(&sub), self.role_bit(&sup)) else {
                continue;
            };
            let mut lost = 0usize;
            for (_, id) in self.labels.iter() {
                if let Some(bits) = self.labels.class(id) {
                    if bits.get(sup_bit) && !bits.get(sub_bit) {
                        lost += 1;
                    }
                }
            }
            if lost > 0 {
                out.push(
                    Diagnostic::new(
                        LintCode::NonMonotonicAuthorization,
                        Term::iri(&sub),
                        format!(
                            "sub-role loses {lost} triple(s) its super-role {sup} can see: \
                             an explicit deny cuts inherited visibility"
                        ),
                    )
                    .with_related(vec![Term::iri(&sup)])
                    .with_suggestion(
                        "if the deny is intentional, detach the role from the hierarchy; \
                         otherwise drop the deny",
                    ),
                );
            }
        }
        out
    }

    /// Explain why `(subject, predicate, object)` is visible, hidden, or
    /// leaked for `role` — the engine behind `grdf-cli labels explain`.
    #[must_use]
    pub fn explain(&self, data: &Graph, role: &str, triple: &Triple) -> Explanation {
        let mut notes = Vec::new();
        let ids = (
            data.term_id(&triple.subject),
            data.term_id(&triple.predicate),
            data.term_id(&triple.object),
        );
        let in_graph = match ids {
            (Some(s), Some(p), Some(o)) => data.has_ids(s, p, o),
            _ => false,
        };
        let viewers: Vec<String> = match ids {
            (Some(s), Some(p), Some(o)) => self
                .labels
                .bits_of(s, p, o)
                .map(|bits| {
                    bits.iter_ones()
                        .into_iter()
                        .filter_map(|b| self.roles.get(b).cloned())
                        .collect()
                })
                .unwrap_or_default(),
            _ => Vec::new(),
        };
        let bit = self.role_bit(role);
        let visible = match (bit, ids) {
            (Some(b), (Some(s), Some(p), Some(o))) => {
                self.labels.bits_of(s, p, o).is_some_and(|x| x.get(b))
            }
            _ => false,
        };

        if let Some(b) = bit {
            let sid = ids.0;
            for &i in &self.effective[b] {
                let c = &self.policies[i];
                if c.action != Action::View {
                    continue;
                }
                let matched = sid.is_some_and(|s| c.matches.contains(&s));
                let inherited = if c.role == role {
                    String::new()
                } else {
                    format!(" (inherited from {})", c.role)
                };
                if !matched {
                    notes.push(format!(
                        "{} {}{} on {}: subject not designated",
                        decision_word(c.decision),
                        c.id,
                        inherited,
                        c.resource
                    ));
                    continue;
                }
                let pred_note = match (&c.decision, &c.allowed, ids.1) {
                    (Decision::Deny, _, _) => "matches subject: hides everything".to_string(),
                    (Decision::Permit, None, _) => {
                        "matches subject, unconditional: predicate allowed".to_string()
                    }
                    (Decision::Permit, Some(preds), Some(pid)) => {
                        if Some(pid) == self.type_id || preds.contains(&pid) {
                            "matches subject: predicate allowed by conditions".to_string()
                        } else {
                            "matches subject but conditions exclude this predicate".to_string()
                        }
                    }
                    (Decision::Permit, Some(_), None) => {
                        "matches subject; predicate unknown to the graph".to_string()
                    }
                };
                notes.push(format!(
                    "{} {}{}: {}",
                    decision_word(c.decision),
                    c.id,
                    inherited,
                    pred_note
                ));
            }
        } else {
            notes.push(format!("role {role} has no policies and no hierarchy edge"));
        }

        let verdict = if visible {
            format!("VISIBLE to {role}")
        } else if bit.is_none() {
            "HIDDEN: unknown role (deny-by-default)".to_string()
        } else if !in_graph {
            "HIDDEN: triple not in the graph".to_string()
        } else if ids.0.is_some_and(|s| !self.instance_subjects.contains(&s)) && !viewers.is_empty()
        {
            "HIDDEN: blank-subtree triple not reachable from this role's grants".to_string()
        } else if ids.0.is_some_and(|s| !self.instance_subjects.contains(&s)) {
            "HIDDEN: subject is not an instance (schema or helper node)".to_string()
        } else {
            "HIDDEN: denied or deny-by-default (see policy notes)".to_string()
        };

        // Leak probe: can the role derive the hidden triple anyway?
        let mut leak = None;
        if let Some(b) = bit.filter(|_| !visible) {
            let mut adversary = self.filtered_view(data, &self.authorizations(role));
            adversary.extend_from(&self.schema_graph(data));
            let before = adversary.contains(triple);
            Reasoner::default().materialize(&mut adversary);
            if !before && adversary.contains(triple) {
                let types = adversary.objects(&triple.subject, &Term::iri(rdf::TYPE));
                let denies = self.denies_matching(b, ids.0, &triple.subject, &types);
                leak = Some(if denies.is_empty() {
                    "LEAKED: derivable from the permitted view via OWL-Horst \
                     (not explicitly denied — tighten S002/S006 coverage)"
                        .to_string()
                } else {
                    format!(
                        "LEAKED: derivable from the permitted view via OWL-Horst although \
                         explicitly denied by {}",
                        denies
                            .iter()
                            .map(|d| d.id.as_str())
                            .collect::<Vec<_>>()
                            .join(", ")
                    )
                });
            }
        }

        Explanation {
            role: role.to_string(),
            triple: triple.clone(),
            in_graph,
            visible,
            viewers,
            notes,
            verdict,
            leak,
        }
    }
}

fn decision_word(d: Decision) -> &'static str {
    match d {
        Decision::Permit => "permit",
        Decision::Deny => "deny",
    }
}

/// The structured answer of [`LabelIr::explain`].
#[derive(Debug, Clone)]
pub struct Explanation {
    /// The role asked about.
    pub role: String,
    /// The triple asked about.
    pub triple: Triple,
    /// Whether the triple exists in the graph.
    pub in_graph: bool,
    /// Whether the role's authorization bit is set on the triple's label.
    pub visible: bool,
    /// Every role that can see the triple.
    pub viewers: Vec<String>,
    /// Per-policy account of the effective set.
    pub notes: Vec<String>,
    /// One-line outcome.
    pub verdict: String,
    /// Set when the triple is hidden but derivable from the role's
    /// permitted view (the S009 condition, per-triple).
    pub leak: Option<String>,
}

impl Explanation {
    /// Multi-line human-readable rendering.
    #[must_use]
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "triple:  {}", self.triple);
        let _ = writeln!(
            out,
            "         {}",
            if self.in_graph {
                "present in graph"
            } else {
                "NOT present in graph"
            }
        );
        let _ = writeln!(out, "role:    {}", self.role);
        if self.viewers.is_empty() {
            let _ = writeln!(out, "label:   (unlabeled: hidden from every role)");
        } else {
            let _ = writeln!(out, "label:   visible to {}", self.viewers.join(", "));
        }
        for n in &self.notes {
            let _ = writeln!(out, "policy:  {n}");
        }
        let _ = writeln!(out, "verdict: {}", self.verdict);
        if let Some(l) = &self.leak {
            let _ = writeln!(out, "leak:    {l}");
        }
        out
    }
}

/// Compile the IR and run every whole-policy-set pass (S007–S010) — the
/// entry point `grdf-lint`'s policy pass and the G-SACS gate call.
#[must_use]
pub fn diagnostics(data: &Graph, policies: &PolicySet) -> Vec<Diagnostic> {
    if policies.policies.is_empty() {
        return Vec::new();
    }
    let ir = LabelIr::compile(data, policies);
    ir.static_diagnostics(data, policies)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Policy;
    use grdf_rdf::vocab::grdf;

    fn iri(s: &str) -> Term {
        Term::iri(s)
    }

    fn t(s: &Term, p: &str, o: &Term) -> Triple {
        Triple::new(s.clone(), iri(p), o.clone())
    }

    /// §7.1-style data: a chemical site with name/code/extent and a
    /// stream, plus class declarations.
    fn incident_data() -> Graph {
        let mut g = Graph::new();
        for c in ["ChemSite", "Stream"] {
            g.add(
                iri(&grdf::app(c)),
                iri(rdf::TYPE),
                iri(grdf_rdf::vocab::owl::CLASS),
            );
        }
        let site = iri(&grdf::app("NTEnergy"));
        g.add(site.clone(), iri(rdf::TYPE), iri(&grdf::app("ChemSite")));
        g.add(
            site.clone(),
            iri(&grdf::app("hasSiteName")),
            Term::string("NT Energy"),
        );
        g.add(
            site.clone(),
            iri(&grdf::app("hasChemCode")),
            Term::string("121NR"),
        );
        g.add(
            site,
            iri(&grdf::iri("isBoundedBy")),
            Term::string("0,0 10,10"),
        );
        let stream = iri(&grdf::app("WhiteRock"));
        g.add(stream.clone(), iri(rdf::TYPE), iri(&grdf::app("Stream")));
        g.add(
            stream,
            iri(&grdf::app("hasObjectID")),
            Term::string("11070"),
        );
        g
    }

    fn main_rep_policies() -> PolicySet {
        PolicySet::new(vec![
            Policy::permit_properties(
                &grdf::sec("MainRepPolicy1"),
                &grdf::sec("MainRep"),
                &grdf::app("ChemSite"),
                &[&grdf::iri("isBoundedBy")],
            ),
            Policy::permit(
                &grdf::sec("MainRepPolicy2"),
                &grdf::sec("MainRep"),
                &grdf::app("Stream"),
            ),
        ])
    }

    #[test]
    fn compiled_labels_match_secure_views() {
        let data = incident_data();
        let ps = main_rep_policies();
        let ir = LabelIr::compile(&data, &ps);
        assert!(ir.verify_label_equivalence(&data, &ps).is_empty());
        // Spot checks: extent visible, chemistry hidden.
        let auth = ir.authorizations(&grdf::sec("MainRep"));
        let view = ir.filtered_view(&data, &auth);
        let site = iri(&grdf::app("NTEnergy"));
        assert!(view.contains(&t(
            &site,
            &grdf::iri("isBoundedBy"),
            &Term::string("0,0 10,10")
        )));
        assert!(!view.contains(&t(&site, &grdf::app("hasChemCode"), &Term::string("121NR"))));
        assert!(view.contains(&t(&site, rdf::TYPE, &iri(&grdf::app("ChemSite")))));
    }

    #[test]
    fn unknown_role_has_empty_authorizations() {
        let data = incident_data();
        let ir = LabelIr::compile(&data, &main_rep_policies());
        let auth = ir.authorizations("urn:nobody");
        assert!(auth.is_empty());
        assert_eq!(ir.filtered_view(&data, &auth).len(), 0);
    }

    #[test]
    fn multi_role_authorizations_union() {
        let data = incident_data();
        let mut ps = main_rep_policies();
        ps.push(Policy::permit(
            &grdf::sec("HazPolicy"),
            &grdf::sec("Hazmat"),
            &grdf::app("ChemSite"),
        ));
        let ir = LabelIr::compile(&data, &ps);
        let both = ir.authorizations_for(&[&grdf::sec("MainRep"), &grdf::sec("Hazmat")]);
        let view = ir.filtered_view(&data, &both);
        let site = iri(&grdf::app("NTEnergy"));
        // Hazmat's unconditional grant exposes the chem code; MainRep adds
        // the stream.
        assert!(view.contains(&t(&site, &grdf::app("hasChemCode"), &Term::string("121NR"))));
        assert!(view.contains(&t(
            &iri(&grdf::app("WhiteRock")),
            &grdf::app("hasObjectID"),
            &Term::string("11070")
        )));
    }

    #[test]
    fn sub_role_inherits_and_deny_overrides() {
        let mut data = incident_data();
        let mut rh = RoleHierarchy::new();
        rh.add(&grdf::sec("Intern"), &grdf::sec("MainRep"));
        rh.encode(&mut data);
        let mut ps = main_rep_policies();
        ps.push(Policy::deny(
            &grdf::sec("InternDeny"),
            &grdf::sec("Intern"),
            &grdf::app("ChemSite"),
        ));
        let ir = LabelIr::compile(&data, &ps);
        // The differential verifier holds with hierarchy in play.
        assert!(ir.verify_label_equivalence(&data, &ps).is_empty());
        let intern = ir.filtered_view(&data, &ir.authorizations(&grdf::sec("Intern")));
        let site = iri(&grdf::app("NTEnergy"));
        // Inherited stream permit works; own deny cuts the site.
        assert!(intern.contains(&t(
            &iri(&grdf::app("WhiteRock")),
            &grdf::app("hasObjectID"),
            &Term::string("11070")
        )));
        assert!(!intern.contains(&t(
            &site,
            &grdf::iri("isBoundedBy"),
            &Term::string("0,0 10,10")
        )));
        // And S010 flags the lost visibility.
        let diags = ir.static_diagnostics(&data, &ps);
        assert!(
            diags
                .iter()
                .any(|d| d.code == LintCode::NonMonotonicAuthorization),
            "{diags:?}"
        );
    }

    #[test]
    fn s007_flags_duplicate_permits() {
        let data = incident_data();
        let ps = PolicySet::new(vec![
            Policy::permit("urn:a", &grdf::sec("R"), &grdf::app("Stream")),
            Policy::permit("urn:b", &grdf::sec("R"), &grdf::app("Stream")),
        ]);
        let diags = diagnostics(&data, &ps);
        let s007: Vec<_> = diags
            .iter()
            .filter(|d| d.code == LintCode::UnreachablePolicy)
            .collect();
        assert_eq!(
            s007.len(),
            2,
            "both duplicates are individually dead: {diags:?}"
        );
    }

    #[test]
    fn s007_silent_on_distinct_grants() {
        let data = incident_data();
        let diags = diagnostics(&data, &main_rep_policies());
        assert!(
            !diags.iter().any(|d| d.code == LintCode::UnreachablePolicy),
            "{diags:?}"
        );
    }

    #[test]
    fn s008_fires_on_multi_typed_individual() {
        let mut data = incident_data();
        // x is both a Stream and a ChemSite; permit Stream + deny ChemSite
        // for one role never designator-overlap (unrelated classes), but
        // collide on x.
        let x = iri(&grdf::app("Mixed"));
        data.add(x.clone(), iri(rdf::TYPE), iri(&grdf::app("Stream")));
        data.add(x.clone(), iri(rdf::TYPE), iri(&grdf::app("ChemSite")));
        data.add(x, iri(&grdf::app("hasObjectID")), Term::string("7"));
        let ps = PolicySet::new(vec![
            Policy::permit("urn:permitStream", &grdf::sec("R"), &grdf::app("Stream")),
            Policy::deny("urn:denyChem", &grdf::sec("R"), &grdf::app("ChemSite")),
        ]);
        let diags = diagnostics(&data, &ps);
        assert!(
            diags
                .iter()
                .any(|d| d.code == LintCode::ContradictoryOverlap),
            "{diags:?}"
        );
        // The labels still resolve deny-overrides correctly.
        let ir = LabelIr::compile(&data, &ps);
        assert!(ir.verify_label_equivalence(&data, &ps).is_empty());
    }

    #[test]
    fn s009_catches_range_entailment_leak() {
        let mut data = incident_data();
        // feeds has range ChemSite; the stream feeds NTEnergy. A role
        // permitted the stream derives NTEnergy's type though ChemSite is
        // denied.
        data.add(
            iri(&grdf::app("feeds")),
            iri(rdfs::RANGE),
            iri(&grdf::app("ChemSite")),
        );
        data.add(
            iri(&grdf::app("WhiteRock")),
            iri(&grdf::app("feeds")),
            iri(&grdf::app("NTEnergy")),
        );
        let ps = PolicySet::new(vec![
            Policy::permit("urn:permitStream", &grdf::sec("R"), &grdf::app("Stream")),
            Policy::deny("urn:denyChem", &grdf::sec("R"), &grdf::app("ChemSite")),
        ]);
        let diags = diagnostics(&data, &ps);
        let leaks: Vec<_> = diags
            .iter()
            .filter(|d| d.code == LintCode::EntailmentLeak)
            .collect();
        assert_eq!(leaks.len(), 1, "{diags:?}");
        assert_eq!(leaks[0].subject, iri("urn:denyChem"));
        // explain() reports the same leak for the derived type triple.
        let ir = LabelIr::compile(&data, &ps);
        let ex = ir.explain(
            &data,
            &grdf::sec("R"),
            &t(
                &iri(&grdf::app("NTEnergy")),
                rdf::TYPE,
                &iri(&grdf::app("ChemSite")),
            ),
        );
        assert!(!ex.visible);
        assert!(
            ex.leak.as_deref().is_some_and(|l| l.contains("denyChem")),
            "{ex:?}"
        );
    }

    #[test]
    fn s009_silent_without_denies() {
        let data = incident_data();
        let diags = diagnostics(&data, &main_rep_policies());
        assert!(
            !diags.iter().any(|d| d.code == LintCode::EntailmentLeak),
            "{diags:?}"
        );
    }

    #[test]
    fn explain_renders_visible_and_hidden() {
        let data = incident_data();
        let ir = LabelIr::compile(&data, &main_rep_policies());
        let site = iri(&grdf::app("NTEnergy"));
        let vis = ir.explain(
            &data,
            &grdf::sec("MainRep"),
            &t(&site, &grdf::iri("isBoundedBy"), &Term::string("0,0 10,10")),
        );
        assert!(vis.visible);
        assert!(vis.render().contains("VISIBLE"));
        let hid = ir.explain(
            &data,
            &grdf::sec("MainRep"),
            &t(&site, &grdf::app("hasChemCode"), &Term::string("121NR")),
        );
        assert!(!hid.visible);
        assert!(hid.render().contains("HIDDEN"), "{}", hid.render());
        assert!(
            hid.notes.iter().any(|n| n.contains("conditions exclude")),
            "{:?}",
            hid.notes
        );
    }

    #[test]
    fn designator_index_matches_legacy_overlap() {
        let mut data = Graph::new();
        data.add(
            iri(&grdf::app("Refinery")),
            iri(rdfs::SUB_CLASS_OF),
            iri(&grdf::app("ChemSite")),
        );
        data.add(
            iri(&grdf::app("plant1")),
            iri(rdf::TYPE),
            iri(&grdf::app("Refinery")),
        );
        let ps = PolicySet::new(vec![
            Policy::permit("urn:p1", "urn:r", &grdf::app("ChemSite")),
            Policy::deny("urn:p2", "urn:r", &grdf::app("Refinery")),
            Policy::deny("urn:p3", "urn:r", &grdf::app("plant1")),
            Policy::deny("urn:p4", "urn:r", &grdf::app("Stream")),
        ]);
        let idx = DesignatorIndex::new(&data, &ps);
        assert!(idx.overlap(&grdf::app("ChemSite"), &grdf::app("ChemSite")));
        assert!(idx.overlap(&grdf::app("Refinery"), &grdf::app("ChemSite")));
        assert!(idx.overlap(&grdf::app("ChemSite"), &grdf::app("Refinery")));
        assert!(idx.overlap(&grdf::app("plant1"), &grdf::app("ChemSite")));
        assert!(!idx.overlap(&grdf::app("Stream"), &grdf::app("ChemSite")));
    }

    #[test]
    fn role_hierarchy_roundtrip_and_cycles() {
        let mut rh = RoleHierarchy::new();
        rh.add("urn:a", "urn:b");
        rh.add("urn:b", "urn:c");
        rh.add("urn:c", "urn:a"); // cycle
        let mut g = Graph::new();
        rh.encode(&mut g);
        assert_eq!(RoleHierarchy::decode(&g), rh);
        let anc = rh.ancestors("urn:a");
        assert!(anc.contains("urn:b") && anc.contains("urn:c"));
        assert!(!anc.contains("urn:a"), "self excluded even in a cycle");
    }
}
