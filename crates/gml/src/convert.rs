//! The GML ⇄ GRDF bridge: "there is a direct correspondence between
//! high-level GML schemas and GRDF ontologies" (paper §3).

use grdf_feature::rdf_codec::{decode_features, encode_feature};
use grdf_rdf::graph::Graph;

use crate::read::{parse_gml, GmlError};
use crate::write::write_gml;

/// Convert a GML document to a GRDF graph. Each GML feature becomes a set
/// of GRDF triples in the List 6/7 shape.
pub fn gml_to_grdf(gml: &str) -> Result<Graph, GmlError> {
    let fc = parse_gml(gml)?;
    let mut graph = Graph::new();
    for f in &fc.features {
        encode_feature(&mut graph, f);
    }
    Ok(graph)
}

/// Convert a GRDF graph back to a GML document.
pub fn grdf_to_gml(graph: &Graph) -> String {
    write_gml(&decode_features(graph))
}

#[cfg(test)]
mod tests {
    use super::*;
    use grdf_rdf::term::Term;
    use grdf_rdf::vocab::{grdf as ns, rdf};

    const SRC: &str = r#"<gml:FeatureCollection xmlns:gml="http://www.opengis.net/gml"
        xmlns:app="http://grdf.org/app#">
      <gml:featureMember>
        <app:Stream gml:id="HYDRO_11070">
          <app:hasObjectID>11070</app:hasObjectID>
          <app:centerLineOf>
            <gml:LineString srsName="http://grdf.org/crs/TX83-NCF">
              <gml:posList>2533822.17 7108248.82 2533900.5 7108300.25</gml:posList>
            </gml:LineString>
          </app:centerLineOf>
        </app:Stream>
      </gml:featureMember>
      <gml:featureMember>
        <app:ChemSite gml:id="NTEnergy">
          <app:hasSiteName>North Texas Energy</app:hasSiteName>
          <app:temperature uom="urn:uom:F">21.23</app:temperature>
        </app:ChemSite>
      </gml:featureMember>
    </gml:FeatureCollection>"#;

    #[test]
    fn gml_becomes_typed_triples() {
        let g = gml_to_grdf(SRC).unwrap();
        let stream = Term::iri("http://grdf.org/app#HYDRO_11070");
        assert!(g.has(
            &stream,
            &Term::iri(rdf::TYPE),
            &Term::iri(&ns::app("Stream"))
        ));
        assert!(g.has(
            &stream,
            &Term::iri(rdf::TYPE),
            &Term::iri(&ns::iri("Feature"))
        ));
        let oid = g
            .object(&stream, &Term::iri(&ns::app("hasObjectID")))
            .unwrap();
        assert_eq!(oid.as_literal().unwrap().as_integer(), Some(11070));
        // The geometry node carries class + srsName.
        let gn = g
            .object(&stream, &Term::iri(&ns::iri("hasGeometry")))
            .unwrap();
        assert!(g.has(
            &gn,
            &Term::iri(rdf::TYPE),
            &Term::iri(&ns::iri("LineString"))
        ));
    }

    #[test]
    fn measure_type_becomes_typed_double_triple() {
        // §3.2: the extension-of-double maps to a property whose value is a
        // typed double — not a subclass of xsd:double.
        let g = gml_to_grdf(SRC).unwrap();
        let site = Term::iri("http://grdf.org/app#NTEnergy");
        let temp = g
            .object(&site, &Term::iri(&ns::app("temperature")))
            .unwrap();
        assert_eq!(temp.as_literal().unwrap().as_double(), Some(21.23));
        let uom = g
            .object(&site, &Term::iri(&ns::app("temperatureUom")))
            .unwrap();
        assert_eq!(uom.as_literal().unwrap().lexical(), "urn:uom:F");
    }

    #[test]
    fn full_roundtrip_gml_grdf_gml() {
        let g = gml_to_grdf(SRC).unwrap();
        let gml2 = grdf_to_gml(&g);
        let g2 = gml_to_grdf(&gml2).unwrap();
        // The second conversion is a fixpoint: same triple count and same
        // ground facts.
        assert_eq!(g.len(), g2.len(), "\nfirst:\n{gml2}");
        assert!(grdf_rdf::isomorphism::isomorphic(&g, &g2));
    }

    #[test]
    fn empty_collection_converts() {
        let g = gml_to_grdf(r#"<gml:FeatureCollection xmlns:gml="http://www.opengis.net/gml"/>"#)
            .unwrap();
        assert!(g.is_empty());
        assert!(grdf_to_gml(&g).contains("FeatureCollection"));
    }
}
