//! GML 3.1 subset and the GML↔GRDF converter.
//!
//! "Because of the world-wide adoption and standardization of GML, GRDF is
//! designed to match GML in its content descriptions and feature
//! relationships. For instance, a polygon in GRDF can be directly mapped to
//! a polygon in GML" (paper §9). This crate provides that bridge:
//!
//! * [`read`] — parse GML documents (feature collections, features with
//!   simple properties, `gml:Point`/`LineString`/`Polygon`/`MultiPoint`
//!   geometry, `gml:boundedBy` envelopes, `srsName`, and `MeasureType`-style
//!   values with a `uom` attribute — paper List 1).
//! * [`mod@write`] — emit features back to GML.
//! * [`convert`] — GML text ⇄ GRDF graph, implementing §3.2's rule for XML
//!   extension types: *"the most intuitive way to model XML extension
//!   constructs with bases referring to built-in data types is by creating
//!   \[a\] property with range restriction set to the base type"* — a
//!   `uom`-carrying measure becomes a typed double plus a companion
//!   unit-of-measure property, not a subclass of `xsd:double`.

pub mod convert;
pub mod read;
pub mod write;

/// The GML namespace handled by this crate (GML 3.1).
pub const GML_NS: &str = "http://www.opengis.net/gml";

pub use convert::{gml_to_grdf, grdf_to_gml};
pub use read::{parse_gml, GmlError};
pub use write::write_gml;
