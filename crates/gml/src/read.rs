//! Parsing GML documents into feature collections.

use std::fmt;

use grdf_feature::bounding::BoundingShape;
use grdf_feature::feature::{Feature, FeatureCollection};
use grdf_feature::value::Value;
use grdf_geometry::coord::{parse_coord_list, Coord};
use grdf_geometry::envelope::Envelope;
use grdf_geometry::geometry::Geometry;
use grdf_geometry::multi::MultiPoint;
use grdf_geometry::primitives::{LineString, Point, Polygon, Ring};
use grdf_xml::tree::Element;

use crate::GML_NS;

/// Errors raised while reading GML.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GmlError {
    /// The underlying XML was malformed.
    Xml(String),
    /// Well-formed XML, but not the GML subset this crate handles.
    Structure(String),
}

impl fmt::Display for GmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GmlError::Xml(e) => write!(f, "XML error: {e}"),
            GmlError::Structure(e) => write!(f, "GML structure error: {e}"),
        }
    }
}

impl std::error::Error for GmlError {}

impl From<grdf_xml::XmlError> for GmlError {
    fn from(e: grdf_xml::XmlError) -> Self {
        GmlError::Xml(e.to_string())
    }
}

fn is_gml(elem: &Element) -> bool {
    elem.namespace().is_some_and(|ns| ns.starts_with(GML_NS))
}

/// Parse a GML document (a `gml:FeatureCollection` or a single feature
/// element) into a feature collection.
pub fn parse_gml(input: &str) -> Result<FeatureCollection, GmlError> {
    let doc = grdf_xml::parse(input)?;
    let root = doc.root();
    let mut out = FeatureCollection::new();
    if is_gml(root) && root.local_name() == "FeatureCollection" {
        for member in root.child_elements() {
            if is_gml(member)
                && (member.local_name() == "featureMember"
                    || member.local_name() == "featureMembers")
            {
                for fe in member.child_elements() {
                    out.push(parse_feature(fe)?);
                }
            }
        }
    } else {
        out.push(parse_feature(root)?);
    }
    Ok(out)
}

/// Parse one feature element (`<app:Stream gml:id="...">...`).
pub fn parse_feature(elem: &Element) -> Result<Feature, GmlError> {
    if is_gml(elem) {
        return Err(GmlError::Structure(format!(
            "expected an application feature element, found gml:{}",
            elem.local_name()
        )));
    }
    let id = elem
        .attribute_ns(GML_NS, "id")
        .or_else(|| elem.attribute("id"))
        .or_else(|| elem.attribute("fid"))
        .map_or_else(
            || format!("feature-{}", elem.subtree_size()),
            str::to_string,
        );
    let ns = elem.namespace().unwrap_or("http://grdf.org/app#");
    let iri = format!("{ns}{id}");
    let mut feature = Feature::new(&iri, elem.local_name());

    for prop in elem.child_elements() {
        if is_gml(prop) && prop.local_name() == "boundedBy" {
            if let Some(env_elem) = prop.child_elements().next() {
                if let Some((env, srs)) = parse_envelope(env_elem) {
                    feature.bounded_by = BoundingShape::Envelope(env);
                    if srs.is_some() {
                        feature.srs_name = srs;
                    }
                }
            }
            continue;
        }
        if is_gml(prop) {
            continue; // other gml bookkeeping (name, description) — skip
        }
        // A property element either wraps a geometry…
        let gml_child = prop.child_elements().find(|c| is_gml(c));
        if let Some(geom_elem) = gml_child {
            if let Some((geom, srs)) = parse_geometry(geom_elem) {
                if srs.is_some() {
                    feature.srs_name = srs;
                }
                feature.set_geometry(geom);
                continue;
            }
        }
        // …or carries a simple value (possibly a MeasureType with `uom`).
        let text = prop.text();
        let value = parse_value(&text);
        if let Some(uom) = prop.attribute("uom") {
            // §3.2 / List 1: extension-of-double with a uom attribute.
            let num = text.trim().parse::<f64>().map_or(value, Value::Double);
            feature.set_property(prop.local_name(), num);
            feature.set_property(&format!("{}Uom", prop.local_name()), uom);
        } else {
            feature.set_property(prop.local_name(), value);
        }
    }
    Ok(feature)
}

fn parse_value(text: &str) -> Value {
    let t = text.trim();
    if let Ok(i) = t.parse::<i64>() {
        // Preserve identifier-style zero-padded strings ("004221").
        if !t.starts_with('0') || t == "0" {
            return Value::Integer(i);
        }
    }
    if let Ok(d) = t.parse::<f64>() {
        if t.contains('.') || t.contains('e') || t.contains('E') {
            return Value::Double(d);
        }
    }
    match t {
        "true" => Value::Boolean(true),
        "false" => Value::Boolean(false),
        _ => Value::String(t.to_string()),
    }
}

/// Parse a `gml:Envelope` (lowerCorner/upperCorner or GML2 coordinates).
pub fn parse_envelope(elem: &Element) -> Option<(Envelope, Option<String>)> {
    let srs = elem.attribute("srsName").map(str::to_string);
    let lower = elem.child("lowerCorner").map(grdf_xml::Element::text);
    let upper = elem.child("upperCorner").map(grdf_xml::Element::text);
    if let (Some(lo), Some(hi)) = (lower, upper) {
        let lo = parse_coord_list(&lo, 2)?;
        let hi = parse_coord_list(&hi, 2)?;
        return Some((Envelope::new(*lo.first()?, *hi.first()?), srs));
    }
    let coords = elem.child("coordinates").map(grdf_xml::Element::text)?;
    let cs = parse_coord_list(&coords, 2)?;
    if cs.len() < 2 {
        return None;
    }
    Some((Envelope::new(cs[0], cs[1]), srs))
}

/// Parse a GML geometry element into a [`Geometry`].
pub fn parse_geometry(elem: &Element) -> Option<(Geometry, Option<String>)> {
    let srs = elem.attribute("srsName").map(str::to_string);
    let geom = match elem.local_name() {
        "Point" => {
            let coords = position_text(elem)?;
            Geometry::Point(Point::at(*parse_coord_list(&coords, 2)?.first()?))
        }
        "LineString" | "Curve" => {
            let coords = position_text(elem)?;
            Geometry::LineString(LineString::new(parse_coord_list(&coords, 2)?)?)
        }
        "Polygon" => {
            let exterior = elem
                .child("exterior")
                .or_else(|| elem.child("outerBoundaryIs"))?
                .child("LinearRing")?;
            let ext_ring = Ring::new(parse_coord_list(&position_text(exterior)?, 2)?)?;
            let mut holes = Vec::new();
            for interior in elem
                .child_elements()
                .filter(|c| matches!(c.local_name(), "interior" | "innerBoundaryIs"))
            {
                let lr = interior.child("LinearRing")?;
                holes.push(Ring::new(parse_coord_list(&position_text(lr)?, 2)?)?);
            }
            Geometry::Polygon(Polygon::with_holes(ext_ring, holes))
        }
        "MultiPoint" => {
            let mut members = Vec::new();
            for m in elem.descendants() {
                if m.local_name() == "Point" {
                    let coords = position_text(m)?;
                    members.push(Point::at(*parse_coord_list(&coords, 2)?.first()?));
                }
            }
            Geometry::MultiPoint(MultiPoint::new(members))
        }
        "MultiLineString" | "MultiCurve" => {
            let mut members = Vec::new();
            for m in elem.descendants() {
                if matches!(m.local_name(), "LineString" | "Curve") {
                    let coords = position_text(m)?;
                    members.push(grdf_geometry::primitives::Curve::from_linestring(
                        LineString::new(parse_coord_list(&coords, 2)?)?,
                    ));
                }
            }
            Geometry::MultiCurve(grdf_geometry::multi::MultiCurve::new(members))
        }
        _ => return None,
    };
    Some((geom, srs))
}

/// Extract coordinate text from `gml:pos`, `gml:posList` or
/// `gml:coordinates` children.
fn position_text(elem: &Element) -> Option<String> {
    for name in ["pos", "posList", "coordinates"] {
        if let Some(c) = elem.child(name) {
            return Some(c.text());
        }
    }
    None
}

/// Convenience used by tests: first coordinate of a geometry.
pub fn first_coord(g: &Geometry) -> Option<Coord> {
    g.envelope().map(|e| e.min)
}

#[cfg(test)]
mod tests {
    use super::*;

    const HYDRO: &str = r#"<gml:FeatureCollection xmlns:gml="http://www.opengis.net/gml"
        xmlns:app="http://grdf.org/app#">
      <gml:featureMember>
        <app:Stream gml:id="HYDRO_11070">
          <app:hasObjectID>11070</app:hasObjectID>
          <app:centerLineOf>
            <gml:LineString srsName="http://grdf.org/crs/TX83-NCF">
              <gml:coordinates>2533822.17263276,7108248.82783879 2533900.5,7108300.25</gml:coordinates>
            </gml:LineString>
          </app:centerLineOf>
        </app:Stream>
      </gml:featureMember>
      <gml:featureMember>
        <app:ChemSite gml:id="NTEnergy">
          <app:hasSiteName>North Texas Energy</app:hasSiteName>
          <app:hasSiteId>004221</app:hasSiteId>
          <app:temperature uom="http://grdf.org/uom/farenheit">21.23</app:temperature>
          <gml:boundedBy>
            <gml:Envelope srsName="http://grdf.org/crs/TX83-NCF">
              <gml:lowerCorner>2533000 7108000</gml:lowerCorner>
              <gml:upperCorner>2534000 7109000</gml:upperCorner>
            </gml:Envelope>
          </gml:boundedBy>
        </app:ChemSite>
      </gml:featureMember>
    </gml:FeatureCollection>"#;

    #[test]
    fn parses_collection_with_two_members() {
        let fc = parse_gml(HYDRO).unwrap();
        assert_eq!(fc.len(), 2);
    }

    #[test]
    fn stream_has_linestring_and_srs() {
        let fc = parse_gml(HYDRO).unwrap();
        let stream = fc.of_type("Stream")[0];
        assert_eq!(stream.iri, "http://grdf.org/app#HYDRO_11070");
        assert_eq!(stream.property("hasObjectID"), Some(&Value::Integer(11070)));
        assert_eq!(
            stream.srs_name.as_deref(),
            Some("http://grdf.org/crs/TX83-NCF")
        );
        match stream.geometry.as_ref().unwrap() {
            Geometry::LineString(l) => {
                assert_eq!(l.coords.len(), 2);
                assert!((l.coords[0].x - 2533822.17263276).abs() < 1e-6);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn measure_type_maps_to_double_plus_uom_list1() {
        // Paper List 1: <temperature uom="…/farenheit">21.23</temperature>.
        let fc = parse_gml(HYDRO).unwrap();
        let site = fc.of_type("ChemSite")[0];
        assert_eq!(site.property("temperature"), Some(&Value::Double(21.23)));
        assert_eq!(
            site.property("temperatureUom").and_then(|v| v.as_str()),
            Some("http://grdf.org/uom/farenheit")
        );
    }

    #[test]
    fn zero_padded_ids_stay_strings() {
        let fc = parse_gml(HYDRO).unwrap();
        let site = fc.of_type("ChemSite")[0];
        assert_eq!(
            site.property("hasSiteId"),
            Some(&Value::String("004221".into()))
        );
    }

    #[test]
    fn bounded_by_parses_to_envelope() {
        let fc = parse_gml(HYDRO).unwrap();
        let site = fc.of_type("ChemSite")[0];
        let env = site.bounded_by.envelope().unwrap();
        assert_eq!(env.min, Coord::xy(2533000.0, 7108000.0));
        assert_eq!(env.max, Coord::xy(2534000.0, 7109000.0));
    }

    #[test]
    fn single_feature_document() {
        let src = r#"<app:Well xmlns:app="urn:app#" xmlns:gml="http://www.opengis.net/gml"
                       gml:id="w1">
            <app:depth>120.5</app:depth>
            <app:location><gml:Point><gml:pos>5 6</gml:pos></gml:Point></app:location>
          </app:Well>"#;
        let fc = parse_gml(src).unwrap();
        assert_eq!(fc.len(), 1);
        let w = &fc.features[0];
        assert_eq!(w.iri, "urn:app#w1");
        assert_eq!(w.property("depth"), Some(&Value::Double(120.5)));
        assert!(matches!(w.geometry, Some(Geometry::Point(_))));
    }

    #[test]
    fn polygon_with_interior_ring() {
        let src = r#"<app:Zone xmlns:app="urn:app#" xmlns:gml="http://www.opengis.net/gml" gml:id="z">
          <app:extentOf>
            <gml:Polygon>
              <gml:exterior><gml:LinearRing><gml:posList>0 0 10 0 10 10 0 10 0 0</gml:posList></gml:LinearRing></gml:exterior>
              <gml:interior><gml:LinearRing><gml:posList>4 4 6 4 6 6 4 6 4 4</gml:posList></gml:LinearRing></gml:interior>
            </gml:Polygon>
          </app:extentOf>
        </app:Zone>"#;
        let fc = parse_gml(src).unwrap();
        match fc.features[0].geometry.as_ref().unwrap() {
            Geometry::Polygon(p) => {
                assert_eq!(p.interiors.len(), 1);
                assert_eq!(p.area(), 96.0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn multipoint_geometry() {
        let src = r#"<app:Sensors xmlns:app="urn:app#" xmlns:gml="http://www.opengis.net/gml" gml:id="s">
          <app:positions>
            <gml:MultiPoint>
              <gml:pointMember><gml:Point><gml:pos>0 0</gml:pos></gml:Point></gml:pointMember>
              <gml:pointMember><gml:Point><gml:pos>2 2</gml:pos></gml:Point></gml:pointMember>
            </gml:MultiPoint>
          </app:positions>
        </app:Sensors>"#;
        let fc = parse_gml(src).unwrap();
        match fc.features[0].geometry.as_ref().unwrap() {
            Geometry::MultiPoint(mp) => assert_eq!(mp.members.len(), 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn multilinestring_geometry() {
        let src = r#"<app:Network xmlns:app="urn:app#" xmlns:gml="http://www.opengis.net/gml" gml:id="n">
          <app:branches>
            <gml:MultiLineString>
              <gml:lineStringMember><gml:LineString><gml:posList>0 0 1 1</gml:posList></gml:LineString></gml:lineStringMember>
              <gml:lineStringMember><gml:LineString><gml:posList>5 5 6 6 7 7</gml:posList></gml:LineString></gml:lineStringMember>
            </gml:MultiLineString>
          </app:branches>
        </app:Network>"#;
        let fc = parse_gml(src).unwrap();
        match fc.features[0].geometry.as_ref().unwrap() {
            Geometry::MultiCurve(mc) => {
                assert_eq!(mc.members.len(), 2);
                assert!((mc.length() - (2f64.sqrt() * 3.0)).abs() < 1e-9);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn multicurve_roundtrips_through_writer() {
        use grdf_feature::feature::{Feature, FeatureCollection};
        let mut fc = FeatureCollection::new();
        let mut f = Feature::new("urn:app#net", "Network");
        let mk = |pts: &[(f64, f64)]| {
            grdf_geometry::primitives::Curve::from_linestring(
                grdf_geometry::primitives::LineString::new(
                    pts.iter().map(|&(x, y)| Coord::xy(x, y)).collect(),
                )
                .unwrap(),
            )
        };
        f.set_geometry(Geometry::MultiCurve(grdf_geometry::multi::MultiCurve::new(
            vec![mk(&[(0.0, 0.0), (1.0, 1.0)]), mk(&[(5.0, 5.0), (7.0, 7.0)])],
        )));
        fc.push(f);
        let xml = crate::write::write_gml(&fc);
        let back = parse_gml(&xml).unwrap();
        match back.features[0].geometry.as_ref().unwrap() {
            Geometry::MultiCurve(mc) => assert_eq!(mc.members.len(), 2),
            other => panic!("unexpected {other:?} in\n{xml}"),
        }
    }

    #[test]
    fn gml_root_feature_is_rejected() {
        let src = r#"<gml:Point xmlns:gml="http://www.opengis.net/gml"><gml:pos>0 0</gml:pos></gml:Point>"#;
        assert!(matches!(parse_gml(src), Err(GmlError::Structure(_))));
    }

    #[test]
    fn malformed_xml_is_reported() {
        assert!(matches!(parse_gml("<oops"), Err(GmlError::Xml(_))));
    }

    #[test]
    fn boolean_values_parse() {
        let src = r#"<app:Site xmlns:app="urn:app#" xmlns:gml="http://www.opengis.net/gml" gml:id="b">
          <app:active>true</app:active>
        </app:Site>"#;
        let fc = parse_gml(src).unwrap();
        assert_eq!(
            fc.features[0].property("active"),
            Some(&Value::Boolean(true))
        );
    }
}
