//! Emitting feature collections as GML.

use grdf_feature::bounding::BoundingShape;
use grdf_feature::feature::{Feature, FeatureCollection};
use grdf_feature::value::Value;
use grdf_geometry::geometry::Geometry;
use grdf_xml::tree::{Document, Element};
use grdf_xml::writer::{write_document, WriteOptions};

use crate::GML_NS;

const APP_NS: &str = "http://grdf.org/app#";

/// Serialize a feature collection as a `gml:FeatureCollection` document.
pub fn write_gml(fc: &FeatureCollection) -> String {
    let mut root = Element::in_ns(GML_NS, Some("gml"), "FeatureCollection");
    root.ns_decls.push((Some("gml".into()), GML_NS.into()));
    root.ns_decls.push((Some("app".into()), APP_NS.into()));
    for f in &fc.features {
        let mut member = Element::in_ns(GML_NS, Some("gml"), "featureMember");
        member.push_element(feature_element(f));
        root.push_element(member);
    }
    write_document(&Document::with_root(root), &WriteOptions::default())
}

fn local_type(feature: &Feature) -> String {
    // Strip a namespace from absolute type IRIs for the element name.
    match feature.feature_type.rfind(['#', '/']) {
        Some(i) if feature.feature_type.contains("://") => {
            feature.feature_type[i + 1..].to_string()
        }
        _ => feature.feature_type.clone(),
    }
}

fn feature_id(feature: &Feature) -> String {
    match feature.iri.rfind(['#', '/']) {
        Some(i) => feature.iri[i + 1..].to_string(),
        None => feature.iri.clone(),
    }
}

fn feature_element(feature: &Feature) -> Element {
    let mut el = Element::in_ns(APP_NS, Some("app"), &local_type(feature));
    el.set_attribute_ns(GML_NS, "gml", "id", &feature_id(feature));

    if let BoundingShape::Envelope(env) = &feature.bounded_by {
        let mut bounded = Element::in_ns(GML_NS, Some("gml"), "boundedBy");
        let mut envelope = Element::in_ns(GML_NS, Some("gml"), "Envelope");
        if let Some(srs) = &feature.srs_name {
            envelope.set_attribute("srsName", srs);
        }
        let mut lower = Element::in_ns(GML_NS, Some("gml"), "lowerCorner");
        lower.push_text(&format!("{} {}", env.min.x, env.min.y));
        let mut upper = Element::in_ns(GML_NS, Some("gml"), "upperCorner");
        upper.push_text(&format!("{} {}", env.max.x, env.max.y));
        envelope.push_element(lower);
        envelope.push_element(upper);
        bounded.push_element(envelope);
        el.push_element(bounded);
    }

    // Simple properties. `<name>Uom` companions are re-folded into `uom`
    // attributes on write (inverse of the List 1 mapping).
    let uom_of = |name: &str| -> Option<&str> {
        feature
            .property(&format!("{name}Uom"))
            .and_then(Value::as_str)
    };
    for (name, value) in &feature.properties {
        if name.ends_with("Uom") && feature.property(&name[..name.len() - 3]).is_some() {
            continue; // folded into the base property
        }
        let mut prop = Element::in_ns(APP_NS, Some("app"), name);
        if let Some(uom) = uom_of(name) {
            prop.set_attribute("uom", uom);
        }
        prop.push_text(&value.to_string());
        el.push_element(prop);
    }

    if let Some(geom) = &feature.geometry {
        let mut prop = Element::in_ns(APP_NS, Some("app"), "hasGeometry");
        if let Some(g) = geometry_element(geom, feature.srs_name.as_deref()) {
            prop.push_element(g);
            el.push_element(prop);
        }
    }
    el
}

fn pos_list(coords: &[grdf_geometry::coord::Coord]) -> String {
    coords
        .iter()
        .map(|c| format!("{} {}", c.x, c.y))
        .collect::<Vec<_>>()
        .join(" ")
}

fn geometry_element(geom: &Geometry, srs: Option<&str>) -> Option<Element> {
    let mut el = match geom {
        Geometry::Point(p) => {
            let mut el = Element::in_ns(GML_NS, Some("gml"), "Point");
            let mut pos = Element::in_ns(GML_NS, Some("gml"), "pos");
            pos.push_text(&format!("{} {}", p.coord.x, p.coord.y));
            el.push_element(pos);
            el
        }
        Geometry::LineString(l) => {
            let mut el = Element::in_ns(GML_NS, Some("gml"), "LineString");
            let mut pl = Element::in_ns(GML_NS, Some("gml"), "posList");
            pl.push_text(&pos_list(&l.coords));
            el.push_element(pl);
            el
        }
        Geometry::Curve(c) => {
            return geometry_element(&Geometry::LineString(c.to_linestring()), srs)
        }
        Geometry::Polygon(p) => {
            let mut el = Element::in_ns(GML_NS, Some("gml"), "Polygon");
            let mut ext = Element::in_ns(GML_NS, Some("gml"), "exterior");
            ext.push_element(linear_ring(&p.exterior.coords));
            el.push_element(ext);
            for hole in &p.interiors {
                let mut int = Element::in_ns(GML_NS, Some("gml"), "interior");
                int.push_element(linear_ring(&hole.coords));
                el.push_element(int);
            }
            el
        }
        Geometry::MultiPoint(mp) => {
            let mut el = Element::in_ns(GML_NS, Some("gml"), "MultiPoint");
            for m in &mp.members {
                let mut member = Element::in_ns(GML_NS, Some("gml"), "pointMember");
                let mut point = Element::in_ns(GML_NS, Some("gml"), "Point");
                let mut pos = Element::in_ns(GML_NS, Some("gml"), "pos");
                pos.push_text(&format!("{} {}", m.coord.x, m.coord.y));
                point.push_element(pos);
                member.push_element(point);
                el.push_element(member);
            }
            el
        }
        Geometry::MultiCurve(mc) => {
            let mut el = Element::in_ns(GML_NS, Some("gml"), "MultiCurve");
            for c in &mc.members {
                let mut member = Element::in_ns(GML_NS, Some("gml"), "curveMember");
                let mut ls = Element::in_ns(GML_NS, Some("gml"), "LineString");
                let mut pl = Element::in_ns(GML_NS, Some("gml"), "posList");
                pl.push_text(&pos_list(&c.to_linestring().coords));
                ls.push_element(pl);
                member.push_element(ls);
                el.push_element(member);
            }
            el
        }
        // Other aggregate kinds: emit the envelope as a surrogate polygon.
        other => {
            let env = other.envelope()?;
            let poly = grdf_geometry::primitives::Polygon::rectangle(env.min, env.max);
            return geometry_element(&Geometry::Polygon(poly), srs);
        }
    };
    if let Some(srs) = srs {
        el.set_attribute("srsName", srs);
    }
    Some(el)
}

fn linear_ring(coords: &[grdf_geometry::coord::Coord]) -> Element {
    let mut lr = Element::in_ns(GML_NS, Some("gml"), "LinearRing");
    let mut pl = Element::in_ns(GML_NS, Some("gml"), "posList");
    pl.push_text(&pos_list(coords));
    lr.push_element(pl);
    lr
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::read::parse_gml;
    use grdf_geometry::coord::Coord;
    use grdf_geometry::envelope::Envelope;
    use grdf_geometry::primitives::{LineString, Point, Polygon, Ring};

    fn sample() -> FeatureCollection {
        let mut fc = FeatureCollection::new();
        let mut stream = Feature::new("http://grdf.org/app#HYDRO_1", "Stream");
        stream.set_property("hasObjectID", 11070i64);
        stream.srs_name = Some("http://grdf.org/crs/TX83-NCF".to_string());
        stream.set_geometry(
            LineString::new(vec![Coord::xy(10.0, 20.0), Coord::xy(30.0, 40.0)])
                .unwrap()
                .into(),
        );
        let mut site = Feature::new("http://grdf.org/app#NTEnergy", "ChemSite");
        site.set_property("hasSiteName", "North Texas Energy");
        site.set_property("temperature", 21.23f64);
        site.set_property("temperatureUom", "http://grdf.org/uom/farenheit");
        site.bounded_by =
            BoundingShape::Envelope(Envelope::new(Coord::xy(0.0, 0.0), Coord::xy(100.0, 100.0)));
        fc.push(stream);
        fc.push(site);
        fc
    }

    #[test]
    fn writes_parseable_gml() {
        let fc = sample();
        let xml = write_gml(&fc);
        assert!(xml.contains("gml:FeatureCollection"), "{xml}");
        let back = parse_gml(&xml).unwrap();
        assert_eq!(back.len(), 2);
    }

    #[test]
    fn roundtrip_preserves_properties_and_geometry() {
        let fc = sample();
        let back = parse_gml(&write_gml(&fc)).unwrap();
        let stream = back.of_type("Stream")[0];
        assert_eq!(stream.iri, "http://grdf.org/app#HYDRO_1");
        assert_eq!(
            stream.property("hasObjectID"),
            Some(&grdf_feature::value::Value::Integer(11070))
        );
        assert_eq!(stream.geometry, fc.of_type("Stream")[0].geometry);
        assert_eq!(stream.srs_name, fc.of_type("Stream")[0].srs_name);
    }

    #[test]
    fn uom_companion_folds_back_to_attribute() {
        let fc = sample();
        let xml = write_gml(&fc);
        assert!(
            xml.contains(r#"uom="http://grdf.org/uom/farenheit""#),
            "{xml}"
        );
        let back = parse_gml(&xml).unwrap();
        let site = back.of_type("ChemSite")[0];
        assert_eq!(
            site.property("temperature"),
            Some(&grdf_feature::value::Value::Double(21.23))
        );
        assert_eq!(
            site.property("temperatureUom").and_then(|v| v.as_str()),
            Some("http://grdf.org/uom/farenheit")
        );
    }

    #[test]
    fn envelope_roundtrips() {
        let fc = sample();
        let back = parse_gml(&write_gml(&fc)).unwrap();
        let site = back.of_type("ChemSite")[0];
        let env = site.bounded_by.envelope().unwrap();
        assert_eq!(env.max, Coord::xy(100.0, 100.0));
    }

    #[test]
    fn polygon_roundtrips_with_holes() {
        let mut fc = FeatureCollection::new();
        let mut f = Feature::new("urn:app#z", "Zone");
        let ext = Ring::new(vec![
            Coord::xy(0.0, 0.0),
            Coord::xy(10.0, 0.0),
            Coord::xy(10.0, 10.0),
            Coord::xy(0.0, 10.0),
        ])
        .unwrap();
        let hole = Ring::new(vec![
            Coord::xy(4.0, 4.0),
            Coord::xy(6.0, 4.0),
            Coord::xy(6.0, 6.0),
            Coord::xy(4.0, 6.0),
        ])
        .unwrap();
        f.set_geometry(Polygon::with_holes(ext, vec![hole]).into());
        fc.push(f);
        let back = parse_gml(&write_gml(&fc)).unwrap();
        match back.features[0].geometry.as_ref().unwrap() {
            Geometry::Polygon(p) => assert_eq!(p.area(), 96.0),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn point_feature_roundtrip() {
        let mut fc = FeatureCollection::new();
        let mut f = Feature::new("urn:app#p", "Well");
        f.set_geometry(Point::new(5.0, 6.0).into());
        fc.push(f);
        let back = parse_gml(&write_gml(&fc)).unwrap();
        assert_eq!(back.features[0].geometry, fc.features[0].geometry);
    }
}
