//! Post-hoc explanation of inferred triples.
//!
//! The paper's security architecture decides access on *inferred* facts
//! ("a reasoning system can still enforce the policy … against the
//! aggregated data"). For such decisions to be auditable, the system must
//! be able to say *why* a triple holds. [`explain`] searches backwards
//! from a triple in a materialized graph for a rule instantiation whose
//! premises are themselves asserted or explainable, producing a
//! derivation tree down to asserted facts.

use std::collections::HashSet;
use std::fmt;

use grdf_rdf::graph::Graph;
use grdf_rdf::term::{Term, Triple};
use grdf_rdf::vocab::{owl, rdf, rdfs};

/// A derivation tree for one triple.
#[derive(Debug, Clone, PartialEq)]
pub enum Derivation {
    /// The triple is in the base (asserted) graph.
    Asserted(Triple),
    /// The triple follows from `premises` by `rule`.
    Derived {
        /// The explained triple.
        conclusion: Triple,
        /// Human-readable rule name (e.g. `rdfs9-type-inheritance`).
        rule: &'static str,
        /// Sub-derivations of each premise.
        premises: Vec<Derivation>,
    },
}

impl Derivation {
    /// The triple this derivation concludes.
    pub fn conclusion(&self) -> &Triple {
        match self {
            Derivation::Asserted(t) => t,
            Derivation::Derived { conclusion, .. } => conclusion,
        }
    }

    /// Depth of the tree (1 for asserted facts).
    pub fn depth(&self) -> usize {
        match self {
            Derivation::Asserted(_) => 1,
            Derivation::Derived { premises, .. } => {
                1 + premises.iter().map(Derivation::depth).max().unwrap_or(0)
            }
        }
    }

    /// The asserted leaves supporting this conclusion.
    pub fn support(&self) -> Vec<&Triple> {
        match self {
            Derivation::Asserted(t) => vec![t],
            Derivation::Derived { premises, .. } => {
                premises.iter().flat_map(Derivation::support).collect()
            }
        }
    }

    fn render(&self, indent: usize, out: &mut String) {
        let pad = "  ".repeat(indent);
        match self {
            Derivation::Asserted(t) => {
                out.push_str(&format!("{pad}{t}   [asserted]\n"));
            }
            Derivation::Derived {
                conclusion,
                rule,
                premises,
            } => {
                out.push_str(&format!("{pad}{conclusion}   [{rule}]\n"));
                for p in premises {
                    p.render(indent + 1, out);
                }
            }
        }
    }
}

impl fmt::Display for Derivation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.render(0, &mut s);
        f.write_str(s.trim_end())
    }
}

/// Explain why `triple` holds in the materialized graph `g`, relative to
/// the asserted `base`. Returns `None` when the triple is neither asserted
/// nor derivable within `max_depth` rule steps.
pub fn explain(g: &Graph, base: &Graph, triple: &Triple, max_depth: usize) -> Option<Derivation> {
    let mut on_path = HashSet::new();
    explain_rec(g, base, triple, max_depth, &mut on_path)
}

fn explain_rec(
    g: &Graph,
    base: &Graph,
    triple: &Triple,
    depth: usize,
    on_path: &mut HashSet<Triple>,
) -> Option<Derivation> {
    if base.contains(triple) {
        return Some(Derivation::Asserted(triple.clone()));
    }
    if depth == 0 || !g.contains(triple) || !on_path.insert(triple.clone()) {
        return None;
    }
    let result = try_rules(g, base, triple, depth, on_path);
    on_path.remove(triple);
    result
}

/// Attempt each backward rule; premises must themselves be explainable.
fn try_rules(
    g: &Graph,
    base: &Graph,
    t: &Triple,
    depth: usize,
    on_path: &mut HashSet<Triple>,
) -> Option<Derivation> {
    let ty = Term::iri(rdf::TYPE);
    let sub_class = Term::iri(rdfs::SUB_CLASS_OF);
    let sub_prop = Term::iri(rdfs::SUB_PROPERTY_OF);

    let attempt = |rule: &'static str,
                   premises: Vec<Triple>,
                   on_path: &mut HashSet<Triple>|
     -> Option<Derivation> {
        let mut derived = Vec::with_capacity(premises.len());
        for p in &premises {
            derived.push(explain_rec(g, base, p, depth - 1, on_path)?);
        }
        Some(Derivation::Derived {
            conclusion: t.clone(),
            rule,
            premises: derived,
        })
    };

    // --- rdfs9: x type C, C ⊑ D ⇒ x type D -------------------------------
    if t.predicate == ty {
        for sub in g.subjects(&sub_class, &t.object) {
            if sub == t.object {
                continue;
            }
            let p1 = Triple::new(t.subject.clone(), ty.clone(), sub.clone());
            let p2 = Triple::new(sub.clone(), sub_class.clone(), t.object.clone());
            if g.contains(&p1) {
                if let Some(d) = attempt("rdfs9-type-inheritance", vec![p1, p2], on_path) {
                    return Some(d);
                }
            }
        }
        // rdfs2 (domain): p domain C, x p y ⇒ x type C.
        for p in g.subjects(&Term::iri(rdfs::DOMAIN), &t.object) {
            let uses = g.match_pattern(Some(&t.subject), Some(&p), None);
            if let Some(use_triple) = uses.into_iter().next() {
                let decl = Triple::new(p.clone(), Term::iri(rdfs::DOMAIN), t.object.clone());
                if let Some(d) = attempt("rdfs2-domain", vec![decl, use_triple], on_path) {
                    return Some(d);
                }
            }
        }
        // rdfs3 (range): p range C, y p x ⇒ x type C.
        for p in g.subjects(&Term::iri(rdfs::RANGE), &t.object) {
            let uses = g.match_pattern(None, Some(&p), Some(&t.subject));
            if let Some(use_triple) = uses.into_iter().next() {
                let decl = Triple::new(p.clone(), Term::iri(rdfs::RANGE), t.object.clone());
                if let Some(d) = attempt("rdfs3-range", vec![decl, use_triple], on_path) {
                    return Some(d);
                }
            }
        }
    }

    // --- rdfs11: A ⊑ B, B ⊑ C ⇒ A ⊑ C -------------------------------------
    if t.predicate == sub_class {
        for mid in g.objects(&t.subject, &sub_class) {
            if mid == t.object || mid == t.subject {
                continue;
            }
            let p2 = Triple::new(mid.clone(), sub_class.clone(), t.object.clone());
            if g.contains(&p2) {
                let p1 = Triple::new(t.subject.clone(), sub_class.clone(), mid);
                if let Some(d) = attempt("rdfs11-subclass-transitivity", vec![p1, p2], on_path) {
                    return Some(d);
                }
            }
        }
        // owl equivalentClass ⇒ subClassOf (either orientation).
        for (s, o) in [(&t.subject, &t.object), (&t.object, &t.subject)] {
            let eq = Triple::new(s.clone(), Term::iri(owl::EQUIVALENT_CLASS), o.clone());
            if g.contains(&eq) {
                if let Some(d) = attempt("owl-equivalent-class", vec![eq], on_path) {
                    return Some(d);
                }
            }
        }
    }

    // --- rdfs7: x p y, p ⊑ q ⇒ x q y ---------------------------------------
    for p in g.subjects(&sub_prop, &t.predicate) {
        if p == t.predicate {
            continue;
        }
        let p1 = Triple::new(t.subject.clone(), p.clone(), t.object.clone());
        if g.contains(&p1) {
            let p2 = Triple::new(p, sub_prop.clone(), t.predicate.clone());
            if let Some(d) = attempt("rdfs7-subproperty", vec![p1, p2], on_path) {
                return Some(d);
            }
        }
    }

    // --- owl: inverseOf ------------------------------------------------------
    if t.object.is_resource() {
        let mut inverses: Vec<Term> = g.objects(&t.predicate, &Term::iri(owl::INVERSE_OF));
        inverses.extend(g.subjects(&Term::iri(owl::INVERSE_OF), &t.predicate));
        for q in inverses {
            let p1 = Triple::new(t.object.clone(), q.clone(), t.subject.clone());
            if g.contains(&p1) {
                // The declaration may be in either orientation.
                let decl_a =
                    Triple::new(t.predicate.clone(), Term::iri(owl::INVERSE_OF), q.clone());
                let decl_b =
                    Triple::new(q.clone(), Term::iri(owl::INVERSE_OF), t.predicate.clone());
                let decl = if g.contains(&decl_a) { decl_a } else { decl_b };
                if let Some(d) = attempt("owl-inverse-of", vec![p1, decl], on_path) {
                    return Some(d);
                }
            }
        }

        // SymmetricProperty.
        let sym_decl = Triple::new(
            t.predicate.clone(),
            ty.clone(),
            Term::iri(owl::SYMMETRIC_PROPERTY),
        );
        if g.contains(&sym_decl) {
            let p1 = Triple::new(t.object.clone(), t.predicate.clone(), t.subject.clone());
            if g.contains(&p1) {
                if let Some(d) = attempt("owl-symmetric", vec![p1, sym_decl.clone()], on_path) {
                    return Some(d);
                }
            }
        }

        // TransitiveProperty: x p y, y p z ⇒ x p z.
        let trans_decl = Triple::new(
            t.predicate.clone(),
            ty.clone(),
            Term::iri(owl::TRANSITIVE_PROPERTY),
        );
        if g.contains(&trans_decl) {
            for mid in g.objects(&t.subject, &t.predicate) {
                if mid == t.object || mid == t.subject {
                    continue;
                }
                let p2 = Triple::new(mid.clone(), t.predicate.clone(), t.object.clone());
                if g.contains(&p2) {
                    let p1 = Triple::new(t.subject.clone(), t.predicate.clone(), mid);
                    if let Some(d) =
                        attempt("owl-transitive", vec![p1, p2, trans_decl.clone()], on_path)
                    {
                        return Some(d);
                    }
                }
            }
        }
    }

    // --- owl: sameAs substitution --------------------------------------------
    let same = Term::iri(owl::SAME_AS);
    if t.predicate == same {
        // sameAs symmetry.
        let rev = Triple::new(t.object.clone(), same.clone(), t.subject.clone());
        if g.contains(&rev) {
            if let Some(d) = attempt("owl-sameas-symmetry", vec![rev], on_path) {
                return Some(d);
            }
        }
        // sameAs transitivity.
        for mid in g.objects(&t.subject, &same) {
            if mid == t.object || mid == t.subject {
                continue;
            }
            let p2 = Triple::new(mid.clone(), same.clone(), t.object.clone());
            if g.contains(&p2) {
                let p1 = Triple::new(t.subject.clone(), same.clone(), mid);
                if let Some(d) = attempt("owl-sameas-transitivity", vec![p1, p2], on_path) {
                    return Some(d);
                }
            }
        }
        // Functional property: x p a, x p b, p functional ⇒ a sameAs b.
        for p in g.subjects(&ty, &Term::iri(owl::INVERSE_FUNCTIONAL_PROPERTY)) {
            let subjects_a = g.match_pattern(Some(&t.subject), Some(&p), None);
            for ta in &subjects_a {
                let tb = Triple::new(t.object.clone(), p.clone(), ta.object.clone());
                if g.contains(&tb) {
                    let decl = Triple::new(
                        p.clone(),
                        ty.clone(),
                        Term::iri(owl::INVERSE_FUNCTIONAL_PROPERTY),
                    );
                    if let Some(d) = attempt(
                        "owl-inverse-functional",
                        vec![ta.clone(), tb, decl],
                        on_path,
                    ) {
                        return Some(d);
                    }
                }
            }
        }
    } else {
        // Subject substitution: a sameAs b, a P o ⇒ b P o.
        for other in g.objects(&t.subject, &same) {
            if other == t.subject {
                continue;
            }
            let p1 = Triple::new(other.clone(), t.predicate.clone(), t.object.clone());
            if g.contains(&p1) && !base.contains(t) {
                let link = Triple::new(t.subject.clone(), same.clone(), other);
                if let Some(d) = attempt("owl-sameas-subject", vec![p1, link], on_path) {
                    return Some(d);
                }
            }
        }
        // Object substitution.
        if t.object.is_resource() {
            for other in g.objects(&t.object, &same) {
                if other == t.object {
                    continue;
                }
                let p1 = Triple::new(t.subject.clone(), t.predicate.clone(), other.clone());
                if g.contains(&p1) {
                    let link = Triple::new(t.object.clone(), same.clone(), other);
                    if let Some(d) = attempt("owl-sameas-object", vec![p1, link], on_path) {
                        return Some(d);
                    }
                }
            }
        }
    }

    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Characteristic, OntologyBuilder};
    use crate::reasoner::Reasoner;

    fn iri(s: &str) -> Term {
        Term::iri(s)
    }
    fn ty() -> Term {
        Term::iri(rdf::TYPE)
    }

    fn setup(
        builder: impl FnOnce(&mut OntologyBuilder),
        data: &[(Term, Term, Term)],
    ) -> (Graph, Graph) {
        let mut b = OntologyBuilder::new("urn:t#");
        builder(&mut b);
        let mut base = b.into_graph();
        for (s, p, o) in data {
            base.add(s.clone(), p.clone(), o.clone());
        }
        let mut materialized = base.clone();
        Reasoner::default().materialize(&mut materialized);
        (base, materialized)
    }

    #[test]
    fn asserted_triples_explain_trivially() {
        let (base, g) = setup(
            |b| {
                b.class("A", None);
            },
            &[(iri("urn:t#x"), ty(), iri("urn:t#A"))],
        );
        let t = Triple::new(iri("urn:t#x"), ty(), iri("urn:t#A"));
        let d = explain(&g, &base, &t, 5).unwrap();
        assert_eq!(d, Derivation::Asserted(t));
        assert_eq!(d.depth(), 1);
    }

    #[test]
    fn type_inheritance_explained() {
        let (base, g) = setup(
            |b| {
                b.class("A", None);
                b.class("B", Some("A"));
            },
            &[(iri("urn:t#x"), ty(), iri("urn:t#B"))],
        );
        let t = Triple::new(iri("urn:t#x"), ty(), iri("urn:t#A"));
        let d = explain(&g, &base, &t, 5).unwrap();
        match &d {
            Derivation::Derived { rule, premises, .. } => {
                assert_eq!(*rule, "rdfs9-type-inheritance");
                assert_eq!(premises.len(), 2);
            }
            other => panic!("unexpected {other:?}"),
        }
        // Support is entirely asserted.
        for leaf in d.support() {
            assert!(base.contains(leaf), "non-asserted leaf {leaf}");
        }
    }

    #[test]
    fn deep_chain_explained_to_asserted_leaves() {
        let (base, g) = setup(
            |b| {
                b.class("A", None);
                b.class("B", Some("A"));
                b.class("C", Some("B"));
                b.class("D", Some("C"));
            },
            &[(iri("urn:t#x"), ty(), iri("urn:t#D"))],
        );
        let t = Triple::new(iri("urn:t#x"), ty(), iri("urn:t#A"));
        let d = explain(&g, &base, &t, 10).unwrap();
        assert!(d.depth() >= 3, "expected a multi-step derivation, got {d}");
        for leaf in d.support() {
            assert!(base.contains(leaf));
        }
    }

    #[test]
    fn domain_and_range_explained() {
        let (base, g) = setup(
            |b| {
                b.class("Person", None);
                b.class("City", None);
                b.object_property("livesIn", Some("Person"), Some("City"));
            },
            &[(iri("urn:t#ann"), iri("urn:t#livesIn"), iri("urn:t#dallas"))],
        );
        let td = Triple::new(iri("urn:t#ann"), ty(), iri("urn:t#Person"));
        assert!(matches!(
            explain(&g, &base, &td, 5).unwrap(),
            Derivation::Derived {
                rule: "rdfs2-domain",
                ..
            }
        ));
        let tr = Triple::new(iri("urn:t#dallas"), ty(), iri("urn:t#City"));
        assert!(matches!(
            explain(&g, &base, &tr, 5).unwrap(),
            Derivation::Derived {
                rule: "rdfs3-range",
                ..
            }
        ));
    }

    #[test]
    fn inverse_and_symmetric_explained() {
        let (base, g) = setup(
            |b| {
                b.object_property("contains", None, None);
                b.object_property("within", None, None);
                b.inverse_of("contains", "within");
                b.object_property("touches", None, None);
                b.characteristic("touches", Characteristic::Symmetric);
            },
            &[
                (iri("urn:t#lake"), iri("urn:t#within"), iri("urn:t#park")),
                (iri("urn:t#a"), iri("urn:t#touches"), iri("urn:t#b")),
            ],
        );
        let inv = Triple::new(iri("urn:t#park"), iri("urn:t#contains"), iri("urn:t#lake"));
        assert!(matches!(
            explain(&g, &base, &inv, 5).unwrap(),
            Derivation::Derived {
                rule: "owl-inverse-of",
                ..
            }
        ));
        let sym = Triple::new(iri("urn:t#b"), iri("urn:t#touches"), iri("urn:t#a"));
        assert!(matches!(
            explain(&g, &base, &sym, 5).unwrap(),
            Derivation::Derived {
                rule: "owl-symmetric",
                ..
            }
        ));
    }

    #[test]
    fn transitive_chain_explained() {
        let (base, g) = setup(
            |b| {
                b.object_property("flowsInto", None, None);
                b.characteristic("flowsInto", Characteristic::Transitive);
            },
            &[
                (iri("urn:t#r1"), iri("urn:t#flowsInto"), iri("urn:t#r2")),
                (iri("urn:t#r2"), iri("urn:t#flowsInto"), iri("urn:t#r3")),
                (iri("urn:t#r3"), iri("urn:t#flowsInto"), iri("urn:t#r4")),
            ],
        );
        let t = Triple::new(iri("urn:t#r1"), iri("urn:t#flowsInto"), iri("urn:t#r4"));
        let d = explain(&g, &base, &t, 8).unwrap();
        assert!(
            matches!(
                &d,
                Derivation::Derived {
                    rule: "owl-transitive",
                    ..
                }
            ),
            "{d}"
        );
        for leaf in d.support() {
            assert!(base.contains(leaf));
        }
    }

    #[test]
    fn sameas_substitution_explained() {
        let (base, g) = setup(
            |b| {
                b.object_property("hasSiteId", None, None);
                b.characteristic("hasSiteId", Characteristic::InverseFunctional);
            },
            &[
                (iri("urn:t#a"), iri("urn:t#hasSiteId"), iri("urn:t#id1")),
                (iri("urn:t#b"), iri("urn:t#hasSiteId"), iri("urn:t#id1")),
                (iri("urn:t#a"), iri("urn:t#name"), Term::string("Plant")),
            ],
        );
        // b got the name by substitution through a sameAs b.
        let t = Triple::new(iri("urn:t#b"), iri("urn:t#name"), Term::string("Plant"));
        let d = explain(&g, &base, &t, 8).unwrap();
        assert!(
            matches!(
                &d,
                Derivation::Derived {
                    rule: "owl-sameas-subject",
                    ..
                }
            ),
            "{d}"
        );
        // And the sameAs link itself traces back to the IFP.
        let link = Triple::new(iri("urn:t#a"), Term::iri(owl::SAME_AS), iri("urn:t#b"));
        let dl = explain(&g, &base, &link, 8).unwrap();
        let rendered = dl.to_string();
        assert!(
            rendered.contains("owl-inverse-functional") || rendered.contains("owl-sameas"),
            "{rendered}"
        );
    }

    #[test]
    fn unexplainable_triples_return_none() {
        let (base, g) = setup(
            |b| {
                b.class("A", None);
            },
            &[],
        );
        let t = Triple::new(iri("urn:t#x"), ty(), iri("urn:t#A"));
        assert!(explain(&g, &base, &t, 5).is_none(), "not in graph at all");
        // In the graph but depth exhausted.
        let (base2, g2) = setup(
            |b| {
                b.class("A", None);
                b.class("B", Some("A"));
            },
            &[(iri("urn:t#x"), ty(), iri("urn:t#B"))],
        );
        let t2 = Triple::new(iri("urn:t#x"), ty(), iri("urn:t#A"));
        assert!(explain(&g2, &base2, &t2, 0).is_none());
    }

    #[test]
    fn display_renders_tree() {
        let (base, g) = setup(
            |b| {
                b.class("A", None);
                b.class("B", Some("A"));
            },
            &[(iri("urn:t#x"), ty(), iri("urn:t#B"))],
        );
        let t = Triple::new(iri("urn:t#x"), ty(), iri("urn:t#A"));
        let rendered = explain(&g, &base, &t, 5).unwrap().to_string();
        assert!(rendered.contains("[rdfs9-type-inheritance]"), "{rendered}");
        assert!(rendered.contains("[asserted]"), "{rendered}");
    }
}
