//! Class- and property-hierarchy queries over an (optionally materialized)
//! graph — the "mid-level ontology bootstrap" view of Fig. 1: lower-level
//! domain ontologies extend GRDF classes, and clients ask for subclass
//! cones, instances, and roots.

use std::collections::{BTreeSet, HashSet, VecDeque};

use grdf_rdf::graph::Graph;
use grdf_rdf::term::Term;
use grdf_rdf::vocab::{owl, rdf, rdfs};

/// A read-only hierarchy view over a graph.
pub struct Hierarchy<'g> {
    graph: &'g Graph,
}

impl<'g> Hierarchy<'g> {
    /// Wrap a graph.
    pub fn new(graph: &'g Graph) -> Hierarchy<'g> {
        Hierarchy { graph }
    }

    /// All declared `owl:Class`es (named classes only — restriction blanks
    /// are skipped), sorted.
    pub fn classes(&self) -> Vec<Term> {
        let mut out: BTreeSet<Term> = BTreeSet::new();
        self.graph.for_each_match(
            None,
            Some(&Term::iri(rdf::TYPE)),
            Some(&Term::iri(owl::CLASS)),
            |t| {
                if !t.subject.is_blank() {
                    out.insert(t.subject);
                }
            },
        );
        out.into_iter().collect()
    }

    /// Direct superclasses of `class`.
    pub fn direct_superclasses(&self, class: &Term) -> Vec<Term> {
        self.graph
            .objects(class, &Term::iri(rdfs::SUB_CLASS_OF))
            .into_iter()
            .filter(|t| !t.is_blank())
            .collect()
    }

    /// All (transitive) superclasses of `class`, excluding itself.
    pub fn superclasses(&self, class: &Term) -> Vec<Term> {
        self.closure(class, Hierarchy::direct_superclasses)
    }

    /// Direct subclasses of `class`.
    pub fn direct_subclasses(&self, class: &Term) -> Vec<Term> {
        self.graph
            .subjects(&Term::iri(rdfs::SUB_CLASS_OF), class)
            .into_iter()
            .filter(|t| !t.is_blank())
            .collect()
    }

    /// All (transitive) subclasses of `class`, excluding itself.
    pub fn subclasses(&self, class: &Term) -> Vec<Term> {
        self.closure(class, Hierarchy::direct_subclasses)
    }

    /// Whether `sub` is a (transitive, reflexive) subclass of `sup`.
    pub fn is_subclass_of(&self, sub: &Term, sup: &Term) -> bool {
        if sub == sup {
            return true;
        }
        self.superclasses(sub).contains(sup)
    }

    /// Instances of `class`, using only asserted `rdf:type` triples (run the
    /// reasoner first for inferred membership).
    pub fn instances(&self, class: &Term) -> Vec<Term> {
        self.graph.subjects(&Term::iri(rdf::TYPE), class)
    }

    /// Instances of `class` or any of its subclasses (works without prior
    /// materialization).
    pub fn instances_transitive(&self, class: &Term) -> Vec<Term> {
        let mut classes = vec![class.clone()];
        classes.extend(self.subclasses(class));
        let mut seen: BTreeSet<Term> = BTreeSet::new();
        for c in classes {
            for i in self.instances(&c) {
                seen.insert(i);
            }
        }
        seen.into_iter().collect()
    }

    /// The asserted types of `instance`.
    pub fn types_of(&self, instance: &Term) -> Vec<Term> {
        self.graph
            .objects(instance, &Term::iri(rdf::TYPE))
            .into_iter()
            .filter(|t| !t.is_blank())
            .collect()
    }

    /// Root classes: declared classes with no named superclass.
    pub fn roots(&self) -> Vec<Term> {
        self.classes()
            .into_iter()
            .filter(|c| self.direct_superclasses(c).is_empty())
            .collect()
    }

    /// Depth of `class` below the deepest root (0 for a root).
    pub fn depth(&self, class: &Term) -> usize {
        self.superclasses(class).len().min(
            // In a tree the count equals the depth; with multiple parents use
            // a BFS shortest path to any root instead.
            self.bfs_depth(class),
        )
    }

    fn bfs_depth(&self, class: &Term) -> usize {
        let mut q: VecDeque<(Term, usize)> = VecDeque::new();
        let mut seen: HashSet<Term> = HashSet::new();
        q.push_back((class.clone(), 0));
        while let Some((c, d)) = q.pop_front() {
            let supers = self.direct_superclasses(&c);
            if supers.is_empty() {
                return d;
            }
            for s in supers {
                if seen.insert(s.clone()) {
                    q.push_back((s, d + 1));
                }
            }
        }
        0
    }

    fn closure<F>(&self, start: &Term, step: F) -> Vec<Term>
    where
        F: Fn(&Hierarchy<'g>, &Term) -> Vec<Term>,
    {
        let mut seen: BTreeSet<Term> = BTreeSet::new();
        let mut queue: VecDeque<Term> = VecDeque::new();
        queue.push_back(start.clone());
        while let Some(c) = queue.pop_front() {
            for next in step(self, &c) {
                if next != *start && seen.insert(next.clone()) {
                    queue.push_back(next);
                }
            }
        }
        seen.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::OntologyBuilder;

    fn iri(s: &str) -> Term {
        Term::iri(s)
    }

    fn sample() -> Graph {
        let mut b = OntologyBuilder::new("urn:t#");
        b.class("Root", None);
        b.class("Geometry", Some("Root"));
        b.class("Curve", Some("Geometry"));
        b.class("LineString", Some("Curve"));
        b.class("Surface", Some("Geometry"));
        let mut g = b.into_graph();
        g.add(
            iri("urn:t#l1"),
            Term::iri(rdf::TYPE),
            iri("urn:t#LineString"),
        );
        g.add(iri("urn:t#s1"), Term::iri(rdf::TYPE), iri("urn:t#Surface"));
        g
    }

    #[test]
    fn classes_listed_sorted_without_blanks() {
        let g = sample();
        let h = Hierarchy::new(&g);
        let names: Vec<String> = h
            .classes()
            .iter()
            .map(std::string::ToString::to_string)
            .collect();
        assert_eq!(names.len(), 5);
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
    }

    #[test]
    fn transitive_super_and_subclasses() {
        let g = sample();
        let h = Hierarchy::new(&g);
        let supers = h.superclasses(&iri("urn:t#LineString"));
        assert!(supers.contains(&iri("urn:t#Curve")));
        assert!(supers.contains(&iri("urn:t#Geometry")));
        assert!(supers.contains(&iri("urn:t#Root")));
        let subs = h.subclasses(&iri("urn:t#Geometry"));
        assert!(subs.contains(&iri("urn:t#LineString")));
        assert!(subs.contains(&iri("urn:t#Surface")));
        assert!(!subs.contains(&iri("urn:t#Root")));
    }

    #[test]
    fn is_subclass_of_is_reflexive_and_transitive() {
        let g = sample();
        let h = Hierarchy::new(&g);
        assert!(h.is_subclass_of(&iri("urn:t#Curve"), &iri("urn:t#Curve")));
        assert!(h.is_subclass_of(&iri("urn:t#LineString"), &iri("urn:t#Root")));
        assert!(!h.is_subclass_of(&iri("urn:t#Root"), &iri("urn:t#LineString")));
        assert!(!h.is_subclass_of(&iri("urn:t#Surface"), &iri("urn:t#Curve")));
    }

    #[test]
    fn instances_transitive_without_materialization() {
        let g = sample();
        let h = Hierarchy::new(&g);
        assert_eq!(h.instances(&iri("urn:t#Geometry")).len(), 0, "not asserted");
        let all = h.instances_transitive(&iri("urn:t#Geometry"));
        assert_eq!(all.len(), 2);
    }

    #[test]
    fn roots_and_depth() {
        let g = sample();
        let h = Hierarchy::new(&g);
        assert_eq!(h.roots(), vec![iri("urn:t#Root")]);
        assert_eq!(h.depth(&iri("urn:t#Root")), 0);
        assert_eq!(h.depth(&iri("urn:t#LineString")), 3);
    }

    #[test]
    fn cycle_safe() {
        let mut g = Graph::new();
        let sub = Term::iri(rdfs::SUB_CLASS_OF);
        g.add(iri("urn:t#A"), sub.clone(), iri("urn:t#B"));
        g.add(iri("urn:t#B"), sub.clone(), iri("urn:t#A"));
        let h = Hierarchy::new(&g);
        let supers = h.superclasses(&iri("urn:t#A"));
        assert_eq!(supers, vec![iri("urn:t#B")]);
        assert!(h.is_subclass_of(&iri("urn:t#A"), &iri("urn:t#B")));
        assert!(h.is_subclass_of(&iri("urn:t#B"), &iri("urn:t#A")));
    }
}
