//! OWL-DL consistency checking: disjointness clashes, cardinality
//! restriction violations, `sameAs`/`differentFrom` conflicts, and
//! memberships of `owl:Nothing`.
//!
//! Run after [`crate::reasoner::Reasoner::materialize`] so inferred
//! memberships are visible to the checks. GRDF uses cardinality
//! restrictions structurally (Lists 3 and 5), so a validator is required to
//! make those restrictions mean anything for instance data.

use std::collections::BTreeSet;
use std::fmt;

use grdf_rdf::diagnostic::{Diagnostic, LintCode};
use grdf_rdf::graph::Graph;
use grdf_rdf::term::Term;
use grdf_rdf::vocab::{owl, rdf, rdfs};

/// One detected inconsistency.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// `instance` is a member of two classes declared `owl:disjointWith`.
    Disjoint {
        /// The offending individual.
        instance: Term,
        /// First class.
        class_a: Term,
        /// Second class (disjoint with the first).
        class_b: Term,
    },
    /// A cardinality restriction is violated.
    Cardinality {
        /// The offending individual.
        instance: Term,
        /// The restricted property.
        property: Term,
        /// Expected bound description, e.g. `exactly 2` or `at most 1`.
        expected: String,
        /// The count actually observed.
        actual: usize,
    },
    /// Two individuals are asserted both `owl:sameAs` and
    /// `owl:differentFrom` each other.
    SameAndDifferent {
        /// First individual.
        a: Term,
        /// Second individual.
        b: Term,
    },
    /// An individual is typed `owl:Nothing`.
    NothingMember {
        /// The impossible individual.
        instance: Term,
    },
    /// A functional property maps one subject to two distinct literals —
    /// literals cannot be `sameAs`-identified, so this is a hard clash.
    FunctionalLiteralClash {
        /// The subject with two values.
        instance: Term,
        /// The functional property.
        property: Term,
        /// First literal value.
        value_a: Term,
        /// Second literal value.
        value_b: Term,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::Disjoint { instance, class_a, class_b } => write!(
                f,
                "{instance} is a member of disjoint classes {class_a} and {class_b}"
            ),
            Violation::Cardinality { instance, property, expected, actual } => write!(
                f,
                "{instance} violates cardinality on {property}: expected {expected}, found {actual}"
            ),
            Violation::SameAndDifferent { a, b } => {
                write!(f, "{a} and {b} are both sameAs and differentFrom")
            }
            Violation::NothingMember { instance } => {
                write!(f, "{instance} is a member of owl:Nothing")
            }
            Violation::FunctionalLiteralClash { instance, property, value_a, value_b } => write!(
                f,
                "functional {property} of {instance} has two distinct literal values {value_a} and {value_b}"
            ),
        }
    }
}

/// Check a (materialized) graph, reporting typed [`Diagnostic`]s — the
/// canonical entry point for tooling (`grdf-lint`, the G-SACS gate). Each
/// violation maps to a stable code in the `G011`–`G015` range.
pub fn lint(g: &Graph) -> Vec<Diagnostic> {
    check_consistency(g)
        .iter()
        .map(violation_to_diagnostic)
        .collect()
}

/// Convert one [`Violation`] into its typed [`Diagnostic`]. Symmetric
/// pairs (disjoint classes, clashing literal values) are ordered
/// canonically so output is stable under triple reordering.
pub fn violation_to_diagnostic(v: &Violation) -> Diagnostic {
    match v {
        Violation::Disjoint {
            instance,
            class_a,
            class_b,
        } => {
            let (a, b) = if class_a <= class_b {
                (class_a, class_b)
            } else {
                (class_b, class_a)
            };
            Diagnostic::new(
                LintCode::DisjointViolation,
                instance.clone(),
                format!("member of disjoint classes {a} and {b}"),
            )
            .with_related(vec![a.clone(), b.clone()])
            .with_suggestion("remove one of the two type assertions or the disjointness axiom")
        }
        Violation::Cardinality {
            instance,
            property,
            expected,
            actual,
        } => Diagnostic::new(
            LintCode::CardinalityViolation,
            instance.clone(),
            format!("cardinality on {property}: expected {expected}, found {actual}"),
        )
        .with_related(vec![property.clone()]),
        Violation::SameAndDifferent { a, b } => {
            let (x, y) = if a <= b { (a, b) } else { (b, a) };
            Diagnostic::new(
                LintCode::SameAndDifferent,
                x.clone(),
                format!("{x} and {y} are asserted both sameAs and differentFrom"),
            )
            .with_related(vec![y.clone()])
        }
        Violation::NothingMember { instance } => Diagnostic::new(
            LintCode::NothingMember,
            instance.clone(),
            "individual is a member of owl:Nothing".to_string(),
        ),
        Violation::FunctionalLiteralClash {
            instance,
            property,
            value_a,
            value_b,
        } => {
            let (a, b) = if value_a <= value_b {
                (value_a, value_b)
            } else {
                (value_b, value_a)
            };
            Diagnostic::new(
                LintCode::FunctionalClash,
                instance.clone(),
                format!("functional {property} has two distinct literal values {a} and {b}"),
            )
            .with_related(vec![property.clone(), a.clone(), b.clone()])
        }
    }
}

/// Check a (materialized) graph; returns all detected violations.
///
/// Compatibility surface: [`lint`] is the typed framework entry point;
/// this keeps the original structured-enum shape for existing callers.
pub fn check_consistency(g: &Graph) -> Vec<Violation> {
    let mut out = Vec::new();
    check_disjoint(g, &mut out);
    check_cardinalities(g, &mut out);
    check_same_different(g, &mut out);
    check_nothing(g, &mut out);
    check_functional_literals(g, &mut out);
    out
}

/// Functional properties with two distinct literal values: unlike resource
/// values (which the reasoner identifies via `sameAs`), literal values
/// cannot be equated, so duplicates are inconsistencies.
fn check_functional_literals(g: &Graph, out: &mut Vec<Violation>) {
    g.for_each_match(
        None,
        Some(&Term::iri(rdf::TYPE)),
        Some(&Term::iri(owl::FUNCTIONAL_PROPERTY)),
        |decl| {
            let property = decl.subject;
            let mut by_subject: std::collections::HashMap<Term, Vec<Term>> =
                std::collections::HashMap::new();
            g.for_each_match(None, Some(&property), None, |t| {
                if !t.object.is_resource() {
                    by_subject.entry(t.subject).or_default().push(t.object);
                }
            });
            for (instance, values) in by_subject {
                for pair in values.windows(2) {
                    if pair[0] != pair[1] {
                        out.push(Violation::FunctionalLiteralClash {
                            instance: instance.clone(),
                            property: property.clone(),
                            value_a: pair[0].clone(),
                            value_b: pair[1].clone(),
                        });
                    }
                }
            }
        },
    );
}

fn check_disjoint(g: &Graph, out: &mut Vec<Violation>) {
    let ty = Term::iri(rdf::TYPE);
    g.for_each_match(None, Some(&Term::iri(owl::DISJOINT_WITH)), None, |t| {
        let (a, b) = (t.subject, t.object);
        let members_a: BTreeSet<Term> = g.subjects(&ty, &a).into_iter().collect();
        if members_a.is_empty() {
            return;
        }
        for m in g.subjects(&ty, &b) {
            if members_a.contains(&m) {
                out.push(Violation::Disjoint {
                    instance: m,
                    class_a: a.clone(),
                    class_b: b.clone(),
                });
            }
        }
    });
}

fn check_cardinalities(g: &Graph, out: &mut Vec<Violation>) {
    let ty = Term::iri(rdf::TYPE);
    // For every restriction node with a cardinality facet, check members of
    // every class declared below it (and direct members of the node).
    g.for_each_match(None, Some(&ty), Some(&Term::iri(owl::RESTRICTION)), |t| {
        let node = t.subject;
        let Some(property) = g.object(&node, &Term::iri(owl::ON_PROPERTY)) else {
            return;
        };
        let exact = card_value(g, &node, owl::CARDINALITY);
        let min = card_value(g, &node, owl::MIN_CARDINALITY);
        let max = card_value(g, &node, owl::MAX_CARDINALITY);
        if exact.is_none() && min.is_none() && max.is_none() {
            return;
        }

        let mut members: BTreeSet<Term> = g.subjects(&ty, &node).into_iter().collect();
        for class in g.subjects(&Term::iri(rdfs::SUB_CLASS_OF), &node) {
            members.extend(g.subjects(&ty, &class));
        }

        for m in members {
            // Distinct values, treating sameAs-identified individuals as one.
            let values = distinct_values(g, &m, &property);
            let actual = values.len();
            if let Some(n) = exact {
                if actual != n as usize {
                    out.push(Violation::Cardinality {
                        instance: m.clone(),
                        property: property.clone(),
                        expected: format!("exactly {n}"),
                        actual,
                    });
                }
            }
            if let Some(n) = min {
                if actual < n as usize {
                    out.push(Violation::Cardinality {
                        instance: m.clone(),
                        property: property.clone(),
                        expected: format!("at least {n}"),
                        actual,
                    });
                }
            }
            if let Some(n) = max {
                if actual > n as usize {
                    out.push(Violation::Cardinality {
                        instance: m.clone(),
                        property: property.clone(),
                        expected: format!("at most {n}"),
                        actual,
                    });
                }
            }
        }
    });
}

fn card_value(g: &Graph, node: &Term, pred: &str) -> Option<u32> {
    g.object(node, &Term::iri(pred))
        .and_then(|v| v.as_literal().and_then(grdf_rdf::Literal::as_integer))
        .and_then(|n| u32::try_from(n).ok())
}

/// Distinct objects of `(m, p, ?)`, collapsing `owl:sameAs` groups.
fn distinct_values(g: &Graph, m: &Term, p: &Term) -> Vec<Term> {
    let same = Term::iri(owl::SAME_AS);
    let mut out: Vec<Term> = Vec::new();
    for v in g.objects(m, p) {
        let duplicate = out.iter().any(|u| *u == v || g.has(u, &same, &v));
        if !duplicate {
            out.push(v);
        }
    }
    out
}

fn check_same_different(g: &Graph, out: &mut Vec<Violation>) {
    let same = Term::iri(owl::SAME_AS);
    g.for_each_match(None, Some(&Term::iri(owl::DIFFERENT_FROM)), None, |t| {
        if g.has(&t.subject, &same, &t.object) || g.has(&t.object, &same, &t.subject) {
            out.push(Violation::SameAndDifferent {
                a: t.subject,
                b: t.object,
            });
        }
    });
}

fn check_nothing(g: &Graph, out: &mut Vec<Violation>) {
    g.for_each_match(
        None,
        Some(&Term::iri(rdf::TYPE)),
        Some(&Term::iri(owl::NOTHING)),
        |t| {
            out.push(Violation::NothingMember {
                instance: t.subject,
            });
        },
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{OntologyBuilder, RestrictionKind};
    use crate::reasoner::Reasoner;

    fn iri(s: &str) -> Term {
        Term::iri(s)
    }
    fn ty() -> Term {
        Term::iri(rdf::TYPE)
    }

    #[test]
    fn clean_ontology_has_no_violations() {
        let mut b = OntologyBuilder::new("urn:t#");
        b.class("A", None);
        let mut g = b.into_graph();
        g.add(iri("urn:t#x"), ty(), iri("urn:t#A"));
        assert!(check_consistency(&g).is_empty());
    }

    #[test]
    fn disjoint_membership_detected() {
        let mut b = OntologyBuilder::new("urn:t#");
        b.class("Geometry", None);
        b.class("Topology", None);
        b.disjoint_with("Geometry", "Topology");
        let mut g = b.into_graph();
        g.add(iri("urn:t#x"), ty(), iri("urn:t#Geometry"));
        g.add(iri("urn:t#x"), ty(), iri("urn:t#Topology"));
        let v = check_consistency(&g);
        assert!(matches!(v.as_slice(), [Violation::Disjoint { .. }]));
    }

    #[test]
    fn exact_cardinality_enforced_list3() {
        // List 3: EnvelopeWithTimePeriod must have exactly 2 time positions.
        let mut b = OntologyBuilder::new("urn:t#");
        b.class("EnvelopeWithTimePeriod", None);
        b.object_property("hasTimePosition", None, None);
        b.restrict(
            "EnvelopeWithTimePeriod",
            "hasTimePosition",
            RestrictionKind::Exactly(2),
        );
        let mut g = b.into_graph();
        g.add(iri("urn:t#env"), ty(), iri("urn:t#EnvelopeWithTimePeriod"));
        g.add(
            iri("urn:t#env"),
            iri("urn:t#hasTimePosition"),
            iri("urn:t#t0"),
        );
        let v = check_consistency(&g);
        assert_eq!(v.len(), 1);
        match &v[0] {
            Violation::Cardinality {
                expected, actual, ..
            } => {
                assert_eq!(expected, "exactly 2");
                assert_eq!(*actual, 1);
            }
            other => panic!("unexpected {other:?}"),
        }
        // Adding the second position clears it.
        g.add(
            iri("urn:t#env"),
            iri("urn:t#hasTimePosition"),
            iri("urn:t#t1"),
        );
        assert!(check_consistency(&g).is_empty());
    }

    #[test]
    fn max_cardinality_enforced_list5() {
        // List 5: a Face has at most 1 hasSurface.
        let mut b = OntologyBuilder::new("urn:t#");
        b.class("Face", None);
        b.object_property("hasSurface", None, None);
        b.restrict("Face", "hasSurface", RestrictionKind::AtMost(1));
        let mut g = b.into_graph();
        g.add(iri("urn:t#f"), ty(), iri("urn:t#Face"));
        g.add(iri("urn:t#f"), iri("urn:t#hasSurface"), iri("urn:t#s1"));
        assert!(check_consistency(&g).is_empty());
        g.add(iri("urn:t#f"), iri("urn:t#hasSurface"), iri("urn:t#s2"));
        let v = check_consistency(&g);
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn min_cardinality_enforced() {
        let mut b = OntologyBuilder::new("urn:t#");
        b.class("Face", None);
        b.object_property("hasEdge", None, None);
        b.restrict("Face", "hasEdge", RestrictionKind::AtLeast(1));
        let mut g = b.into_graph();
        g.add(iri("urn:t#f"), ty(), iri("urn:t#Face"));
        let v = check_consistency(&g);
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn same_as_values_count_once() {
        let mut b = OntologyBuilder::new("urn:t#");
        b.class("C", None);
        b.object_property("p", None, None);
        b.restrict("C", "p", RestrictionKind::AtMost(1));
        let mut g = b.into_graph();
        g.add(iri("urn:t#x"), ty(), iri("urn:t#C"));
        g.add(iri("urn:t#x"), iri("urn:t#p"), iri("urn:t#a"));
        g.add(iri("urn:t#x"), iri("urn:t#p"), iri("urn:t#b"));
        g.add(iri("urn:t#a"), Term::iri(owl::SAME_AS), iri("urn:t#b"));
        Reasoner::default().materialize(&mut g);
        assert!(
            check_consistency(&g).is_empty(),
            "sameAs-identified values must count as one"
        );
    }

    #[test]
    fn same_and_different_conflict() {
        let mut g = Graph::new();
        g.add(iri("urn:a"), Term::iri(owl::SAME_AS), iri("urn:b"));
        g.add(iri("urn:a"), Term::iri(owl::DIFFERENT_FROM), iri("urn:b"));
        let v = check_consistency(&g);
        assert!(matches!(v.as_slice(), [Violation::SameAndDifferent { .. }]));
    }

    #[test]
    fn nothing_membership_detected() {
        let mut g = Graph::new();
        g.add(iri("urn:x"), ty(), Term::iri(owl::NOTHING));
        let v = check_consistency(&g);
        assert!(matches!(v.as_slice(), [Violation::NothingMember { .. }]));
    }

    #[test]
    fn functional_literal_clash_detected() {
        use crate::model::Characteristic;
        let mut b = OntologyBuilder::new("urn:t#");
        b.datatype_property("hasSiteId", None, None);
        b.characteristic("hasSiteId", Characteristic::Functional);
        let mut g = b.into_graph();
        g.add(
            iri("urn:t#s"),
            iri("urn:t#hasSiteId"),
            Term::string("004221"),
        );
        assert!(check_consistency(&g).is_empty(), "one value is fine");
        g.add(
            iri("urn:t#s"),
            iri("urn:t#hasSiteId"),
            Term::string("999999"),
        );
        let v = check_consistency(&g);
        assert!(
            matches!(v.as_slice(), [Violation::FunctionalLiteralClash { .. }]),
            "{v:?}"
        );
        // Two resources (not literals) are handled by sameAs, not flagged.
        let mut g2 = Graph::new();
        g2.add(
            iri("urn:t#p"),
            Term::iri(rdf::TYPE),
            Term::iri(owl::FUNCTIONAL_PROPERTY),
        );
        g2.add(iri("urn:t#s"), iri("urn:t#p"), iri("urn:t#a"));
        g2.add(iri("urn:t#s"), iri("urn:t#p"), iri("urn:t#b"));
        assert!(check_consistency(&g2).is_empty());
    }

    #[test]
    fn lint_maps_violations_to_stable_codes() {
        use grdf_rdf::diagnostic::{LintCode, Severity};
        let mut b = OntologyBuilder::new("urn:t#");
        b.class("A", None);
        b.class("B", None);
        b.disjoint_with("A", "B");
        let mut g = b.into_graph();
        g.add(iri("urn:t#x"), ty(), iri("urn:t#A"));
        g.add(iri("urn:t#x"), ty(), iri("urn:t#B"));
        g.add(iri("urn:t#y"), ty(), Term::iri(owl::NOTHING));
        let ds = lint(&g);
        assert_eq!(ds.len(), 2);
        assert!(ds.iter().any(|d| d.code == LintCode::DisjointViolation));
        assert!(ds.iter().any(|d| d.code == LintCode::NothingMember));
        assert!(ds.iter().all(|d| d.severity == Severity::Error));
        // Symmetric pairs are ordered canonically.
        let dj = ds
            .iter()
            .find(|d| d.code == LintCode::DisjointViolation)
            .unwrap();
        assert_eq!(dj.related, vec![iri("urn:t#A"), iri("urn:t#B")]);
    }

    #[test]
    fn violations_display() {
        let v = Violation::Cardinality {
            instance: iri("urn:x"),
            property: iri("urn:p"),
            expected: "at most 1".into(),
            actual: 3,
        };
        let s = v.to_string();
        assert!(s.contains("at most 1") && s.contains('3'), "{s}");
    }
}
