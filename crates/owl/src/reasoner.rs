//! Forward-chaining materialization of the RDFS + OWL-Horst rule subset.
//!
//! The reasoner repeatedly applies entailment rules until a fixpoint and
//! inserts every derived triple into the graph ("materialization"), so that
//! downstream query answering is a plain pattern match. This is the
//! "logical inference" capability the paper claims as GRDF's main advantage
//! over GML (§1, §9).
//!
//! Rule coverage:
//!
//! | group | rules |
//! |-------|-------|
//! | RDFS  | subClassOf/subPropertyOf transitivity, type inheritance, property inheritance, `rdfs:domain`, `rdfs:range` |
//! | OWL   | `inverseOf`, `SymmetricProperty`, `TransitiveProperty`, `FunctionalProperty` → `sameAs`, `InverseFunctionalProperty` → `sameAs`, `equivalentClass`/`equivalentProperty`, `sameAs` closure + substitution |
//! | Restrictions | `hasValue` (both directions), `someValuesFrom`, `allValuesFrom` |

use std::collections::{HashMap, HashSet};

use grdf_rdf::graph::Graph;
use grdf_rdf::term::{Term, Triple};
use grdf_rdf::vocab::{owl, rdf, rdfs};
use grdf_runtime::{Deadline, DeadlineExceeded};

/// Statistics from one materialization run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReasonerStats {
    /// Number of fixpoint passes executed.
    pub passes: usize,
    /// Triples added by inference.
    pub inferred: usize,
}

/// Configurable forward-chaining reasoner.
#[derive(Debug, Clone, Copy)]
pub struct Reasoner {
    /// Apply the RDFS rule group.
    pub rdfs: bool,
    /// Apply the OWL property-semantics rule group.
    pub owl: bool,
    /// Apply restriction-class rules (`hasValue`, `someValuesFrom`,
    /// `allValuesFrom`).
    pub restrictions: bool,
    /// Safety valve for the fixpoint loop.
    pub max_passes: usize,
}

impl Default for Reasoner {
    fn default() -> Self {
        Reasoner {
            rdfs: true,
            owl: true,
            restrictions: true,
            max_passes: 64,
        }
    }
}

impl Reasoner {
    /// RDFS-only configuration (ablation arm).
    pub fn rdfs_only() -> Reasoner {
        Reasoner {
            rdfs: true,
            owl: false,
            restrictions: false,
            ..Reasoner::default()
        }
    }

    /// Materialize all entailments into `graph`; returns statistics.
    pub fn materialize(&self, graph: &mut Graph) -> ReasonerStats {
        self.materialize_with_deadline(graph, &Deadline::never())
            .expect("a never-expiring deadline cannot interrupt the fixpoint")
    }

    /// Materialize under a cooperative deadline, polled once per fixpoint
    /// pass. On expiry the graph is left with whatever entailments the
    /// completed passes added (each pass only adds sound inferences, so
    /// the graph stays consistent — merely under-materialized) and the
    /// caller decides how to degrade.
    pub fn materialize_with_deadline(
        &self,
        graph: &mut Graph,
        deadline: &Deadline,
    ) -> Result<ReasonerStats, DeadlineExceeded> {
        let mut stats = ReasonerStats::default();
        loop {
            deadline.check()?;
            stats.passes += 1;
            let span = grdf_obs::span("reasoner.pass").tag("pass", stats.passes);
            let additions = self.one_pass(graph);
            let mut added = 0;
            for t in additions {
                if graph.insert(t) {
                    added += 1;
                }
            }
            drop(span.tag("inferred", added));
            stats.inferred += added;
            if added == 0 || stats.passes >= self.max_passes {
                grdf_obs::add("reasoner.passes", stats.passes as u64);
                grdf_obs::add("reasoner.inferred", stats.inferred as u64);
                return Ok(stats);
            }
        }
    }

    fn one_pass(&self, g: &Graph) -> Vec<Triple> {
        let mut out: Vec<Triple> = Vec::new();
        let schema = Schema::collect(g);

        // Count each rule's proposals (pre-dedup) under
        // `reasoner.rule.<name>` so decision traces and `grdf-cli trace`
        // can attribute fixpoint work to individual rules.
        macro_rules! rule {
            ($name:literal, $call:expr) => {{
                let before = out.len();
                $call;
                grdf_obs::add(
                    concat!("reasoner.rule.", $name),
                    (out.len() - before) as u64,
                );
            }};
        }

        if self.rdfs {
            rule!(
                "subclass_transitivity",
                rule_subclass_transitivity(g, &mut out)
            );
            rule!(
                "type_inheritance",
                rule_type_inheritance(g, &schema, &mut out)
            );
            rule!(
                "subproperty_transitivity",
                rule_subproperty_transitivity(g, &mut out)
            );
            rule!(
                "property_inheritance",
                rule_property_inheritance(g, &schema, &mut out)
            );
            rule!("domain_range", rule_domain_range(g, &schema, &mut out));
        }
        if self.owl {
            rule!("equivalences", rule_equivalences(g, &mut out));
            rule!("inverse", rule_inverse(g, &schema, &mut out));
            rule!("symmetric", rule_symmetric(g, &schema, &mut out));
            rule!("transitive", rule_transitive(g, &schema, &mut out));
            rule!("functional", rule_functional(g, &schema, &mut out));
            rule!("same_as", rule_same_as(g, &mut out));
        }
        if self.restrictions {
            rule!("restrictions", rule_restrictions(g, &schema, &mut out));
        }
        if self.owl {
            rule!("boolean_classes", rule_boolean_classes(g, &mut out));
        }
        out
    }
}

/// `owl:intersectionOf` / `owl:unionOf` semantics:
///
/// * intersection: members of every part are members of the intersection
///   class, and vice versa (the class entails membership in every part —
///   which also makes parts behave as superclasses);
/// * union: members of any part are members of the union class.
fn rule_boolean_classes(g: &Graph, out: &mut Vec<Triple>) {
    let ty = Term::iri(rdf::TYPE);
    g.for_each_match(None, Some(&Term::iri(owl::INTERSECTION_OF)), None, |decl| {
        let class = decl.subject;
        let Some(parts) = g.read_list(&decl.object) else {
            return;
        };
        if parts.is_empty() {
            return;
        }
        // x ∈ all parts ⇒ x ∈ class.
        for candidate in g.subjects(&ty, &parts[0]) {
            if parts[1..].iter().all(|p| g.has(&candidate, &ty, p))
                && !g.has(&candidate, &ty, &class)
            {
                out.push(Triple::new(candidate, ty.clone(), class.clone()));
            }
        }
        // x ∈ class ⇒ x ∈ every part.
        g.for_each_match(None, Some(&ty), Some(&class), |t| {
            for p in &parts {
                if !g.has(&t.subject, &ty, p) {
                    out.push(Triple::new(t.subject.clone(), ty.clone(), p.clone()));
                }
            }
        });
    });
    g.for_each_match(None, Some(&Term::iri(owl::UNION_OF)), None, |decl| {
        let class = decl.subject;
        let Some(parts) = g.read_list(&decl.object) else {
            return;
        };
        for p in &parts {
            g.for_each_match(None, Some(&ty), Some(p), |t| {
                if !g.has(&t.subject, &ty, &class) {
                    out.push(Triple::new(t.subject.clone(), ty.clone(), class.clone()));
                }
            });
        }
    });
}

/// Schema triples collected once per pass for fast rule application.
struct Schema {
    /// subclass → superclasses (direct).
    sub_class: HashMap<Term, Vec<Term>>,
    /// subproperty → superproperties (direct).
    sub_prop: HashMap<Term, Vec<Term>>,
    /// property → domain classes.
    domain: HashMap<Term, Vec<Term>>,
    /// property → range classes (object ranges only meaningfully typed).
    range: HashMap<Term, Vec<Term>>,
    /// property → inverse properties.
    inverse: HashMap<Term, Vec<Term>>,
    symmetric: HashSet<Term>,
    transitive: HashSet<Term>,
    functional: HashSet<Term>,
    inverse_functional: HashSet<Term>,
    /// Restriction node → (onProperty, detail).
    restrictions: Vec<Restriction>,
}

struct Restriction {
    node: Term,
    property: Term,
    kind: RKind,
    /// Named classes declared as subclasses of the restriction.
    subclasses: Vec<Term>,
}

enum RKind {
    HasValue(Term),
    SomeValuesFrom(Term),
    AllValuesFrom(Term),
}

impl Schema {
    fn collect(g: &Graph) -> Schema {
        let mut s = Schema {
            sub_class: HashMap::new(),
            sub_prop: HashMap::new(),
            domain: HashMap::new(),
            range: HashMap::new(),
            inverse: HashMap::new(),
            symmetric: HashSet::new(),
            transitive: HashSet::new(),
            functional: HashSet::new(),
            inverse_functional: HashSet::new(),
            restrictions: Vec::new(),
        };
        g.for_each_match(None, Some(&Term::iri(rdfs::SUB_CLASS_OF)), None, |t| {
            s.sub_class.entry(t.subject).or_default().push(t.object);
        });
        g.for_each_match(None, Some(&Term::iri(rdfs::SUB_PROPERTY_OF)), None, |t| {
            s.sub_prop.entry(t.subject).or_default().push(t.object);
        });
        g.for_each_match(None, Some(&Term::iri(rdfs::DOMAIN)), None, |t| {
            s.domain.entry(t.subject).or_default().push(t.object);
        });
        g.for_each_match(None, Some(&Term::iri(rdfs::RANGE)), None, |t| {
            s.range.entry(t.subject).or_default().push(t.object);
        });
        g.for_each_match(None, Some(&Term::iri(owl::INVERSE_OF)), None, |t| {
            s.inverse
                .entry(t.subject.clone())
                .or_default()
                .push(t.object.clone());
            s.inverse.entry(t.object).or_default().push(t.subject);
        });
        for (class_iri, set) in [
            (owl::SYMMETRIC_PROPERTY, &mut s.symmetric),
            (owl::TRANSITIVE_PROPERTY, &mut s.transitive),
            (owl::FUNCTIONAL_PROPERTY, &mut s.functional),
            (owl::INVERSE_FUNCTIONAL_PROPERTY, &mut s.inverse_functional),
        ] {
            g.for_each_match(
                None,
                Some(&Term::iri(rdf::TYPE)),
                Some(&Term::iri(class_iri)),
                |t| {
                    set.insert(t.subject);
                },
            );
        }

        // Restrictions: nodes typed owl:Restriction with owl:onProperty.
        g.for_each_match(
            None,
            Some(&Term::iri(rdf::TYPE)),
            Some(&Term::iri(owl::RESTRICTION)),
            |t| {
                let node = t.subject;
                let Some(property) = g.object(&node, &Term::iri(owl::ON_PROPERTY)) else {
                    return;
                };
                let kind = if let Some(v) = g.object(&node, &Term::iri(owl::HAS_VALUE)) {
                    Some(RKind::HasValue(v))
                } else if let Some(c) = g.object(&node, &Term::iri(owl::SOME_VALUES_FROM)) {
                    Some(RKind::SomeValuesFrom(c))
                } else {
                    g.object(&node, &Term::iri(owl::ALL_VALUES_FROM))
                        .map(RKind::AllValuesFrom)
                };
                if let Some(kind) = kind {
                    let subclasses = g.subjects(&Term::iri(rdfs::SUB_CLASS_OF), &node);
                    s.restrictions.push(Restriction {
                        node,
                        property,
                        kind,
                        subclasses,
                    });
                }
            },
        );
        s
    }
}

fn rule_subclass_transitivity(g: &Graph, out: &mut Vec<Triple>) {
    let p = Term::iri(rdfs::SUB_CLASS_OF);
    transitivity_over(g, &p, out);
}

fn rule_subproperty_transitivity(g: &Graph, out: &mut Vec<Triple>) {
    let p = Term::iri(rdfs::SUB_PROPERTY_OF);
    transitivity_over(g, &p, out);
}

fn transitivity_over(g: &Graph, p: &Term, out: &mut Vec<Triple>) {
    // (a p b), (b p c) → (a p c)
    let mut edges: HashMap<Term, Vec<Term>> = HashMap::new();
    g.for_each_match(None, Some(p), None, |t| {
        edges.entry(t.subject).or_default().push(t.object);
    });
    for (a, bs) in &edges {
        for b in bs {
            if let Some(cs) = edges.get(b) {
                for c in cs {
                    if c != a && !g.has(a, p, c) {
                        out.push(Triple::new(a.clone(), p.clone(), c.clone()));
                    }
                }
            }
        }
    }
}

fn rule_type_inheritance(g: &Graph, s: &Schema, out: &mut Vec<Triple>) {
    let ty = Term::iri(rdf::TYPE);
    g.for_each_match(None, Some(&ty), None, |t| {
        if let Some(supers) = s.sub_class.get(&t.object) {
            for sup in supers {
                if !g.has(&t.subject, &ty, sup) {
                    out.push(Triple::new(t.subject.clone(), ty.clone(), sup.clone()));
                }
            }
        }
    });
}

fn rule_property_inheritance(g: &Graph, s: &Schema, out: &mut Vec<Triple>) {
    for (p, supers) in &s.sub_prop {
        g.for_each_match(None, Some(p), None, |t| {
            for q in supers {
                if !g.has(&t.subject, q, &t.object) {
                    out.push(Triple::new(t.subject.clone(), q.clone(), t.object.clone()));
                }
            }
        });
    }
}

fn rule_domain_range(g: &Graph, s: &Schema, out: &mut Vec<Triple>) {
    let ty = Term::iri(rdf::TYPE);
    for (p, classes) in &s.domain {
        g.for_each_match(None, Some(p), None, |t| {
            for c in classes {
                if !g.has(&t.subject, &ty, c) {
                    out.push(Triple::new(t.subject.clone(), ty.clone(), c.clone()));
                }
            }
        });
    }
    for (p, classes) in &s.range {
        g.for_each_match(None, Some(p), None, |t| {
            if !t.object.is_resource() {
                return;
            }
            for c in classes {
                // Datatype ranges aren't class memberships.
                if c.as_iri()
                    .is_some_and(|i| i.starts_with(grdf_rdf::vocab::xsd::NS))
                {
                    continue;
                }
                if !g.has(&t.object, &ty, c) {
                    out.push(Triple::new(t.object.clone(), ty.clone(), c.clone()));
                }
            }
        });
    }
}

fn rule_equivalences(g: &Graph, out: &mut Vec<Triple>) {
    let eqc = Term::iri(owl::EQUIVALENT_CLASS);
    let sub = Term::iri(rdfs::SUB_CLASS_OF);
    g.for_each_match(None, Some(&eqc), None, |t| {
        for (s, o) in [(&t.subject, &t.object), (&t.object, &t.subject)] {
            if o.is_resource() && !g.has(s, &sub, o) {
                out.push(Triple::new(s.clone(), sub.clone(), o.clone()));
            }
        }
    });
    let eqp = Term::iri(owl::EQUIVALENT_PROPERTY);
    let subp = Term::iri(rdfs::SUB_PROPERTY_OF);
    g.for_each_match(None, Some(&eqp), None, |t| {
        for (s, o) in [(&t.subject, &t.object), (&t.object, &t.subject)] {
            if !g.has(s, &subp, o) {
                out.push(Triple::new(s.clone(), subp.clone(), o.clone()));
            }
        }
    });
}

fn rule_inverse(g: &Graph, s: &Schema, out: &mut Vec<Triple>) {
    for (p, qs) in &s.inverse {
        g.for_each_match(None, Some(p), None, |t| {
            if !t.object.is_resource() {
                return;
            }
            for q in qs {
                if !g.has(&t.object, q, &t.subject) {
                    out.push(Triple::new(t.object.clone(), q.clone(), t.subject.clone()));
                }
            }
        });
    }
}

fn rule_symmetric(g: &Graph, s: &Schema, out: &mut Vec<Triple>) {
    for p in &s.symmetric {
        g.for_each_match(None, Some(p), None, |t| {
            if t.object.is_resource() && !g.has(&t.object, p, &t.subject) {
                out.push(Triple::new(t.object.clone(), p.clone(), t.subject.clone()));
            }
        });
    }
}

fn rule_transitive(g: &Graph, s: &Schema, out: &mut Vec<Triple>) {
    for p in &s.transitive {
        let mut edges: HashMap<Term, Vec<Term>> = HashMap::new();
        g.for_each_match(None, Some(p), None, |t| {
            edges.entry(t.subject).or_default().push(t.object);
        });
        for (a, bs) in &edges {
            for b in bs {
                if let Some(cs) = edges.get(b) {
                    for c in cs {
                        if c != a && !g.has(a, p, c) {
                            out.push(Triple::new(a.clone(), p.clone(), c.clone()));
                        }
                    }
                }
            }
        }
    }
}

fn rule_functional(g: &Graph, s: &Schema, out: &mut Vec<Triple>) {
    let same = Term::iri(owl::SAME_AS);
    for p in &s.functional {
        let mut by_subject: HashMap<Term, Vec<Term>> = HashMap::new();
        g.for_each_match(None, Some(p), None, |t| {
            if t.object.is_resource() {
                by_subject.entry(t.subject).or_default().push(t.object);
            }
        });
        for objs in by_subject.values() {
            for pair in objs.windows(2) {
                if pair[0] != pair[1] && !g.has(&pair[0], &same, &pair[1]) {
                    out.push(Triple::new(pair[0].clone(), same.clone(), pair[1].clone()));
                }
            }
        }
    }
    for p in &s.inverse_functional {
        let mut by_object: HashMap<Term, Vec<Term>> = HashMap::new();
        g.for_each_match(None, Some(p), None, |t| {
            by_object.entry(t.object).or_default().push(t.subject);
        });
        for subs in by_object.values() {
            for pair in subs.windows(2) {
                if pair[0] != pair[1] && !g.has(&pair[0], &same, &pair[1]) {
                    out.push(Triple::new(pair[0].clone(), same.clone(), pair[1].clone()));
                }
            }
        }
    }
}

fn rule_same_as(g: &Graph, out: &mut Vec<Triple>) {
    let same = Term::iri(owl::SAME_AS);
    // Union-find over sameAs assertions.
    let mut parent: HashMap<Term, Term> = HashMap::new();
    fn find(parent: &mut HashMap<Term, Term>, x: &Term) -> Term {
        let p = parent.get(x).cloned();
        match p {
            None => x.clone(),
            Some(p) if &p == x => x.clone(),
            Some(p) => {
                let root = find(parent, &p);
                parent.insert(x.clone(), root.clone());
                root
            }
        }
    }
    let mut members: HashMap<Term, Vec<Term>> = HashMap::new();
    let mut pairs: Vec<(Term, Term)> = Vec::new();
    g.for_each_match(None, Some(&same), None, |t| {
        if t.object.is_resource() {
            pairs.push((t.subject, t.object));
        }
    });
    if pairs.is_empty() {
        return;
    }
    for (a, b) in &pairs {
        let ra = find(&mut parent, a);
        let rb = find(&mut parent, b);
        if ra != rb {
            parent.insert(ra, rb);
        }
        parent.entry(a.clone()).or_insert_with(|| a.clone());
        parent.entry(b.clone()).or_insert_with(|| b.clone());
    }
    let keys: Vec<Term> = parent.keys().cloned().collect();
    for k in keys {
        let r = find(&mut parent, &k);
        members.entry(r).or_default().push(k);
    }

    for group in members.values() {
        if group.len() < 2 {
            continue;
        }
        // Emit the full sameAs clique (symmetry + transitivity).
        for a in group {
            for b in group {
                if a != b && !g.has(a, &same, b) {
                    out.push(Triple::new(a.clone(), same.clone(), b.clone()));
                }
            }
        }
        // Substitution: every triple mentioning a member holds for all.
        for a in group {
            g.for_each_match(Some(a), None, None, |t| {
                if t.predicate.as_iri() == Some(owl::SAME_AS) {
                    return;
                }
                for b in group {
                    if b != a && !g.has(b, &t.predicate, &t.object) {
                        out.push(Triple::new(
                            b.clone(),
                            t.predicate.clone(),
                            t.object.clone(),
                        ));
                    }
                }
            });
            g.for_each_match(None, None, Some(a), |t| {
                if t.predicate.as_iri() == Some(owl::SAME_AS) {
                    return;
                }
                for b in group {
                    if b != a && !g.has(&t.subject, &t.predicate, b) {
                        out.push(Triple::new(
                            t.subject.clone(),
                            t.predicate.clone(),
                            b.clone(),
                        ));
                    }
                }
            });
        }
    }
}

fn rule_restrictions(g: &Graph, s: &Schema, out: &mut Vec<Triple>) {
    let ty = Term::iri(rdf::TYPE);
    for r in &s.restrictions {
        match &r.kind {
            RKind::HasValue(v) => {
                // x ∈ C (⊑ r) → x p v ; and x p v → x ∈ r.
                for c in r.subclasses.iter().chain(std::iter::once(&r.node)) {
                    g.for_each_match(None, Some(&ty), Some(c), |t| {
                        if !g.has(&t.subject, &r.property, v) {
                            out.push(Triple::new(
                                t.subject.clone(),
                                r.property.clone(),
                                v.clone(),
                            ));
                        }
                    });
                }
                g.for_each_match(None, Some(&r.property), Some(v), |t| {
                    if !g.has(&t.subject, &ty, &r.node) {
                        out.push(Triple::new(t.subject.clone(), ty.clone(), r.node.clone()));
                    }
                });
            }
            RKind::SomeValuesFrom(class) => {
                // x p y ∧ y ∈ D → x ∈ r.
                g.for_each_match(None, Some(&r.property), None, |t| {
                    if t.object.is_resource()
                        && g.has(&t.object, &ty, class)
                        && !g.has(&t.subject, &ty, &r.node)
                    {
                        out.push(Triple::new(t.subject.clone(), ty.clone(), r.node.clone()));
                    }
                });
            }
            RKind::AllValuesFrom(class) => {
                // x ∈ r ∧ x p y → y ∈ D.
                g.for_each_match(None, Some(&ty), Some(&r.node), |t| {
                    for y in g.objects(&t.subject, &r.property) {
                        if y.is_resource() && !g.has(&y, &ty, class) {
                            out.push(Triple::new(y, ty.clone(), class.clone()));
                        }
                    }
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Characteristic, OntologyBuilder, RestrictionKind};

    fn iri(s: &str) -> Term {
        Term::iri(s)
    }
    fn ty() -> Term {
        Term::iri(rdf::TYPE)
    }

    #[test]
    fn subclass_chain_materializes() {
        let mut b = OntologyBuilder::new("urn:t#");
        b.class("A", None);
        b.class("B", Some("A"));
        b.class("C", Some("B"));
        let mut g = b.into_graph();
        g.add(iri("urn:t#x"), ty(), iri("urn:t#C"));
        Reasoner::default().materialize(&mut g);
        assert!(g.has(&iri("urn:t#x"), &ty(), &iri("urn:t#B")));
        assert!(g.has(&iri("urn:t#x"), &ty(), &iri("urn:t#A")));
        assert!(g.has(&iri("urn:t#C"), &iri(rdfs::SUB_CLASS_OF), &iri("urn:t#A")));
    }

    #[test]
    fn subproperty_inheritance() {
        let mut b = OntologyBuilder::new("urn:t#");
        b.object_property("hasMother", None, None);
        b.object_property("hasParent", None, None);
        b.sub_property_of("hasMother", "hasParent");
        let mut g = b.into_graph();
        g.add(iri("urn:t#x"), iri("urn:t#hasMother"), iri("urn:t#m"));
        Reasoner::default().materialize(&mut g);
        assert!(g.has(&iri("urn:t#x"), &iri("urn:t#hasParent"), &iri("urn:t#m")));
    }

    #[test]
    fn domain_and_range_typing() {
        let mut b = OntologyBuilder::new("urn:t#");
        b.class("Person", None);
        b.class("City", None);
        b.object_property("livesIn", Some("Person"), Some("City"));
        let mut g = b.into_graph();
        g.add(iri("urn:t#ann"), iri("urn:t#livesIn"), iri("urn:t#dallas"));
        Reasoner::default().materialize(&mut g);
        assert!(g.has(&iri("urn:t#ann"), &ty(), &iri("urn:t#Person")));
        assert!(g.has(&iri("urn:t#dallas"), &ty(), &iri("urn:t#City")));
    }

    #[test]
    fn datatype_range_does_not_type_literals() {
        let mut b = OntologyBuilder::new("urn:t#");
        b.datatype_property("age", None, Some(grdf_rdf::vocab::xsd::INTEGER));
        let mut g = b.into_graph();
        g.add(iri("urn:t#ann"), iri("urn:t#age"), Term::integer(30));
        let before = g.len();
        Reasoner::default().materialize(&mut g);
        // No rdf:type triples about the literal.
        assert_eq!(
            g.len(),
            before,
            "datatype range must not produce class-membership triples"
        );
    }

    #[test]
    fn inverse_of_fires_both_ways() {
        let mut b = OntologyBuilder::new("urn:t#");
        b.object_property("contains", None, None);
        b.object_property("within", None, None);
        b.inverse_of("contains", "within");
        let mut g = b.into_graph();
        g.add(iri("urn:t#lake"), iri("urn:t#within"), iri("urn:t#park"));
        Reasoner::default().materialize(&mut g);
        assert!(g.has(
            &iri("urn:t#park"),
            &iri("urn:t#contains"),
            &iri("urn:t#lake")
        ));
    }

    #[test]
    fn symmetric_and_transitive() {
        let mut b = OntologyBuilder::new("urn:t#");
        b.object_property("touches", None, None);
        b.characteristic("touches", Characteristic::Symmetric);
        b.object_property("upstreamOf", None, None);
        b.characteristic("upstreamOf", Characteristic::Transitive);
        let mut g = b.into_graph();
        g.add(iri("urn:t#a"), iri("urn:t#touches"), iri("urn:t#b"));
        g.add(iri("urn:t#r1"), iri("urn:t#upstreamOf"), iri("urn:t#r2"));
        g.add(iri("urn:t#r2"), iri("urn:t#upstreamOf"), iri("urn:t#r3"));
        g.add(iri("urn:t#r3"), iri("urn:t#upstreamOf"), iri("urn:t#r4"));
        Reasoner::default().materialize(&mut g);
        assert!(g.has(&iri("urn:t#b"), &iri("urn:t#touches"), &iri("urn:t#a")));
        assert!(g.has(&iri("urn:t#r1"), &iri("urn:t#upstreamOf"), &iri("urn:t#r4")));
    }

    #[test]
    fn functional_property_derives_same_as_and_smushes() {
        let mut b = OntologyBuilder::new("urn:t#");
        b.object_property("hasSiteId", None, None);
        b.characteristic("hasSiteId", Characteristic::InverseFunctional);
        let mut g = b.into_graph();
        // Two records for one chemical site in different datasets.
        g.add(
            iri("urn:t#siteA"),
            iri("urn:t#hasSiteId"),
            iri("urn:t#id4221"),
        );
        g.add(
            iri("urn:t#siteB"),
            iri("urn:t#hasSiteId"),
            iri("urn:t#id4221"),
        );
        g.add(
            iri("urn:t#siteA"),
            iri("urn:t#name"),
            Term::string("NT Energy"),
        );
        Reasoner::default().materialize(&mut g);
        assert!(g.has(&iri("urn:t#siteA"), &iri(owl::SAME_AS), &iri("urn:t#siteB")));
        // Substitution carried the name to the other identifier.
        assert!(g.has(
            &iri("urn:t#siteB"),
            &iri("urn:t#name"),
            &Term::string("NT Energy")
        ));
    }

    #[test]
    fn equivalent_class_gives_mutual_membership() {
        let mut b = OntologyBuilder::new("urn:t#");
        b.class("Stream", None);
        b.class("Creek", None);
        b.equivalent_class("Stream", "Creek");
        let mut g = b.into_graph();
        g.add(iri("urn:t#x"), ty(), iri("urn:t#Creek"));
        Reasoner::default().materialize(&mut g);
        assert!(g.has(&iri("urn:t#x"), &ty(), &iri("urn:t#Stream")));
    }

    #[test]
    fn has_value_restriction_fires_both_directions() {
        let mut b = OntologyBuilder::new("urn:t#");
        b.class("TexasSite", None);
        b.object_property("inState", None, None);
        let r = b.restrict(
            "TexasSite",
            "inState",
            RestrictionKind::HasValue(Term::iri("urn:t#texas")),
        );
        let mut g = b.into_graph();
        g.add(iri("urn:t#s1"), ty(), iri("urn:t#TexasSite"));
        g.add(iri("urn:t#s2"), iri("urn:t#inState"), iri("urn:t#texas"));
        Reasoner::default().materialize(&mut g);
        assert!(g.has(&iri("urn:t#s1"), &iri("urn:t#inState"), &iri("urn:t#texas")));
        assert!(
            g.has(&iri("urn:t#s2"), &ty(), &r),
            "value ⇒ restriction membership"
        );
    }

    #[test]
    fn some_values_from_classifies_subject() {
        let mut b = OntologyBuilder::new("urn:t#");
        b.class("Hazardous", None);
        b.class("Chemical", None);
        b.object_property("stores", None, None);
        let r = b.restrict(
            "Hazardous",
            "stores",
            RestrictionKind::SomeValuesFrom("Chemical".into()),
        );
        let mut g = b.into_graph();
        g.add(iri("urn:t#plant"), iri("urn:t#stores"), iri("urn:t#acid"));
        g.add(iri("urn:t#acid"), ty(), iri("urn:t#Chemical"));
        Reasoner::default().materialize(&mut g);
        assert!(g.has(&iri("urn:t#plant"), &ty(), &r));
    }

    #[test]
    fn all_values_from_types_objects() {
        let mut b = OntologyBuilder::new("urn:t#");
        b.class("StreamNetwork", None);
        b.class("Stream", None);
        b.object_property("hasMember", None, None);
        b.restrict(
            "StreamNetwork",
            "hasMember",
            RestrictionKind::AllValuesFrom("Stream".into()),
        );
        let mut g = b.into_graph();
        g.add(iri("urn:t#net"), ty(), iri("urn:t#StreamNetwork"));
        g.add(iri("urn:t#net"), iri("urn:t#hasMember"), iri("urn:t#s1"));
        Reasoner::default().materialize(&mut g);
        assert!(g.has(&iri("urn:t#s1"), &ty(), &iri("urn:t#Stream")));
    }

    #[test]
    fn rdfs_only_skips_owl_rules() {
        let mut b = OntologyBuilder::new("urn:t#");
        b.object_property("touches", None, None);
        b.characteristic("touches", Characteristic::Symmetric);
        let mut g = b.into_graph();
        g.add(iri("urn:t#a"), iri("urn:t#touches"), iri("urn:t#b"));
        Reasoner::rdfs_only().materialize(&mut g);
        assert!(!g.has(&iri("urn:t#b"), &iri("urn:t#touches"), &iri("urn:t#a")));
    }

    #[test]
    fn materialization_is_idempotent() {
        let mut b = OntologyBuilder::new("urn:t#");
        b.class("A", None);
        b.class("B", Some("A"));
        let mut g = b.into_graph();
        g.add(iri("urn:t#x"), ty(), iri("urn:t#B"));
        let first = Reasoner::default().materialize(&mut g);
        assert!(first.inferred > 0);
        let second = Reasoner::default().materialize(&mut g);
        assert_eq!(second.inferred, 0, "second run must be a no-op");
        assert_eq!(second.passes, 1);
    }

    #[test]
    fn fixpoint_terminates_on_cyclic_schema() {
        let mut g = Graph::new();
        // A ⊑ B ⊑ C ⊑ A (legal, means equivalence).
        let sub = Term::iri(rdfs::SUB_CLASS_OF);
        g.add(iri("urn:t#A"), sub.clone(), iri("urn:t#B"));
        g.add(iri("urn:t#B"), sub.clone(), iri("urn:t#C"));
        g.add(iri("urn:t#C"), sub.clone(), iri("urn:t#A"));
        g.add(iri("urn:t#x"), ty(), iri("urn:t#A"));
        let stats = Reasoner::default().materialize(&mut g);
        assert!(stats.passes < 10);
        assert!(g.has(&iri("urn:t#x"), &ty(), &iri("urn:t#C")));
    }

    #[test]
    fn intersection_class_membership_both_ways() {
        let mut b = OntologyBuilder::new("urn:t#");
        b.class("Hazardous", None);
        b.class("Riverside", None);
        b.intersection_class("HazardousRiverside", &["Hazardous", "Riverside"]);
        let mut g = b.into_graph();
        g.add(iri("urn:t#p1"), ty(), iri("urn:t#Hazardous"));
        g.add(iri("urn:t#p1"), ty(), iri("urn:t#Riverside"));
        g.add(iri("urn:t#p2"), ty(), iri("urn:t#Hazardous")); // only one part
        g.add(iri("urn:t#p3"), ty(), iri("urn:t#HazardousRiverside")); // asserted directly
        Reasoner::default().materialize(&mut g);
        assert!(g.has(&iri("urn:t#p1"), &ty(), &iri("urn:t#HazardousRiverside")));
        assert!(!g.has(&iri("urn:t#p2"), &ty(), &iri("urn:t#HazardousRiverside")));
        // Direction 2: direct members belong to every part.
        assert!(g.has(&iri("urn:t#p3"), &ty(), &iri("urn:t#Hazardous")));
        assert!(g.has(&iri("urn:t#p3"), &ty(), &iri("urn:t#Riverside")));
    }

    #[test]
    fn union_class_membership() {
        let mut b = OntologyBuilder::new("urn:t#");
        b.class("Stream", None);
        b.class("Lake", None);
        b.union_class("WaterBody", &["Stream", "Lake"]);
        let mut g = b.into_graph();
        g.add(iri("urn:t#creek"), ty(), iri("urn:t#Stream"));
        g.add(iri("urn:t#pond"), ty(), iri("urn:t#Lake"));
        g.add(iri("urn:t#rock"), ty(), iri("urn:t#Other"));
        Reasoner::default().materialize(&mut g);
        assert!(g.has(&iri("urn:t#creek"), &ty(), &iri("urn:t#WaterBody")));
        assert!(g.has(&iri("urn:t#pond"), &ty(), &iri("urn:t#WaterBody")));
        assert!(!g.has(&iri("urn:t#rock"), &ty(), &iri("urn:t#WaterBody")));
    }

    #[test]
    fn union_interacts_with_subclass_rules() {
        // WaterBody = Stream ∪ Lake, and WaterBody ⊑ Feature.
        let mut b = OntologyBuilder::new("urn:t#");
        b.class("Stream", None);
        b.class("Lake", None);
        b.class("Feature", None);
        b.union_class("WaterBody", &["Stream", "Lake"]);
        b.sub_class_of("WaterBody", "Feature");
        let mut g = b.into_graph();
        g.add(iri("urn:t#creek"), ty(), iri("urn:t#Stream"));
        Reasoner::default().materialize(&mut g);
        assert!(g.has(&iri("urn:t#creek"), &ty(), &iri("urn:t#Feature")));
    }

    #[test]
    fn same_as_clique_closure() {
        let mut g = Graph::new();
        let same = Term::iri(owl::SAME_AS);
        g.add(iri("urn:a"), same.clone(), iri("urn:b"));
        g.add(iri("urn:b"), same.clone(), iri("urn:c"));
        Reasoner::default().materialize(&mut g);
        assert!(g.has(&iri("urn:c"), &same, &iri("urn:a")));
        assert!(g.has(&iri("urn:a"), &same, &iri("urn:c")));
        assert!(g.has(&iri("urn:b"), &same, &iri("urn:a")));
    }
}
