//! Forward-chaining materialization of the RDFS + OWL-Horst rule subset.
//!
//! The reasoner repeatedly applies entailment rules until a fixpoint and
//! inserts every derived triple into the graph ("materialization"), so that
//! downstream query answering is a plain pattern match. This is the
//! "logical inference" capability the paper claims as GRDF's main advantage
//! over GML (§1, §9).
//!
//! Two evaluation strategies compute the same fixpoint:
//!
//! * [`Strategy::Naive`] — every pass re-joins *full × full*: all rules
//!   scan the entire graph, and [`Schema`] is re-collected from scratch.
//!   Kept as the reference engine (and a benchmark baseline).
//! * [`Strategy::SemiNaive`] (default) — pass 1 seeds a *delta* with the
//!   whole graph; each later pass joins only *delta × full*, where the
//!   delta is exactly the triples the previous pass derived. The schema
//!   index is maintained incrementally by absorbing each delta instead of
//!   being re-collected, and the delta can be sharded across a scoped
//!   worker pool ([`Reasoner::shards`]) with a deterministic shard-order
//!   merge, so the result is the same triple set as the sequential and
//!   naive engines.
//!
//! The semi-naive engine also powers [`Reasoner::materialize_delta`]:
//! given a generation marker from [`Graph::generation`], it derives the
//! consequences of just the triples inserted since — the primitive behind
//! incremental G-SACS updates.
//!
//! Rule coverage:
//!
//! | group | rules |
//! |-------|-------|
//! | RDFS  | subClassOf/subPropertyOf transitivity, type inheritance, property inheritance, `rdfs:domain`, `rdfs:range` |
//! | OWL   | `inverseOf`, `SymmetricProperty`, `TransitiveProperty`, `FunctionalProperty` → `sameAs`, `InverseFunctionalProperty` → `sameAs`, `equivalentClass`/`equivalentProperty`, `sameAs` closure + substitution |
//! | Restrictions | `hasValue` (both directions), `someValuesFrom`, `allValuesFrom` |

use std::collections::{HashMap, HashSet};

use grdf_rdf::graph::{Graph, TermId};
use grdf_rdf::term::{Term, Triple};
use grdf_rdf::vocab::{owl, rdf, rdfs};
use grdf_runtime::{Deadline, DeadlineExceeded, ShardPool};

/// Statistics from one materialization run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReasonerStats {
    /// Number of fixpoint passes executed.
    pub passes: usize,
    /// Triples added by inference.
    pub inferred: usize,
    /// Triples *consumed* as the delta of each pass. For the semi-naive
    /// engine this is the seed size followed by each pass's fresh
    /// derivations; for the naive engine it is the full graph size at the
    /// start of every pass — the gap between the two is the work the
    /// delta-driven engine avoids.
    pub delta_sizes: Vec<usize>,
}

/// How the fixpoint is evaluated. Both strategies produce the same triple
/// set; they differ only in how much work each pass re-does.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Strategy {
    /// Re-join full × full every pass (reference engine).
    Naive,
    /// Join delta × full; only newly derived triples are re-examined.
    #[default]
    SemiNaive,
}

/// Configurable forward-chaining reasoner.
#[derive(Debug, Clone, Copy)]
pub struct Reasoner {
    /// Apply the RDFS rule group.
    pub rdfs: bool,
    /// Apply the OWL property-semantics rule group.
    pub owl: bool,
    /// Apply restriction-class rules (`hasValue`, `someValuesFrom`,
    /// `allValuesFrom`).
    pub restrictions: bool,
    /// Safety valve for the fixpoint loop.
    pub max_passes: usize,
    /// Evaluation strategy.
    pub strategy: Strategy,
    /// Worker width for the semi-naive delta pass (1 = sequential). The
    /// delta is split into contiguous shards and merged in shard order, so
    /// any width yields the same triple set.
    pub shards: usize,
    /// Adaptive-sharding fallback: passes whose delta is smaller than
    /// this run inline even when `shards > 1` (see
    /// [`PARALLEL_THRESHOLD`], the default).
    pub parallel_threshold: usize,
}

impl Default for Reasoner {
    fn default() -> Self {
        Reasoner {
            rdfs: true,
            owl: true,
            restrictions: true,
            max_passes: 64,
            strategy: Strategy::SemiNaive,
            shards: 1,
            parallel_threshold: PARALLEL_THRESHOLD,
        }
    }
}

/// Below this many delta triples a pass runs inline even when
/// [`Reasoner::shards`] asks for parallelism — thread setup plus the
/// per-shard predicate sort would cost more than the pass itself. The
/// predicate-grouped columnar pass pushed the break-even point far past
/// the old per-triple dispatch's: on the BTree core, sharding the
/// 1000×1000 E6 seed pass won 3× (78 ms vs 247 ms); on columnar runs the
/// same pass is already ~20 ms serial and a 4-way shard measures 0.94–
/// 1.02× of it — pure noise around a tie, with the setup/merge overhead
/// no longer amortized. The break-even now sits above every recorded
/// scenario (largest seed delta ~430 K), so the default threshold parks
/// just past that: a parallel reasoner runs the identical inline pass on
/// all of them instead of gambling a few percent on thread overhead.
/// [`Reasoner::parallel_threshold`] overrides it (tests force tiny
/// thresholds to exercise the sharded path).
const PARALLEL_THRESHOLD: usize = 512 * 1024;

/// How often each shard polls the request deadline.
const DEADLINE_POLL_STRIDE: usize = 256;

/// How the semi-naive loop is seeded.
enum Seed {
    /// Pass 1 consumes the whole graph (full materialization).
    Full,
    /// Pass 1 consumes the triples inserted since this generation marker
    /// (incremental update of an already-materialized graph).
    Since(u64),
}

impl Reasoner {
    /// RDFS-only configuration (ablation arm).
    pub fn rdfs_only() -> Reasoner {
        Reasoner {
            rdfs: true,
            owl: false,
            restrictions: false,
            ..Reasoner::default()
        }
    }

    /// The reference full × full engine (benchmark baseline).
    pub fn naive() -> Reasoner {
        Reasoner {
            strategy: Strategy::Naive,
            ..Reasoner::default()
        }
    }

    /// Semi-naive engine with `shards` parallel delta workers.
    pub fn parallel(shards: usize) -> Reasoner {
        Reasoner {
            shards: shards.max(1),
            ..Reasoner::default()
        }
    }

    /// Materialize all entailments into `graph`; returns statistics.
    pub fn materialize(&self, graph: &mut Graph) -> ReasonerStats {
        self.materialize_with_deadline(graph, &Deadline::never())
            .expect("a never-expiring deadline cannot interrupt the fixpoint")
    }

    /// Materialize under a cooperative deadline, polled once per fixpoint
    /// pass (and once per [`DEADLINE_POLL_STRIDE`] delta triples inside
    /// each shard). On expiry the graph is left with whatever entailments
    /// the completed passes added (each pass only adds sound inferences,
    /// so the graph stays consistent — merely under-materialized) and the
    /// caller decides how to degrade.
    pub fn materialize_with_deadline(
        &self,
        graph: &mut Graph,
        deadline: &Deadline,
    ) -> Result<ReasonerStats, DeadlineExceeded> {
        match self.strategy {
            Strategy::Naive => self.materialize_naive(graph, deadline),
            Strategy::SemiNaive => self.run_semi_naive(graph, &Seed::Full, deadline),
        }
    }

    /// Derive the consequences of just the triples inserted since
    /// `from_generation` (a marker from [`Graph::generation`] taken when
    /// the graph was last fully materialized). Always uses the semi-naive
    /// engine — incremental maintenance *is* delta evaluation with a
    /// smaller seed. Sound and complete for additions only: retracting a
    /// triple requires a full re-materialization.
    pub fn materialize_delta(
        &self,
        graph: &mut Graph,
        from_generation: u64,
        deadline: &Deadline,
    ) -> Result<ReasonerStats, DeadlineExceeded> {
        self.run_semi_naive(graph, &Seed::Since(from_generation), deadline)
    }

    // ------------------------------------------------------------------
    // Naive engine (reference)
    // ------------------------------------------------------------------

    fn materialize_naive(
        &self,
        graph: &mut Graph,
        deadline: &Deadline,
    ) -> Result<ReasonerStats, DeadlineExceeded> {
        let mut stats = ReasonerStats::default();
        loop {
            deadline.check()?;
            stats.passes += 1;
            stats.delta_sizes.push(graph.len());
            let span = grdf_obs::span("reasoner.pass").tag("pass", stats.passes);
            let additions = self.one_pass(graph);
            // Absorb as one batch and leave the graph compacted: the
            // naive engine rescans everything next pass, so one sorted
            // merge now beats per-triple inserts plus merge-on-read for
            // the rest of the fixpoint.
            let added = graph.extend_triples_compacting(additions);
            drop(span.tag("inferred", added));
            stats.inferred += added;
            if added == 0 || stats.passes >= self.max_passes {
                grdf_obs::add("reasoner.passes", stats.passes as u64);
                grdf_obs::add("reasoner.inferred", stats.inferred as u64);
                return Ok(stats);
            }
        }
    }

    fn one_pass(&self, g: &Graph) -> Vec<Triple> {
        let mut out: Vec<Triple> = Vec::new();
        let schema = Schema::collect(g);

        // Count each rule's proposals (pre-dedup) under
        // `reasoner.rule.<name>` so decision traces and `grdf-cli trace`
        // can attribute fixpoint work to individual rules.
        macro_rules! rule {
            ($name:literal, $call:expr) => {{
                let before = out.len();
                $call;
                grdf_obs::add(
                    concat!("reasoner.rule.", $name),
                    (out.len() - before) as u64,
                );
            }};
        }

        if self.rdfs {
            rule!(
                "subclass_transitivity",
                rule_subclass_transitivity(g, &mut out)
            );
            rule!(
                "type_inheritance",
                rule_type_inheritance(g, &schema, &mut out)
            );
            rule!(
                "subproperty_transitivity",
                rule_subproperty_transitivity(g, &mut out)
            );
            rule!(
                "property_inheritance",
                rule_property_inheritance(g, &schema, &mut out)
            );
            rule!("domain_range", rule_domain_range(g, &schema, &mut out));
        }
        if self.owl {
            rule!("equivalences", rule_equivalences(g, &mut out));
            rule!("inverse", rule_inverse(g, &schema, &mut out));
            rule!("symmetric", rule_symmetric(g, &schema, &mut out));
            rule!("transitive", rule_transitive(g, &schema, &mut out));
            rule!("functional", rule_functional(g, &schema, &mut out));
            rule!("same_as", rule_same_as(g, &mut out));
        }
        if self.restrictions {
            rule!("restrictions", rule_restrictions(g, &schema, &mut out));
        }
        if self.owl {
            rule!("boolean_classes", rule_boolean_classes(g, &mut out));
        }
        out
    }

    // ------------------------------------------------------------------
    // Semi-naive engine
    // ------------------------------------------------------------------

    fn run_semi_naive(
        &self,
        graph: &mut Graph,
        seed: &Seed,
        deadline: &Deadline,
    ) -> Result<ReasonerStats, DeadlineExceeded> {
        let mut stats = ReasonerStats::default();
        // The whole fixpoint runs in interned-id space: the seed is a copy
        // of the graph's id log, rule joins dispatch on pre-resolved
        // vocabulary ids, and proposals are id tuples merged without
        // re-interning. Terms are only touched by the clique-global rules.
        let voc = Voc::resolve(graph);
        let mut schema = IdSchema::default();
        let (mut delta, mut triggers) = match seed {
            Seed::Full => {
                // Seed straight off the POS columns: the bulk first pass
                // arrives predicate-grouped, so the sharded rule pass
                // dispatches per group without re-sorting ~the whole
                // graph. (Insertion order is irrelevant here — only
                // incremental seeds are log slices.)
                let delta = graph.ids_by_predicate();
                let triggers = schema.absorb(graph, &voc, &delta);
                (delta, triggers)
            }
            Seed::Since(generation) => {
                let delta = graph.delta_ids_since(*generation);
                if delta.is_empty() {
                    return Ok(stats);
                }
                // The schema must cover the *whole* graph (rules consult
                // declarations made long before the delta), but only the
                // delta decides which clique-global rules need to run.
                let all = graph.delta_ids_since(0);
                schema.absorb(graph, &voc, &all);
                let triggers = schema.triggers_for(graph, &voc, &delta);
                (delta, triggers)
            }
        };
        let pool = ShardPool::new(self.shards);
        grdf_obs::gauge_set("reasoner.shards", pool.workers() as i64);
        // Restriction lookup tables depend only on the schema's
        // restriction list, which changes exactly when an absorb reports
        // dirty restrictions — rebuild them on that signal instead of
        // every pass (the build is a fixed per-pass cost that dominates
        // at small fixpoints).
        let mut maps = IdRestrictionMaps::build(&schema);
        loop {
            deadline.check()?;
            stats.passes += 1;
            stats.delta_sizes.push(delta.len());
            grdf_obs::observe("reasoner.delta.size", delta.len() as u64);
            let span = grdf_obs::span("reasoner.pass")
                .tag("pass", stats.passes)
                .tag("delta", delta.len());
            // Delta × full joins, sharded; merged in shard order so the
            // proposal sequence is identical at any worker width.
            let g: &Graph = graph;
            let sharded: Vec<(Vec<IdTriple>, RuleCounts)> =
                if pool.workers() > 1 && delta.len() >= self.parallel_threshold {
                    pool.map_shards(&delta, |_, chunk| {
                        self.delta_pass(g, &voc, &schema, &maps, chunk, deadline)
                    })?
                } else {
                    vec![self.delta_pass(g, &voc, &schema, &maps, &delta, deadline)?]
                };
            let mut proposals: Vec<IdTriple> = Vec::new();
            let mut counts = RuleCounts::default();
            for (chunk_out, chunk_counts) in sharded {
                proposals.extend(chunk_out);
                counts.merge(&chunk_counts);
            }

            // Clique-global rules can't be expressed as a join against one
            // delta triple; they run sequentially in term space, gated by
            // triggers the schema absorption detected in this delta. Their
            // output terms all occur in the graph already, so the extra
            // extend below interns nothing new.
            let mut global_proposals: Vec<Triple> = Vec::new();
            if self.owl && triggers.same_as {
                let before = proposals.len();
                rule_same_as_ids(graph, &voc, &mut proposals);
                counts.same_as += (proposals.len() - before) as u64;
            }
            if self.restrictions && !triggers.dirty_restrictions.is_empty() {
                let before = global_proposals.len();
                for &i in &triggers.dirty_restrictions {
                    apply_restriction(graph, &schema.restrictions[i], &mut global_proposals);
                }
                counts.restrictions += (global_proposals.len() - before) as u64;
            }
            if self.owl && triggers.boolean {
                let before = global_proposals.len();
                rule_boolean_classes(graph, &mut global_proposals);
                counts.boolean_classes += (global_proposals.len() - before) as u64;
            }
            counts.emit();

            let mark = graph.generation();
            let mut added = graph.extend_ids(proposals);
            if !global_proposals.is_empty() {
                added += graph.extend_triples(global_proposals);
            }
            drop(span.tag("inferred", added));
            stats.inferred += added;
            if added == 0 || stats.passes >= self.max_passes {
                grdf_obs::add("reasoner.passes", stats.passes as u64);
                grdf_obs::add("reasoner.inferred", stats.inferred as u64);
                return Ok(stats);
            }
            delta = graph.delta_ids_since(mark);
            triggers = schema.absorb(graph, &voc, &delta);
            if !triggers.dirty_restrictions.is_empty() {
                maps = IdRestrictionMaps::build(&schema);
            }
        }
    }

    /// Apply every delta-aware rule variant to one shard of the delta.
    /// Each delta triple is already *in* the graph, so joining it against
    /// the full graph also covers delta × delta pairs. Runs entirely in
    /// interned-id space.
    ///
    /// The shard is processed as predicate-grouped column batches: the
    /// chunk is sorted by predicate once, then each group pays for
    /// vocabulary comparisons and the schema lookup exactly once, and a
    /// group whose predicate carries no rule at all — the common case on
    /// the bulk first pass, where most triples are plain data — is
    /// skipped in O(1) without touching its members.
    fn delta_pass(
        &self,
        g: &Graph,
        voc: &Voc,
        s: &IdSchema,
        maps: &IdRestrictionMaps,
        chunk: &[IdTriple],
        deadline: &Deadline,
    ) -> Result<(Vec<IdTriple>, RuleCounts), DeadlineExceeded> {
        let mut out: Vec<IdTriple> = Vec::new();
        let mut c = RuleCounts::default();
        // Bulk seeds come off the POS index already grouped (and each
        // shard of a grouped delta is itself grouped) — detect that with
        // one linear scan and skip the copy + sort entirely.
        let owned: Vec<IdTriple>;
        let sorted: &[IdTriple] = if chunk.windows(2).all(|w| w[0].1 <= w[1].1) {
            chunk
        } else {
            let mut v = chunk.to_vec();
            v.sort_unstable_by_key(|&(_, p, _)| p);
            owned = v;
            &owned
        };
        let mut i = 0;
        while i < sorted.len() {
            let tp = sorted[i].1;
            let mut j = i + 1;
            while j < sorted.len() && sorted[j].1 == tp {
                j += 1;
            }
            self.delta_group(
                g,
                voc,
                s,
                maps,
                tp,
                &sorted[i..j],
                &mut out,
                &mut c,
                deadline,
            )?;
            i = j;
        }
        Ok((out, c))
    }

    /// One predicate group of a delta shard. `tp` is the group's shared
    /// predicate; `group` are its `(s, tp, o)` triples.
    #[allow(clippy::cognitive_complexity, clippy::too_many_arguments)]
    fn delta_group(
        &self,
        g: &Graph,
        voc: &Voc,
        s: &IdSchema,
        maps: &IdRestrictionMaps,
        tp: TermId,
        group: &[IdTriple],
        out: &mut Vec<IdTriple>,
        c: &mut RuleCounts,
        deadline: &Deadline,
    ) -> Result<(), DeadlineExceeded> {
        let pe = s.pred(tp);
        // Applicability gate, evaluated once per group.
        let vocab_rdfs = self.rdfs
            && (tp == voc.sub_class
                || tp == voc.sub_prop
                || tp == voc.domain
                || tp == voc.range
                || tp == voc.ty);
        let vocab_owl = self.owl
            && (tp == voc.equiv_class
                || tp == voc.equiv_prop
                || tp == voc.inverse_of
                || tp == voc.ty);
        let pe_rdfs = self.rdfs
            && pe.is_some_and(|pe| {
                !pe.supers.is_empty() || !pe.domains.is_empty() || !pe.ranges.is_empty()
            });
        let pe_owl = self.owl
            && pe.is_some_and(|pe| {
                !pe.inverses.is_empty()
                    || pe.flags & (SYMMETRIC | TRANSITIVE | FUNCTIONAL | INVERSE_FUNCTIONAL) != 0
            });
        let restr = self.restrictions
            && (tp == voc.ty || !IdRestrictionMaps::get(&maps.by_prop, tp).is_empty());
        if !vocab_rdfs && !vocab_owl && !pe_rdfs && !pe_owl && !restr {
            deadline.check()?;
            return Ok(());
        }

        macro_rules! counted {
            ($field:ident, $body:expr) => {{
                let before = out.len();
                $body;
                c.$field += (out.len() - before) as u64;
            }};
        }

        for (i, &(ts, _, to)) in group.iter().enumerate() {
            if i % DEADLINE_POLL_STRIDE == 0 {
                deadline.check()?;
            }

            if self.rdfs {
                if tp == voc.sub_class {
                    counted!(
                        subclass_transitivity,
                        delta_transitivity_ids(g, voc.sub_class, ts, to, out)
                    );
                    // Declaration side of type inheritance: existing
                    // members of the new subclass gain the superclass.
                    counted!(type_inheritance, {
                        g.for_each_match_ids(None, Some(voc.ty), Some(ts), |x, _, _| {
                            out.push((x, voc.ty, to));
                        });
                    });
                } else if tp == voc.sub_prop {
                    counted!(
                        subproperty_transitivity,
                        delta_transitivity_ids(g, voc.sub_prop, ts, to, out)
                    );
                    counted!(property_inheritance, {
                        g.for_each_match_ids(None, Some(ts), None, |ms, _, mo| {
                            out.push((ms, to, mo));
                        });
                    });
                } else if tp == voc.domain {
                    counted!(domain_range, {
                        g.for_each_match_ids(None, Some(ts), None, |ms, _, _| {
                            out.push((ms, voc.ty, to));
                        });
                    });
                } else if tp == voc.range {
                    counted!(domain_range, {
                        if !is_xsd_class(g.term_of(to)) {
                            g.for_each_match_ids(None, Some(ts), None, |_, _, mo| {
                                if g.term_of(mo).is_resource() {
                                    out.push((mo, voc.ty, to));
                                }
                            });
                        }
                    });
                } else if tp == voc.ty {
                    counted!(type_inheritance, {
                        for &sup in s.class_supers(to) {
                            out.push((ts, voc.ty, sup));
                        }
                    });
                }
                // Instance side: the predicate may carry RDFS declarations.
                if let Some(pe) = pe {
                    counted!(property_inheritance, {
                        for &q in &pe.supers {
                            out.push((ts, q, to));
                        }
                    });
                    counted!(domain_range, {
                        for &class in &pe.domains {
                            out.push((ts, voc.ty, class));
                        }
                    });
                    if !pe.ranges.is_empty() && g.term_of(to).is_resource() {
                        counted!(domain_range, {
                            for &class in &pe.ranges {
                                // Datatype ranges aren't class memberships.
                                if is_xsd_class(g.term_of(class)) {
                                    continue;
                                }
                                out.push((to, voc.ty, class));
                            }
                        });
                    }
                }
            }

            if self.owl {
                if tp == voc.equiv_class {
                    counted!(equivalences, {
                        for (a, b) in [(ts, to), (to, ts)] {
                            if g.term_of(b).is_resource() {
                                out.push((a, voc.sub_class, b));
                            }
                        }
                    });
                } else if tp == voc.equiv_prop {
                    counted!(equivalences, {
                        for (a, b) in [(ts, to), (to, ts)] {
                            out.push((a, voc.sub_prop, b));
                        }
                    });
                } else if tp == voc.inverse_of {
                    counted!(inverse, {
                        inverse_over_ids(g, ts, to, out);
                        inverse_over_ids(g, to, ts, out);
                    });
                } else if tp == voc.ty {
                    // A property characteristic arriving in the delta
                    // re-evaluates that one property over the full graph.
                    if to == voc.symmetric {
                        counted!(symmetric, symmetric_over_ids(g, ts, out));
                    } else if to == voc.transitive {
                        counted!(transitive, transitivity_over_ids(g, ts, out));
                    } else if to == voc.functional {
                        counted!(functional, functional_over_ids(g, voc, ts, out));
                    } else if to == voc.inverse_functional {
                        counted!(functional, inverse_functional_over_ids(g, voc, ts, out));
                    }
                }
                // Instance side: the predicate may carry OWL semantics.
                if let Some(pe) = pe {
                    if !pe.inverses.is_empty() && g.term_of(to).is_resource() {
                        counted!(inverse, {
                            for &q in &pe.inverses {
                                out.push((to, q, ts));
                            }
                        });
                    }
                    if pe.flags & SYMMETRIC != 0 && g.term_of(to).is_resource() {
                        counted!(symmetric, {
                            out.push((to, tp, ts));
                        });
                    }
                    if pe.flags & TRANSITIVE != 0 {
                        counted!(transitive, delta_transitivity_ids(g, tp, ts, to, out));
                    }
                    if pe.flags & FUNCTIONAL != 0 && g.term_of(to).is_resource() {
                        counted!(functional, {
                            let mut objs: Vec<TermId> = Vec::new();
                            g.for_each_match_ids(Some(ts), Some(tp), None, |_, _, y| {
                                if g.term_of(y).is_resource() {
                                    objs.push(y);
                                }
                            });
                            for pair in objs.windows(2) {
                                if pair[0] != pair[1] {
                                    out.push((pair[0], voc.same, pair[1]));
                                }
                            }
                        });
                    }
                    if pe.flags & INVERSE_FUNCTIONAL != 0 {
                        counted!(functional, {
                            let mut subs: Vec<TermId> = Vec::new();
                            g.for_each_match_ids(None, Some(tp), Some(to), |x, _, _| {
                                subs.push(x);
                            });
                            for pair in subs.windows(2) {
                                if pair[0] != pair[1] {
                                    out.push((pair[0], voc.same, pair[1]));
                                }
                            }
                        });
                    }
                }
            }

            if self.restrictions {
                if tp == voc.ty {
                    let idxs = IdRestrictionMaps::get(&maps.by_class, to);
                    if !idxs.is_empty() {
                        counted!(restrictions, {
                            for &ri in idxs {
                                let r = &s.id_restrictions[ri];
                                match r.kind {
                                    IdRKind::HasValue(v) => {
                                        out.push((ts, r.property, v));
                                    }
                                    IdRKind::AllValuesFrom(class) => {
                                        g.for_each_match_ids(
                                            Some(ts),
                                            Some(r.property),
                                            None,
                                            |_, _, y| {
                                                if g.term_of(y).is_resource() {
                                                    out.push((y, voc.ty, class));
                                                }
                                            },
                                        );
                                    }
                                    IdRKind::SomeValuesFrom(_) => {}
                                }
                            }
                        });
                    }
                    let idxs = IdRestrictionMaps::get(&maps.by_svf_class, to);
                    if !idxs.is_empty() {
                        counted!(restrictions, {
                            for &ri in idxs {
                                let r = &s.id_restrictions[ri];
                                g.for_each_match_ids(
                                    None,
                                    Some(r.property),
                                    Some(ts),
                                    |x, _, _| {
                                        out.push((x, voc.ty, r.node));
                                    },
                                );
                            }
                        });
                    }
                }
                let idxs = IdRestrictionMaps::get(&maps.by_prop, tp);
                if !idxs.is_empty() {
                    counted!(restrictions, {
                        for &ri in idxs {
                            let r = &s.id_restrictions[ri];
                            match r.kind {
                                IdRKind::HasValue(v) => {
                                    if to == v {
                                        out.push((ts, voc.ty, r.node));
                                    }
                                }
                                IdRKind::SomeValuesFrom(class) => {
                                    if g.term_of(to).is_resource() && g.has_ids(to, voc.ty, class) {
                                        out.push((ts, voc.ty, r.node));
                                    }
                                }
                                IdRKind::AllValuesFrom(class) => {
                                    if g.term_of(to).is_resource() && g.has_ids(ts, voc.ty, r.node)
                                    {
                                        out.push((to, voc.ty, class));
                                    }
                                }
                            }
                        }
                    });
                }
            }
        }
        Ok(())
    }
}

/// Per-rule proposal counts from one pass of the semi-naive engine,
/// mirroring the naive engine's `reasoner.rule.<name>` counters.
#[derive(Debug, Default, Clone, Copy)]
struct RuleCounts {
    subclass_transitivity: u64,
    type_inheritance: u64,
    subproperty_transitivity: u64,
    property_inheritance: u64,
    domain_range: u64,
    equivalences: u64,
    inverse: u64,
    symmetric: u64,
    transitive: u64,
    functional: u64,
    same_as: u64,
    restrictions: u64,
    boolean_classes: u64,
}

impl RuleCounts {
    fn entries(&self) -> [(&'static str, u64); 13] {
        [
            (
                "reasoner.rule.subclass_transitivity",
                self.subclass_transitivity,
            ),
            ("reasoner.rule.type_inheritance", self.type_inheritance),
            (
                "reasoner.rule.subproperty_transitivity",
                self.subproperty_transitivity,
            ),
            (
                "reasoner.rule.property_inheritance",
                self.property_inheritance,
            ),
            ("reasoner.rule.domain_range", self.domain_range),
            ("reasoner.rule.equivalences", self.equivalences),
            ("reasoner.rule.inverse", self.inverse),
            ("reasoner.rule.symmetric", self.symmetric),
            ("reasoner.rule.transitive", self.transitive),
            ("reasoner.rule.functional", self.functional),
            ("reasoner.rule.same_as", self.same_as),
            ("reasoner.rule.restrictions", self.restrictions),
            ("reasoner.rule.boolean_classes", self.boolean_classes),
        ]
    }

    fn merge(&mut self, other: &RuleCounts) {
        for (mine, theirs) in [
            (&mut self.subclass_transitivity, other.subclass_transitivity),
            (&mut self.type_inheritance, other.type_inheritance),
            (
                &mut self.subproperty_transitivity,
                other.subproperty_transitivity,
            ),
            (&mut self.property_inheritance, other.property_inheritance),
            (&mut self.domain_range, other.domain_range),
            (&mut self.equivalences, other.equivalences),
            (&mut self.inverse, other.inverse),
            (&mut self.symmetric, other.symmetric),
            (&mut self.transitive, other.transitive),
            (&mut self.functional, other.functional),
            (&mut self.same_as, other.same_as),
            (&mut self.restrictions, other.restrictions),
            (&mut self.boolean_classes, other.boolean_classes),
        ] {
            *mine += theirs;
        }
    }

    fn emit(&self) {
        for (name, v) in self.entries() {
            if v > 0 {
                grdf_obs::add(name, v);
            }
        }
    }
}

/// `owl:intersectionOf` / `owl:unionOf` semantics:
///
/// * intersection: members of every part are members of the intersection
///   class, and vice versa (the class entails membership in every part —
///   which also makes parts behave as superclasses);
/// * union: members of any part are members of the union class.
fn rule_boolean_classes(g: &Graph, out: &mut Vec<Triple>) {
    let ty = Term::iri(rdf::TYPE);
    g.for_each_match(None, Some(&Term::iri(owl::INTERSECTION_OF)), None, |decl| {
        let class = decl.subject;
        let Some(parts) = g.read_list(&decl.object) else {
            return;
        };
        if parts.is_empty() {
            return;
        }
        // x ∈ all parts ⇒ x ∈ class.
        for candidate in g.subjects(&ty, &parts[0]) {
            if parts[1..].iter().all(|p| g.has(&candidate, &ty, p))
                && !g.has(&candidate, &ty, &class)
            {
                out.push(Triple::new(candidate, ty.clone(), class.clone()));
            }
        }
        // x ∈ class ⇒ x ∈ every part.
        g.for_each_match(None, Some(&ty), Some(&class), |t| {
            for p in &parts {
                if !g.has(&t.subject, &ty, p) {
                    out.push(Triple::new(t.subject.clone(), ty.clone(), p.clone()));
                }
            }
        });
    });
    g.for_each_match(None, Some(&Term::iri(owl::UNION_OF)), None, |decl| {
        let class = decl.subject;
        let Some(parts) = g.read_list(&decl.object) else {
            return;
        };
        for p in &parts {
            g.for_each_match(None, Some(&ty), Some(p), |t| {
                if !g.has(&t.subject, &ty, &class) {
                    out.push(Triple::new(t.subject.clone(), ty.clone(), class.clone()));
                }
            });
        }
    });
}

/// Clique-global rules the delta pass cannot run per-triple; detected per
/// delta during schema absorption.
#[derive(Debug, Default)]
struct Triggers {
    /// The delta asserted a `sameAs` pair or touched a term already in a
    /// `sameAs` clique: re-run the union-find + substitution rule.
    same_as: bool,
    /// The delta touched an `intersectionOf`/`unionOf` declaration, a
    /// list cell, or a membership in a boolean class or one of its parts.
    boolean: bool,
    /// Restrictions whose declarations changed in this delta; each gets a
    /// full (per-restriction) re-evaluation next pass.
    dirty_restrictions: Vec<usize>,
}

/// Schema triples indexed for fast rule application by the naive engine,
/// which re-collects this from scratch every pass. The semi-naive engine
/// maintains the id-keyed [`IdSchema`] incrementally instead.
#[derive(Default)]
struct Schema {
    /// subclass → superclasses (direct).
    sub_class: HashMap<Term, Vec<Term>>,
    /// subproperty → superproperties (direct).
    sub_prop: HashMap<Term, Vec<Term>>,
    /// property → domain classes.
    domain: HashMap<Term, Vec<Term>>,
    /// property → range classes (object ranges only meaningfully typed).
    range: HashMap<Term, Vec<Term>>,
    /// property → inverse properties.
    inverse: HashMap<Term, Vec<Term>>,
    symmetric: HashSet<Term>,
    transitive: HashSet<Term>,
    functional: HashSet<Term>,
    inverse_functional: HashSet<Term>,
    /// Restriction node → (onProperty, detail).
    restrictions: Vec<Restriction>,
}

struct Restriction {
    node: Term,
    property: Term,
    kind: RKind,
    /// Named classes declared as subclasses of the restriction.
    subclasses: Vec<Term>,
}

enum RKind {
    HasValue(Term),
    SomeValuesFrom(Term),
    AllValuesFrom(Term),
}

fn build_restriction(g: &Graph, node: &Term) -> Option<Restriction> {
    if !g.has(node, &Term::iri(rdf::TYPE), &Term::iri(owl::RESTRICTION)) {
        return None;
    }
    let property = g.object(node, &Term::iri(owl::ON_PROPERTY))?;
    let kind = if let Some(v) = g.object(node, &Term::iri(owl::HAS_VALUE)) {
        RKind::HasValue(v)
    } else if let Some(c) = g.object(node, &Term::iri(owl::SOME_VALUES_FROM)) {
        RKind::SomeValuesFrom(c)
    } else {
        RKind::AllValuesFrom(g.object(node, &Term::iri(owl::ALL_VALUES_FROM))?)
    };
    let subclasses = g.subjects(&Term::iri(rdfs::SUB_CLASS_OF), node);
    Some(Restriction {
        node: node.clone(),
        property,
        kind,
        subclasses,
    })
}

impl Schema {
    fn collect(g: &Graph) -> Schema {
        let mut s = Schema::default();
        // Restriction nodes are recognized by their `rdf:type
        // owl:Restriction` declaration ([`build_restriction`] requires it),
        // so one candidate source covers every restriction in a full scan.
        let mut candidates: Vec<Term> = Vec::new();
        let mut candidate_set: HashSet<Term> = HashSet::new();
        for t in g.iter() {
            match t.predicate.as_iri() {
                Some(rdfs::SUB_CLASS_OF) => {
                    s.sub_class.entry(t.subject).or_default().push(t.object);
                }
                Some(rdfs::SUB_PROPERTY_OF) => {
                    s.sub_prop.entry(t.subject).or_default().push(t.object);
                }
                Some(rdfs::DOMAIN) => {
                    s.domain.entry(t.subject).or_default().push(t.object);
                }
                Some(rdfs::RANGE) => {
                    s.range.entry(t.subject).or_default().push(t.object);
                }
                Some(owl::INVERSE_OF) => {
                    s.inverse
                        .entry(t.subject.clone())
                        .or_default()
                        .push(t.object.clone());
                    s.inverse.entry(t.object).or_default().push(t.subject);
                }
                Some(rdf::TYPE) => match t.object.as_iri() {
                    Some(owl::SYMMETRIC_PROPERTY) => {
                        s.symmetric.insert(t.subject);
                    }
                    Some(owl::TRANSITIVE_PROPERTY) => {
                        s.transitive.insert(t.subject);
                    }
                    Some(owl::FUNCTIONAL_PROPERTY) => {
                        s.functional.insert(t.subject);
                    }
                    Some(owl::INVERSE_FUNCTIONAL_PROPERTY) => {
                        s.inverse_functional.insert(t.subject);
                    }
                    Some(owl::RESTRICTION) if candidate_set.insert(t.subject.clone()) => {
                        candidates.push(t.subject);
                    }
                    _ => {}
                },
                _ => {}
            }
        }
        for node in candidates {
            if let Some(r) = build_restriction(g, &node) {
                s.restrictions.push(r);
            }
        }
        s
    }
}

// ---------------------------------------------------------------------
// Id-space schema index (semi-naive engine)
// ---------------------------------------------------------------------

/// Sentinel for a vocabulary term the graph has never interned: ids are
/// dense indexes, so `TermId::MAX` compares equal to no real id.
const NO_TERM: TermId = TermId::MAX;

/// An interned triple as the delta pass sees it: three dense ids, no
/// heap-owned terms.
type IdTriple = (TermId, TermId, TermId);

/// Pre-resolved ids of every vocabulary term the delta pass dispatches
/// on, resolved once per materialization so no term is hashed in the
/// per-triple hot loop. The four terms the engine *emits* (`rdf:type`,
/// `rdfs:subClassOf`, `rdfs:subPropertyOf`, `owl:sameAs`) are interned up
/// front so their ids exist even when the input graph never mentions them
/// (interning adds no triples); the rest resolve to [`NO_TERM`] when
/// absent and then simply match no delta triple. Rules can only combine
/// ids of terms already in the graph, so no new vocabulary term can
/// appear mid-run and the ids stay complete for the whole fixpoint.
struct Voc {
    ty: TermId,
    sub_class: TermId,
    sub_prop: TermId,
    same: TermId,
    domain: TermId,
    range: TermId,
    inverse_of: TermId,
    equiv_class: TermId,
    equiv_prop: TermId,
    symmetric: TermId,
    transitive: TermId,
    functional: TermId,
    inverse_functional: TermId,
    restriction: TermId,
    on_property: TermId,
    has_value: TermId,
    some_values_from: TermId,
    all_values_from: TermId,
    intersection_of: TermId,
    union_of: TermId,
    first: TermId,
    rest: TermId,
}

impl Voc {
    /// Whether triples with this predicate can carry schema information
    /// [`IdSchema::absorb`] cares about — the group-skip gate for bulk
    /// absorption.
    fn schema_relevant(&self, p: TermId) -> bool {
        p == self.ty
            || p == self.sub_class
            || p == self.sub_prop
            || p == self.same
            || p == self.domain
            || p == self.range
            || p == self.inverse_of
            || p == self.on_property
            || p == self.has_value
            || p == self.some_values_from
            || p == self.all_values_from
            || p == self.intersection_of
            || p == self.union_of
            || p == self.first
            || p == self.rest
    }

    fn resolve(g: &mut Graph) -> Voc {
        let id = |g: &Graph, iri: &str| g.term_id(&Term::iri(iri)).unwrap_or(NO_TERM);
        Voc {
            ty: g.intern_term(&Term::iri(rdf::TYPE)),
            sub_class: g.intern_term(&Term::iri(rdfs::SUB_CLASS_OF)),
            sub_prop: g.intern_term(&Term::iri(rdfs::SUB_PROPERTY_OF)),
            same: g.intern_term(&Term::iri(owl::SAME_AS)),
            domain: id(g, rdfs::DOMAIN),
            range: id(g, rdfs::RANGE),
            inverse_of: id(g, owl::INVERSE_OF),
            equiv_class: id(g, owl::EQUIVALENT_CLASS),
            equiv_prop: id(g, owl::EQUIVALENT_PROPERTY),
            symmetric: id(g, owl::SYMMETRIC_PROPERTY),
            transitive: id(g, owl::TRANSITIVE_PROPERTY),
            functional: id(g, owl::FUNCTIONAL_PROPERTY),
            inverse_functional: id(g, owl::INVERSE_FUNCTIONAL_PROPERTY),
            restriction: id(g, owl::RESTRICTION),
            on_property: id(g, owl::ON_PROPERTY),
            has_value: id(g, owl::HAS_VALUE),
            some_values_from: id(g, owl::SOME_VALUES_FROM),
            all_values_from: id(g, owl::ALL_VALUES_FROM),
            intersection_of: id(g, owl::INTERSECTION_OF),
            union_of: id(g, owl::UNION_OF),
            first: id(g, rdf::FIRST),
            rest: id(g, rdf::REST),
        }
    }
}

const SYMMETRIC: u8 = 1;
const TRANSITIVE: u8 = 1 << 1;
const FUNCTIONAL: u8 = 1 << 2;
const INVERSE_FUNCTIONAL: u8 = 1 << 3;

/// Everything the delta pass needs to know about one predicate, gathered
/// so a single dense-table load answers all per-predicate questions.
#[derive(Default, Clone)]
struct PredEntry {
    /// `rdfs:subPropertyOf` superproperties (direct).
    supers: Vec<TermId>,
    /// `rdfs:domain` classes.
    domains: Vec<TermId>,
    /// `rdfs:range` classes.
    ranges: Vec<TermId>,
    /// `owl:inverseOf` partners (both directions).
    inverses: Vec<TermId>,
    /// OWL property-characteristic bits.
    flags: u8,
}

/// The semi-naive engine's schema index, keyed by interned term id. The
/// per-predicate and per-class tables are sparse hash maps: schema-bearing
/// ids are a tiny fraction of a large graph's term space, and the
/// predicate-grouped rule pass probes them once per *group*, so dense
/// id-indexed vectors would spend more time zeroing `term_count` slots
/// than the probes ever save. Maintained incrementally: each pass absorbs
/// only that pass's delta. Restrictions are kept in term form too because
/// the dirty-restriction re-runs share [`apply_restriction`] with the
/// naive engine.
#[derive(Default)]
struct IdSchema {
    preds: HashMap<TermId, PredEntry>,
    /// subclass id → superclass ids (direct).
    class_supers: HashMap<TermId, Vec<TermId>>,
    restrictions: Vec<Restriction>,
    id_restrictions: Vec<IdRestriction>,
    /// Restriction node id → index into `restrictions`/`id_restrictions`.
    restriction_index: HashMap<TermId, usize>,
    /// Ids appearing in any `sameAs` assertion (clique members).
    same_members: HashSet<TermId>,
    /// Boolean (intersection/union) class ids and their parts.
    boolean_relevant: HashSet<TermId>,
}

struct IdRestriction {
    node: TermId,
    property: TermId,
    kind: IdRKind,
    /// Named classes declared as subclasses of the restriction.
    subclasses: Vec<TermId>,
}

enum IdRKind {
    HasValue(TermId),
    SomeValuesFrom(TermId),
    AllValuesFrom(TermId),
}

impl IdRestriction {
    /// Every component term of a restriction occurs in a graph triple, so
    /// it is interned; a failed lookup degrades to [`NO_TERM`] (matching
    /// nothing) rather than panicking.
    fn of(g: &Graph, r: &Restriction) -> IdRestriction {
        let id = |t: &Term| g.term_id(t).unwrap_or(NO_TERM);
        IdRestriction {
            node: id(&r.node),
            property: id(&r.property),
            kind: match &r.kind {
                RKind::HasValue(v) => IdRKind::HasValue(id(v)),
                RKind::SomeValuesFrom(c) => IdRKind::SomeValuesFrom(id(c)),
                RKind::AllValuesFrom(c) => IdRKind::AllValuesFrom(id(c)),
            },
            subclasses: r.subclasses.iter().map(id).collect(),
        }
    }
}

impl IdSchema {
    fn pred(&self, p: TermId) -> Option<&PredEntry> {
        self.preds.get(&p)
    }

    fn class_supers(&self, c: TermId) -> &[TermId] {
        self.class_supers.get(&c).map_or(&[][..], Vec::as_slice)
    }

    /// Fold a delta's schema-level triples into the index and report which
    /// clique-global rules the delta makes necessary. Each triple must be
    /// absorbed exactly once over the life of the schema (deltas are
    /// disjoint, so this holds by construction).
    fn absorb(&mut self, g: &Graph, voc: &Voc, delta: &[(TermId, TermId, TermId)]) -> Triggers {
        let mut trig = Triggers::default();
        let mut candidates: Vec<TermId> = Vec::new();
        let mut candidate_set: HashSet<TermId> = HashSet::new();
        // Predicate-grouped deltas (the bulk seed) skip whole rule-free
        // groups: a group whose predicate is schema-irrelevant can only
        // matter through the sameAs-member catch at the bottom of
        // `absorb_one`, which is itself a no-op while no clique members
        // are known.
        if delta.windows(2).all(|w| w[0].1 <= w[1].1) {
            let mut i = 0;
            while i < delta.len() {
                let p = delta[i].1;
                let mut j = i + 1;
                while j < delta.len() && delta[j].1 == p {
                    j += 1;
                }
                if voc.schema_relevant(p) || !self.same_members.is_empty() {
                    for &(s, _, o) in &delta[i..j] {
                        self.absorb_one(
                            g,
                            voc,
                            (s, p, o),
                            &mut trig,
                            &mut candidates,
                            &mut candidate_set,
                        );
                    }
                }
                i = j;
            }
        } else {
            for &(s, p, o) in delta {
                self.absorb_one(
                    g,
                    voc,
                    (s, p, o),
                    &mut trig,
                    &mut candidates,
                    &mut candidate_set,
                );
            }
        }
        self.finish_candidates(g, candidates, &mut trig);
        trig
    }

    /// Fold one delta triple into the schema index (the per-triple body of
    /// [`IdSchema::absorb`]).
    fn absorb_one(
        &mut self,
        g: &Graph,
        voc: &Voc,
        (s, p, o): (TermId, TermId, TermId),
        trig: &mut Triggers,
        candidates: &mut Vec<TermId>,
        candidate_set: &mut HashSet<TermId>,
    ) {
        {
            if p == voc.sub_class {
                self.class_supers.entry(s).or_default().push(o);
                // A new subclass edge into a restriction widens the
                // restriction's reach.
                if (self.restriction_index.contains_key(&o)
                    || g.has_ids(o, voc.ty, voc.restriction))
                    && candidate_set.insert(o)
                {
                    candidates.push(o);
                }
            } else if p == voc.sub_prop {
                self.preds.entry(s).or_default().supers.push(o);
            } else if p == voc.domain {
                self.preds.entry(s).or_default().domains.push(o);
            } else if p == voc.range {
                self.preds.entry(s).or_default().ranges.push(o);
            } else if p == voc.inverse_of {
                self.preds.entry(s).or_default().inverses.push(o);
                self.preds.entry(o).or_default().inverses.push(s);
            } else if p == voc.same {
                if g.term_of(o).is_resource() {
                    self.same_members.insert(s);
                    self.same_members.insert(o);
                    trig.same_as = true;
                }
            } else if p == voc.on_property
                || p == voc.has_value
                || p == voc.some_values_from
                || p == voc.all_values_from
            {
                if candidate_set.insert(s) {
                    candidates.push(s);
                }
            } else if p == voc.intersection_of || p == voc.union_of {
                self.boolean_relevant.insert(s);
                if let Some(parts) = g.read_list(g.term_of(o)) {
                    for part in parts {
                        if let Some(part_id) = g.term_id(&part) {
                            self.boolean_relevant.insert(part_id);
                        }
                    }
                }
                trig.boolean = true;
            } else if p == voc.first || p == voc.rest {
                // A list cell may extend a boolean class's part list.
                trig.boolean = true;
            } else if p == voc.ty {
                if o == voc.symmetric {
                    self.preds.entry(s).or_default().flags |= SYMMETRIC;
                } else if o == voc.transitive {
                    self.preds.entry(s).or_default().flags |= TRANSITIVE;
                } else if o == voc.functional {
                    self.preds.entry(s).or_default().flags |= FUNCTIONAL;
                } else if o == voc.inverse_functional {
                    self.preds.entry(s).or_default().flags |= INVERSE_FUNCTIONAL;
                } else if o == voc.restriction && candidate_set.insert(s) {
                    candidates.push(s);
                }
                if self.boolean_relevant.contains(&o) {
                    trig.boolean = true;
                }
            }
            if !trig.same_as && (self.same_members.contains(&s) || self.same_members.contains(&o)) {
                trig.same_as = true;
            }
        }
    }

    /// Materialize restriction candidates collected during absorption.
    fn finish_candidates(&mut self, g: &Graph, candidates: Vec<TermId>, trig: &mut Triggers) {
        for node in candidates {
            if let Some(r) = build_restriction(g, g.term_of(node)) {
                let idr = IdRestriction::of(g, &r);
                if let Some(&i) = self.restriction_index.get(&node) {
                    self.restrictions[i] = r;
                    self.id_restrictions[i] = idr;
                    trig.dirty_restrictions.push(i);
                } else {
                    let i = self.restrictions.len();
                    self.restrictions.push(r);
                    self.id_restrictions.push(idr);
                    self.restriction_index.insert(node, i);
                    trig.dirty_restrictions.push(i);
                }
            }
        }
    }

    /// Trigger detection only — for a delta whose triples are *already*
    /// absorbed (the incremental-update seed, where the schema was built
    /// from the whole graph).
    fn triggers_for(&self, g: &Graph, voc: &Voc, delta: &[(TermId, TermId, TermId)]) -> Triggers {
        let mut trig = Triggers::default();
        let mut dirty: HashSet<usize> = HashSet::new();
        for &(s, p, o) in delta {
            if p == voc.same {
                if g.term_of(o).is_resource() {
                    trig.same_as = true;
                }
            } else if p == voc.intersection_of
                || p == voc.union_of
                || p == voc.first
                || p == voc.rest
            {
                trig.boolean = true;
            } else if p == voc.on_property
                || p == voc.has_value
                || p == voc.some_values_from
                || p == voc.all_values_from
            {
                if let Some(&i) = self.restriction_index.get(&s) {
                    dirty.insert(i);
                }
            } else if p == voc.sub_class {
                if let Some(&i) = self.restriction_index.get(&o) {
                    dirty.insert(i);
                }
            } else if p == voc.ty {
                if o == voc.restriction {
                    if let Some(&i) = self.restriction_index.get(&s) {
                        dirty.insert(i);
                    }
                }
                if self.boolean_relevant.contains(&o) {
                    trig.boolean = true;
                }
            }
            if !trig.same_as && (self.same_members.contains(&s) || self.same_members.contains(&o)) {
                trig.same_as = true;
            }
        }
        trig.dirty_restrictions = dirty.into_iter().collect();
        trig.dirty_restrictions.sort_unstable();
        trig
    }
}

/// Dispatch indexes over [`IdSchema::id_restrictions`], rebuilt per pass
/// (the restriction count is tiny next to the delta). Sparse maps keyed
/// by term id: the `by_prop` probe runs once per predicate *group*, and
/// the class probes only inside `rdf:type` groups, so hashing is off the
/// per-triple fast path while the tables stay O(restrictions) to build.
#[derive(Default)]
#[allow(clippy::struct_field_names)]
struct IdRestrictionMaps {
    /// `hasValue`: restriction node + declared subclasses (dir 1);
    /// `allValuesFrom`: restriction node.
    by_class: HashMap<TermId, Vec<usize>>,
    /// `someValuesFrom` filler class → restriction.
    by_svf_class: HashMap<TermId, Vec<usize>>,
    /// `onProperty` → restriction.
    by_prop: HashMap<TermId, Vec<usize>>,
}

impl IdRestrictionMaps {
    fn build(s: &IdSchema) -> IdRestrictionMaps {
        let mut m = IdRestrictionMaps::default();
        for (i, r) in s.id_restrictions.iter().enumerate() {
            m.by_prop.entry(r.property).or_default().push(i);
            match r.kind {
                IdRKind::HasValue(_) => {
                    for &c in r.subclasses.iter().chain(std::iter::once(&r.node)) {
                        m.by_class.entry(c).or_default().push(i);
                    }
                }
                IdRKind::AllValuesFrom(_) => {
                    m.by_class.entry(r.node).or_default().push(i);
                }
                IdRKind::SomeValuesFrom(class) => {
                    m.by_svf_class.entry(class).or_default().push(i);
                }
            }
        }
        m
    }

    fn get(table: &HashMap<TermId, Vec<usize>>, id: TermId) -> &[usize] {
        table.get(&id).map_or(&[][..], Vec::as_slice)
    }
}

fn is_xsd_class(c: &Term) -> bool {
    c.as_iri()
        .is_some_and(|i| i.starts_with(grdf_rdf::vocab::xsd::NS))
}

fn rule_subclass_transitivity(g: &Graph, out: &mut Vec<Triple>) {
    let p = Term::iri(rdfs::SUB_CLASS_OF);
    transitivity_over(g, &p, out);
}

fn rule_subproperty_transitivity(g: &Graph, out: &mut Vec<Triple>) {
    let p = Term::iri(rdfs::SUB_PROPERTY_OF);
    transitivity_over(g, &p, out);
}

fn transitivity_over(g: &Graph, p: &Term, out: &mut Vec<Triple>) {
    // (a p b), (b p c) → (a p c)
    let mut edges: HashMap<Term, Vec<Term>> = HashMap::new();
    g.for_each_match(None, Some(p), None, |t| {
        edges.entry(t.subject).or_default().push(t.object);
    });
    for (a, bs) in &edges {
        for b in bs {
            if let Some(cs) = edges.get(b) {
                for c in cs {
                    if c != a && !g.has(a, p, c) {
                        out.push(Triple::new(a.clone(), p.clone(), c.clone()));
                    }
                }
            }
        }
    }
}

/// Delta step of `(a p b), (b p c) → (a p c)` for one new edge `(s, o)`:
/// forward join through the new edge's object and backward join into its
/// subject cover every pair the new edge participates in. Id inequality
/// is exact term inequality — the interner is injective.
fn delta_transitivity_ids(
    g: &Graph,
    p: TermId,
    s: TermId,
    o: TermId,
    out: &mut Vec<(TermId, TermId, TermId)>,
) {
    g.for_each_match_ids(Some(o), Some(p), None, |_, _, c| {
        if c != s {
            out.push((s, p, c));
        }
    });
    g.for_each_match_ids(None, Some(p), Some(s), |a, _, _| {
        if a != o {
            out.push((a, p, o));
        }
    });
}

/// Id-space mirror of [`transitivity_over`], for dirty-property re-runs
/// in the delta pass.
fn transitivity_over_ids(g: &Graph, p: TermId, out: &mut Vec<(TermId, TermId, TermId)>) {
    let mut edges: HashMap<TermId, Vec<TermId>> = HashMap::new();
    g.for_each_match_ids(None, Some(p), None, |s, _, o| {
        edges.entry(s).or_default().push(o);
    });
    for (&a, bs) in &edges {
        for b in bs {
            if let Some(cs) = edges.get(b) {
                for &c in cs {
                    if c != a {
                        out.push((a, p, c));
                    }
                }
            }
        }
    }
}

/// Emit `(y q x)` for every `(x p y)` in the graph (one inverse pair).
fn inverse_over_ids(g: &Graph, p: TermId, q: TermId, out: &mut Vec<(TermId, TermId, TermId)>) {
    g.for_each_match_ids(None, Some(p), None, |s, _, o| {
        if g.term_of(o).is_resource() {
            out.push((o, q, s));
        }
    });
}

/// Id-space mirror of [`symmetric_over`].
fn symmetric_over_ids(g: &Graph, p: TermId, out: &mut Vec<(TermId, TermId, TermId)>) {
    g.for_each_match_ids(None, Some(p), None, |s, _, o| {
        if g.term_of(o).is_resource() {
            out.push((o, p, s));
        }
    });
}

/// Id-space mirror of [`functional_over`].
fn functional_over_ids(g: &Graph, voc: &Voc, p: TermId, out: &mut Vec<(TermId, TermId, TermId)>) {
    let mut by_subject: HashMap<TermId, Vec<TermId>> = HashMap::new();
    g.for_each_match_ids(None, Some(p), None, |s, _, o| {
        if g.term_of(o).is_resource() {
            by_subject.entry(s).or_default().push(o);
        }
    });
    for objs in by_subject.values() {
        for pair in objs.windows(2) {
            if pair[0] != pair[1] {
                out.push((pair[0], voc.same, pair[1]));
            }
        }
    }
}

/// Id-space mirror of [`inverse_functional_over`].
fn inverse_functional_over_ids(
    g: &Graph,
    voc: &Voc,
    p: TermId,
    out: &mut Vec<(TermId, TermId, TermId)>,
) {
    let mut by_object: HashMap<TermId, Vec<TermId>> = HashMap::new();
    g.for_each_match_ids(None, Some(p), None, |s, _, o| {
        by_object.entry(o).or_default().push(s);
    });
    for subs in by_object.values() {
        for pair in subs.windows(2) {
            if pair[0] != pair[1] {
                out.push((pair[0], voc.same, pair[1]));
            }
        }
    }
}

fn rule_type_inheritance(g: &Graph, s: &Schema, out: &mut Vec<Triple>) {
    let ty = Term::iri(rdf::TYPE);
    g.for_each_match(None, Some(&ty), None, |t| {
        if let Some(supers) = s.sub_class.get(&t.object) {
            for sup in supers {
                if !g.has(&t.subject, &ty, sup) {
                    out.push(Triple::new(t.subject.clone(), ty.clone(), sup.clone()));
                }
            }
        }
    });
}

fn rule_property_inheritance(g: &Graph, s: &Schema, out: &mut Vec<Triple>) {
    for (p, supers) in &s.sub_prop {
        g.for_each_match(None, Some(p), None, |t| {
            for q in supers {
                if !g.has(&t.subject, q, &t.object) {
                    out.push(Triple::new(t.subject.clone(), q.clone(), t.object.clone()));
                }
            }
        });
    }
}

fn rule_domain_range(g: &Graph, s: &Schema, out: &mut Vec<Triple>) {
    let ty = Term::iri(rdf::TYPE);
    for (p, classes) in &s.domain {
        g.for_each_match(None, Some(p), None, |t| {
            for c in classes {
                if !g.has(&t.subject, &ty, c) {
                    out.push(Triple::new(t.subject.clone(), ty.clone(), c.clone()));
                }
            }
        });
    }
    for (p, classes) in &s.range {
        g.for_each_match(None, Some(p), None, |t| {
            if !t.object.is_resource() {
                return;
            }
            for c in classes {
                // Datatype ranges aren't class memberships.
                if is_xsd_class(c) {
                    continue;
                }
                if !g.has(&t.object, &ty, c) {
                    out.push(Triple::new(t.object.clone(), ty.clone(), c.clone()));
                }
            }
        });
    }
}

fn rule_equivalences(g: &Graph, out: &mut Vec<Triple>) {
    let eqc = Term::iri(owl::EQUIVALENT_CLASS);
    let sub = Term::iri(rdfs::SUB_CLASS_OF);
    g.for_each_match(None, Some(&eqc), None, |t| {
        for (s, o) in [(&t.subject, &t.object), (&t.object, &t.subject)] {
            if o.is_resource() && !g.has(s, &sub, o) {
                out.push(Triple::new(s.clone(), sub.clone(), o.clone()));
            }
        }
    });
    let eqp = Term::iri(owl::EQUIVALENT_PROPERTY);
    let subp = Term::iri(rdfs::SUB_PROPERTY_OF);
    g.for_each_match(None, Some(&eqp), None, |t| {
        for (s, o) in [(&t.subject, &t.object), (&t.object, &t.subject)] {
            if !g.has(s, &subp, o) {
                out.push(Triple::new(s.clone(), subp.clone(), o.clone()));
            }
        }
    });
}

fn rule_inverse(g: &Graph, s: &Schema, out: &mut Vec<Triple>) {
    for (p, qs) in &s.inverse {
        g.for_each_match(None, Some(p), None, |t| {
            if !t.object.is_resource() {
                return;
            }
            for q in qs {
                if !g.has(&t.object, q, &t.subject) {
                    out.push(Triple::new(t.object.clone(), q.clone(), t.subject.clone()));
                }
            }
        });
    }
}

fn rule_symmetric(g: &Graph, s: &Schema, out: &mut Vec<Triple>) {
    for p in &s.symmetric {
        symmetric_over(g, p, out);
    }
}

fn symmetric_over(g: &Graph, p: &Term, out: &mut Vec<Triple>) {
    g.for_each_match(None, Some(p), None, |t| {
        if t.object.is_resource() && !g.has(&t.object, p, &t.subject) {
            out.push(Triple::new(t.object.clone(), p.clone(), t.subject.clone()));
        }
    });
}

fn rule_transitive(g: &Graph, s: &Schema, out: &mut Vec<Triple>) {
    for p in &s.transitive {
        transitivity_over(g, p, out);
    }
}

fn rule_functional(g: &Graph, s: &Schema, out: &mut Vec<Triple>) {
    for p in &s.functional {
        functional_over(g, p, out);
    }
    for p in &s.inverse_functional {
        inverse_functional_over(g, p, out);
    }
}

fn functional_over(g: &Graph, p: &Term, out: &mut Vec<Triple>) {
    let same = Term::iri(owl::SAME_AS);
    let mut by_subject: HashMap<Term, Vec<Term>> = HashMap::new();
    g.for_each_match(None, Some(p), None, |t| {
        if t.object.is_resource() {
            by_subject.entry(t.subject).or_default().push(t.object);
        }
    });
    for objs in by_subject.values() {
        for pair in objs.windows(2) {
            if pair[0] != pair[1] && !g.has(&pair[0], &same, &pair[1]) {
                out.push(Triple::new(pair[0].clone(), same.clone(), pair[1].clone()));
            }
        }
    }
}

fn inverse_functional_over(g: &Graph, p: &Term, out: &mut Vec<Triple>) {
    let same = Term::iri(owl::SAME_AS);
    let mut by_object: HashMap<Term, Vec<Term>> = HashMap::new();
    g.for_each_match(None, Some(p), None, |t| {
        by_object.entry(t.object).or_default().push(t.subject);
    });
    for subs in by_object.values() {
        for pair in subs.windows(2) {
            if pair[0] != pair[1] && !g.has(&pair[0], &same, &pair[1]) {
                out.push(Triple::new(pair[0].clone(), same.clone(), pair[1].clone()));
            }
        }
    }
}

fn rule_same_as(g: &Graph, out: &mut Vec<Triple>) {
    let same = Term::iri(owl::SAME_AS);
    // Union-find over sameAs assertions.
    let mut parent: HashMap<Term, Term> = HashMap::new();
    fn find(parent: &mut HashMap<Term, Term>, x: &Term) -> Term {
        let p = parent.get(x).cloned();
        match p {
            None => x.clone(),
            Some(p) if &p == x => x.clone(),
            Some(p) => {
                let root = find(parent, &p);
                parent.insert(x.clone(), root.clone());
                root
            }
        }
    }
    let mut members: HashMap<Term, Vec<Term>> = HashMap::new();
    let mut pairs: Vec<(Term, Term)> = Vec::new();
    g.for_each_match(None, Some(&same), None, |t| {
        if t.object.is_resource() {
            pairs.push((t.subject, t.object));
        }
    });
    if pairs.is_empty() {
        return;
    }
    for (a, b) in &pairs {
        let ra = find(&mut parent, a);
        let rb = find(&mut parent, b);
        if ra != rb {
            parent.insert(ra, rb);
        }
        parent.entry(a.clone()).or_insert_with(|| a.clone());
        parent.entry(b.clone()).or_insert_with(|| b.clone());
    }
    let keys: Vec<Term> = parent.keys().cloned().collect();
    for k in keys {
        let r = find(&mut parent, &k);
        members.entry(r).or_default().push(k);
    }

    for group in members.values() {
        if group.len() < 2 {
            continue;
        }
        // Emit the full sameAs clique (symmetry + transitivity).
        for a in group {
            for b in group {
                if a != b && !g.has(a, &same, b) {
                    out.push(Triple::new(a.clone(), same.clone(), b.clone()));
                }
            }
        }
        // Substitution: every triple mentioning a member holds for all.
        for a in group {
            g.for_each_match(Some(a), None, None, |t| {
                if t.predicate.as_iri() == Some(owl::SAME_AS) {
                    return;
                }
                for b in group {
                    if b != a && !g.has(b, &t.predicate, &t.object) {
                        out.push(Triple::new(
                            b.clone(),
                            t.predicate.clone(),
                            t.object.clone(),
                        ));
                    }
                }
            });
            g.for_each_match(None, None, Some(a), |t| {
                if t.predicate.as_iri() == Some(owl::SAME_AS) {
                    return;
                }
                for b in group {
                    if b != a && !g.has(&t.subject, &t.predicate, b) {
                        out.push(Triple::new(
                            t.subject.clone(),
                            t.predicate.clone(),
                            b.clone(),
                        ));
                    }
                }
            });
        }
    }
}

/// Id-space mirror of [`rule_same_as`] for the semi-naive engine:
/// union-find over interned ids, clique emission and substitution through
/// the id-pattern scans, no term hashing or cloning.
fn rule_same_as_ids(g: &Graph, voc: &Voc, out: &mut Vec<(TermId, TermId, TermId)>) {
    let mut pairs: Vec<(TermId, TermId)> = Vec::new();
    g.for_each_match_ids(None, Some(voc.same), None, |s, _, o| {
        if g.term_of(o).is_resource() {
            pairs.push((s, o));
        }
    });
    if pairs.is_empty() {
        return;
    }
    let mut parent: HashMap<TermId, TermId> = HashMap::new();
    fn find(parent: &mut HashMap<TermId, TermId>, x: TermId) -> TermId {
        let mut root = x;
        while let Some(&p) = parent.get(&root) {
            if p == root {
                break;
            }
            root = p;
        }
        // Path compression.
        let mut cur = x;
        while let Some(&p) = parent.get(&cur) {
            if p == root {
                break;
            }
            parent.insert(cur, root);
            cur = p;
        }
        root
    }
    for &(a, b) in &pairs {
        let ra = find(&mut parent, a);
        let rb = find(&mut parent, b);
        if ra != rb {
            parent.insert(ra, rb);
        }
        parent.entry(a).or_insert(a);
        parent.entry(b).or_insert(b);
    }
    let keys: Vec<TermId> = parent.keys().copied().collect();
    let mut members: HashMap<TermId, Vec<TermId>> = HashMap::new();
    for k in keys {
        let r = find(&mut parent, k);
        members.entry(r).or_default().push(k);
    }

    let mut groups: Vec<Vec<TermId>> = members.into_values().filter(|v| v.len() >= 2).collect();
    for group in &mut groups {
        // Deterministic member order (HashMap iteration order is not).
        group.sort_unstable();
        // Emit the full sameAs clique (symmetry + transitivity).
        for &a in group.iter() {
            for &b in group.iter() {
                if a != b {
                    out.push((a, voc.same, b));
                }
            }
        }
        // Substitution: every triple mentioning a member holds for all.
        for &a in group.iter() {
            g.for_each_match_ids(Some(a), None, None, |_, p, o| {
                if p == voc.same {
                    return;
                }
                for &b in group.iter() {
                    if b != a {
                        out.push((b, p, o));
                    }
                }
            });
            g.for_each_match_ids(None, None, Some(a), |s, p, _| {
                if p == voc.same {
                    return;
                }
                for &b in group.iter() {
                    if b != a {
                        out.push((s, p, b));
                    }
                }
            });
        }
    }
}

fn rule_restrictions(g: &Graph, s: &Schema, out: &mut Vec<Triple>) {
    for r in &s.restrictions {
        apply_restriction(g, r, out);
    }
}

fn apply_restriction(g: &Graph, r: &Restriction, out: &mut Vec<Triple>) {
    let ty = Term::iri(rdf::TYPE);
    match &r.kind {
        RKind::HasValue(v) => {
            // x ∈ C (⊑ r) → x p v ; and x p v → x ∈ r.
            for c in r.subclasses.iter().chain(std::iter::once(&r.node)) {
                g.for_each_match(None, Some(&ty), Some(c), |t| {
                    if !g.has(&t.subject, &r.property, v) {
                        out.push(Triple::new(
                            t.subject.clone(),
                            r.property.clone(),
                            v.clone(),
                        ));
                    }
                });
            }
            g.for_each_match(None, Some(&r.property), Some(v), |t| {
                if !g.has(&t.subject, &ty, &r.node) {
                    out.push(Triple::new(t.subject.clone(), ty.clone(), r.node.clone()));
                }
            });
        }
        RKind::SomeValuesFrom(class) => {
            // x p y ∧ y ∈ D → x ∈ r.
            g.for_each_match(None, Some(&r.property), None, |t| {
                if t.object.is_resource()
                    && g.has(&t.object, &ty, class)
                    && !g.has(&t.subject, &ty, &r.node)
                {
                    out.push(Triple::new(t.subject.clone(), ty.clone(), r.node.clone()));
                }
            });
        }
        RKind::AllValuesFrom(class) => {
            // x ∈ r ∧ x p y → y ∈ D.
            g.for_each_match(None, Some(&ty), Some(&r.node), |t| {
                for y in g.objects(&t.subject, &r.property) {
                    if y.is_resource() && !g.has(&y, &ty, class) {
                        out.push(Triple::new(y, ty.clone(), class.clone()));
                    }
                }
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Characteristic, OntologyBuilder, RestrictionKind};

    fn iri(s: &str) -> Term {
        Term::iri(s)
    }
    fn ty() -> Term {
        Term::iri(rdf::TYPE)
    }

    #[test]
    fn subclass_chain_materializes() {
        let mut b = OntologyBuilder::new("urn:t#");
        b.class("A", None);
        b.class("B", Some("A"));
        b.class("C", Some("B"));
        let mut g = b.into_graph();
        g.add(iri("urn:t#x"), ty(), iri("urn:t#C"));
        Reasoner::default().materialize(&mut g);
        assert!(g.has(&iri("urn:t#x"), &ty(), &iri("urn:t#B")));
        assert!(g.has(&iri("urn:t#x"), &ty(), &iri("urn:t#A")));
        assert!(g.has(&iri("urn:t#C"), &iri(rdfs::SUB_CLASS_OF), &iri("urn:t#A")));
    }

    #[test]
    fn subproperty_inheritance() {
        let mut b = OntologyBuilder::new("urn:t#");
        b.object_property("hasMother", None, None);
        b.object_property("hasParent", None, None);
        b.sub_property_of("hasMother", "hasParent");
        let mut g = b.into_graph();
        g.add(iri("urn:t#x"), iri("urn:t#hasMother"), iri("urn:t#m"));
        Reasoner::default().materialize(&mut g);
        assert!(g.has(&iri("urn:t#x"), &iri("urn:t#hasParent"), &iri("urn:t#m")));
    }

    #[test]
    fn domain_and_range_typing() {
        let mut b = OntologyBuilder::new("urn:t#");
        b.class("Person", None);
        b.class("City", None);
        b.object_property("livesIn", Some("Person"), Some("City"));
        let mut g = b.into_graph();
        g.add(iri("urn:t#ann"), iri("urn:t#livesIn"), iri("urn:t#dallas"));
        Reasoner::default().materialize(&mut g);
        assert!(g.has(&iri("urn:t#ann"), &ty(), &iri("urn:t#Person")));
        assert!(g.has(&iri("urn:t#dallas"), &ty(), &iri("urn:t#City")));
    }

    #[test]
    fn datatype_range_does_not_type_literals() {
        let mut b = OntologyBuilder::new("urn:t#");
        b.datatype_property("age", None, Some(grdf_rdf::vocab::xsd::INTEGER));
        let mut g = b.into_graph();
        g.add(iri("urn:t#ann"), iri("urn:t#age"), Term::integer(30));
        let before = g.len();
        Reasoner::default().materialize(&mut g);
        // No rdf:type triples about the literal.
        assert_eq!(
            g.len(),
            before,
            "datatype range must not produce class-membership triples"
        );
    }

    #[test]
    fn inverse_of_fires_both_ways() {
        let mut b = OntologyBuilder::new("urn:t#");
        b.object_property("contains", None, None);
        b.object_property("within", None, None);
        b.inverse_of("contains", "within");
        let mut g = b.into_graph();
        g.add(iri("urn:t#lake"), iri("urn:t#within"), iri("urn:t#park"));
        Reasoner::default().materialize(&mut g);
        assert!(g.has(
            &iri("urn:t#park"),
            &iri("urn:t#contains"),
            &iri("urn:t#lake")
        ));
    }

    #[test]
    fn symmetric_and_transitive() {
        let mut b = OntologyBuilder::new("urn:t#");
        b.object_property("touches", None, None);
        b.characteristic("touches", Characteristic::Symmetric);
        b.object_property("upstreamOf", None, None);
        b.characteristic("upstreamOf", Characteristic::Transitive);
        let mut g = b.into_graph();
        g.add(iri("urn:t#a"), iri("urn:t#touches"), iri("urn:t#b"));
        g.add(iri("urn:t#r1"), iri("urn:t#upstreamOf"), iri("urn:t#r2"));
        g.add(iri("urn:t#r2"), iri("urn:t#upstreamOf"), iri("urn:t#r3"));
        g.add(iri("urn:t#r3"), iri("urn:t#upstreamOf"), iri("urn:t#r4"));
        Reasoner::default().materialize(&mut g);
        assert!(g.has(&iri("urn:t#b"), &iri("urn:t#touches"), &iri("urn:t#a")));
        assert!(g.has(&iri("urn:t#r1"), &iri("urn:t#upstreamOf"), &iri("urn:t#r4")));
    }

    #[test]
    fn functional_property_derives_same_as_and_smushes() {
        let mut b = OntologyBuilder::new("urn:t#");
        b.object_property("hasSiteId", None, None);
        b.characteristic("hasSiteId", Characteristic::InverseFunctional);
        let mut g = b.into_graph();
        // Two records for one chemical site in different datasets.
        g.add(
            iri("urn:t#siteA"),
            iri("urn:t#hasSiteId"),
            iri("urn:t#id4221"),
        );
        g.add(
            iri("urn:t#siteB"),
            iri("urn:t#hasSiteId"),
            iri("urn:t#id4221"),
        );
        g.add(
            iri("urn:t#siteA"),
            iri("urn:t#name"),
            Term::string("NT Energy"),
        );
        Reasoner::default().materialize(&mut g);
        assert!(g.has(&iri("urn:t#siteA"), &iri(owl::SAME_AS), &iri("urn:t#siteB")));
        // Substitution carried the name to the other identifier.
        assert!(g.has(
            &iri("urn:t#siteB"),
            &iri("urn:t#name"),
            &Term::string("NT Energy")
        ));
    }

    #[test]
    fn equivalent_class_gives_mutual_membership() {
        let mut b = OntologyBuilder::new("urn:t#");
        b.class("Stream", None);
        b.class("Creek", None);
        b.equivalent_class("Stream", "Creek");
        let mut g = b.into_graph();
        g.add(iri("urn:t#x"), ty(), iri("urn:t#Creek"));
        Reasoner::default().materialize(&mut g);
        assert!(g.has(&iri("urn:t#x"), &ty(), &iri("urn:t#Stream")));
    }

    #[test]
    fn has_value_restriction_fires_both_directions() {
        let mut b = OntologyBuilder::new("urn:t#");
        b.class("TexasSite", None);
        b.object_property("inState", None, None);
        let r = b.restrict(
            "TexasSite",
            "inState",
            RestrictionKind::HasValue(Term::iri("urn:t#texas")),
        );
        let mut g = b.into_graph();
        g.add(iri("urn:t#s1"), ty(), iri("urn:t#TexasSite"));
        g.add(iri("urn:t#s2"), iri("urn:t#inState"), iri("urn:t#texas"));
        Reasoner::default().materialize(&mut g);
        assert!(g.has(&iri("urn:t#s1"), &iri("urn:t#inState"), &iri("urn:t#texas")));
        assert!(
            g.has(&iri("urn:t#s2"), &ty(), &r),
            "value ⇒ restriction membership"
        );
    }

    #[test]
    fn some_values_from_classifies_subject() {
        let mut b = OntologyBuilder::new("urn:t#");
        b.class("Hazardous", None);
        b.class("Chemical", None);
        b.object_property("stores", None, None);
        let r = b.restrict(
            "Hazardous",
            "stores",
            RestrictionKind::SomeValuesFrom("Chemical".into()),
        );
        let mut g = b.into_graph();
        g.add(iri("urn:t#plant"), iri("urn:t#stores"), iri("urn:t#acid"));
        g.add(iri("urn:t#acid"), ty(), iri("urn:t#Chemical"));
        Reasoner::default().materialize(&mut g);
        assert!(g.has(&iri("urn:t#plant"), &ty(), &r));
    }

    #[test]
    fn all_values_from_types_objects() {
        let mut b = OntologyBuilder::new("urn:t#");
        b.class("StreamNetwork", None);
        b.class("Stream", None);
        b.object_property("hasMember", None, None);
        b.restrict(
            "StreamNetwork",
            "hasMember",
            RestrictionKind::AllValuesFrom("Stream".into()),
        );
        let mut g = b.into_graph();
        g.add(iri("urn:t#net"), ty(), iri("urn:t#StreamNetwork"));
        g.add(iri("urn:t#net"), iri("urn:t#hasMember"), iri("urn:t#s1"));
        Reasoner::default().materialize(&mut g);
        assert!(g.has(&iri("urn:t#s1"), &ty(), &iri("urn:t#Stream")));
    }

    #[test]
    fn rdfs_only_skips_owl_rules() {
        let mut b = OntologyBuilder::new("urn:t#");
        b.object_property("touches", None, None);
        b.characteristic("touches", Characteristic::Symmetric);
        let mut g = b.into_graph();
        g.add(iri("urn:t#a"), iri("urn:t#touches"), iri("urn:t#b"));
        Reasoner::rdfs_only().materialize(&mut g);
        assert!(!g.has(&iri("urn:t#b"), &iri("urn:t#touches"), &iri("urn:t#a")));
    }

    #[test]
    fn materialization_is_idempotent() {
        let mut b = OntologyBuilder::new("urn:t#");
        b.class("A", None);
        b.class("B", Some("A"));
        let mut g = b.into_graph();
        g.add(iri("urn:t#x"), ty(), iri("urn:t#B"));
        let first = Reasoner::default().materialize(&mut g);
        assert!(first.inferred > 0);
        let second = Reasoner::default().materialize(&mut g);
        assert_eq!(second.inferred, 0, "second run must be a no-op");
        assert_eq!(second.passes, 1);
    }

    #[test]
    fn fixpoint_terminates_on_cyclic_schema() {
        let mut g = Graph::new();
        // A ⊑ B ⊑ C ⊑ A (legal, means equivalence).
        let sub = Term::iri(rdfs::SUB_CLASS_OF);
        g.add(iri("urn:t#A"), sub.clone(), iri("urn:t#B"));
        g.add(iri("urn:t#B"), sub.clone(), iri("urn:t#C"));
        g.add(iri("urn:t#C"), sub.clone(), iri("urn:t#A"));
        g.add(iri("urn:t#x"), ty(), iri("urn:t#A"));
        let stats = Reasoner::default().materialize(&mut g);
        assert!(stats.passes < 10);
        assert!(g.has(&iri("urn:t#x"), &ty(), &iri("urn:t#C")));
    }

    #[test]
    fn intersection_class_membership_both_ways() {
        let mut b = OntologyBuilder::new("urn:t#");
        b.class("Hazardous", None);
        b.class("Riverside", None);
        b.intersection_class("HazardousRiverside", &["Hazardous", "Riverside"]);
        let mut g = b.into_graph();
        g.add(iri("urn:t#p1"), ty(), iri("urn:t#Hazardous"));
        g.add(iri("urn:t#p1"), ty(), iri("urn:t#Riverside"));
        g.add(iri("urn:t#p2"), ty(), iri("urn:t#Hazardous")); // only one part
        g.add(iri("urn:t#p3"), ty(), iri("urn:t#HazardousRiverside")); // asserted directly
        Reasoner::default().materialize(&mut g);
        assert!(g.has(&iri("urn:t#p1"), &ty(), &iri("urn:t#HazardousRiverside")));
        assert!(!g.has(&iri("urn:t#p2"), &ty(), &iri("urn:t#HazardousRiverside")));
        // Direction 2: direct members belong to every part.
        assert!(g.has(&iri("urn:t#p3"), &ty(), &iri("urn:t#Hazardous")));
        assert!(g.has(&iri("urn:t#p3"), &ty(), &iri("urn:t#Riverside")));
    }

    #[test]
    fn union_class_membership() {
        let mut b = OntologyBuilder::new("urn:t#");
        b.class("Stream", None);
        b.class("Lake", None);
        b.union_class("WaterBody", &["Stream", "Lake"]);
        let mut g = b.into_graph();
        g.add(iri("urn:t#creek"), ty(), iri("urn:t#Stream"));
        g.add(iri("urn:t#pond"), ty(), iri("urn:t#Lake"));
        g.add(iri("urn:t#rock"), ty(), iri("urn:t#Other"));
        Reasoner::default().materialize(&mut g);
        assert!(g.has(&iri("urn:t#creek"), &ty(), &iri("urn:t#WaterBody")));
        assert!(g.has(&iri("urn:t#pond"), &ty(), &iri("urn:t#WaterBody")));
        assert!(!g.has(&iri("urn:t#rock"), &ty(), &iri("urn:t#WaterBody")));
    }

    #[test]
    fn union_interacts_with_subclass_rules() {
        // WaterBody = Stream ∪ Lake, and WaterBody ⊑ Feature.
        let mut b = OntologyBuilder::new("urn:t#");
        b.class("Stream", None);
        b.class("Lake", None);
        b.class("Feature", None);
        b.union_class("WaterBody", &["Stream", "Lake"]);
        b.sub_class_of("WaterBody", "Feature");
        let mut g = b.into_graph();
        g.add(iri("urn:t#creek"), ty(), iri("urn:t#Stream"));
        Reasoner::default().materialize(&mut g);
        assert!(g.has(&iri("urn:t#creek"), &ty(), &iri("urn:t#Feature")));
    }

    #[test]
    fn same_as_clique_closure() {
        let mut g = Graph::new();
        let same = Term::iri(owl::SAME_AS);
        g.add(iri("urn:a"), same.clone(), iri("urn:b"));
        g.add(iri("urn:b"), same.clone(), iri("urn:c"));
        Reasoner::default().materialize(&mut g);
        assert!(g.has(&iri("urn:c"), &same, &iri("urn:a")));
        assert!(g.has(&iri("urn:a"), &same, &iri("urn:c")));
        assert!(g.has(&iri("urn:b"), &same, &iri("urn:a")));
    }

    // ---- semi-naive / parallel / incremental engine tests ----

    /// A graph exercising every rule group at once.
    fn kitchen_sink() -> Graph {
        let mut b = OntologyBuilder::new("urn:t#");
        b.class("Feature", None);
        b.class("WaterBody", Some("Feature"));
        b.class("Stream", Some("WaterBody"));
        b.class("Lake", Some("WaterBody"));
        b.class("Creek", None);
        b.equivalent_class("Stream", "Creek");
        b.class("Chemical", None);
        b.class("Hazardous", None);
        b.object_property("contains", None, None);
        b.object_property("within", None, None);
        b.inverse_of("contains", "within");
        b.object_property("touches", None, None);
        b.characteristic("touches", Characteristic::Symmetric);
        b.object_property("upstreamOf", None, None);
        b.characteristic("upstreamOf", Characteristic::Transitive);
        b.object_property("hasSiteId", None, None);
        b.characteristic("hasSiteId", Characteristic::InverseFunctional);
        b.object_property("stores", Some("Feature"), Some("Chemical"));
        b.restrict(
            "Hazardous",
            "stores",
            RestrictionKind::SomeValuesFrom("Chemical".into()),
        );
        b.union_class("Wet", &["Stream", "Lake"]);
        let mut g = b.into_graph();
        for i in 0..12 {
            g.add(iri(&format!("urn:t#s{i}")), ty(), iri("urn:t#Stream"));
            g.add(
                iri(&format!("urn:t#s{i}")),
                iri("urn:t#upstreamOf"),
                iri(&format!("urn:t#s{}", i + 1)),
            );
            g.add(
                iri(&format!("urn:t#s{i}")),
                iri("urn:t#touches"),
                iri(&format!("urn:t#s{}", i + 1)),
            );
        }
        g.add(iri("urn:t#plant"), iri("urn:t#stores"), iri("urn:t#acid"));
        g.add(iri("urn:t#siteA"), iri("urn:t#hasSiteId"), iri("urn:t#id1"));
        g.add(iri("urn:t#siteB"), iri("urn:t#hasSiteId"), iri("urn:t#id1"));
        g.add(iri("urn:t#siteA"), iri("urn:t#within"), iri("urn:t#park"));
        g
    }

    #[test]
    fn semi_naive_matches_naive_fixpoint() {
        let mut naive = kitchen_sink();
        let mut semi = kitchen_sink();
        let naive_stats = Reasoner::naive().materialize(&mut naive);
        let semi_stats = Reasoner::default().materialize(&mut semi);
        assert_eq!(naive, semi, "both engines must reach the same fixpoint");
        assert_eq!(naive_stats.inferred, semi_stats.inferred);
        assert!(
            semi_stats.passes <= naive_stats.passes,
            "semi-naive needed {} passes vs naive {}",
            semi_stats.passes,
            naive_stats.passes
        );
        // After pass 1 the delta shrinks to the per-pass derivations.
        assert_eq!(semi_stats.delta_sizes[0], kitchen_sink().len());
        assert!(semi_stats.delta_sizes[1..]
            .iter()
            .all(|&d| d < semi_stats.delta_sizes[0]));
    }

    #[test]
    fn parallel_matches_sequential_fixpoint() {
        // A lowered threshold forces the sharded path to actually run;
        // the default would fall back to the inline pass at this size.
        fn big() -> Graph {
            let mut g = kitchen_sink();
            for i in 0..9000 {
                g.add(
                    iri(&format!("urn:t#n{i}")),
                    iri("urn:t#touches"),
                    iri(&format!("urn:t#n{}", i + 1)),
                );
                g.add(iri(&format!("urn:t#n{i}")), ty(), iri("urn:t#Lake"));
            }
            g
        }
        fn sharded(shards: usize) -> Reasoner {
            Reasoner {
                parallel_threshold: 1,
                ..Reasoner::parallel(shards)
            }
        }
        let mut seq = big();
        let mut par = big();
        assert!(big().len() >= sharded(4).parallel_threshold);
        Reasoner::default().materialize(&mut seq);
        sharded(4).materialize(&mut par);
        assert_eq!(seq, par, "shard width must not change the fixpoint");
        let par8 = {
            let mut g = big();
            sharded(8).materialize(&mut g);
            g
        };
        assert_eq!(seq, par8);
    }

    #[test]
    fn materialize_delta_equals_full_rematerialization() {
        // Materialize, snapshot the generation, add facts, then update
        // incrementally — and compare with materializing from scratch.
        let mut g = kitchen_sink();
        let reasoner = Reasoner::default();
        reasoner.materialize(&mut g);
        let mark = g.generation();
        let additions = vec![
            Triple::new(iri("urn:t#newSite"), ty(), iri("urn:t#Lake")),
            Triple::new(iri("urn:t#newSite"), iri("urn:t#stores"), iri("urn:t#acid")),
            Triple::new(iri("urn:t#s12"), iri("urn:t#upstreamOf"), iri("urn:t#s13")),
            Triple::new(iri("urn:t#newSite"), iri("urn:t#touches"), iri("urn:t#s0")),
            Triple::new(iri("urn:t#siteC"), iri("urn:t#hasSiteId"), iri("urn:t#id1")),
        ];
        let mut from_scratch = kitchen_sink();
        for t in &additions {
            g.insert(t.clone());
            from_scratch.insert(t.clone());
        }
        let stats = reasoner
            .materialize_delta(&mut g, mark, &Deadline::never())
            .unwrap();
        assert!(stats.inferred > 0, "the additions have consequences");
        reasoner.materialize(&mut from_scratch);
        assert_eq!(
            g, from_scratch,
            "incremental update must equal full re-materialization"
        );
        // The incremental seed is the 5 added triples, not the full graph.
        assert_eq!(stats.delta_sizes[0], additions.len());
    }

    #[test]
    fn materialize_delta_with_no_additions_is_free() {
        let mut g = kitchen_sink();
        Reasoner::default().materialize(&mut g);
        let mark = g.generation();
        let stats = Reasoner::default()
            .materialize_delta(&mut g, mark, &Deadline::never())
            .unwrap();
        assert_eq!(stats.passes, 0);
        assert_eq!(stats.inferred, 0);
    }

    #[test]
    fn late_schema_arrival_is_handled_incrementally() {
        // Declaring a restriction *after* materialization must reclassify
        // existing instances via the delta path.
        let mut g = Graph::new();
        g.add(iri("urn:t#plant"), iri("urn:t#stores"), iri("urn:t#acid"));
        g.add(iri("urn:t#acid"), ty(), iri("urn:t#Chemical"));
        let reasoner = Reasoner::default();
        reasoner.materialize(&mut g);
        let mark = g.generation();
        // Restriction declaration arrives as an update.
        let r = Term::blank("r1");
        g.add(r.clone(), ty(), iri(owl::RESTRICTION));
        g.add(r.clone(), iri(owl::ON_PROPERTY), iri("urn:t#stores"));
        g.add(r.clone(), iri(owl::SOME_VALUES_FROM), iri("urn:t#Chemical"));
        g.add(iri("urn:t#Hazardous"), iri(rdfs::SUB_CLASS_OF), r.clone());
        reasoner
            .materialize_delta(&mut g, mark, &Deadline::never())
            .unwrap();
        assert!(
            g.has(&iri("urn:t#plant"), &ty(), &r),
            "pre-existing instance data must meet the late restriction"
        );
    }
}
