//! OWL-DL subset for GRDF: ontology construction, reasoning, consistency.
//!
//! The paper writes GRDF in OWL-DL and leans on three capabilities that this
//! crate provides (no OWL reasoner exists in the allowed dependency set, so
//! all of it is built here):
//!
//! * [`model`] — a structural API for building ontologies (classes,
//!   object/datatype properties, property characteristics, and the
//!   restriction forms the paper uses: `owl:cardinality`,
//!   `owl:minCardinality`, `owl:maxCardinality`, `owl:someValuesFrom`,
//!   `owl:allValuesFrom`, `owl:hasValue`) that emits plain RDF triples.
//! * [`reasoner`] — a forward-chaining materializer implementing the
//!   RDFS + OWL-Horst rule subset (subclass/subproperty transitivity,
//!   domain/range, inverse/symmetric/transitive/functional properties,
//!   `owl:sameAs` smushing, equivalence, and restriction semantics).
//! * [`hierarchy`] — class/property hierarchy queries over a (possibly
//!   materialized) graph.
//! * [`consistency`] — OWL-DL constraint checking: disjointness,
//!   cardinality restriction violations, `sameAs`/`differentFrom` clashes.
//!
//! # Example
//!
//! ```
//! use grdf_owl::model::OntologyBuilder;
//! use grdf_owl::reasoner::Reasoner;
//! use grdf_rdf::term::Term;
//! use grdf_rdf::vocab::rdf;
//!
//! let mut b = OntologyBuilder::new("urn:ex#");
//! b.class("Animal", None);
//! b.class("Dog", Some("Animal"));
//! let mut g = b.into_graph();
//! g.add(Term::iri("urn:ex#rex"), Term::iri(rdf::TYPE), Term::iri("urn:ex#Dog"));
//!
//! let stats = Reasoner::default().materialize(&mut g);
//! assert!(stats.inferred > 0);
//! assert!(g.has(
//!     &Term::iri("urn:ex#rex"),
//!     &Term::iri(rdf::TYPE),
//!     &Term::iri("urn:ex#Animal"),
//! ));
//! ```

pub mod consistency;
pub mod explain;
pub mod hierarchy;
pub mod model;
pub mod reasoner;

pub use consistency::{check_consistency, violation_to_diagnostic, Violation};
pub use explain::{explain, Derivation};
pub use hierarchy::Hierarchy;
pub use model::OntologyBuilder;
pub use reasoner::{Reasoner, ReasonerStats};
