//! Structural ontology construction: a builder that assembles OWL axioms as
//! plain RDF triples, mirroring how the paper's listings declare classes,
//! properties and restrictions (Lists 2–5).

use grdf_rdf::graph::Graph;
use grdf_rdf::term::{Term, Triple};
use grdf_rdf::vocab::{owl, rdf, rdfs};

/// Property characteristics that can be asserted on an object property.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Characteristic {
    /// `owl:TransitiveProperty`.
    Transitive,
    /// `owl:SymmetricProperty`.
    Symmetric,
    /// `owl:FunctionalProperty`.
    Functional,
    /// `owl:InverseFunctionalProperty`.
    InverseFunctional,
}

impl Characteristic {
    fn class_iri(self) -> &'static str {
        match self {
            Characteristic::Transitive => owl::TRANSITIVE_PROPERTY,
            Characteristic::Symmetric => owl::SYMMETRIC_PROPERTY,
            Characteristic::Functional => owl::FUNCTIONAL_PROPERTY,
            Characteristic::InverseFunctional => owl::INVERSE_FUNCTIONAL_PROPERTY,
        }
    }
}

/// The restriction forms GRDF uses (paper Lists 3 and 5).
#[derive(Debug, Clone, PartialEq)]
pub enum RestrictionKind {
    /// `owl:cardinality n`.
    Exactly(u32),
    /// `owl:minCardinality n`.
    AtLeast(u32),
    /// `owl:maxCardinality n`.
    AtMost(u32),
    /// `owl:someValuesFrom C`.
    SomeValuesFrom(String),
    /// `owl:allValuesFrom C`.
    AllValuesFrom(String),
    /// `owl:hasValue v`.
    HasValue(Term),
}

/// Builder that accumulates ontology axioms into an RDF graph.
///
/// Local names are resolved against the builder's base namespace; absolute
/// IRIs (containing `://` or starting with `urn:`) pass through unchanged,
/// so axioms can reference external vocabularies (e.g. XSD datatypes).
#[derive(Debug)]
pub struct OntologyBuilder {
    base: String,
    graph: Graph,
    restriction_counter: u64,
}

impl OntologyBuilder {
    /// Start a builder for the ontology rooted at `base` (e.g.
    /// `http://grdf.org/ontology#`).
    pub fn new(base: &str) -> OntologyBuilder {
        let mut graph = Graph::new();
        let onto = Term::iri(base.trim_end_matches(['#', '/']));
        graph.add(onto, Term::iri(rdf::TYPE), Term::iri(owl::ONTOLOGY));
        OntologyBuilder {
            base: base.to_string(),
            graph,
            restriction_counter: 0,
        }
    }

    /// Resolve a possibly-local name against the base namespace.
    pub fn resolve(&self, name: &str) -> String {
        if name.contains("://") || name.starts_with("urn:") {
            name.to_string()
        } else {
            format!("{}{name}", self.base)
        }
    }

    fn term(&self, name: &str) -> Term {
        Term::iri(&self.resolve(name))
    }

    /// Declare an `owl:Class`, optionally a subclass of `parent`.
    pub fn class(&mut self, name: &str, parent: Option<&str>) -> Term {
        let c = self.term(name);
        self.graph
            .add(c.clone(), Term::iri(rdf::TYPE), Term::iri(owl::CLASS));
        if let Some(p) = parent {
            let p = self.term(p);
            self.graph.add(c.clone(), Term::iri(rdfs::SUB_CLASS_OF), p);
        }
        c
    }

    /// Add an `rdfs:label` to any named entity.
    pub fn label(&mut self, name: &str, label: &str) {
        let s = self.term(name);
        self.graph
            .add(s, Term::iri(rdfs::LABEL), Term::string(label));
    }

    /// Add an `rdfs:comment` to any named entity.
    pub fn comment(&mut self, name: &str, comment: &str) {
        let s = self.term(name);
        self.graph
            .add(s, Term::iri(rdfs::COMMENT), Term::string(comment));
    }

    /// Assert `child rdfs:subClassOf parent` for already-declared classes.
    pub fn sub_class_of(&mut self, child: &str, parent: &str) {
        let c = self.term(child);
        let p = self.term(parent);
        self.graph.add(c, Term::iri(rdfs::SUB_CLASS_OF), p);
    }

    /// Declare an `owl:ObjectProperty` with optional domain/range.
    pub fn object_property(
        &mut self,
        name: &str,
        domain: Option<&str>,
        range: Option<&str>,
    ) -> Term {
        let p = self.term(name);
        self.graph.add(
            p.clone(),
            Term::iri(rdf::TYPE),
            Term::iri(owl::OBJECT_PROPERTY),
        );
        if let Some(d) = domain {
            let d = self.term(d);
            self.graph.add(p.clone(), Term::iri(rdfs::DOMAIN), d);
        }
        if let Some(r) = range {
            let r = self.term(r);
            self.graph.add(p.clone(), Term::iri(rdfs::RANGE), r);
        }
        p
    }

    /// Declare an `owl:DatatypeProperty` with optional domain and a datatype
    /// range (this is the paper's §3.2 mapping for GML extension types whose
    /// base is a built-in simple type, e.g. `MeasureType`/`double`).
    pub fn datatype_property(
        &mut self,
        name: &str,
        domain: Option<&str>,
        range_datatype: Option<&str>,
    ) -> Term {
        let p = self.term(name);
        self.graph.add(
            p.clone(),
            Term::iri(rdf::TYPE),
            Term::iri(owl::DATATYPE_PROPERTY),
        );
        if let Some(d) = domain {
            let d = self.term(d);
            self.graph.add(p.clone(), Term::iri(rdfs::DOMAIN), d);
        }
        if let Some(r) = range_datatype {
            self.graph
                .add(p.clone(), Term::iri(rdfs::RANGE), Term::iri(r));
        }
        p
    }

    /// Assert `child rdfs:subPropertyOf parent`.
    pub fn sub_property_of(&mut self, child: &str, parent: &str) {
        let c = self.term(child);
        let p = self.term(parent);
        self.graph.add(c, Term::iri(rdfs::SUB_PROPERTY_OF), p);
    }

    /// Assert a property characteristic.
    pub fn characteristic(&mut self, property: &str, ch: Characteristic) {
        let p = self.term(property);
        self.graph
            .add(p, Term::iri(rdf::TYPE), Term::iri(ch.class_iri()));
    }

    /// Assert `p owl:inverseOf q`.
    pub fn inverse_of(&mut self, p: &str, q: &str) {
        let p = self.term(p);
        let q = self.term(q);
        self.graph.add(p, Term::iri(owl::INVERSE_OF), q);
    }

    /// Assert `a owl:equivalentClass b`.
    pub fn equivalent_class(&mut self, a: &str, b: &str) {
        let a = self.term(a);
        let b = self.term(b);
        self.graph.add(a, Term::iri(owl::EQUIVALENT_CLASS), b);
    }

    /// Assert `a owl:disjointWith b`.
    pub fn disjoint_with(&mut self, a: &str, b: &str) {
        let a = self.term(a);
        let b = self.term(b);
        self.graph.add(a, Term::iri(owl::DISJOINT_WITH), b);
    }

    /// Attach an anonymous `owl:Restriction` as a superclass of `class`,
    /// constraining `property` — the construction in paper Lists 3 and 5
    /// (e.g. `EnvelopeWithTimePeriod ⊑ =2 hasTimePosition`). Returns the
    /// restriction node.
    pub fn restrict(&mut self, class: &str, property: &str, kind: RestrictionKind) -> Term {
        self.restriction_counter += 1;
        let r = Term::blank(&format!("restr{}", self.restriction_counter));
        let c = self.term(class);
        let p = self.term(property);
        self.graph.add(c, Term::iri(rdfs::SUB_CLASS_OF), r.clone());
        self.graph
            .add(r.clone(), Term::iri(rdf::TYPE), Term::iri(owl::RESTRICTION));
        self.graph.add(r.clone(), Term::iri(owl::ON_PROPERTY), p);
        let (pred, obj) = match kind {
            RestrictionKind::Exactly(n) => (
                owl::CARDINALITY,
                Term::typed(&n.to_string(), grdf_rdf::vocab::xsd::NON_NEGATIVE_INTEGER),
            ),
            RestrictionKind::AtLeast(n) => (
                owl::MIN_CARDINALITY,
                Term::typed(&n.to_string(), grdf_rdf::vocab::xsd::NON_NEGATIVE_INTEGER),
            ),
            RestrictionKind::AtMost(n) => (
                owl::MAX_CARDINALITY,
                Term::typed(&n.to_string(), grdf_rdf::vocab::xsd::NON_NEGATIVE_INTEGER),
            ),
            RestrictionKind::SomeValuesFrom(cls) => (owl::SOME_VALUES_FROM, self.term(&cls)),
            RestrictionKind::AllValuesFrom(cls) => (owl::ALL_VALUES_FROM, self.term(&cls)),
            RestrictionKind::HasValue(v) => (owl::HAS_VALUE, v),
        };
        self.graph.add(r.clone(), Term::iri(pred), obj);
        r
    }

    /// Declare `class` as the intersection of `parts`
    /// (`owl:intersectionOf` over an RDF list). Returns the class term.
    pub fn intersection_class(&mut self, class: &str, parts: &[&str]) -> Term {
        let c = self.class(class, None);
        let items: Vec<Term> = parts.iter().map(|p| self.term(p)).collect();
        let head = self.graph.write_list(&items);
        self.graph
            .add(c.clone(), Term::iri(owl::INTERSECTION_OF), head);
        c
    }

    /// Declare `class` as the union of `parts` (`owl:unionOf` over an RDF
    /// list). Returns the class term.
    pub fn union_class(&mut self, class: &str, parts: &[&str]) -> Term {
        let c = self.class(class, None);
        let items: Vec<Term> = parts.iter().map(|p| self.term(p)).collect();
        let head = self.graph.write_list(&items);
        self.graph.add(c.clone(), Term::iri(owl::UNION_OF), head);
        c
    }

    /// Insert an arbitrary triple (escape hatch for axioms the builder has
    /// no helper for).
    pub fn raw(&mut self, triple: Triple) {
        self.graph.insert(triple);
    }

    /// Read access to the graph built so far.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Finish building and return the axiom graph.
    pub fn into_graph(self) -> Graph {
        self.graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iri(s: &str) -> Term {
        Term::iri(s)
    }

    #[test]
    fn class_declaration_and_hierarchy() {
        let mut b = OntologyBuilder::new("urn:t#");
        b.class("A", None);
        b.class("B", Some("A"));
        let g = b.into_graph();
        assert!(g.has(&iri("urn:t#A"), &iri(rdf::TYPE), &iri(owl::CLASS)));
        assert!(g.has(&iri("urn:t#B"), &iri(rdfs::SUB_CLASS_OF), &iri("urn:t#A")));
    }

    #[test]
    fn absolute_names_pass_through() {
        let b = OntologyBuilder::new("urn:t#");
        assert_eq!(b.resolve("Local"), "urn:t#Local");
        assert_eq!(b.resolve("http://x.org/y"), "http://x.org/y");
        assert_eq!(b.resolve("urn:other:z"), "urn:other:z");
    }

    #[test]
    fn object_property_with_domain_range() {
        let mut b = OntologyBuilder::new("urn:t#");
        b.object_property("hasPart", Some("Whole"), Some("Part"));
        let g = b.into_graph();
        let p = iri("urn:t#hasPart");
        assert!(g.has(&p, &iri(rdf::TYPE), &iri(owl::OBJECT_PROPERTY)));
        assert!(g.has(&p, &iri(rdfs::DOMAIN), &iri("urn:t#Whole")));
        assert!(g.has(&p, &iri(rdfs::RANGE), &iri("urn:t#Part")));
    }

    #[test]
    fn datatype_property_range_is_xsd() {
        let mut b = OntologyBuilder::new("urn:t#");
        b.datatype_property("measure", Some("Thing"), Some(grdf_rdf::vocab::xsd::DOUBLE));
        let g = b.into_graph();
        assert!(g.has(
            &iri("urn:t#measure"),
            &iri(rdfs::RANGE),
            &iri(grdf_rdf::vocab::xsd::DOUBLE)
        ));
    }

    #[test]
    fn characteristics_and_inverse() {
        let mut b = OntologyBuilder::new("urn:t#");
        b.object_property("touches", None, None);
        b.characteristic("touches", Characteristic::Symmetric);
        b.object_property("contains", None, None);
        b.object_property("within", None, None);
        b.inverse_of("contains", "within");
        let g = b.into_graph();
        assert!(g.has(
            &iri("urn:t#touches"),
            &iri(rdf::TYPE),
            &iri(owl::SYMMETRIC_PROPERTY)
        ));
        assert!(g.has(
            &iri("urn:t#contains"),
            &iri(owl::INVERSE_OF),
            &iri("urn:t#within")
        ));
    }

    #[test]
    fn restriction_emits_list3_shape() {
        // Paper List 3: EnvelopeWithTimePeriod ⊑ =2 hasTimePosition.
        let mut b = OntologyBuilder::new("urn:t#");
        b.class("EnvelopeWithTimePeriod", Some("Envelope"));
        b.object_property("hasTimePosition", None, None);
        let r = b.restrict(
            "EnvelopeWithTimePeriod",
            "hasTimePosition",
            RestrictionKind::Exactly(2),
        );
        let g = b.into_graph();
        assert!(g.has(
            &iri("urn:t#EnvelopeWithTimePeriod"),
            &iri(rdfs::SUB_CLASS_OF),
            &r
        ));
        assert!(g.has(&r, &iri(rdf::TYPE), &iri(owl::RESTRICTION)));
        assert!(g.has(&r, &iri(owl::ON_PROPERTY), &iri("urn:t#hasTimePosition")));
        let card = g.object(&r, &iri(owl::CARDINALITY)).unwrap();
        assert_eq!(card.as_literal().unwrap().as_integer(), Some(2));
    }

    #[test]
    fn multiple_restrictions_get_distinct_nodes() {
        // Paper List 5: Face with maxCardinality on two properties and a
        // minCardinality on a third.
        let mut b = OntologyBuilder::new("urn:t#");
        b.class("Face", Some("TopoPrimitive"));
        let r1 = b.restrict("Face", "hasTopoSolid", RestrictionKind::AtMost(2));
        let r2 = b.restrict("Face", "hasSurface", RestrictionKind::AtMost(1));
        let r3 = b.restrict("Face", "hasEdge", RestrictionKind::AtLeast(1));
        assert_ne!(r1, r2);
        assert_ne!(r2, r3);
        let g = b.into_graph();
        assert_eq!(
            g.objects(&iri("urn:t#Face"), &iri(rdfs::SUB_CLASS_OF))
                .len(),
            4
        );
    }

    #[test]
    fn has_value_restriction() {
        let mut b = OntologyBuilder::new("urn:t#");
        b.class("Texan", None);
        let r = b.restrict(
            "Texan",
            "livesIn",
            RestrictionKind::HasValue(Term::iri("urn:t#texas")),
        );
        let g = b.into_graph();
        assert!(g.has(&r, &iri(owl::HAS_VALUE), &iri("urn:t#texas")));
    }

    #[test]
    fn labels_and_comments() {
        let mut b = OntologyBuilder::new("urn:t#");
        b.class("Feature", None);
        b.label("Feature", "Feature");
        b.comment("Feature", "An application object such as landfill.");
        let g = b.into_graph();
        assert!(g.has(
            &iri("urn:t#Feature"),
            &iri(rdfs::LABEL),
            &Term::string("Feature")
        ));
    }

    #[test]
    fn ontology_header_is_emitted() {
        let b = OntologyBuilder::new("urn:t#");
        let g = b.into_graph();
        assert!(g.has(&iri("urn:t"), &iri(rdf::TYPE), &iri(owl::ONTOLOGY)));
    }
}
