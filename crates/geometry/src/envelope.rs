//! Axis-aligned bounding boxes — `grdf:Envelope`, "a pair of coordinates
//! corresponding to the opposite corners of a feature" (paper §4).

use crate::coord::Coord;

/// An axis-aligned rectangle given by its lower-left and upper-right
/// corners.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Envelope {
    /// Lower-left corner (minimum x and y).
    pub min: Coord,
    /// Upper-right corner (maximum x and y).
    pub max: Coord,
}

impl Envelope {
    /// Envelope from two opposite corners (any order).
    pub fn new(a: Coord, b: Coord) -> Envelope {
        Envelope {
            min: Coord::xyz(a.x.min(b.x), a.y.min(b.y), a.z.min(b.z)),
            max: Coord::xyz(a.x.max(b.x), a.y.max(b.y), a.z.max(b.z)),
        }
    }

    /// Degenerate envelope containing exactly one point.
    pub fn of_point(c: Coord) -> Envelope {
        Envelope { min: c, max: c }
    }

    /// Smallest envelope containing all `coords`; `None` when empty.
    pub fn of_coords(coords: &[Coord]) -> Option<Envelope> {
        let first = *coords.first()?;
        let mut env = Envelope::of_point(first);
        for c in &coords[1..] {
            env.expand_to(c);
        }
        Some(env)
    }

    /// Grow to include `c`.
    pub fn expand_to(&mut self, c: &Coord) {
        self.min.x = self.min.x.min(c.x);
        self.min.y = self.min.y.min(c.y);
        self.min.z = self.min.z.min(c.z);
        self.max.x = self.max.x.max(c.x);
        self.max.y = self.max.y.max(c.y);
        self.max.z = self.max.z.max(c.z);
    }

    /// Smallest envelope containing both.
    #[must_use]
    pub fn union(&self, other: &Envelope) -> Envelope {
        let mut e = *self;
        e.expand_to(&other.min);
        e.expand_to(&other.max);
        e
    }

    /// Width along x.
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Height along y.
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Planar area.
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Center point.
    pub fn center(&self) -> Coord {
        self.min.midpoint(&self.max)
    }

    /// Whether `c` lies inside or on the boundary (planar test).
    pub fn contains(&self, c: &Coord) -> bool {
        c.x >= self.min.x && c.x <= self.max.x && c.y >= self.min.y && c.y <= self.max.y
    }

    /// Whether `other` lies entirely within this envelope.
    pub fn contains_envelope(&self, other: &Envelope) -> bool {
        self.contains(&other.min) && self.contains(&other.max)
    }

    /// Whether the two rectangles share any point (boundary touch counts).
    pub fn intersects(&self, other: &Envelope) -> bool {
        self.min.x <= other.max.x
            && self.max.x >= other.min.x
            && self.min.y <= other.max.y
            && self.max.y >= other.min.y
    }

    /// The overlapping rectangle, when any.
    pub fn intersection(&self, other: &Envelope) -> Option<Envelope> {
        if !self.intersects(other) {
            return None;
        }
        Some(Envelope {
            min: Coord::xy(self.min.x.max(other.min.x), self.min.y.max(other.min.y)),
            max: Coord::xy(self.max.x.min(other.max.x), self.max.y.min(other.max.y)),
        })
    }

    /// Envelope expanded by `margin` on every side.
    #[must_use]
    pub fn buffered(&self, margin: f64) -> Envelope {
        Envelope {
            min: Coord::xyz(self.min.x - margin, self.min.y - margin, self.min.z),
            max: Coord::xyz(self.max.x + margin, self.max.y + margin, self.max.z),
        }
    }

    /// Minimum planar distance from `c` to this rectangle (0 when inside).
    pub fn distance_to(&self, c: &Coord) -> f64 {
        let dx = (self.min.x - c.x).max(0.0).max(c.x - self.max.x);
        let dy = (self.min.y - c.y).max(0.0).max(c.y - self.max.y);
        dx.hypot(dy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(x0: f64, y0: f64, x1: f64, y1: f64) -> Envelope {
        Envelope::new(Coord::xy(x0, y0), Coord::xy(x1, y1))
    }

    #[test]
    fn corners_normalize() {
        let e = Envelope::new(Coord::xy(5.0, 1.0), Coord::xy(2.0, 7.0));
        assert_eq!(e.min, Coord::xy(2.0, 1.0));
        assert_eq!(e.max, Coord::xy(5.0, 7.0));
    }

    #[test]
    fn of_coords_spans_all() {
        let e = Envelope::of_coords(&[
            Coord::xy(1.0, 1.0),
            Coord::xy(-2.0, 4.0),
            Coord::xy(3.0, 0.5),
        ])
        .unwrap();
        assert_eq!(e.min, Coord::xy(-2.0, 0.5));
        assert_eq!(e.max, Coord::xy(3.0, 4.0));
        assert!(Envelope::of_coords(&[]).is_none());
    }

    #[test]
    fn geometry_predicates() {
        let a = env(0.0, 0.0, 10.0, 10.0);
        let b = env(5.0, 5.0, 15.0, 15.0);
        let c = env(11.0, 11.0, 12.0, 12.0);
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        assert!(a.contains(&Coord::xy(10.0, 10.0)), "boundary inclusive");
        assert!(!a.contains(&Coord::xy(10.1, 0.0)));
        assert!(a.contains_envelope(&env(1.0, 1.0, 2.0, 2.0)));
        assert!(!a.contains_envelope(&b));
    }

    #[test]
    fn intersection_rectangle() {
        let a = env(0.0, 0.0, 10.0, 10.0);
        let b = env(5.0, 5.0, 15.0, 15.0);
        let i = a.intersection(&b).unwrap();
        assert_eq!(i, env(5.0, 5.0, 10.0, 10.0));
        assert!(a.intersection(&env(20.0, 20.0, 30.0, 30.0)).is_none());
    }

    #[test]
    fn union_area_center() {
        let a = env(0.0, 0.0, 2.0, 2.0);
        let b = env(4.0, 4.0, 6.0, 6.0);
        let u = a.union(&b);
        assert_eq!(u, env(0.0, 0.0, 6.0, 6.0));
        assert_eq!(u.area(), 36.0);
        assert_eq!(u.center(), Coord::xy(3.0, 3.0));
    }

    #[test]
    fn touching_envelopes_intersect() {
        let a = env(0.0, 0.0, 1.0, 1.0);
        let b = env(1.0, 0.0, 2.0, 1.0);
        assert!(a.intersects(&b));
        assert_eq!(a.intersection(&b).unwrap().area(), 0.0);
    }

    #[test]
    fn buffer_and_distance() {
        let a = env(0.0, 0.0, 2.0, 2.0);
        assert_eq!(a.buffered(1.0), env(-1.0, -1.0, 3.0, 3.0));
        assert_eq!(a.distance_to(&Coord::xy(1.0, 1.0)), 0.0);
        assert_eq!(a.distance_to(&Coord::xy(5.0, 2.0)), 3.0);
        assert_eq!(a.distance_to(&Coord::xy(5.0, 6.0)), 5.0);
    }
}
