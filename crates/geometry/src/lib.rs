//! The GRDF geometry model (paper §5).
//!
//! "A point is the most basic and indecomposable form of geometry. A curve
//! is a one-dimensional form defined in terms of anchor points. A surface is
//! a two-dimensional form that defines an area with three or more anchor
//! points. The solid class denotes a three-dimensional object's shape [...]
//! All of the forms can be defined as a singular entity or a multipart
//! entity" — with the three multipart flavours *Multi* (bag of same base
//! type, no nesting), *Composite* (contiguous, nesting allowed) and
//! *Complex* (arbitrary combination), plus *Ring* (closed curve).
//!
//! Modules:
//!
//! * [`coord`] — coordinates and basic vector math.
//! * [`envelope`] — axis-aligned bounding boxes (`grdf:Envelope`).
//! * [`primitives`] — Point, LineString, Arc, Curve, Ring, Polygon,
//!   Surface, Solid.
//! * [`multi`] — Multi/Composite/Complex aggregates with the paper's
//!   structural rules (Multi: flat; Composite: contiguous; Complex: mixed).
//! * [`geometry`] — the [`geometry::Geometry`] sum type with shared
//!   operations (dimension, envelope, validity, vertex count).
//! * [`algorithms`] — planar computational geometry (length, area,
//!   centroid, distances, point-in-polygon, segment intersection, convex
//!   hull, polyline simplification).
//! * [`crs`] — coordinate reference systems (`grdf:CRS`): a registry with
//!   geographic and projected systems and transformations between them.
//! * [`wkt`] — Well-Known-Text rendering and parsing for the primitive
//!   shapes (used by examples and debug output).

pub mod algorithms;
pub mod clip;
pub mod coord;
pub mod crs;
pub mod envelope;
pub mod geometry;
pub mod multi;
pub mod primitives;
pub mod rtree;
pub mod wkt;

pub use clip::{clip_polygon, clip_polyline, clip_segment};
pub use coord::Coord;
pub use crs::{Crs, CrsKind, CrsRegistry};
pub use envelope::Envelope;
pub use geometry::Geometry;
pub use multi::{
    CompositeCurve, CompositeSurface, GeometryComplex, MultiCurve, MultiPoint, MultiSurface,
};
pub use primitives::{Arc, Curve, CurveSegment, LineString, Point, Polygon, Ring, Solid, Surface};
pub use rtree::RTree;
