//! Planar computational geometry used across the workspace: shoelace area,
//! centroids, distances, point-in-polygon, segment intersection, convex
//! hull, and Douglas–Peucker simplification.

use crate::coord::Coord;

/// Signed (shoelace) area of a closed coordinate loop (first == last or
/// implicitly closed); positive for counter-clockwise winding.
pub fn shoelace(coords: &[Coord]) -> f64 {
    if coords.len() < 3 {
        return 0.0;
    }
    let mut sum = 0.0;
    for i in 0..coords.len() {
        let a = coords[i];
        let b = coords[(i + 1) % coords.len()];
        sum += a.x * b.y - b.x * a.y;
    }
    sum / 2.0
}

/// Area centroid of a closed loop; degenerate loops fall back to the vertex
/// mean.
pub fn ring_centroid(coords: &[Coord]) -> Coord {
    let a = shoelace(coords);
    if a.abs() < 1e-12 {
        let n = coords.len().max(1) as f64;
        let (sx, sy) = coords
            .iter()
            .fold((0.0, 0.0), |(sx, sy), c| (sx + c.x, sy + c.y));
        return Coord::xy(sx / n, sy / n);
    }
    let (mut cx, mut cy) = (0.0, 0.0);
    for i in 0..coords.len() {
        let p = coords[i];
        let q = coords[(i + 1) % coords.len()];
        let f = p.x * q.y - q.x * p.y;
        cx += (p.x + q.x) * f;
        cy += (p.y + q.y) * f;
    }
    Coord::xy(cx / (6.0 * a), cy / (6.0 * a))
}

/// Minimum distance from point `p` to segment `a`–`b`.
pub fn point_segment_distance(p: &Coord, a: &Coord, b: &Coord) -> f64 {
    let ab = (b.x - a.x, b.y - a.y);
    let len2 = ab.0 * ab.0 + ab.1 * ab.1;
    if len2 == 0.0 {
        return p.distance_2d(a);
    }
    let t = (((p.x - a.x) * ab.0 + (p.y - a.y) * ab.1) / len2).clamp(0.0, 1.0);
    let proj = Coord::xy(a.x + t * ab.0, a.y + t * ab.1);
    p.distance_2d(&proj)
}

/// Ray-casting point-in-ring test; points on the boundary count as inside.
/// `ring` may be open or closed (first == last).
pub fn point_in_ring(p: &Coord, ring: &[Coord]) -> bool {
    let n = ring.len();
    if n < 3 {
        return false;
    }
    // Boundary check first (makes the test deterministic on edges).
    for i in 0..n {
        let a = ring[i];
        let b = ring[(i + 1) % n];
        if point_segment_distance(p, &a, &b) < 1e-9 {
            return true;
        }
    }
    let mut inside = false;
    let mut j = n - 1;
    for i in 0..n {
        let (pi, pj) = (ring[i], ring[j]);
        if ((pi.y > p.y) != (pj.y > p.y))
            && (p.x < (pj.x - pi.x) * (p.y - pi.y) / (pj.y - pi.y) + pi.x)
        {
            inside = !inside;
        }
        j = i;
    }
    inside
}

/// Whether segments `a1`–`a2` and `b1`–`b2` intersect (touching counts).
pub fn segments_intersect(a1: &Coord, a2: &Coord, b1: &Coord, b2: &Coord) -> bool {
    fn orient(p: &Coord, q: &Coord, r: &Coord) -> f64 {
        (q.x - p.x) * (r.y - p.y) - (q.y - p.y) * (r.x - p.x)
    }
    fn on_segment(p: &Coord, q: &Coord, r: &Coord) -> bool {
        q.x >= p.x.min(r.x) && q.x <= p.x.max(r.x) && q.y >= p.y.min(r.y) && q.y <= p.y.max(r.y)
    }
    let d1 = orient(b1, b2, a1);
    let d2 = orient(b1, b2, a2);
    let d3 = orient(a1, a2, b1);
    let d4 = orient(a1, a2, b2);
    if ((d1 > 0.0 && d2 < 0.0) || (d1 < 0.0 && d2 > 0.0))
        && ((d3 > 0.0 && d4 < 0.0) || (d3 < 0.0 && d4 > 0.0))
    {
        return true;
    }
    (d1 == 0.0 && on_segment(b1, a1, b2))
        || (d2 == 0.0 && on_segment(b1, a2, b2))
        || (d3 == 0.0 && on_segment(a1, b1, a2))
        || (d4 == 0.0 && on_segment(a1, b2, a2))
}

/// Intersection point of two segments when they properly cross.
pub fn segment_intersection(a1: &Coord, a2: &Coord, b1: &Coord, b2: &Coord) -> Option<Coord> {
    let d = (a2.x - a1.x) * (b2.y - b1.y) - (a2.y - a1.y) * (b2.x - b1.x);
    if d.abs() < 1e-12 {
        return None; // parallel or collinear
    }
    let t = ((b1.x - a1.x) * (b2.y - b1.y) - (b1.y - a1.y) * (b2.x - b1.x)) / d;
    let u = ((b1.x - a1.x) * (a2.y - a1.y) - (b1.y - a1.y) * (a2.x - a1.x)) / d;
    if (0.0..=1.0).contains(&t) && (0.0..=1.0).contains(&u) {
        Some(Coord::xy(
            a1.x + t * (a2.x - a1.x),
            a1.y + t * (a2.y - a1.y),
        ))
    } else {
        None
    }
}

/// Whether a polyline crosses (or touches) another polyline anywhere.
pub fn polylines_intersect(a: &[Coord], b: &[Coord]) -> bool {
    for wa in a.windows(2) {
        for wb in b.windows(2) {
            if segments_intersect(&wa[0], &wa[1], &wb[0], &wb[1]) {
                return true;
            }
        }
    }
    false
}

/// Andrew's monotone-chain convex hull; returns the hull counter-clockwise
/// without repeating the first point. Inputs with < 3 points return the
/// (deduplicated, sorted) input.
pub fn convex_hull(points: &[Coord]) -> Vec<Coord> {
    let mut pts: Vec<Coord> = points.to_vec();
    pts.sort_by(|a, b| {
        a.x.partial_cmp(&b.x)
            .unwrap()
            .then(a.y.partial_cmp(&b.y).unwrap())
    });
    pts.dedup_by(|a, b| a.approx_eq(b, 1e-12));
    let n = pts.len();
    if n < 3 {
        return pts;
    }
    let mut hull: Vec<Coord> = Vec::with_capacity(2 * n);
    // Lower hull.
    for &p in &pts {
        while hull.len() >= 2 {
            let q = hull[hull.len() - 1];
            let r = hull[hull.len() - 2];
            if r.cross(&q, &p) <= 0.0 {
                hull.pop();
            } else {
                break;
            }
        }
        hull.push(p);
    }
    // Upper hull.
    let lower_len = hull.len() + 1;
    for &p in pts.iter().rev().skip(1) {
        while hull.len() >= lower_len {
            let q = hull[hull.len() - 1];
            let r = hull[hull.len() - 2];
            if r.cross(&q, &p) <= 0.0 {
                hull.pop();
            } else {
                break;
            }
        }
        hull.push(p);
    }
    hull.pop(); // last point equals the first
    hull
}

/// Douglas–Peucker polyline simplification with tolerance `eps`.
pub fn simplify(coords: &[Coord], eps: f64) -> Vec<Coord> {
    if coords.len() < 3 {
        return coords.to_vec();
    }
    let mut keep = vec![false; coords.len()];
    keep[0] = true;
    keep[coords.len() - 1] = true;
    let mut stack = vec![(0usize, coords.len() - 1)];
    while let Some((lo, hi)) = stack.pop() {
        if hi <= lo + 1 {
            continue;
        }
        let (mut best, mut best_d) = (lo, -1.0f64);
        for i in (lo + 1)..hi {
            let d = point_segment_distance(&coords[i], &coords[lo], &coords[hi]);
            if d > best_d {
                best = i;
                best_d = d;
            }
        }
        if best_d > eps {
            keep[best] = true;
            stack.push((lo, best));
            stack.push((best, hi));
        }
    }
    coords
        .iter()
        .zip(keep)
        .filter_map(|(c, k)| k.then_some(*c))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(x: f64, y: f64) -> Coord {
        Coord::xy(x, y)
    }

    #[test]
    fn shoelace_square() {
        let sq = [c(0.0, 0.0), c(2.0, 0.0), c(2.0, 2.0), c(0.0, 2.0)];
        assert_eq!(shoelace(&sq), 4.0);
        let mut cw = sq.to_vec();
        cw.reverse();
        assert_eq!(shoelace(&cw), -4.0);
        assert_eq!(shoelace(&sq[..2]), 0.0);
    }

    #[test]
    fn centroid_of_l_shape() {
        // L-shaped hexagon: centroid must be area-weighted, not vertex mean.
        let l = [
            c(0.0, 0.0),
            c(2.0, 0.0),
            c(2.0, 1.0),
            c(1.0, 1.0),
            c(1.0, 2.0),
            c(0.0, 2.0),
        ];
        let g = ring_centroid(&l);
        // Two unit-area squares: (1.0,0.5) and (0.5,1.5) → mean weighted by
        // areas 2 and 1: actually squares [0,2]x[0,1] (area 2, c=(1,.5)) and
        // [0,1]x[1,2] (area 1, c=(.5,1.5)) → ((2*1+1*.5)/3, (2*.5+1*1.5)/3).
        assert!(g.approx_eq(&c(2.5 / 3.0, 2.5 / 3.0), 1e-9), "{g:?}");
    }

    #[test]
    fn degenerate_centroid_falls_back() {
        let line = [c(0.0, 0.0), c(2.0, 0.0)];
        assert!(ring_centroid(&line).approx_eq(&c(1.0, 0.0), 1e-9));
    }

    #[test]
    fn point_segment_distance_cases() {
        let a = c(0.0, 0.0);
        let b = c(10.0, 0.0);
        assert_eq!(point_segment_distance(&c(5.0, 2.0), &a, &b), 2.0);
        assert_eq!(point_segment_distance(&c(-3.0, 4.0), &a, &b), 5.0);
        assert_eq!(point_segment_distance(&c(13.0, 4.0), &a, &b), 5.0);
        assert_eq!(
            point_segment_distance(&c(4.0, 0.0), &a, &a),
            4.0,
            "zero-length segment"
        );
    }

    #[test]
    fn point_in_ring_basic() {
        let sq = [c(0.0, 0.0), c(4.0, 0.0), c(4.0, 4.0), c(0.0, 4.0)];
        assert!(point_in_ring(&c(2.0, 2.0), &sq));
        assert!(!point_in_ring(&c(5.0, 2.0), &sq));
        assert!(point_in_ring(&c(4.0, 2.0), &sq), "boundary is inside");
        assert!(point_in_ring(&c(0.0, 0.0), &sq), "vertex is inside");
    }

    #[test]
    fn point_in_concave_ring() {
        let l = [
            c(0.0, 0.0),
            c(4.0, 0.0),
            c(4.0, 1.0),
            c(1.0, 1.0),
            c(1.0, 4.0),
            c(0.0, 4.0),
        ];
        assert!(point_in_ring(&c(0.5, 3.0), &l));
        assert!(!point_in_ring(&c(3.0, 3.0), &l), "in the notch");
    }

    #[test]
    fn segment_intersection_cases() {
        assert!(segments_intersect(
            &c(0.0, 0.0),
            &c(4.0, 4.0),
            &c(0.0, 4.0),
            &c(4.0, 0.0)
        ));
        assert!(!segments_intersect(
            &c(0.0, 0.0),
            &c(1.0, 1.0),
            &c(2.0, 2.0),
            &c(3.0, 3.0)
        ));
        // Touching at an endpoint counts.
        assert!(segments_intersect(
            &c(0.0, 0.0),
            &c(2.0, 0.0),
            &c(2.0, 0.0),
            &c(3.0, 5.0)
        ));
        let x =
            segment_intersection(&c(0.0, 0.0), &c(4.0, 4.0), &c(0.0, 4.0), &c(4.0, 0.0)).unwrap();
        assert!(x.approx_eq(&c(2.0, 2.0), 1e-9));
        assert!(
            segment_intersection(&c(0.0, 0.0), &c(1.0, 0.0), &c(0.0, 1.0), &c(1.0, 1.0)).is_none()
        );
    }

    #[test]
    fn polylines_intersect_checks_all_pairs() {
        let a = [c(0.0, 0.0), c(10.0, 0.0)];
        let b = [c(5.0, -1.0), c(5.0, 1.0)];
        let d = [c(5.0, 2.0), c(5.0, 3.0)];
        assert!(polylines_intersect(&a, &b));
        assert!(!polylines_intersect(&a, &d));
    }

    #[test]
    fn convex_hull_square_with_interior_points() {
        let pts = [
            c(0.0, 0.0),
            c(4.0, 0.0),
            c(4.0, 4.0),
            c(0.0, 4.0),
            c(2.0, 2.0),
            c(1.0, 3.0),
        ];
        let hull = convex_hull(&pts);
        assert_eq!(hull.len(), 4);
        assert!(shoelace(&hull) > 0.0, "CCW hull");
    }

    #[test]
    fn convex_hull_collinear_and_tiny() {
        let collinear = [c(0.0, 0.0), c(1.0, 1.0), c(2.0, 2.0)];
        let hull = convex_hull(&collinear);
        assert_eq!(hull.len(), 2, "degenerate hull keeps the extremes");
        assert_eq!(convex_hull(&[c(1.0, 1.0)]).len(), 1);
    }

    #[test]
    fn simplify_drops_near_collinear_points() {
        let line = [
            c(0.0, 0.0),
            c(1.0, 0.01),
            c(2.0, -0.01),
            c(3.0, 0.0),
            c(3.0, 5.0),
        ];
        let s = simplify(&line, 0.1);
        assert_eq!(s.len(), 3);
        assert_eq!(s[0], c(0.0, 0.0));
        assert_eq!(s[1], c(3.0, 0.0));
        assert_eq!(s[2], c(3.0, 5.0));
        // Tolerance zero keeps everything.
        assert_eq!(simplify(&line, 0.0).len(), 5);
    }
}
