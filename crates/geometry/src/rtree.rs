//! A packed R-tree over envelopes (Sort-Tile-Recursive bulk load plus
//! incremental insertion), used by the GRDF store to answer spatial window
//! and nearest-neighbour probes without scanning every feature.

use crate::coord::Coord;
use crate::envelope::Envelope;

const MAX_ENTRIES: usize = 8;

/// An R-tree mapping envelopes to caller-supplied values.
#[derive(Debug, Clone)]
pub struct RTree<T> {
    root: Option<Node<T>>,
    len: usize,
}

#[derive(Debug, Clone)]
enum Node<T> {
    Leaf {
        bbox: Envelope,
        entries: Vec<(Envelope, T)>,
    },
    Inner {
        bbox: Envelope,
        children: Vec<Node<T>>,
    },
}

impl<T> Node<T> {
    fn bbox(&self) -> Envelope {
        match self {
            Node::Leaf { bbox, .. } | Node::Inner { bbox, .. } => *bbox,
        }
    }

    fn recompute_bbox(&mut self) {
        match self {
            Node::Leaf { bbox, entries } => {
                *bbox = union_all(entries.iter().map(|(e, _)| *e));
            }
            Node::Inner { bbox, children } => {
                *bbox = union_all(children.iter().map(Node::bbox));
            }
        }
    }

    fn count(&self) -> usize {
        match self {
            Node::Leaf { entries, .. } => entries.len(),
            Node::Inner { children, .. } => children.iter().map(Node::count).sum(),
        }
    }
}

fn union_all<I: IntoIterator<Item = Envelope>>(iter: I) -> Envelope {
    iter.into_iter()
        .reduce(|a, b| a.union(&b))
        .unwrap_or(Envelope::of_point(Coord::xy(0.0, 0.0)))
}

impl<T> Default for RTree<T> {
    fn default() -> Self {
        RTree { root: None, len: 0 }
    }
}

impl<T: Clone> RTree<T> {
    /// Empty tree.
    pub fn new() -> RTree<T> {
        RTree::default()
    }

    /// Bulk-load with Sort-Tile-Recursive packing (better quality than
    /// repeated insertion for static datasets).
    pub fn bulk_load(mut items: Vec<(Envelope, T)>) -> RTree<T> {
        let len = items.len();
        if items.is_empty() {
            return RTree::new();
        }
        // STR: sort by center x, slice, sort slices by center y, pack.
        items.sort_by(|a, b| {
            a.0.center()
                .x
                .partial_cmp(&b.0.center().x)
                .expect("finite coordinates")
        });
        let leaf_count = len.div_ceil(MAX_ENTRIES);
        let slices = (leaf_count as f64).sqrt().ceil() as usize;
        let per_slice = len.div_ceil(slices.max(1));
        let mut leaves: Vec<Node<T>> = Vec::new();
        for slice in items.chunks(per_slice.max(1)) {
            let mut slice: Vec<(Envelope, T)> = slice.to_vec();
            slice.sort_by(|a, b| {
                a.0.center()
                    .y
                    .partial_cmp(&b.0.center().y)
                    .expect("finite coordinates")
            });
            for chunk in slice.chunks(MAX_ENTRIES) {
                let entries: Vec<(Envelope, T)> = chunk.to_vec();
                let mut leaf = Node::Leaf {
                    bbox: Envelope::of_point(Coord::xy(0.0, 0.0)),
                    entries,
                };
                leaf.recompute_bbox();
                leaves.push(leaf);
            }
        }
        // Pack upward.
        let mut level = leaves;
        while level.len() > 1 {
            let mut next: Vec<Node<T>> = Vec::new();
            for chunk in level.chunks(MAX_ENTRIES) {
                let children: Vec<Node<T>> = chunk.to_vec();
                let mut inner = Node::Inner {
                    bbox: Envelope::of_point(Coord::xy(0.0, 0.0)),
                    children,
                };
                inner.recompute_bbox();
                next.push(inner);
            }
            level = next;
        }
        RTree {
            root: level.pop(),
            len,
        }
    }

    /// Number of stored items.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert one item (least-enlargement descent; node split at
    /// `MAX_ENTRIES`).
    pub fn insert(&mut self, envelope: Envelope, value: T) {
        self.len += 1;
        match self.root.take() {
            None => {
                self.root = Some(Node::Leaf {
                    bbox: envelope,
                    entries: vec![(envelope, value)],
                });
            }
            Some(mut root) => {
                if let Some(sibling) = insert_rec(&mut root, envelope, value) {
                    let mut new_root = Node::Inner {
                        bbox: Envelope::of_point(Coord::xy(0.0, 0.0)),
                        children: vec![root, sibling],
                    };
                    new_root.recompute_bbox();
                    self.root = Some(new_root);
                } else {
                    self.root = Some(root);
                }
            }
        }
    }

    /// All values whose envelope intersects `window`.
    pub fn query(&self, window: &Envelope) -> Vec<&T> {
        let mut out = Vec::new();
        if let Some(root) = &self.root {
            query_rec(root, window, &mut out);
        }
        out
    }

    /// Count of intersecting items (no materialization).
    pub fn count_in(&self, window: &Envelope) -> usize {
        self.query(window).len()
    }

    /// The value whose envelope center is nearest to `point`
    /// (branch-and-bound on envelope distance).
    pub fn nearest(&self, point: &Coord) -> Option<&T> {
        let root = self.root.as_ref()?;
        let mut best: Option<(f64, &T)> = None;
        nearest_rec(root, point, &mut best);
        best.map(|(_, v)| v)
    }

    /// Structural invariant check (used by property tests): every parent
    /// bbox contains all child bboxes, and the item count matches.
    pub fn validate(&self) -> bool {
        match &self.root {
            None => self.len == 0,
            Some(root) => validate_rec(root) && root.count() == self.len,
        }
    }
}

fn insert_rec<T>(node: &mut Node<T>, envelope: Envelope, value: T) -> Option<Node<T>> {
    match node {
        Node::Leaf { bbox, entries } => {
            entries.push((envelope, value));
            *bbox = bbox.union(&envelope);
            if entries.len() > MAX_ENTRIES {
                // Split along the axis with the larger spread of centers.
                let spread_x = spread(entries.iter().map(|(e, _)| e.center().x));
                let spread_y = spread(entries.iter().map(|(e, _)| e.center().y));
                if spread_x >= spread_y {
                    entries.sort_by(|a, b| {
                        a.0.center().x.partial_cmp(&b.0.center().x).expect("finite")
                    });
                } else {
                    entries.sort_by(|a, b| {
                        a.0.center().y.partial_cmp(&b.0.center().y).expect("finite")
                    });
                }
                let right = entries.split_off(entries.len() / 2);
                let mut sibling = Node::Leaf {
                    bbox: Envelope::of_point(Coord::xy(0.0, 0.0)),
                    entries: right,
                };
                sibling.recompute_bbox();
                node.recompute_bbox();
                return Some(sibling);
            }
            None
        }
        Node::Inner { bbox, children } => {
            *bbox = bbox.union(&envelope);
            // Least enlargement.
            let idx = children
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| {
                    let ea = enlargement(&a.bbox(), &envelope);
                    let eb = enlargement(&b.bbox(), &envelope);
                    ea.partial_cmp(&eb).expect("finite")
                })
                .map(|(i, _)| i)
                .expect("inner nodes are non-empty");
            if let Some(sibling) = insert_rec(&mut children[idx], envelope, value) {
                children.push(sibling);
                if children.len() > MAX_ENTRIES {
                    children.sort_by(|a, b| {
                        a.bbox()
                            .center()
                            .x
                            .partial_cmp(&b.bbox().center().x)
                            .expect("finite")
                    });
                    let right = children.split_off(children.len() / 2);
                    let mut sibling = Node::Inner {
                        bbox: Envelope::of_point(Coord::xy(0.0, 0.0)),
                        children: right,
                    };
                    sibling.recompute_bbox();
                    node.recompute_bbox();
                    return Some(sibling);
                }
            }
            node.recompute_bbox();
            None
        }
    }
}

fn spread<I: Iterator<Item = f64>>(iter: I) -> f64 {
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for v in iter {
        min = min.min(v);
        max = max.max(v);
    }
    (max - min).max(0.0)
}

fn enlargement(bbox: &Envelope, add: &Envelope) -> f64 {
    bbox.union(add).area() - bbox.area()
}

fn query_rec<'a, T>(node: &'a Node<T>, window: &Envelope, out: &mut Vec<&'a T>) {
    if !node.bbox().intersects(window) {
        return;
    }
    match node {
        Node::Leaf { entries, .. } => {
            for (e, v) in entries {
                if e.intersects(window) {
                    out.push(v);
                }
            }
        }
        Node::Inner { children, .. } => {
            for c in children {
                query_rec(c, window, out);
            }
        }
    }
}

fn nearest_rec<'a, T>(node: &'a Node<T>, point: &Coord, best: &mut Option<(f64, &'a T)>) {
    if let Some((d, _)) = best {
        if node.bbox().distance_to(point) > *d {
            return;
        }
    }
    match node {
        Node::Leaf { entries, .. } => {
            for (e, v) in entries {
                let d = e.center().distance_2d(point);
                if best.as_ref().is_none_or(|(bd, _)| d < *bd) {
                    *best = Some((d, v));
                }
            }
        }
        Node::Inner { children, .. } => {
            // Visit nearer children first for tighter pruning.
            let mut order: Vec<&Node<T>> = children.iter().collect();
            order.sort_by(|a, b| {
                a.bbox()
                    .distance_to(point)
                    .partial_cmp(&b.bbox().distance_to(point))
                    .expect("finite")
            });
            for c in order {
                nearest_rec(c, point, best);
            }
        }
    }
}

fn validate_rec<T>(node: &Node<T>) -> bool {
    match node {
        Node::Leaf { bbox, entries } => entries.iter().all(|(e, _)| bbox.contains_envelope(e)),
        Node::Inner { bbox, children } => {
            !children.is_empty()
                && children.iter().all(|c| bbox.contains_envelope(&c.bbox()))
                && children.iter().all(validate_rec)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_items(n: usize) -> Vec<(Envelope, usize)> {
        (0..n)
            .map(|i| {
                let x = (i % 100) as f64 * 10.0;
                let y = (i / 100) as f64 * 10.0;
                (
                    Envelope::new(Coord::xy(x, y), Coord::xy(x + 5.0, y + 5.0)),
                    i,
                )
            })
            .collect()
    }

    fn brute_force(items: &[(Envelope, usize)], window: &Envelope) -> Vec<usize> {
        let mut v: Vec<usize> = items
            .iter()
            .filter(|(e, _)| e.intersects(window))
            .map(|(_, i)| *i)
            .collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn bulk_load_queries_match_brute_force() {
        let items = grid_items(500);
        let tree = RTree::bulk_load(items.clone());
        assert!(tree.validate());
        assert_eq!(tree.len(), 500);
        for window in [
            Envelope::new(Coord::xy(0.0, 0.0), Coord::xy(50.0, 50.0)),
            Envelope::new(Coord::xy(333.0, 7.0), Coord::xy(444.0, 33.0)),
            Envelope::new(Coord::xy(-100.0, -100.0), Coord::xy(-1.0, -1.0)),
            Envelope::new(Coord::xy(0.0, 0.0), Coord::xy(10_000.0, 10_000.0)),
        ] {
            let mut got: Vec<usize> = tree.query(&window).into_iter().copied().collect();
            got.sort_unstable();
            assert_eq!(got, brute_force(&items, &window), "window {window:?}");
        }
    }

    #[test]
    fn incremental_insert_matches_brute_force() {
        let items = grid_items(300);
        let mut tree = RTree::new();
        for (e, i) in &items {
            tree.insert(*e, *i);
        }
        assert!(tree.validate());
        assert_eq!(tree.len(), 300);
        let window = Envelope::new(Coord::xy(100.0, 0.0), Coord::xy(200.0, 30.0));
        let mut got: Vec<usize> = tree.query(&window).into_iter().copied().collect();
        got.sort_unstable();
        assert_eq!(got, brute_force(&items, &window));
    }

    #[test]
    fn empty_tree() {
        let tree: RTree<u32> = RTree::new();
        assert!(tree.is_empty());
        assert!(tree.validate());
        assert!(tree
            .query(&Envelope::new(Coord::xy(0.0, 0.0), Coord::xy(1.0, 1.0)))
            .is_empty());
        assert!(tree.nearest(&Coord::xy(0.0, 0.0)).is_none());
        let empty_bulk: RTree<u32> = RTree::bulk_load(vec![]);
        assert!(empty_bulk.is_empty());
    }

    #[test]
    fn nearest_finds_closest_center() {
        let items = grid_items(400);
        let tree = RTree::bulk_load(items);
        // Envelope centers are at (x+2.5, y+2.5) for multiples of 10.
        let got = *tree.nearest(&Coord::xy(52.0, 32.0)).unwrap();
        // Closest center: x=52.5 (i%100==5), y=32.5 (i/100==3) → i=305.
        assert_eq!(got, 305);
    }

    #[test]
    fn single_item() {
        let mut tree = RTree::new();
        tree.insert(Envelope::of_point(Coord::xy(3.0, 4.0)), "only");
        assert_eq!(
            tree.count_in(&Envelope::new(Coord::xy(0.0, 0.0), Coord::xy(5.0, 5.0))),
            1
        );
        assert_eq!(tree.nearest(&Coord::xy(0.0, 0.0)), Some(&"only"));
    }

    #[test]
    fn mixed_bulk_then_insert() {
        let items = grid_items(100);
        let mut tree = RTree::bulk_load(items.clone());
        for i in 100..150 {
            let x = i as f64 * 3.0;
            tree.insert(Envelope::of_point(Coord::xy(x, x)), i);
        }
        assert_eq!(tree.len(), 150);
        assert!(tree.validate());
        let all = tree.count_in(&Envelope::new(Coord::xy(-1e6, -1e6), Coord::xy(1e6, 1e6)));
        assert_eq!(all, 150);
    }
}
