//! Geometric primitives: Point, LineString, Arc, Curve, Ring, Polygon,
//! Surface, Solid — the singular forms of the paper's geometry ontology.

use crate::algorithms;
use crate::coord::Coord;
use crate::envelope::Envelope;

/// Zero-dimensional primitive: "the most basic and indecomposable form of
/// geometry".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// The position.
    pub coord: Coord,
}

impl Point {
    /// Planar point.
    pub fn new(x: f64, y: f64) -> Point {
        Point {
            coord: Coord::xy(x, y),
        }
    }

    /// Point from a coordinate.
    pub fn at(coord: Coord) -> Point {
        Point { coord }
    }

    /// Its (degenerate) envelope.
    pub fn envelope(&self) -> Envelope {
        Envelope::of_point(self.coord)
    }
}

/// A polyline: straight segments through anchor points.
#[derive(Debug, Clone, PartialEq)]
pub struct LineString {
    /// At least two anchor points.
    pub coords: Vec<Coord>,
}

impl LineString {
    /// Build from coordinates; returns `None` with fewer than two points.
    pub fn new(coords: Vec<Coord>) -> Option<LineString> {
        (coords.len() >= 2).then_some(LineString { coords })
    }

    /// Total length in the plane.
    pub fn length(&self) -> f64 {
        self.coords
            .windows(2)
            .map(|w| w[0].distance_2d(&w[1]))
            .sum()
    }

    /// First anchor point.
    pub fn start(&self) -> Coord {
        self.coords[0]
    }

    /// Last anchor point.
    pub fn end(&self) -> Coord {
        *self.coords.last().expect("non-empty by construction")
    }

    /// Whether start equals end (within `eps`).
    pub fn is_closed(&self, eps: f64) -> bool {
        self.start().approx_eq(&self.end(), eps)
    }

    /// Bounding box.
    pub fn envelope(&self) -> Envelope {
        Envelope::of_coords(&self.coords).expect("non-empty by construction")
    }

    /// Point at parametric position `t ∈ [0,1]` along the arc length.
    pub fn interpolate(&self, t: f64) -> Coord {
        let t = t.clamp(0.0, 1.0);
        let total = self.length();
        if total == 0.0 {
            return self.start();
        }
        let mut remaining = t * total;
        for w in self.coords.windows(2) {
            let seg = w[0].distance_2d(&w[1]);
            if remaining <= seg {
                if seg == 0.0 {
                    return w[0];
                }
                let f = remaining / seg;
                return Coord::xy(
                    w[0].x + f * (w[1].x - w[0].x),
                    w[0].y + f * (w[1].y - w[0].y),
                );
            }
            remaining -= seg;
        }
        self.end()
    }

    /// Minimum planar distance from `c` to any segment.
    pub fn distance_to(&self, c: &Coord) -> f64 {
        self.coords
            .windows(2)
            .map(|w| algorithms::point_segment_distance(c, &w[0], &w[1]))
            .fold(f64::INFINITY, f64::min)
    }
}

/// A circular arc through three points (start, interior, end) — the curved
/// segment kind GML's `Arc` provides.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Arc {
    /// Arc start.
    pub start: Coord,
    /// Any interior point of the arc.
    pub mid: Coord,
    /// Arc end.
    pub end: Coord,
}

impl Arc {
    /// Construct an arc through three points.
    pub fn new(start: Coord, mid: Coord, end: Coord) -> Arc {
        Arc { start, mid, end }
    }

    /// Center and radius of the circumscribed circle; `None` when the three
    /// points are collinear.
    pub fn circle(&self) -> Option<(Coord, f64)> {
        let (a, b, c) = (self.start, self.mid, self.end);
        let d = 2.0 * (a.x * (b.y - c.y) + b.x * (c.y - a.y) + c.x * (a.y - b.y));
        if d.abs() < 1e-12 {
            return None;
        }
        let a2 = a.x * a.x + a.y * a.y;
        let b2 = b.x * b.x + b.y * b.y;
        let c2 = c.x * c.x + c.y * c.y;
        let ux = (a2 * (b.y - c.y) + b2 * (c.y - a.y) + c2 * (a.y - b.y)) / d;
        let uy = (a2 * (c.x - b.x) + b2 * (a.x - c.x) + c2 * (b.x - a.x)) / d;
        let center = Coord::xy(ux, uy);
        Some((center, center.distance_2d(&a)))
    }

    /// Approximate the arc as a polyline with `n` segments (falls back to a
    /// straight line for collinear input).
    pub fn to_linestring(&self, n: usize) -> LineString {
        let n = n.max(1);
        let Some((center, radius)) = self.circle() else {
            return LineString::new(vec![self.start, self.end]).expect("two points");
        };
        let ang = |p: &Coord| (p.y - center.y).atan2(p.x - center.x);
        let a0 = ang(&self.start);
        let am = ang(&self.mid);
        let a1 = ang(&self.end);
        // Choose the sweep direction that passes through the mid angle.
        let norm = |a: f64| {
            let mut a = a;
            while a < 0.0 {
                a += std::f64::consts::TAU;
            }
            a % std::f64::consts::TAU
        };
        let ccw_dist = |from: f64, to: f64| norm(to - from);
        let sweep = if ccw_dist(a0, am) <= ccw_dist(a0, a1) {
            ccw_dist(a0, a1)
        } else {
            -(std::f64::consts::TAU - ccw_dist(a0, a1))
        };
        let mut coords = Vec::with_capacity(n + 1);
        for i in 0..=n {
            let t = i as f64 / n as f64;
            let a = a0 + sweep * t;
            coords.push(Coord::xy(
                center.x + radius * a.cos(),
                center.y + radius * a.sin(),
            ));
        }
        LineString::new(coords).expect("n+1 >= 2 points")
    }

    /// Approximate arc length (polyline with 64 segments).
    pub fn length(&self) -> f64 {
        self.to_linestring(64).length()
    }
}

/// One segment of a composite curve.
#[derive(Debug, Clone, PartialEq)]
pub enum CurveSegment {
    /// Straight polyline segment.
    Line(LineString),
    /// Circular arc segment.
    Arc(Arc),
}

impl CurveSegment {
    /// Start coordinate of the segment.
    pub fn start(&self) -> Coord {
        match self {
            CurveSegment::Line(l) => l.start(),
            CurveSegment::Arc(a) => a.start,
        }
    }

    /// End coordinate of the segment.
    pub fn end(&self) -> Coord {
        match self {
            CurveSegment::Line(l) => l.end(),
            CurveSegment::Arc(a) => a.end,
        }
    }

    /// Planar length.
    pub fn length(&self) -> f64 {
        match self {
            CurveSegment::Line(l) => l.length(),
            CurveSegment::Arc(a) => a.length(),
        }
    }

    /// Flatten to a polyline.
    pub fn to_linestring(&self) -> LineString {
        match self {
            CurveSegment::Line(l) => l.clone(),
            CurveSegment::Arc(a) => a.to_linestring(32),
        }
    }
}

/// "A curve can be as simple as a straight-line or multiple arcs connected
/// at their terminal anchor points" (paper §5): a chain of segments, each
/// starting where the previous one ended.
#[derive(Debug, Clone, PartialEq)]
pub struct Curve {
    /// Connected segments.
    pub segments: Vec<CurveSegment>,
}

impl Curve {
    /// Build a curve; returns `None` when empty or segments are not
    /// connected end-to-start (tolerance 1e-9).
    pub fn new(segments: Vec<CurveSegment>) -> Option<Curve> {
        if segments.is_empty() {
            return None;
        }
        for w in segments.windows(2) {
            if !w[0].end().approx_eq(&w[1].start(), 1e-9) {
                return None;
            }
        }
        Some(Curve { segments })
    }

    /// A curve made of a single polyline.
    pub fn from_linestring(l: LineString) -> Curve {
        Curve {
            segments: vec![CurveSegment::Line(l)],
        }
    }

    /// Start of the whole curve.
    pub fn start(&self) -> Coord {
        self.segments[0].start()
    }

    /// End of the whole curve.
    pub fn end(&self) -> Coord {
        self.segments.last().expect("non-empty").end()
    }

    /// Total length.
    pub fn length(&self) -> f64 {
        self.segments.iter().map(CurveSegment::length).sum()
    }

    /// Flatten into one polyline.
    pub fn to_linestring(&self) -> LineString {
        let mut coords: Vec<Coord> = Vec::new();
        for (i, seg) in self.segments.iter().enumerate() {
            let l = seg.to_linestring();
            let skip = usize::from(i > 0); // joints shared between segments
            coords.extend(l.coords.into_iter().skip(skip));
        }
        LineString::new(coords).expect("curve has >= 2 points")
    }

    /// Bounding box.
    pub fn envelope(&self) -> Envelope {
        self.to_linestring().envelope()
    }
}

/// A closed loop of straight lines or curves — the paper's `Ring`: "similar
/// to Multi type except it is restricted to have straight-lines or curves in
/// its content model" and closed.
#[derive(Debug, Clone, PartialEq)]
pub struct Ring {
    /// The boundary, stored closed (first == last).
    pub coords: Vec<Coord>,
}

impl Ring {
    /// Build a ring from coordinates; closes it if open; requires at least
    /// three distinct points.
    pub fn new(mut coords: Vec<Coord>) -> Option<Ring> {
        if coords.len() < 3 {
            return None;
        }
        let first = coords[0];
        if !coords.last().unwrap().approx_eq(&first, 1e-9) {
            coords.push(first);
        }
        if coords.len() < 4 {
            return None; // triangle needs 4 stored points when closed
        }
        Some(Ring { coords })
    }

    /// Signed area: positive when counter-clockwise.
    pub fn signed_area(&self) -> f64 {
        algorithms::shoelace(&self.coords)
    }

    /// Absolute enclosed area.
    pub fn area(&self) -> f64 {
        self.signed_area().abs()
    }

    /// True when wound counter-clockwise.
    pub fn is_ccw(&self) -> bool {
        self.signed_area() > 0.0
    }

    /// Reverse the winding.
    #[must_use]
    pub fn reversed(&self) -> Ring {
        let mut coords = self.coords.clone();
        coords.reverse();
        Ring { coords }
    }

    /// Perimeter length.
    pub fn perimeter(&self) -> f64 {
        self.coords
            .windows(2)
            .map(|w| w[0].distance_2d(&w[1]))
            .sum()
    }

    /// Point-in-ring test (boundary counts as inside).
    pub fn contains(&self, c: &Coord) -> bool {
        algorithms::point_in_ring(c, &self.coords)
    }

    /// Bounding box.
    pub fn envelope(&self) -> Envelope {
        Envelope::of_coords(&self.coords).expect("non-empty")
    }

    /// Centroid of the enclosed area.
    pub fn centroid(&self) -> Coord {
        algorithms::ring_centroid(&self.coords)
    }
}

/// A planar surface patch: an exterior ring with optional interior rings
/// (holes). GRDF's 2-D primitive ("defines an area with three or more
/// anchor points").
#[derive(Debug, Clone, PartialEq)]
pub struct Polygon {
    /// Outer boundary.
    pub exterior: Ring,
    /// Holes.
    pub interiors: Vec<Ring>,
}

impl Polygon {
    /// Polygon without holes.
    pub fn new(exterior: Ring) -> Polygon {
        Polygon {
            exterior,
            interiors: Vec::new(),
        }
    }

    /// Polygon with holes.
    pub fn with_holes(exterior: Ring, interiors: Vec<Ring>) -> Polygon {
        Polygon {
            exterior,
            interiors,
        }
    }

    /// Axis-aligned rectangle polygon.
    pub fn rectangle(min: Coord, max: Coord) -> Polygon {
        let ring = Ring::new(vec![
            Coord::xy(min.x, min.y),
            Coord::xy(max.x, min.y),
            Coord::xy(max.x, max.y),
            Coord::xy(min.x, max.y),
        ])
        .expect("4 corners");
        Polygon::new(ring)
    }

    /// Enclosed area minus holes.
    pub fn area(&self) -> f64 {
        let holes: f64 = self.interiors.iter().map(Ring::area).sum();
        (self.exterior.area() - holes).max(0.0)
    }

    /// Point inside the exterior and outside every hole.
    pub fn contains(&self, c: &Coord) -> bool {
        self.exterior.contains(c) && !self.interiors.iter().any(|h| h.contains(c))
    }

    /// Bounding box (the exterior's).
    pub fn envelope(&self) -> Envelope {
        self.exterior.envelope()
    }
}

/// A surface: one or more polygon patches (GML `Surface`/`PolygonPatch`).
#[derive(Debug, Clone, PartialEq)]
pub struct Surface {
    /// The patches.
    pub patches: Vec<Polygon>,
}

impl Surface {
    /// Surface from patches; `None` when empty.
    pub fn new(patches: Vec<Polygon>) -> Option<Surface> {
        (!patches.is_empty()).then_some(Surface { patches })
    }

    /// A single-patch surface.
    pub fn from_polygon(p: Polygon) -> Surface {
        Surface { patches: vec![p] }
    }

    /// Total patch area.
    pub fn area(&self) -> f64 {
        self.patches.iter().map(Polygon::area).sum()
    }

    /// Contained in any patch.
    pub fn contains(&self, c: &Coord) -> bool {
        self.patches.iter().any(|p| p.contains(c))
    }

    /// Bounding box over all patches.
    pub fn envelope(&self) -> Envelope {
        let mut env = self.patches[0].envelope();
        for p in &self.patches[1..] {
            env = env.union(&p.envelope());
        }
        env
    }
}

/// A solid: a 3-D shape bounded by surfaces. Per the paper, "solid does not
/// have its own composite types; it relies on two-dimensional classes to
/// construct the shape".
#[derive(Debug, Clone, PartialEq)]
pub struct Solid {
    /// Boundary shell (surfaces in 3-D).
    pub shell: Vec<Polygon>,
    /// Extrusion height when the solid is a prism over its footprint; GRDF
    /// solids in practice are extruded building footprints.
    pub height: f64,
}

impl Solid {
    /// Extruded prism over a footprint polygon.
    pub fn extrude(footprint: Polygon, height: f64) -> Solid {
        Solid {
            shell: vec![footprint],
            height,
        }
    }

    /// Footprint area × height for prisms.
    pub fn volume(&self) -> f64 {
        self.shell.first().map_or(0.0, Polygon::area) * self.height
    }

    /// Planar bounding box of the footprint.
    pub fn envelope(&self) -> Envelope {
        let mut env = self.shell[0].envelope();
        for p in &self.shell[1..] {
            env = env.union(&p.envelope());
        }
        env
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ls(points: &[(f64, f64)]) -> LineString {
        LineString::new(points.iter().map(|&(x, y)| Coord::xy(x, y)).collect()).unwrap()
    }

    #[test]
    fn linestring_needs_two_points() {
        assert!(LineString::new(vec![Coord::xy(0.0, 0.0)]).is_none());
        assert!(LineString::new(vec![]).is_none());
    }

    #[test]
    fn linestring_length_and_interpolate() {
        let l = ls(&[(0.0, 0.0), (3.0, 4.0), (3.0, 14.0)]);
        assert_eq!(l.length(), 15.0);
        assert_eq!(l.interpolate(0.0), Coord::xy(0.0, 0.0));
        assert_eq!(l.interpolate(1.0), Coord::xy(3.0, 14.0));
        let mid = l.interpolate(1.0 / 3.0);
        assert!(mid.approx_eq(&Coord::xy(3.0, 4.0), 1e-9), "{mid:?}");
    }

    #[test]
    fn linestring_distance_to_point() {
        let l = ls(&[(0.0, 0.0), (10.0, 0.0)]);
        assert_eq!(l.distance_to(&Coord::xy(5.0, 3.0)), 3.0);
        assert_eq!(l.distance_to(&Coord::xy(-4.0, 3.0)), 5.0);
    }

    #[test]
    fn arc_circle_and_flattening() {
        // Half circle of radius 1 around origin.
        let a = Arc::new(
            Coord::xy(1.0, 0.0),
            Coord::xy(0.0, 1.0),
            Coord::xy(-1.0, 0.0),
        );
        let (center, r) = a.circle().unwrap();
        assert!(center.approx_eq(&Coord::xy(0.0, 0.0), 1e-9));
        assert!((r - 1.0).abs() < 1e-9);
        let len = a.length();
        assert!((len - std::f64::consts::PI).abs() < 1e-2, "{len}");
        // The flattened polyline passes near the mid point.
        let flat = a.to_linestring(16);
        assert!(flat
            .coords
            .iter()
            .any(|c| c.approx_eq(&Coord::xy(0.0, 1.0), 1e-6)));
    }

    #[test]
    fn collinear_arc_degrades_to_segment() {
        let a = Arc::new(
            Coord::xy(0.0, 0.0),
            Coord::xy(1.0, 0.0),
            Coord::xy(2.0, 0.0),
        );
        assert!(a.circle().is_none());
        assert_eq!(a.to_linestring(8).coords.len(), 2);
    }

    #[test]
    fn curve_requires_connected_segments() {
        let s1 = CurveSegment::Line(ls(&[(0.0, 0.0), (1.0, 0.0)]));
        let s2 = CurveSegment::Line(ls(&[(1.0, 0.0), (2.0, 1.0)]));
        let gap = CurveSegment::Line(ls(&[(5.0, 5.0), (6.0, 5.0)]));
        assert!(Curve::new(vec![s1.clone(), s2.clone()]).is_some());
        assert!(Curve::new(vec![s1, gap]).is_none());
        assert!(Curve::new(vec![]).is_none());
    }

    #[test]
    fn curve_flattening_dedups_joints() {
        let c = Curve::new(vec![
            CurveSegment::Line(ls(&[(0.0, 0.0), (1.0, 0.0)])),
            CurveSegment::Line(ls(&[(1.0, 0.0), (2.0, 0.0)])),
        ])
        .unwrap();
        assert_eq!(c.to_linestring().coords.len(), 3);
        assert_eq!(c.length(), 2.0);
    }

    #[test]
    fn ring_closes_itself_and_computes_area() {
        let r = Ring::new(vec![
            Coord::xy(0.0, 0.0),
            Coord::xy(4.0, 0.0),
            Coord::xy(4.0, 3.0),
            Coord::xy(0.0, 3.0),
        ])
        .unwrap();
        assert_eq!(r.coords.len(), 5, "closed");
        assert_eq!(r.area(), 12.0);
        assert!(r.is_ccw());
        assert!(!r.reversed().is_ccw());
        assert_eq!(r.perimeter(), 14.0);
        assert!(Ring::new(vec![Coord::xy(0.0, 0.0), Coord::xy(1.0, 1.0)]).is_none());
    }

    #[test]
    fn ring_centroid_of_square() {
        let r = Ring::new(vec![
            Coord::xy(0.0, 0.0),
            Coord::xy(2.0, 0.0),
            Coord::xy(2.0, 2.0),
            Coord::xy(0.0, 2.0),
        ])
        .unwrap();
        assert!(r.centroid().approx_eq(&Coord::xy(1.0, 1.0), 1e-9));
    }

    #[test]
    fn polygon_with_hole() {
        let outer = Ring::new(vec![
            Coord::xy(0.0, 0.0),
            Coord::xy(10.0, 0.0),
            Coord::xy(10.0, 10.0),
            Coord::xy(0.0, 10.0),
        ])
        .unwrap();
        let hole = Ring::new(vec![
            Coord::xy(4.0, 4.0),
            Coord::xy(6.0, 4.0),
            Coord::xy(6.0, 6.0),
            Coord::xy(4.0, 6.0),
        ])
        .unwrap();
        let p = Polygon::with_holes(outer, vec![hole]);
        assert_eq!(p.area(), 96.0);
        assert!(p.contains(&Coord::xy(1.0, 1.0)));
        assert!(!p.contains(&Coord::xy(5.0, 5.0)), "inside the hole");
        assert!(!p.contains(&Coord::xy(11.0, 5.0)));
    }

    #[test]
    fn rectangle_constructor() {
        let p = Polygon::rectangle(Coord::xy(1.0, 1.0), Coord::xy(3.0, 5.0));
        assert_eq!(p.area(), 8.0);
        assert!(p.contains(&Coord::xy(2.0, 2.0)));
    }

    #[test]
    fn surface_multiple_patches() {
        let s = Surface::new(vec![
            Polygon::rectangle(Coord::xy(0.0, 0.0), Coord::xy(1.0, 1.0)),
            Polygon::rectangle(Coord::xy(5.0, 5.0), Coord::xy(7.0, 7.0)),
        ])
        .unwrap();
        assert_eq!(s.area(), 5.0);
        assert!(s.contains(&Coord::xy(6.0, 6.0)));
        assert!(!s.contains(&Coord::xy(3.0, 3.0)));
        assert_eq!(s.envelope().max, Coord::xy(7.0, 7.0));
        assert!(Surface::new(vec![]).is_none());
    }

    #[test]
    fn solid_extrusion_volume() {
        let footprint = Polygon::rectangle(Coord::xy(0.0, 0.0), Coord::xy(3.0, 4.0));
        let s = Solid::extrude(footprint, 10.0);
        assert_eq!(s.volume(), 120.0);
        assert_eq!(s.envelope().width(), 3.0);
    }
}
