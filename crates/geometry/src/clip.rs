//! Clipping geometry to rectangular windows — the middleware "layered
//! view" operation in its geometric form: presenting only the portion of a
//! stream network or site polygon that falls inside the incident window.
//!
//! * [`clip_segment`] — Liang–Barsky parametric segment clipping.
//! * [`clip_polyline`] — a polyline clipped to a window, split into the
//!   pieces that lie inside.
//! * [`clip_polygon`] — Sutherland–Hodgman polygon clipping (convex
//!   window).

use crate::coord::Coord;
use crate::envelope::Envelope;
use crate::primitives::{LineString, Polygon, Ring};

/// Clip segment `a`–`b` to `window` (Liang–Barsky). Returns the clipped
/// endpoints, or `None` when the segment misses the window entirely.
pub fn clip_segment(a: &Coord, b: &Coord, window: &Envelope) -> Option<(Coord, Coord)> {
    let dx = b.x - a.x;
    let dy = b.y - a.y;
    let mut t0 = 0.0f64;
    let mut t1 = 1.0f64;

    // Each (p, q) pair encodes one window edge constraint p·t ≤ q.
    let checks = [
        (-dx, a.x - window.min.x),
        (dx, window.max.x - a.x),
        (-dy, a.y - window.min.y),
        (dy, window.max.y - a.y),
    ];
    for (p, q) in checks {
        if p == 0.0 {
            if q < 0.0 {
                return None; // parallel and outside
            }
        } else {
            let r = q / p;
            if p < 0.0 {
                if r > t1 {
                    return None;
                }
                if r > t0 {
                    t0 = r;
                }
            } else {
                if r < t0 {
                    return None;
                }
                if r < t1 {
                    t1 = r;
                }
            }
        }
    }
    let p0 = Coord::xy(a.x + t0 * dx, a.y + t0 * dy);
    let p1 = Coord::xy(a.x + t1 * dx, a.y + t1 * dy);
    Some((p0, p1))
}

/// Clip a polyline to a window; returns the maximal in-window pieces (each
/// with ≥ 2 points). Pieces are split where the line leaves the window.
pub fn clip_polyline(line: &LineString, window: &Envelope) -> Vec<LineString> {
    let mut pieces: Vec<Vec<Coord>> = Vec::new();
    let mut current: Vec<Coord> = Vec::new();
    for w in line.coords.windows(2) {
        match clip_segment(&w[0], &w[1], window) {
            None => {
                if current.len() >= 2 {
                    pieces.push(std::mem::take(&mut current));
                } else {
                    current.clear();
                }
            }
            Some((p0, p1)) => {
                if let Some(last) = current.last() {
                    if !last.approx_eq(&p0, 1e-9) {
                        // The line left the window and re-entered.
                        if current.len() >= 2 {
                            pieces.push(std::mem::take(&mut current));
                        } else {
                            current.clear();
                        }
                        current.push(p0);
                    }
                } else {
                    current.push(p0);
                }
                // Avoid duplicating the shared point of touching segments.
                if current.last().is_none_or(|l| !l.approx_eq(&p1, 1e-9)) {
                    current.push(p1);
                }
            }
        }
    }
    if current.len() >= 2 {
        pieces.push(current);
    }
    pieces.into_iter().filter_map(LineString::new).collect()
}

/// Clip a polygon's exterior ring to a rectangular window
/// (Sutherland–Hodgman). Holes are clipped too; degenerate results drop
/// out. Returns `None` when nothing of the polygon lies inside.
pub fn clip_polygon(polygon: &Polygon, window: &Envelope) -> Option<Polygon> {
    let exterior = clip_ring(&polygon.exterior, window)?;
    let interiors = polygon
        .interiors
        .iter()
        .filter_map(|h| clip_ring(h, window))
        .collect();
    Some(Polygon::with_holes(exterior, interiors))
}

fn clip_ring(ring: &Ring, window: &Envelope) -> Option<Ring> {
    // Sutherland–Hodgman against each of the four window half-planes.
    // `inside` and `intersect` per edge; subject starts as the open ring.
    let mut subject: Vec<Coord> = ring.coords[..ring.coords.len() - 1].to_vec();

    type EdgeFns = (
        fn(&Coord, &Envelope) -> bool,
        fn(&Coord, &Coord, &Envelope) -> Coord,
    );
    let edges: [EdgeFns; 4] = [
        // Left: x >= min.x
        (
            |c, w| c.x >= w.min.x,
            |a, b, w| intersect_vertical(a, b, w.min.x),
        ),
        // Right: x <= max.x
        (
            |c, w| c.x <= w.max.x,
            |a, b, w| intersect_vertical(a, b, w.max.x),
        ),
        // Bottom: y >= min.y
        (
            |c, w| c.y >= w.min.y,
            |a, b, w| intersect_horizontal(a, b, w.min.y),
        ),
        // Top: y <= max.y
        (
            |c, w| c.y <= w.max.y,
            |a, b, w| intersect_horizontal(a, b, w.max.y),
        ),
    ];

    for (inside, intersect) in edges {
        if subject.is_empty() {
            return None;
        }
        let mut output: Vec<Coord> = Vec::with_capacity(subject.len() + 4);
        for i in 0..subject.len() {
            let cur = subject[i];
            let prev = subject[(i + subject.len() - 1) % subject.len()];
            let cur_in = inside(&cur, window);
            let prev_in = inside(&prev, window);
            if cur_in {
                if !prev_in {
                    output.push(intersect(&prev, &cur, window));
                }
                output.push(cur);
            } else if prev_in {
                output.push(intersect(&prev, &cur, window));
            }
        }
        subject = output;
    }
    // Remove consecutive duplicates introduced by corner touches.
    subject.dedup_by(|a, b| a.approx_eq(b, 1e-9));
    Ring::new(subject)
}

fn intersect_vertical(a: &Coord, b: &Coord, x: f64) -> Coord {
    let t = (x - a.x) / (b.x - a.x);
    Coord::xy(x, a.y + t * (b.y - a.y))
}

fn intersect_horizontal(a: &Coord, b: &Coord, y: f64) -> Coord {
    let t = (y - a.y) / (b.y - a.y);
    Coord::xy(a.x + t * (b.x - a.x), y)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window() -> Envelope {
        Envelope::new(Coord::xy(0.0, 0.0), Coord::xy(10.0, 10.0))
    }

    #[test]
    fn segment_fully_inside_unchanged() {
        let (a, b) = clip_segment(&Coord::xy(1.0, 1.0), &Coord::xy(9.0, 9.0), &window()).unwrap();
        assert_eq!(a, Coord::xy(1.0, 1.0));
        assert_eq!(b, Coord::xy(9.0, 9.0));
    }

    #[test]
    fn segment_crossing_clipped_to_border() {
        let (a, b) = clip_segment(&Coord::xy(-5.0, 5.0), &Coord::xy(15.0, 5.0), &window()).unwrap();
        assert_eq!(a, Coord::xy(0.0, 5.0));
        assert_eq!(b, Coord::xy(10.0, 5.0));
    }

    #[test]
    fn segment_outside_is_none() {
        assert!(clip_segment(&Coord::xy(-5.0, -5.0), &Coord::xy(-1.0, -1.0), &window()).is_none());
        assert!(clip_segment(&Coord::xy(20.0, 0.0), &Coord::xy(20.0, 10.0), &window()).is_none());
    }

    #[test]
    fn diagonal_corner_cut() {
        let (a, b) = clip_segment(&Coord::xy(-2.0, 8.0), &Coord::xy(4.0, 14.0), &window()).unwrap();
        assert!(a.approx_eq(&Coord::xy(0.0, 10.0), 1e-9), "{a:?}");
        assert!(b.approx_eq(&Coord::xy(0.0, 10.0), 1e-9), "{b:?}");
    }

    #[test]
    fn polyline_split_into_pieces() {
        // Zig-zag: enters, leaves, re-enters.
        let line = LineString::new(vec![
            Coord::xy(-5.0, 5.0),
            Coord::xy(5.0, 5.0),  // inside
            Coord::xy(5.0, 15.0), // leaves through the top
            Coord::xy(8.0, 15.0), // outside
            Coord::xy(8.0, 5.0),  // re-enters
            Coord::xy(9.0, 5.0),
        ])
        .unwrap();
        let pieces = clip_polyline(&line, &window());
        assert_eq!(pieces.len(), 2, "{pieces:?}");
        // Each piece is fully inside the window.
        for p in &pieces {
            for c in &p.coords {
                assert!(window().contains(c), "{c:?}");
            }
        }
        // Total clipped length is shorter than the original.
        let total: f64 = pieces.iter().map(LineString::length).sum();
        assert!(total < line.length());
    }

    #[test]
    fn polyline_fully_outside_empty() {
        let line = LineString::new(vec![Coord::xy(-5.0, -5.0), Coord::xy(-1.0, -9.0)]).unwrap();
        assert!(clip_polyline(&line, &window()).is_empty());
    }

    #[test]
    fn polyline_fully_inside_single_piece() {
        let line = LineString::new(vec![
            Coord::xy(1.0, 1.0),
            Coord::xy(5.0, 5.0),
            Coord::xy(9.0, 1.0),
        ])
        .unwrap();
        let pieces = clip_polyline(&line, &window());
        assert_eq!(pieces.len(), 1);
        assert!((pieces[0].length() - line.length()).abs() < 1e-9);
    }

    #[test]
    fn polygon_clip_halves_a_spanning_square() {
        // A square extending past the right window edge.
        let poly = Polygon::rectangle(Coord::xy(5.0, 2.0), Coord::xy(15.0, 8.0));
        let clipped = clip_polygon(&poly, &window()).unwrap();
        assert!(
            (clipped.area() - 30.0).abs() < 1e-9,
            "area {}",
            clipped.area()
        );
        assert!(clipped.envelope().max.x <= 10.0 + 1e-9);
    }

    #[test]
    fn polygon_fully_inside_keeps_area() {
        let poly = Polygon::rectangle(Coord::xy(2.0, 2.0), Coord::xy(4.0, 4.0));
        let clipped = clip_polygon(&poly, &window()).unwrap();
        assert!((clipped.area() - poly.area()).abs() < 1e-9);
    }

    #[test]
    fn polygon_outside_is_none() {
        let poly = Polygon::rectangle(Coord::xy(20.0, 20.0), Coord::xy(30.0, 30.0));
        assert!(clip_polygon(&poly, &window()).is_none());
    }

    #[test]
    fn polygon_hole_clipped_too() {
        let outer = Ring::new(vec![
            Coord::xy(2.0, 2.0),
            Coord::xy(14.0, 2.0),
            Coord::xy(14.0, 8.0),
            Coord::xy(2.0, 8.0),
        ])
        .unwrap();
        let hole = Ring::new(vec![
            Coord::xy(8.0, 4.0),
            Coord::xy(12.0, 4.0),
            Coord::xy(12.0, 6.0),
            Coord::xy(8.0, 6.0),
        ])
        .unwrap();
        let poly = Polygon::with_holes(outer, vec![hole]);
        let clipped = clip_polygon(&poly, &window()).unwrap();
        // Exterior clipped to [2,10]×[2,8] = 48; hole clipped to [8,10]×[4,6] = 4.
        assert!(
            (clipped.area() - 44.0).abs() < 1e-9,
            "area {}",
            clipped.area()
        );
        assert_eq!(clipped.interiors.len(), 1);
    }

    #[test]
    fn concave_polygon_clip() {
        // L-shape partially outside on the left.
        let l = Ring::new(vec![
            Coord::xy(-4.0, 0.0),
            Coord::xy(6.0, 0.0),
            Coord::xy(6.0, 2.0),
            Coord::xy(-2.0, 2.0),
            Coord::xy(-2.0, 6.0),
            Coord::xy(-4.0, 6.0),
        ])
        .unwrap();
        let clipped = clip_polygon(&Polygon::new(l), &window()).unwrap();
        // Only the [0,6]×[0,2] slab lies in the window.
        assert!(
            (clipped.area() - 12.0).abs() < 1e-9,
            "area {}",
            clipped.area()
        );
    }
}
