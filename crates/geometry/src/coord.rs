//! Coordinates and elementary vector operations.

use std::fmt;

/// A coordinate tuple. GRDF geometries are predominantly planar (the
/// paper's datasets are projected Texas state-plane coordinates); the `z`
/// component defaults to zero and participates only in 3-D operations.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Coord {
    /// Easting / longitude.
    pub x: f64,
    /// Northing / latitude.
    pub y: f64,
    /// Elevation; 0.0 for planar data.
    pub z: f64,
}

impl Coord {
    /// Planar coordinate (z = 0).
    pub fn xy(x: f64, y: f64) -> Coord {
        Coord { x, y, z: 0.0 }
    }

    /// Full 3-D coordinate.
    pub fn xyz(x: f64, y: f64, z: f64) -> Coord {
        Coord { x, y, z }
    }

    /// Euclidean distance to `other` in the XY plane.
    pub fn distance_2d(&self, other: &Coord) -> f64 {
        (self.x - other.x).hypot(self.y - other.y)
    }

    /// Euclidean distance to `other` in 3-D.
    pub fn distance_3d(&self, other: &Coord) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        let dz = self.z - other.z;
        (dx * dx + dy * dy + dz * dz).sqrt()
    }

    /// Midpoint of the segment to `other`.
    #[must_use]
    pub fn midpoint(&self, other: &Coord) -> Coord {
        Coord {
            x: f64::midpoint(self.x, other.x),
            y: f64::midpoint(self.y, other.y),
            z: f64::midpoint(self.z, other.z),
        }
    }

    /// Component-wise translation.
    #[must_use]
    pub fn translate(&self, dx: f64, dy: f64) -> Coord {
        Coord {
            x: self.x + dx,
            y: self.y + dy,
            z: self.z,
        }
    }

    /// 2-D cross product (z of the 3-D cross) of `self→a` and `self→b`;
    /// positive when `b` lies counter-clockwise of `a` around `self`.
    pub fn cross(&self, a: &Coord, b: &Coord) -> f64 {
        (a.x - self.x) * (b.y - self.y) - (a.y - self.y) * (b.x - self.x)
    }

    /// Approximate equality within `eps` (planar).
    pub fn approx_eq(&self, other: &Coord, eps: f64) -> bool {
        (self.x - other.x).abs() <= eps
            && (self.y - other.y).abs() <= eps
            && (self.z - other.z).abs() <= eps
    }
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.z == 0.0 {
            write!(f, "{} {}", self.x, self.y)
        } else {
            write!(f, "{} {} {}", self.x, self.y, self.z)
        }
    }
}

impl From<(f64, f64)> for Coord {
    fn from((x, y): (f64, f64)) -> Coord {
        Coord::xy(x, y)
    }
}

impl From<(f64, f64, f64)> for Coord {
    fn from((x, y, z): (f64, f64, f64)) -> Coord {
        Coord::xyz(x, y, z)
    }
}

/// Parse a GML-style coordinate list: coordinates separated by commas,
/// tuple components by spaces or commas depending on convention. GRDF uses
/// GML 3 `posList` convention: all numbers whitespace-separated, grouped by
/// `dim`. The GML 2 `coordinates` convention — `x,y x,y` — is also accepted.
pub fn parse_coord_list(text: &str, dim: usize) -> Option<Vec<Coord>> {
    assert!(dim == 2 || dim == 3, "dim must be 2 or 3");
    let nums: Vec<f64> = text
        .split([' ', ',', '\n', '\t', '\r'])
        .filter(|s| !s.is_empty())
        .map(str::parse::<f64>)
        .collect::<Result<_, _>>()
        .ok()?;
    if nums.is_empty() || !nums.len().is_multiple_of(dim) {
        return None;
    }
    Some(
        nums.chunks(dim)
            .map(|c| {
                if dim == 2 {
                    Coord::xy(c[0], c[1])
                } else {
                    Coord::xyz(c[0], c[1], c[2])
                }
            })
            .collect(),
    )
}

/// Format a coordinate list in GML 2 `coordinates` convention (`x,y x,y`),
/// the style used in the paper's Lists 6–7.
pub fn format_coord_list(coords: &[Coord]) -> String {
    coords
        .iter()
        .map(|c| format!("{},{}", c.x, c.y))
        .collect::<Vec<_>>()
        .join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distances() {
        let a = Coord::xy(0.0, 0.0);
        let b = Coord::xy(3.0, 4.0);
        assert_eq!(a.distance_2d(&b), 5.0);
        let c = Coord::xyz(0.0, 0.0, 12.0);
        let d = Coord::xyz(3.0, 4.0, 0.0);
        assert_eq!(c.distance_3d(&d), 13.0);
    }

    #[test]
    fn midpoint_and_translate() {
        let a = Coord::xy(0.0, 0.0);
        let b = Coord::xy(2.0, 6.0);
        assert_eq!(a.midpoint(&b), Coord::xy(1.0, 3.0));
        assert_eq!(a.translate(5.0, -1.0), Coord::xy(5.0, -1.0));
    }

    #[test]
    fn cross_sign_tells_orientation() {
        let o = Coord::xy(0.0, 0.0);
        let a = Coord::xy(1.0, 0.0);
        let b = Coord::xy(0.0, 1.0);
        assert!(o.cross(&a, &b) > 0.0, "CCW positive");
        assert!(o.cross(&b, &a) < 0.0, "CW negative");
        assert_eq!(o.cross(&a, &Coord::xy(2.0, 0.0)), 0.0, "collinear zero");
    }

    #[test]
    fn parse_poslist_2d() {
        let cs = parse_coord_list("0 0 1 2 3 4", 2).unwrap();
        assert_eq!(
            cs,
            vec![
                Coord::xy(0.0, 0.0),
                Coord::xy(1.0, 2.0),
                Coord::xy(3.0, 4.0)
            ]
        );
    }

    #[test]
    fn parse_gml2_comma_style() {
        // The paper's List 6 coordinate style.
        let cs =
            parse_coord_list("2533822.17263276,7108248.82783879 2533900.5,7108300.25", 2).unwrap();
        assert_eq!(cs.len(), 2);
        assert!((cs[0].x - 2533822.17263276).abs() < 1e-6);
    }

    #[test]
    fn parse_3d() {
        let cs = parse_coord_list("1 2 3 4 5 6", 3).unwrap();
        assert_eq!(
            cs,
            vec![Coord::xyz(1.0, 2.0, 3.0), Coord::xyz(4.0, 5.0, 6.0)]
        );
    }

    #[test]
    fn parse_rejects_ragged_input() {
        assert!(parse_coord_list("1 2 3", 2).is_none());
        assert!(parse_coord_list("", 2).is_none());
        assert!(parse_coord_list("a b", 2).is_none());
    }

    #[test]
    fn format_roundtrips_through_parse() {
        let cs = vec![Coord::xy(1.5, -2.0), Coord::xy(0.0, 3.25)];
        let text = format_coord_list(&cs);
        assert_eq!(parse_coord_list(&text, 2).unwrap(), cs);
    }

    #[test]
    fn display_elides_zero_z() {
        assert_eq!(Coord::xy(1.0, 2.0).to_string(), "1 2");
        assert_eq!(Coord::xyz(1.0, 2.0, 3.0).to_string(), "1 2 3");
    }
}
