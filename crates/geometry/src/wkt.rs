//! Well-Known Text rendering and parsing for the primitive shapes.
//!
//! WKT is the debugging/interchange format used by the examples; the
//! supported subset is `POINT`, `LINESTRING`, `POLYGON`, `MULTIPOINT` and
//! `MULTILINESTRING`.

use crate::coord::Coord;
use crate::geometry::Geometry;
use crate::multi::{MultiCurve, MultiPoint};
use crate::primitives::{Curve, LineString, Point, Polygon, Ring};

/// Render a geometry as WKT. Aggregates not in the WKT subset are rendered
/// as `GEOMETRYCOLLECTION` of their flattened members where possible, and
/// curves are flattened to linestrings.
pub fn to_wkt(g: &Geometry) -> String {
    match g {
        Geometry::Point(p) => format!("POINT ({} {})", fmt(p.coord.x), fmt(p.coord.y)),
        Geometry::LineString(l) => format!("LINESTRING ({})", coords(&l.coords)),
        Geometry::Curve(c) => to_wkt(&Geometry::LineString(c.to_linestring())),
        Geometry::Ring(r) => format!("POLYGON (({}))", coords(&r.coords)),
        Geometry::Polygon(p) => polygon_wkt(p),
        Geometry::Surface(s) => {
            let parts: Vec<String> = s.patches.iter().map(polygon_body).collect();
            format!("MULTIPOLYGON ({})", parts.join(", "))
        }
        Geometry::MultiPoint(m) => {
            let parts: Vec<String> = m
                .members
                .iter()
                .map(|p| format!("({} {})", fmt(p.coord.x), fmt(p.coord.y)))
                .collect();
            format!("MULTIPOINT ({})", parts.join(", "))
        }
        Geometry::MultiCurve(m) => {
            let parts: Vec<String> = m
                .members
                .iter()
                .map(|c| format!("({})", coords(&c.to_linestring().coords)))
                .collect();
            format!("MULTILINESTRING ({})", parts.join(", "))
        }
        other => {
            // Fallback: envelope as a polygon, tagged with the class name.
            match other.envelope() {
                Some(env) => {
                    let p = Polygon::rectangle(env.min, env.max);
                    polygon_wkt(&p)
                }
                None => "GEOMETRYCOLLECTION EMPTY".to_string(),
            }
        }
    }
}

fn polygon_wkt(p: &Polygon) -> String {
    format!("POLYGON {}", polygon_body(p))
}

fn polygon_body(p: &Polygon) -> String {
    let mut rings = vec![format!("({})", coords(&p.exterior.coords))];
    for hole in &p.interiors {
        rings.push(format!("({})", coords(&hole.coords)));
    }
    format!("({})", rings.join(", "))
}

fn coords(cs: &[Coord]) -> String {
    cs.iter()
        .map(|c| format!("{} {}", fmt(c.x), fmt(c.y)))
        .collect::<Vec<_>>()
        .join(", ")
}

fn fmt(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.0}")
    } else {
        format!("{v}")
    }
}

/// Parse a WKT string (the subset emitted by [`to_wkt`] for primitives).
pub fn parse_wkt(text: &str) -> Option<Geometry> {
    let text = text.trim();
    let upper = text.to_ascii_uppercase();
    if let Some(body) = tagged(&upper, text, "MULTILINESTRING") {
        let groups = split_groups(body)?;
        let mut members = Vec::new();
        for g in groups {
            members.push(Curve::from_linestring(LineString::new(parse_coords(&g)?)?));
        }
        return Some(Geometry::MultiCurve(MultiCurve::new(members)));
    }
    if let Some(body) = tagged(&upper, text, "MULTIPOINT") {
        let groups = split_groups(body)?;
        let mut members = Vec::new();
        for g in groups {
            let cs = parse_coords(&g)?;
            members.push(Point::at(*cs.first()?));
        }
        return Some(Geometry::MultiPoint(MultiPoint::new(members)));
    }
    if let Some(body) = tagged(&upper, text, "LINESTRING") {
        return Some(Geometry::LineString(LineString::new(parse_coords(body)?)?));
    }
    if let Some(body) = tagged(&upper, text, "POLYGON") {
        let rings = split_groups(body)?;
        let mut iter = rings.into_iter();
        let exterior = Ring::new(parse_coords(&iter.next()?)?)?;
        let mut interiors = Vec::new();
        for r in iter {
            interiors.push(Ring::new(parse_coords(&r)?)?);
        }
        return Some(Geometry::Polygon(Polygon::with_holes(exterior, interiors)));
    }
    if let Some(body) = tagged(&upper, text, "POINT") {
        let cs = parse_coords(body)?;
        return Some(Geometry::Point(Point::at(*cs.first()?)));
    }
    None
}

/// If `upper` starts with `tag`, return the original-text body inside the
/// outermost parentheses.
fn tagged<'a>(upper: &str, original: &'a str, tag: &str) -> Option<&'a str> {
    if !upper.starts_with(tag) {
        return None;
    }
    // Guard against prefix clashes (POINT vs POLYGON handled by order; but
    // MULTIPOINT also starts with MULTI… — callers order the checks).
    let after = &upper[tag.len()..];
    if after.trim_start().starts_with(char::is_alphabetic) {
        return None;
    }
    let open = original.find('(')?;
    let close = original.rfind(')')?;
    (close > open).then(|| &original[open + 1..close])
}

/// Split `(a), (b), (c)` into the inner bodies.
fn split_groups(body: &str) -> Option<Vec<String>> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut current = String::new();
    let mut any_paren = false;
    for ch in body.chars() {
        match ch {
            '(' => {
                any_paren = true;
                if depth > 0 {
                    current.push(ch);
                }
                depth += 1;
            }
            ')' => {
                depth = depth.checked_sub(1)?;
                if depth == 0 {
                    out.push(std::mem::take(&mut current));
                } else {
                    current.push(ch);
                }
            }
            _ => {
                if depth > 0 {
                    current.push(ch);
                }
            }
        }
    }
    if depth != 0 {
        return None;
    }
    if !any_paren {
        // `MULTIPOINT (1 2, 3 4)` style without inner parens.
        for part in body.split(',') {
            out.push(part.trim().to_string());
        }
    }
    Some(out)
}

fn parse_coords(body: &str) -> Option<Vec<Coord>> {
    let mut out = Vec::new();
    for pair in body.split(',') {
        let nums: Vec<f64> = pair
            .split_whitespace()
            .map(str::parse::<f64>)
            .collect::<Result<_, _>>()
            .ok()?;
        match nums.as_slice() {
            [x, y] => out.push(Coord::xy(*x, *y)),
            [x, y, z] => out.push(Coord::xyz(*x, *y, *z)),
            _ => return None,
        }
    }
    (!out.is_empty()).then_some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_roundtrip() {
        let g = Geometry::Point(Point::new(1.5, -2.0));
        let w = to_wkt(&g);
        assert_eq!(w, "POINT (1.5 -2)");
        assert_eq!(parse_wkt(&w).unwrap(), g);
    }

    #[test]
    fn linestring_roundtrip() {
        let g = Geometry::LineString(
            LineString::new(vec![
                Coord::xy(0.0, 0.0),
                Coord::xy(1.0, 2.0),
                Coord::xy(3.0, 4.0),
            ])
            .unwrap(),
        );
        let w = to_wkt(&g);
        assert_eq!(w, "LINESTRING (0 0, 1 2, 3 4)");
        assert_eq!(parse_wkt(&w).unwrap(), g);
    }

    #[test]
    fn polygon_with_hole_roundtrip() {
        let outer = Ring::new(vec![
            Coord::xy(0.0, 0.0),
            Coord::xy(10.0, 0.0),
            Coord::xy(10.0, 10.0),
            Coord::xy(0.0, 10.0),
        ])
        .unwrap();
        let hole = Ring::new(vec![
            Coord::xy(4.0, 4.0),
            Coord::xy(6.0, 4.0),
            Coord::xy(6.0, 6.0),
            Coord::xy(4.0, 6.0),
        ])
        .unwrap();
        let g = Geometry::Polygon(Polygon::with_holes(outer, vec![hole]));
        let w = to_wkt(&g);
        assert!(w.starts_with("POLYGON (("), "{w}");
        let parsed = parse_wkt(&w).unwrap();
        match parsed {
            Geometry::Polygon(p) => {
                assert_eq!(p.interiors.len(), 1);
                assert_eq!(p.area(), 96.0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn multipoint_roundtrip() {
        let g = Geometry::MultiPoint(MultiPoint::new(vec![
            Point::new(1.0, 2.0),
            Point::new(3.0, 4.0),
        ]));
        let w = to_wkt(&g);
        assert_eq!(w, "MULTIPOINT ((1 2), (3 4))");
        assert_eq!(parse_wkt(&w).unwrap(), g);
    }

    #[test]
    fn multilinestring_roundtrip() {
        let mk = |pts: &[(f64, f64)]| {
            Curve::from_linestring(
                LineString::new(pts.iter().map(|&(x, y)| Coord::xy(x, y)).collect()).unwrap(),
            )
        };
        let g = Geometry::MultiCurve(MultiCurve::new(vec![
            mk(&[(0.0, 0.0), (1.0, 1.0)]),
            mk(&[(5.0, 5.0), (6.0, 7.0)]),
        ]));
        let w = to_wkt(&g);
        assert_eq!(w, "MULTILINESTRING ((0 0, 1 1), (5 5, 6 7))");
        let parsed = parse_wkt(&w).unwrap();
        match parsed {
            Geometry::MultiCurve(mc) => assert_eq!(mc.members.len(), 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn lowercase_and_whitespace_tolerated() {
        assert!(parse_wkt("  point (1 2)  ").is_some());
        assert!(parse_wkt("linestring(0 0, 1 1)").is_some());
    }

    #[test]
    fn garbage_rejected() {
        assert!(parse_wkt("CIRCLE (0 0, 5)").is_none());
        assert!(parse_wkt("POINT 1 2").is_none());
        assert!(parse_wkt("POINT (x y)").is_none());
        assert!(parse_wkt("LINESTRING ((0 0)").is_none());
    }

    #[test]
    fn curves_flatten_to_linestrings() {
        let c = Curve::from_linestring(
            LineString::new(vec![Coord::xy(0.0, 0.0), Coord::xy(2.0, 0.0)]).unwrap(),
        );
        assert_eq!(to_wkt(&Geometry::Curve(c)), "LINESTRING (0 0, 2 0)");
    }

    #[test]
    fn three_d_coords_parse() {
        let g = parse_wkt("LINESTRING (0 0 1, 2 2 3)").unwrap();
        match g {
            Geometry::LineString(l) => assert_eq!(l.coords[1].z, 3.0),
            other => panic!("unexpected {other:?}"),
        }
    }
}
