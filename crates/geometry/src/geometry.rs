//! The [`Geometry`] sum type: every form of the GRDF geometry ontology
//! behind one enum with shared operations.

use crate::coord::Coord;
use crate::envelope::Envelope;
use crate::multi::{
    CompositeCurve, CompositeSurface, GeometryComplex, MultiCurve, MultiPoint, MultiSurface,
};
use crate::primitives::{Curve, LineString, Point, Polygon, Ring, Solid, Surface};

/// Any GRDF geometry.
#[derive(Debug, Clone, PartialEq)]
pub enum Geometry {
    /// 0-D point.
    Point(Point),
    /// Polyline.
    LineString(LineString),
    /// Segment chain (lines/arcs).
    Curve(Curve),
    /// Closed loop.
    Ring(Ring),
    /// Patch with holes.
    Polygon(Polygon),
    /// Patch collection.
    Surface(Surface),
    /// 3-D solid.
    Solid(Solid),
    /// Flat point aggregate.
    MultiPoint(MultiPoint),
    /// Flat curve aggregate.
    MultiCurve(MultiCurve),
    /// Flat surface aggregate.
    MultiSurface(MultiSurface),
    /// Contiguous curve chain.
    CompositeCurve(CompositeCurve),
    /// Contiguous surface set.
    CompositeSurface(CompositeSurface),
    /// Arbitrary mixed aggregate.
    Complex(GeometryComplex),
}

impl Geometry {
    /// Topological dimension of the geometry (highest member dimension for
    /// aggregates; `None` for an empty complex).
    pub fn dimension(&self) -> Option<u8> {
        match self {
            Geometry::Point(_) | Geometry::MultiPoint(_) => Some(0),
            Geometry::LineString(_)
            | Geometry::Curve(_)
            | Geometry::Ring(_)
            | Geometry::MultiCurve(_)
            | Geometry::CompositeCurve(_) => Some(1),
            Geometry::Polygon(_)
            | Geometry::Surface(_)
            | Geometry::MultiSurface(_)
            | Geometry::CompositeSurface(_) => Some(2),
            Geometry::Solid(_) => Some(3),
            Geometry::Complex(c) => c.members.iter().filter_map(Geometry::dimension).max(),
        }
    }

    /// Bounding envelope; `None` only for empty aggregates.
    pub fn envelope(&self) -> Option<Envelope> {
        match self {
            Geometry::Point(p) => Some(p.envelope()),
            Geometry::LineString(l) => Some(l.envelope()),
            Geometry::Curve(c) => Some(c.envelope()),
            Geometry::Ring(r) => Some(r.envelope()),
            Geometry::Polygon(p) => Some(p.envelope()),
            Geometry::Surface(s) => Some(s.envelope()),
            Geometry::Solid(s) => Some(s.envelope()),
            Geometry::MultiPoint(m) => m.envelope(),
            Geometry::MultiCurve(m) => m.envelope(),
            Geometry::MultiSurface(m) => m.envelope(),
            Geometry::CompositeCurve(c) => {
                Envelope::of_coords(&[c.start(), c.end()]).map(|mut e| {
                    // Conservative: also include every member's span.
                    for m in c.members() {
                        if let CompositeMemberEnvelope::Some(me) = member_envelope(m) {
                            e = e.union(&me);
                        }
                    }
                    e
                })
            }
            Geometry::CompositeSurface(c) => Some(c.envelope()),
            Geometry::Complex(c) => c.envelope(),
        }
    }

    /// Number of atomic geometries (1 for primitives; recursive for
    /// aggregates).
    pub fn atomic_count(&self) -> usize {
        match self {
            Geometry::MultiPoint(m) => m.members.len(),
            Geometry::MultiCurve(m) => m.members.len(),
            Geometry::MultiSurface(m) => m.members.len(),
            Geometry::CompositeCurve(c) => c.members().len(),
            Geometry::CompositeSurface(c) => c.members().len(),
            Geometry::Complex(c) => c.atomic_count(),
            _ => 1,
        }
    }

    /// The GRDF ontology class name for this geometry (used when encoding
    /// features to RDF).
    pub fn class_name(&self) -> &'static str {
        match self {
            Geometry::Point(_) => "Point",
            Geometry::LineString(_) => "LineString",
            Geometry::Curve(_) => "Curve",
            Geometry::Ring(_) => "Ring",
            Geometry::Polygon(_) => "Polygon",
            Geometry::Surface(_) => "Surface",
            Geometry::Solid(_) => "Solid",
            Geometry::MultiPoint(_) => "MultiPoint",
            Geometry::MultiCurve(_) => "MultiCurve",
            Geometry::MultiSurface(_) => "MultiSurface",
            Geometry::CompositeCurve(_) => "CompositeCurve",
            Geometry::CompositeSurface(_) => "CompositeSurface",
            Geometry::Complex(_) => "GeometryComplex",
        }
    }

    /// Whether the point lies on/in the geometry (2-D semantics; for 0/1-D
    /// geometries uses a small tolerance on distance).
    pub fn contains_point(&self, c: &Coord, tolerance: f64) -> bool {
        match self {
            Geometry::Point(p) => p.coord.approx_eq(c, tolerance),
            Geometry::LineString(l) => l.distance_to(c) <= tolerance,
            Geometry::Curve(curve) => curve.to_linestring().distance_to(c) <= tolerance,
            Geometry::Ring(r) => r.contains(c),
            Geometry::Polygon(p) => p.contains(c),
            Geometry::Surface(s) => s.contains(c),
            Geometry::Solid(s) => s.shell.iter().any(|p| p.contains(c)),
            Geometry::MultiPoint(m) => m.members.iter().any(|p| p.coord.approx_eq(c, tolerance)),
            Geometry::MultiCurve(m) => m
                .members
                .iter()
                .any(|cv| cv.to_linestring().distance_to(c) <= tolerance),
            Geometry::MultiSurface(m) => m.contains(c),
            Geometry::CompositeCurve(cc) => cc.members().iter().any(|m| match m {
                crate::multi::CompositeCurveMember::Curve(cv) => {
                    cv.to_linestring().distance_to(c) <= tolerance
                }
                crate::multi::CompositeCurveMember::Composite(inner) => {
                    Geometry::CompositeCurve(inner.clone()).contains_point(c, tolerance)
                }
            }),
            Geometry::CompositeSurface(cs) => cs.members().iter().any(|s| s.contains(c)),
            Geometry::Complex(cx) => cx.members.iter().any(|g| g.contains_point(c, tolerance)),
        }
    }
}

enum CompositeMemberEnvelope {
    Some(Envelope),
    None,
}

fn member_envelope(m: &crate::multi::CompositeCurveMember) -> CompositeMemberEnvelope {
    match m {
        crate::multi::CompositeCurveMember::Curve(c) => CompositeMemberEnvelope::Some(c.envelope()),
        crate::multi::CompositeCurveMember::Composite(c) => {
            match Geometry::CompositeCurve(c.clone()).envelope() {
                Some(e) => CompositeMemberEnvelope::Some(e),
                None => CompositeMemberEnvelope::None,
            }
        }
    }
}

impl From<Point> for Geometry {
    fn from(p: Point) -> Geometry {
        Geometry::Point(p)
    }
}

impl From<LineString> for Geometry {
    fn from(l: LineString) -> Geometry {
        Geometry::LineString(l)
    }
}

impl From<Polygon> for Geometry {
    fn from(p: Polygon) -> Geometry {
        Geometry::Polygon(p)
    }
}

impl From<Surface> for Geometry {
    fn from(s: Surface) -> Geometry {
        Geometry::Surface(s)
    }
}

impl From<Curve> for Geometry {
    fn from(c: Curve) -> Geometry {
        Geometry::Curve(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linestring(points: &[(f64, f64)]) -> LineString {
        LineString::new(points.iter().map(|&(x, y)| Coord::xy(x, y)).collect()).unwrap()
    }

    #[test]
    fn dimensions_follow_the_paper() {
        assert_eq!(Geometry::Point(Point::new(0.0, 0.0)).dimension(), Some(0));
        assert_eq!(
            Geometry::LineString(linestring(&[(0.0, 0.0), (1.0, 1.0)])).dimension(),
            Some(1)
        );
        assert_eq!(
            Geometry::Polygon(Polygon::rectangle(Coord::xy(0.0, 0.0), Coord::xy(1.0, 1.0)))
                .dimension(),
            Some(2)
        );
        assert_eq!(
            Geometry::Solid(Solid::extrude(
                Polygon::rectangle(Coord::xy(0.0, 0.0), Coord::xy(1.0, 1.0)),
                2.0
            ))
            .dimension(),
            Some(3)
        );
    }

    #[test]
    fn complex_dimension_is_max_of_members() {
        let cx = Geometry::Complex(GeometryComplex::new(vec![
            Geometry::Point(Point::new(0.0, 0.0)),
            Geometry::Polygon(Polygon::rectangle(Coord::xy(0.0, 0.0), Coord::xy(1.0, 1.0))),
        ]));
        assert_eq!(cx.dimension(), Some(2));
        assert_eq!(
            Geometry::Complex(GeometryComplex::default()).dimension(),
            None
        );
    }

    #[test]
    fn envelopes_cover_members() {
        let g = Geometry::MultiPoint(MultiPoint::new(vec![
            Point::new(-1.0, -2.0),
            Point::new(4.0, 5.0),
        ]));
        let env = g.envelope().unwrap();
        assert_eq!(env.min, Coord::xy(-1.0, -2.0));
        assert_eq!(env.max, Coord::xy(4.0, 5.0));
        assert!(Geometry::MultiPoint(MultiPoint::default())
            .envelope()
            .is_none());
    }

    #[test]
    fn contains_point_dispatch() {
        let line = Geometry::LineString(linestring(&[(0.0, 0.0), (10.0, 0.0)]));
        assert!(line.contains_point(&Coord::xy(5.0, 0.05), 0.1));
        assert!(!line.contains_point(&Coord::xy(5.0, 1.0), 0.1));
        let poly = Geometry::Polygon(Polygon::rectangle(Coord::xy(0.0, 0.0), Coord::xy(2.0, 2.0)));
        assert!(poly.contains_point(&Coord::xy(1.0, 1.0), 0.0));
    }

    #[test]
    fn class_names_match_ontology() {
        assert_eq!(Geometry::Point(Point::new(0.0, 0.0)).class_name(), "Point");
        assert_eq!(
            Geometry::MultiCurve(MultiCurve::default()).class_name(),
            "MultiCurve"
        );
        assert_eq!(
            Geometry::Complex(GeometryComplex::default()).class_name(),
            "GeometryComplex"
        );
    }

    #[test]
    fn atomic_counts() {
        assert_eq!(Geometry::Point(Point::new(0.0, 0.0)).atomic_count(), 1);
        let mp = Geometry::MultiPoint(MultiPoint::new(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 1.0),
        ]));
        assert_eq!(mp.atomic_count(), 2);
    }

    #[test]
    fn from_conversions() {
        let _: Geometry = Point::new(0.0, 0.0).into();
        let _: Geometry = linestring(&[(0.0, 0.0), (1.0, 1.0)]).into();
        let _: Geometry = Polygon::rectangle(Coord::xy(0.0, 0.0), Coord::xy(1.0, 1.0)).into();
    }
}
