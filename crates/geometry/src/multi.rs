//! Multipart geometries with the paper's three structural flavours (§5):
//!
//! * **Multi** — "composed of the same base type and no stipulation as to
//!   their mutual relationship … does not allow nesting since it is a
//!   straight enumeration of the individual parts."
//! * **Composite** — "similar to Multi type except the individual parts
//!   have to be contiguous and nesting is allowed."
//! * **Complex** — "allows arbitrary combination of the types. The atomic
//!   parts can be Multi type, Composite type and even Complex type."
//!
//! There is deliberately no `ComplexCurve`: "a curve cannot take on a
//! non-curve form" — the type system here enforces that by construction.

use crate::coord::Coord;
use crate::envelope::Envelope;
use crate::geometry::Geometry;
use crate::primitives::{Curve, Point, Surface};

/// Flat bag of points.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MultiPoint {
    /// The member points.
    pub members: Vec<Point>,
}

impl MultiPoint {
    /// Build from members.
    pub fn new(members: Vec<Point>) -> MultiPoint {
        MultiPoint { members }
    }

    /// Bounding box over members.
    pub fn envelope(&self) -> Option<Envelope> {
        Envelope::of_coords(&self.members.iter().map(|p| p.coord).collect::<Vec<_>>())
    }
}

/// Flat bag of curves (no contiguity requirement, no nesting).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MultiCurve {
    /// The member curves.
    pub members: Vec<Curve>,
}

impl MultiCurve {
    /// Build from members.
    pub fn new(members: Vec<Curve>) -> MultiCurve {
        MultiCurve { members }
    }

    /// Total length over members.
    pub fn length(&self) -> f64 {
        self.members.iter().map(Curve::length).sum()
    }

    /// Bounding box over members.
    pub fn envelope(&self) -> Option<Envelope> {
        fold_envelopes(self.members.iter().map(Curve::envelope))
    }
}

/// Flat bag of surfaces.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MultiSurface {
    /// The member surfaces.
    pub members: Vec<Surface>,
}

impl MultiSurface {
    /// Build from members.
    pub fn new(members: Vec<Surface>) -> MultiSurface {
        MultiSurface { members }
    }

    /// Total area over members.
    pub fn area(&self) -> f64 {
        self.members.iter().map(Surface::area).sum()
    }

    /// Any member contains the point.
    pub fn contains(&self, c: &Coord) -> bool {
        self.members.iter().any(|s| s.contains(c))
    }

    /// Bounding box over members.
    pub fn envelope(&self) -> Option<Envelope> {
        fold_envelopes(self.members.iter().map(Surface::envelope))
    }
}

/// A member of a composite curve: either a plain curve or a nested
/// composite ("nesting is allowed").
#[derive(Debug, Clone, PartialEq)]
pub enum CompositeCurveMember {
    /// Atomic curve.
    Curve(Curve),
    /// Nested composite of the same base type.
    Composite(CompositeCurve),
}

impl CompositeCurveMember {
    fn start(&self) -> Coord {
        match self {
            CompositeCurveMember::Curve(c) => c.start(),
            CompositeCurveMember::Composite(c) => c.start(),
        }
    }

    fn end(&self) -> Coord {
        match self {
            CompositeCurveMember::Curve(c) => c.end(),
            CompositeCurveMember::Composite(c) => c.end(),
        }
    }

    fn length(&self) -> f64 {
        match self {
            CompositeCurveMember::Curve(c) => c.length(),
            CompositeCurveMember::Composite(c) => c.length(),
        }
    }
}

/// Contiguous chain of curves; construction verifies each member starts
/// where the previous one ends.
#[derive(Debug, Clone, PartialEq)]
pub struct CompositeCurve {
    members: Vec<CompositeCurveMember>,
}

impl CompositeCurve {
    /// Build a composite; `None` when empty or not contiguous (1e-9).
    pub fn new(members: Vec<CompositeCurveMember>) -> Option<CompositeCurve> {
        if members.is_empty() {
            return None;
        }
        for w in members.windows(2) {
            if !w[0].end().approx_eq(&w[1].start(), 1e-9) {
                return None;
            }
        }
        Some(CompositeCurve { members })
    }

    /// Convenience: composite from plain curves.
    pub fn from_curves(curves: Vec<Curve>) -> Option<CompositeCurve> {
        CompositeCurve::new(
            curves
                .into_iter()
                .map(CompositeCurveMember::Curve)
                .collect(),
        )
    }

    /// The members.
    pub fn members(&self) -> &[CompositeCurveMember] {
        &self.members
    }

    /// Start of the chain.
    pub fn start(&self) -> Coord {
        self.members[0].start()
    }

    /// End of the chain.
    pub fn end(&self) -> Coord {
        self.members.last().expect("non-empty").end()
    }

    /// Total length.
    pub fn length(&self) -> f64 {
        self.members.iter().map(CompositeCurveMember::length).sum()
    }

    /// Depth of nesting (1 when all members are atomic).
    pub fn nesting_depth(&self) -> usize {
        1 + self
            .members
            .iter()
            .map(|m| match m {
                CompositeCurveMember::Curve(_) => 0,
                CompositeCurveMember::Composite(c) => c.nesting_depth(),
            })
            .max()
            .unwrap_or(0)
    }
}

/// Contiguous set of surfaces: every member must share boundary extent with
/// the union of the previous ones (checked via envelope adjacency — a
/// pragmatic contiguity test for rectilinear data).
#[derive(Debug, Clone, PartialEq)]
pub struct CompositeSurface {
    members: Vec<Surface>,
}

impl CompositeSurface {
    /// Build; `None` when empty or a member is disconnected from all
    /// members before it.
    pub fn new(members: Vec<Surface>) -> Option<CompositeSurface> {
        if members.is_empty() {
            return None;
        }
        for i in 1..members.len() {
            let env = members[i].envelope();
            let touches_any = members[..i].iter().any(|m| m.envelope().intersects(&env));
            if !touches_any {
                return None;
            }
        }
        Some(CompositeSurface { members })
    }

    /// The members.
    pub fn members(&self) -> &[Surface] {
        &self.members
    }

    /// Total area.
    pub fn area(&self) -> f64 {
        self.members.iter().map(Surface::area).sum()
    }

    /// Bounding box.
    pub fn envelope(&self) -> Envelope {
        fold_envelopes(self.members.iter().map(Surface::envelope)).expect("non-empty")
    }
}

/// "A Complex type is the most involved of the three because it allows
/// arbitrary combination of the types" — a geometry complex holds any mix
/// of geometries, including other complexes.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct GeometryComplex {
    /// Arbitrary members.
    pub members: Vec<Geometry>,
}

impl GeometryComplex {
    /// Build from members.
    pub fn new(members: Vec<Geometry>) -> GeometryComplex {
        GeometryComplex { members }
    }

    /// Number of atomic (non-aggregate) geometries, recursively.
    pub fn atomic_count(&self) -> usize {
        self.members.iter().map(Geometry::atomic_count).sum()
    }

    /// Bounding box over all members.
    pub fn envelope(&self) -> Option<Envelope> {
        fold_envelopes(self.members.iter().filter_map(Geometry::envelope))
    }
}

fn fold_envelopes<I: IntoIterator<Item = Envelope>>(iter: I) -> Option<Envelope> {
    iter.into_iter().reduce(|a, b| a.union(&b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::primitives::{LineString, Polygon};

    fn line(points: &[(f64, f64)]) -> Curve {
        Curve::from_linestring(
            LineString::new(points.iter().map(|&(x, y)| Coord::xy(x, y)).collect()).unwrap(),
        )
    }

    #[test]
    fn multi_point_envelope() {
        let mp = MultiPoint::new(vec![Point::new(0.0, 0.0), Point::new(3.0, 4.0)]);
        let env = mp.envelope().unwrap();
        assert_eq!(env.max, Coord::xy(3.0, 4.0));
        assert!(MultiPoint::default().envelope().is_none());
    }

    #[test]
    fn multi_curve_no_contiguity_needed() {
        let mc = MultiCurve::new(vec![
            line(&[(0.0, 0.0), (1.0, 0.0)]),
            line(&[(10.0, 10.0), (10.0, 12.0)]),
        ]);
        assert_eq!(mc.length(), 3.0);
        assert!(mc.envelope().unwrap().contains(&Coord::xy(10.0, 11.0)));
    }

    #[test]
    fn composite_curve_requires_contiguity() {
        let ok = CompositeCurve::from_curves(vec![
            line(&[(0.0, 0.0), (1.0, 0.0)]),
            line(&[(1.0, 0.0), (2.0, 2.0)]),
        ]);
        assert!(ok.is_some());
        assert_eq!(ok.unwrap().length(), 1.0 + (1.0f64 + 4.0).sqrt());

        let broken = CompositeCurve::from_curves(vec![
            line(&[(0.0, 0.0), (1.0, 0.0)]),
            line(&[(5.0, 5.0), (6.0, 5.0)]),
        ]);
        assert!(broken.is_none());
        assert!(CompositeCurve::from_curves(vec![]).is_none());
    }

    #[test]
    fn composite_curve_nesting() {
        let inner = CompositeCurve::from_curves(vec![
            line(&[(1.0, 0.0), (2.0, 0.0)]),
            line(&[(2.0, 0.0), (3.0, 0.0)]),
        ])
        .unwrap();
        let outer = CompositeCurve::new(vec![
            CompositeCurveMember::Curve(line(&[(0.0, 0.0), (1.0, 0.0)])),
            CompositeCurveMember::Composite(inner),
        ])
        .unwrap();
        assert_eq!(outer.length(), 3.0);
        assert_eq!(outer.nesting_depth(), 2);
        assert_eq!(outer.start(), Coord::xy(0.0, 0.0));
        assert_eq!(outer.end(), Coord::xy(3.0, 0.0));
    }

    #[test]
    fn nested_composite_must_still_be_contiguous() {
        let inner = CompositeCurve::from_curves(vec![line(&[(9.0, 9.0), (10.0, 9.0)])]).unwrap();
        let broken = CompositeCurve::new(vec![
            CompositeCurveMember::Curve(line(&[(0.0, 0.0), (1.0, 0.0)])),
            CompositeCurveMember::Composite(inner),
        ]);
        assert!(broken.is_none());
    }

    #[test]
    fn multi_surface_area_and_containment() {
        let ms = MultiSurface::new(vec![
            Surface::from_polygon(Polygon::rectangle(Coord::xy(0.0, 0.0), Coord::xy(2.0, 2.0))),
            Surface::from_polygon(Polygon::rectangle(
                Coord::xy(10.0, 0.0),
                Coord::xy(12.0, 1.0),
            )),
        ]);
        assert_eq!(ms.area(), 6.0);
        assert!(ms.contains(&Coord::xy(11.0, 0.5)));
        assert!(!ms.contains(&Coord::xy(5.0, 5.0)));
    }

    #[test]
    fn composite_surface_contiguity_via_shared_extent() {
        let a = Surface::from_polygon(Polygon::rectangle(Coord::xy(0.0, 0.0), Coord::xy(2.0, 2.0)));
        let b = Surface::from_polygon(Polygon::rectangle(Coord::xy(2.0, 0.0), Coord::xy(4.0, 2.0)));
        let far = Surface::from_polygon(Polygon::rectangle(
            Coord::xy(10.0, 10.0),
            Coord::xy(11.0, 11.0),
        ));
        assert!(CompositeSurface::new(vec![a.clone(), b.clone()]).is_some());
        assert!(CompositeSurface::new(vec![a.clone(), far.clone()]).is_none());
        let cs = CompositeSurface::new(vec![a, b]).unwrap();
        assert_eq!(cs.area(), 8.0);
        assert_eq!(cs.envelope().width(), 4.0);
        let _ = far;
    }

    #[test]
    fn complex_mixes_types_and_counts_atoms() {
        let complex = GeometryComplex::new(vec![
            Geometry::Point(Point::new(0.0, 0.0)),
            Geometry::MultiCurve(MultiCurve::new(vec![
                line(&[(0.0, 0.0), (1.0, 0.0)]),
                line(&[(5.0, 5.0), (6.0, 6.0)]),
            ])),
            Geometry::Complex(GeometryComplex::new(vec![Geometry::Point(Point::new(
                9.0, 9.0,
            ))])),
        ]);
        assert_eq!(complex.atomic_count(), 4);
        let env = complex.envelope().unwrap();
        assert!(env.contains(&Coord::xy(9.0, 9.0)));
        assert!(env.contains(&Coord::xy(6.0, 6.0)));
    }
}
