//! Coordinate Reference Systems — `grdf:CRS`, "used to reference the
//! decimal values of a geometric object that represent the position of the
//! object on the Earth" (paper §3.3.6).
//!
//! The paper's data uses the Texas state-plane CRS (`TX83-NCF`, a Lambert
//! projection, coordinates in US survey feet). Real projection machinery
//! (EPSG database, datum shifts) is out of scope; this module substitutes a
//! registry of *geographic* (lon/lat degrees) and *projected* systems whose
//! projection is an equirectangular approximation around a named origin —
//! enough to exercise every CRS-dependent code path (srsName bookkeeping,
//! unit handling, reprojection before aggregation) with realistic numbers.

use std::collections::HashMap;

use crate::coord::Coord;

/// Mean Earth radius in meters, used by the equirectangular projection.
const EARTH_RADIUS_M: f64 = 6_371_000.0;
/// US survey feet per meter.
const FEET_PER_METER: f64 = 3.280_833_333;

/// The kind of a CRS.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CrsKind {
    /// Angular coordinates: x = longitude, y = latitude, in degrees.
    Geographic,
    /// Planar coordinates produced by an equirectangular projection around
    /// `(origin_lon, origin_lat)`, scaled to the CRS's linear unit.
    Projected {
        /// Projection origin longitude (degrees).
        origin_lon: f64,
        /// Projection origin latitude (degrees).
        origin_lat: f64,
        /// Linear units per meter (1.0 = meters, ~3.28 = feet).
        units_per_meter: f64,
        /// False easting added to x, in CRS units.
        false_easting: f64,
        /// False northing added to y, in CRS units.
        false_northing: f64,
    },
}

/// A coordinate reference system.
#[derive(Debug, Clone, PartialEq)]
pub struct Crs {
    /// The srsName IRI used in data (e.g. `http://grdf.org/crs/TX83-NCF`).
    pub id: String,
    /// Human-readable name.
    pub name: String,
    /// Kind and parameters.
    pub kind: CrsKind,
}

impl Crs {
    /// Project a geographic (lon, lat) coordinate into this CRS.
    /// Geographic CRSs return the input unchanged.
    pub fn from_lon_lat(&self, lon: f64, lat: f64) -> Coord {
        match self.kind {
            CrsKind::Geographic => Coord::xy(lon, lat),
            CrsKind::Projected {
                origin_lon,
                origin_lat,
                units_per_meter,
                false_easting,
                false_northing,
            } => {
                let lat0 = origin_lat.to_radians();
                let x_m = (lon - origin_lon).to_radians() * lat0.cos() * EARTH_RADIUS_M;
                let y_m = (lat - origin_lat).to_radians() * EARTH_RADIUS_M;
                Coord::xy(
                    x_m * units_per_meter + false_easting,
                    y_m * units_per_meter + false_northing,
                )
            }
        }
    }

    /// Inverse: CRS coordinate back to geographic (lon, lat).
    pub fn to_lon_lat(&self, c: &Coord) -> (f64, f64) {
        match self.kind {
            CrsKind::Geographic => (c.x, c.y),
            CrsKind::Projected {
                origin_lon,
                origin_lat,
                units_per_meter,
                false_easting,
                false_northing,
            } => {
                let lat0 = origin_lat.to_radians();
                let x_m = (c.x - false_easting) / units_per_meter;
                let y_m = (c.y - false_northing) / units_per_meter;
                let lon = origin_lon + (x_m / (EARTH_RADIUS_M * lat0.cos())).to_degrees();
                let lat = origin_lat + (y_m / EARTH_RADIUS_M).to_degrees();
                (lon, lat)
            }
        }
    }

    /// Length of one CRS unit in meters (0 for geographic CRSs, whose units
    /// are angular).
    pub fn unit_in_meters(&self) -> f64 {
        match self.kind {
            CrsKind::Geographic => 0.0,
            CrsKind::Projected {
                units_per_meter, ..
            } => 1.0 / units_per_meter,
        }
    }
}

/// A registry of known CRSs keyed by srsName.
#[derive(Debug, Default)]
pub struct CrsRegistry {
    systems: HashMap<String, Crs>,
}

/// srsName of the built-in WGS84 geographic CRS.
pub const WGS84: &str = "http://grdf.org/crs/WGS84";
/// srsName of the built-in Texas-North-Central-feet projected CRS — the
/// system the paper's hydrology data (List 6) references as `TX83-NCF`.
pub const TX83_NCF: &str = "http://grdf.org/crs/TX83-NCF";

impl CrsRegistry {
    /// Registry preloaded with [`WGS84`] and [`TX83_NCF`].
    pub fn with_defaults() -> CrsRegistry {
        let mut r = CrsRegistry::default();
        r.register(Crs {
            id: WGS84.to_string(),
            name: "WGS 84 geographic".to_string(),
            kind: CrsKind::Geographic,
        });
        // Origin near the DFW metroplex; false offsets put typical metro
        // coordinates into the millions of feet like real TX83-NCF data
        // (compare List 6: 2533822.17, 7108248.82).
        r.register(Crs {
            id: TX83_NCF.to_string(),
            name: "Texas North Central (ft), equirectangular substitute".to_string(),
            kind: CrsKind::Projected {
                origin_lon: -97.0,
                origin_lat: 32.8,
                units_per_meter: FEET_PER_METER,
                false_easting: 2_400_000.0,
                false_northing: 7_000_000.0,
            },
        });
        r
    }

    /// Register (or replace) a CRS.
    pub fn register(&mut self, crs: Crs) {
        self.systems.insert(crs.id.clone(), crs);
    }

    /// Look up a CRS by srsName.
    pub fn get(&self, id: &str) -> Option<&Crs> {
        self.systems.get(id)
    }

    /// Number of registered systems.
    pub fn len(&self) -> usize {
        self.systems.len()
    }

    /// True when no systems are registered.
    pub fn is_empty(&self) -> bool {
        self.systems.is_empty()
    }

    /// Transform a coordinate from one registered CRS to another, going
    /// through geographic coordinates. Returns `None` when either CRS is
    /// unknown.
    pub fn transform(&self, from: &str, to: &str, c: &Coord) -> Option<Coord> {
        let from = self.get(from)?;
        let to = self.get(to)?;
        let (lon, lat) = from.to_lon_lat(c);
        Some(to.from_lon_lat(lon, lat))
    }

    /// Transform a whole coordinate slice.
    pub fn transform_all(&self, from: &str, to: &str, coords: &[Coord]) -> Option<Vec<Coord>> {
        coords.iter().map(|c| self.transform(from, to, c)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_registered() {
        let r = CrsRegistry::with_defaults();
        assert_eq!(r.len(), 2);
        assert!(r.get(WGS84).is_some());
        assert!(r.get(TX83_NCF).is_some());
        assert!(r.get("urn:nope").is_none());
    }

    #[test]
    fn projection_roundtrips() {
        let r = CrsRegistry::with_defaults();
        let tx = r.get(TX83_NCF).unwrap();
        let c = tx.from_lon_lat(-96.8, 32.9);
        let (lon, lat) = tx.to_lon_lat(&c);
        assert!((lon - -96.8).abs() < 1e-9, "{lon}");
        assert!((lat - 32.9).abs() < 1e-9, "{lat}");
    }

    #[test]
    fn tx_coordinates_look_like_list6() {
        // Dallas-area point should land in the coordinate magnitude range
        // the paper's hydrology sample shows.
        let r = CrsRegistry::with_defaults();
        let tx = r.get(TX83_NCF).unwrap();
        let c = tx.from_lon_lat(-96.8, 32.9);
        assert!(c.x > 2_400_000.0 && c.x < 2_700_000.0, "{c:?}");
        assert!(c.y > 7_000_000.0 && c.y < 7_200_000.0, "{c:?}");
    }

    #[test]
    fn cross_crs_transform() {
        let r = CrsRegistry::with_defaults();
        let geo = Coord::xy(-96.8, 32.9);
        let projected = r.transform(WGS84, TX83_NCF, &geo).unwrap();
        let back = r.transform(TX83_NCF, WGS84, &projected).unwrap();
        assert!(back.approx_eq(&geo, 1e-9));
        assert!(r.transform("urn:nope", WGS84, &geo).is_none());
    }

    #[test]
    fn one_degree_lat_is_about_111km() {
        let r = CrsRegistry::with_defaults();
        let tx = r.get(TX83_NCF).unwrap();
        let a = tx.from_lon_lat(-97.0, 32.0);
        let b = tx.from_lon_lat(-97.0, 33.0);
        let dist_m = a.distance_2d(&b) * tx.unit_in_meters();
        assert!((dist_m - 111_195.0).abs() < 500.0, "{dist_m}");
    }

    #[test]
    fn transform_all_slices() {
        let r = CrsRegistry::with_defaults();
        let pts = vec![Coord::xy(-96.8, 32.9), Coord::xy(-96.7, 32.95)];
        let out = r.transform_all(WGS84, TX83_NCF, &pts).unwrap();
        assert_eq!(out.len(), 2);
        assert!(out[0].x < out[1].x, "east increases");
        assert!(out[0].y < out[1].y, "north increases");
    }

    #[test]
    fn geographic_is_identity() {
        let r = CrsRegistry::with_defaults();
        let g = r.get(WGS84).unwrap();
        let c = g.from_lon_lat(10.0, 20.0);
        assert_eq!(c, Coord::xy(10.0, 20.0));
        assert_eq!(g.unit_in_meters(), 0.0);
    }
}
