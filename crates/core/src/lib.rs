//! GRDF core: the ontology of Fig. 1 and the aggregation store.
//!
//! This crate is the paper's primary artifact. [`ontology`] constructs the
//! complete GRDF ontology — feature model (§4), geometry model (§5),
//! topology model (§6, Fig. 2), and the §3.3 support types (Value,
//! Observation, CRS, TimeObject, Coverage) — as OWL axioms, including the
//! restriction listings (Lists 2–5). [`store`] provides the high-level
//! API the paper motivates: load heterogeneous sources (GML, Turtle,
//! RDF/XML, native features), merge them into one semantics-bearing graph,
//! materialize inferences, and query across what used to be information
//! silos.
//!
//! # Example
//!
//! ```
//! use grdf_core::store::GrdfStore;
//!
//! let mut store = GrdfStore::new();
//! store.load_turtle(
//!     "@prefix app: <http://grdf.org/app#> .
//!      app:s1 a app:ChemSite ; app:hasSiteName \"NT Energy\" .",
//! ).unwrap();
//! let rows = store.query(
//!     "PREFIX app: <http://grdf.org/app#>
//!      SELECT ?n WHERE { ?s a app:ChemSite ; app:hasSiteName ?n }",
//! ).unwrap();
//! assert_eq!(rows.select_rows().len(), 1);
//! ```

pub mod ontology;
pub mod store;

pub use ontology::{grdf_ontology, OntologyStats};
pub use store::{GrdfStore, StoreError};
