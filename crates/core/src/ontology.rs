//! The GRDF ontology (Fig. 1): "the main elements of the hierarchy are the
//! feature and geometry model", rooted at `RootGRDFObject`, with the
//! topology branch of Fig. 2 and the §3.3 support types.

use grdf_owl::model::{Characteristic, OntologyBuilder, RestrictionKind};
use grdf_rdf::graph::Graph;
use grdf_rdf::vocab::{grdf, xsd};

/// Counts describing the constructed ontology.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OntologyStats {
    /// Declared named classes.
    pub classes: usize,
    /// Declared object properties.
    pub object_properties: usize,
    /// Declared datatype properties.
    pub datatype_properties: usize,
    /// Total axiom triples.
    pub triples: usize,
}

/// Build the complete GRDF ontology graph.
pub fn grdf_ontology() -> Graph {
    let mut b = OntologyBuilder::new(grdf::NS);

    // ---- root -----------------------------------------------------------
    b.class("RootGRDFObject", None);
    b.comment(
        "RootGRDFObject",
        "Base class of every GRDF construct (paper §6).",
    );

    // ---- feature model (§4, §3.3) ---------------------------------------
    b.class("Feature", Some("RootGRDFObject"));
    b.comment(
        "Feature",
        "An application object such as 'landfill' or 'building' (§3.3.1).",
    );
    b.class("FeatureCollection", Some("Feature"));
    b.class("Observation", Some("Feature"));
    b.comment(
        "Observation",
        "Recording/observing of a feature; itself a Feature type (§3.3.5).",
    );
    b.class("Coverage", Some("Feature"));
    b.comment(
        "Coverage",
        "Distribution of quantitative or qualitative properties of an object (§3.3.8).",
    );
    b.class("Value", Some("RootGRDFObject"));
    b.comment(
        "Value",
        "Aggregate concept for real-world property values (§3.3.4).",
    );
    b.class("CRS", Some("RootGRDFObject"));
    b.comment("CRS", "Coordinate Reference System (§3.3.6).");

    // Temporal branch (§3.3.7).
    b.class("TimeObject", Some("RootGRDFObject"));
    b.class("TimeInstant", Some("TimeObject"));
    b.class("TimePeriod", Some("TimeObject"));

    // Extent classes (§4).
    b.class("BoundingShape", Some("RootGRDFObject"));
    b.class("Envelope", Some("BoundingShape"));
    b.comment(
        "Envelope",
        "A pair of coordinates corresponding to the opposite corners of a feature (§4).",
    );
    // GML 3.1 defines Envelope in the geometry schema, and the feature
    // encoding gives envelopes `coordinates`/`srsName` (domain Geometry):
    // an envelope is both an extent and a geometric object.
    b.sub_class_of("Envelope", "Geometry");
    b.class("EnvelopeWithTimePeriod", Some("Envelope"));
    b.class("Null", Some("BoundingShape"));
    b.comment("Null", "Extent not applicable or not available (§4).");

    // List 3: EnvelopeWithTimePeriod carries exactly two time positions.
    b.object_property(
        "hasTimePosition",
        Some("EnvelopeWithTimePeriod"),
        Some("TimeInstant"),
    );
    b.restrict(
        "EnvelopeWithTimePeriod",
        "hasTimePosition",
        RestrictionKind::Exactly(2),
    );

    // ---- geometry model (§5) ---------------------------------------------
    b.class("Geometry", Some("RootGRDFObject"));
    b.comment("Geometry", "Spatial aspects of a feature (§3.3.2).");
    b.class("Point", Some("Geometry"));
    b.comment(
        "Point",
        "The most basic and indecomposable form of geometry (§5).",
    );
    b.class("Curve", Some("Geometry"));
    b.comment(
        "Curve",
        "One-dimensional form defined in terms of anchor points (§5).",
    );
    b.class("LineString", Some("Curve"));
    b.class("Arc", Some("Curve"));
    b.class("Ring", Some("Curve"));
    b.comment(
        "Ring",
        "Closed aggregate restricted to straight-lines or curves (§5).",
    );
    b.class("Surface", Some("Geometry"));
    b.comment(
        "Surface",
        "Two-dimensional form with three or more anchor points (§5).",
    );
    b.class("Polygon", Some("Surface"));
    b.class("Solid", Some("Geometry"));
    b.comment(
        "Solid",
        "Three-dimensional shape; relies on two-dimensional classes, no composite of its own (§5).",
    );

    // Multipart forms: Multi (flat), Composite (contiguous), Complex (any).
    for (multi, base, member) in [
        ("MultiPoint", "Point", "pointMember"),
        ("MultiCurve", "Curve", "curveMember"),
        ("MultiSurface", "Surface", "surfaceMember"),
    ] {
        b.class(multi, Some("Geometry"));
        b.object_property(member, Some(multi), Some(base));
    }
    // List 4's curve aggregate family.
    b.class("CompositeCurve", Some("Geometry"));
    b.class("CompositeSurface", Some("Geometry"));
    b.class("GeometryComplex", Some("Geometry"));
    b.comment(
        "GeometryComplex",
        "Arbitrary combination of Multi, Composite and Complex parts (§5). There is no ComplexCurve: a curve cannot take on a non-curve form.",
    );
    b.object_property(
        "compositeCurveMember",
        Some("CompositeCurve"),
        Some("Curve"),
    );
    b.object_property(
        "compositeSurfaceMember",
        Some("CompositeSurface"),
        Some("Surface"),
    );
    b.object_property("complexMember", Some("GeometryComplex"), Some("Geometry"));

    // ---- topology model (§6, Fig. 2) --------------------------------------
    b.class("Topology", Some("RootGRDFObject"));
    b.comment(
        "Topology",
        "Coordinate-free constructions; connectivity is enough for many GIS operations (§6).",
    );
    for c in [
        "TopoPrimitive",
        "TopoCurve",
        "TopoSurface",
        "TopoVolume",
        "TopoComplex",
    ] {
        b.class(c, Some("Topology"));
    }
    for c in ["Node", "Edge", "Face", "TopoSolid"] {
        b.class(c, Some("TopoPrimitive"));
    }
    b.comment(
        "Face",
        "A 2-dimensional primitive bounded by a set of directed edges, with positive (clockwise) or negative (counter-clockwise) orientation (§6).",
    );
    // Geometry and Topology are distinct branches.
    b.disjoint_with("Geometry", "Topology");

    // List 5: Face cardinalities.
    b.object_property("hasTopoSolid", Some("Face"), Some("TopoSolid"));
    b.object_property("hasSurface", Some("Face"), Some("Surface"));
    b.object_property("hasEdge", Some("Face"), Some("Edge"));
    b.restrict("Face", "hasTopoSolid", RestrictionKind::AtMost(2));
    b.restrict("Face", "hasSurface", RestrictionKind::AtMost(1));
    b.restrict("Face", "hasEdge", RestrictionKind::AtLeast(1));

    // Realization (§6): topology realized by geometry.
    b.object_property("realizedBy", Some("Topology"), Some("Geometry"));
    b.object_property("realizes", Some("Geometry"), Some("Topology"));
    b.inverse_of("realizedBy", "realizes");
    // Ordered face boundaries: an RDF list of anonymous directed edge
    // uses (see `grdf_topology::rdf_codec`).
    b.object_property("hasBoundary", Some("Face"), None);
    b.object_property("viaEdge", None, Some("Edge"));
    b.datatype_property("isForward", None, Some(xsd::BOOLEAN));
    // Edge connectivity (coordinate-free structure).
    b.object_property("startNode", Some("Edge"), Some("Node"));
    b.object_property("endNode", Some("Edge"), Some("Node"));
    b.object_property("connectedTo", Some("Node"), Some("Node"));
    b.characteristic("connectedTo", Characteristic::Symmetric);
    b.object_property("reachableFrom", Some("Node"), Some("Node"));
    b.characteristic("reachableFrom", Characteristic::Transitive);
    b.sub_property_of("connectedTo", "reachableFrom");

    // ---- feature↔geometry linking (List 2 + codec vocabulary) -------------
    b.object_property("hasGeometry", Some("Feature"), Some("Geometry"));
    for p in [
        "hasCenterLineOf",
        "hasCenterOf",
        "hasEdgeOf",
        "hasEnvelope",
        "hasExtentOf",
    ] {
        b.object_property(p, Some("Feature"), Some("Geometry"));
        b.sub_property_of(p, "hasGeometry");
    }
    b.object_property("isBoundedBy", Some("Feature"), Some("BoundingShape"));
    b.object_property("hasCRS", Some("Feature"), Some("CRS"));
    b.object_property("observedFeature", Some("Observation"), Some("Feature"));
    // Provenance: which aggregated source contributed a resource.
    b.object_property("fromSource", None, None);
    b.comment(
        "fromSource",
        "Provenance link to the aggregated source a resource was loaded from.",
    );

    // Datatype properties (§3.2: extension-of-simple-type becomes a
    // datatype property with the base type as range).
    b.datatype_property("coordinates", Some("Geometry"), Some(xsd::STRING));
    b.datatype_property("asWKT", Some("Geometry"), Some(xsd::STRING));
    b.datatype_property("srsName", Some("Geometry"), Some(xsd::ANY_URI));
    b.datatype_property("nullReason", Some("Null"), Some(xsd::STRING));
    b.datatype_property("measureValue", Some("Value"), Some(xsd::DOUBLE));
    b.datatype_property("uom", Some("Value"), Some(xsd::ANY_URI));
    b.datatype_property("timePosition", Some("TimeObject"), Some(xsd::DATE_TIME));

    // Labels for the headline classes (documentation payload).
    for c in [
        "Feature",
        "Geometry",
        "Topology",
        "Value",
        "Observation",
        "CRS",
        "TimeObject",
        "Coverage",
    ] {
        b.label(c, c);
    }

    b.into_graph()
}

/// Compute summary statistics of an ontology graph.
pub fn stats(g: &Graph) -> OntologyStats {
    use grdf_rdf::term::Term;
    use grdf_rdf::vocab::{owl, rdf};
    let count_type = |class: &str| {
        g.match_pattern(None, Some(&Term::iri(rdf::TYPE)), Some(&Term::iri(class)))
            .iter()
            .filter(|t| !t.subject.is_blank())
            .count()
    };
    OntologyStats {
        classes: count_type(owl::CLASS),
        object_properties: count_type(owl::OBJECT_PROPERTY),
        datatype_properties: count_type(owl::DATATYPE_PROPERTY),
        triples: g.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grdf_owl::consistency::check_consistency;
    use grdf_owl::hierarchy::Hierarchy;
    use grdf_owl::reasoner::Reasoner;
    use grdf_rdf::term::Term;
    use grdf_rdf::vocab::{owl, rdf};

    fn iri(local: &str) -> Term {
        Term::iri(&grdf::iri(local))
    }

    #[test]
    fn fig1_hierarchy_is_present() {
        let g = grdf_ontology();
        let h = Hierarchy::new(&g);
        // The two main branches of Fig. 1 hang under the root.
        for leaf in [
            "Feature",
            "Geometry",
            "Topology",
            "Value",
            "CRS",
            "TimeObject",
        ] {
            assert!(
                h.is_subclass_of(&iri(leaf), &iri("RootGRDFObject")),
                "{leaf} must descend from RootGRDFObject"
            );
        }
        // Geometry chain: LineString ⊑ Curve ⊑ Geometry.
        assert!(h.is_subclass_of(&iri("LineString"), &iri("Geometry")));
        // Topology chain: Face ⊑ TopoPrimitive ⊑ Topology.
        assert!(h.is_subclass_of(&iri("Face"), &iri("Topology")));
        // §3.3.5: Observation is a Feature.
        assert!(h.is_subclass_of(&iri("Observation"), &iri("Feature")));
        // List 3 context: EnvelopeWithTimePeriod ⊑ Envelope.
        assert!(h.is_subclass_of(&iri("EnvelopeWithTimePeriod"), &iri("Envelope")));
    }

    #[test]
    fn ontology_size_is_substantial() {
        let g = grdf_ontology();
        let s = stats(&g);
        assert!(s.classes >= 35, "classes = {}", s.classes);
        assert!(
            s.object_properties >= 20,
            "object props = {}",
            s.object_properties
        );
        assert!(
            s.datatype_properties >= 5,
            "datatype props = {}",
            s.datatype_properties
        );
        assert!(s.triples >= 200, "triples = {}", s.triples);
    }

    #[test]
    fn list2_properties_are_geometry_subproperties() {
        let g = grdf_ontology();
        use grdf_rdf::vocab::rdfs;
        for p in [
            "hasCenterLineOf",
            "hasCenterOf",
            "hasEdgeOf",
            "hasEnvelope",
            "hasExtentOf",
        ] {
            assert!(
                g.has(
                    &iri(p),
                    &Term::iri(rdfs::SUB_PROPERTY_OF),
                    &iri("hasGeometry")
                ),
                "{p} ⊑ hasGeometry"
            );
        }
    }

    #[test]
    fn list5_face_restrictions_enforced_on_instances() {
        let mut g = grdf_ontology();
        let face = Term::iri("urn:f1");
        g.add(face.clone(), Term::iri(rdf::TYPE), iri("Face"));
        g.add(face.clone(), iri("hasEdge").clone(), Term::iri("urn:e1"));
        g.add(face.clone(), iri("hasSurface").clone(), Term::iri("urn:s1"));
        Reasoner::default().materialize(&mut g);
        assert!(check_consistency(&g).is_empty());
        // A second surface violates maxCardinality 1.
        g.add(face.clone(), iri("hasSurface").clone(), Term::iri("urn:s2"));
        let v = check_consistency(&g);
        assert!(!v.is_empty(), "expected a cardinality violation");
    }

    #[test]
    fn list3_envelope_restriction_enforced() {
        let mut g = grdf_ontology();
        let env = Term::iri("urn:env");
        g.add(
            env.clone(),
            Term::iri(rdf::TYPE),
            iri("EnvelopeWithTimePeriod"),
        );
        g.add(
            env.clone(),
            iri("hasTimePosition").clone(),
            Term::iri("urn:t0"),
        );
        Reasoner::default().materialize(&mut g);
        let v = check_consistency(&g);
        assert!(!v.is_empty(), "one time position violates =2");
        g.add(env, iri("hasTimePosition").clone(), Term::iri("urn:t1"));
        assert!(check_consistency(&g).is_empty());
    }

    #[test]
    fn geometry_topology_disjointness() {
        let mut g = grdf_ontology();
        let x = Term::iri("urn:x");
        g.add(x.clone(), Term::iri(rdf::TYPE), iri("Point"));
        g.add(x, Term::iri(rdf::TYPE), iri("Node"));
        Reasoner::default().materialize(&mut g);
        let v = check_consistency(&g);
        assert!(!v.is_empty(), "a Point that is also a Node is inconsistent");
    }

    #[test]
    fn realization_inverse_fires() {
        let mut g = grdf_ontology();
        g.add(
            Term::iri("urn:node1"),
            iri("realizedBy").clone(),
            Term::iri("urn:pt1"),
        );
        Reasoner::default().materialize(&mut g);
        assert!(g.has(
            &Term::iri("urn:pt1"),
            &iri("realizes"),
            &Term::iri("urn:node1")
        ));
    }

    #[test]
    fn connectivity_reasoning() {
        // connectedTo ⊑ reachableFrom (transitive): a chain of adjacent
        // nodes becomes mutually reachable — the §6 claim that connectivity
        // alone supports GIS modelling operations, here via inference.
        let mut g = grdf_ontology();
        for (a, b) in [("n1", "n2"), ("n2", "n3"), ("n3", "n4")] {
            g.add(
                Term::iri(&format!("urn:{a}")),
                iri("connectedTo").clone(),
                Term::iri(&format!("urn:{b}")),
            );
        }
        Reasoner::default().materialize(&mut g);
        assert!(g.has(
            &Term::iri("urn:n1"),
            &iri("reachableFrom"),
            &Term::iri("urn:n4")
        ));
        assert!(
            g.has(
                &Term::iri("urn:n4"),
                &iri("reachableFrom"),
                &Term::iri("urn:n1")
            ),
            "symmetry of connectedTo propagates"
        );
    }

    #[test]
    fn ontology_is_consistent_after_materialization() {
        let mut g = grdf_ontology();
        let stats = Reasoner::default().materialize(&mut g);
        assert!(stats.inferred > 0);
        assert!(check_consistency(&g).is_empty());
    }

    #[test]
    fn ontology_header_present() {
        let g = grdf_ontology();
        assert!(g.has(
            &Term::iri(grdf::NS.trim_end_matches('#')),
            &Term::iri(rdf::TYPE),
            &Term::iri(owl::ONTOLOGY)
        ));
    }

    #[test]
    fn serializes_to_turtle_and_back() {
        let g = grdf_ontology();
        let ttl = grdf_rdf::turtle::serialize(&g, &grdf_rdf::namespace::PrefixMap::common());
        let g2 = grdf_rdf::turtle::parse(&ttl).unwrap();
        assert_eq!(g.len(), g2.len());
    }

    #[test]
    fn serializes_to_rdfxml_and_back() {
        let g = grdf_ontology();
        let xml =
            grdf_rdf::rdfxml::serialize(&g, &grdf_rdf::namespace::PrefixMap::common()).unwrap();
        let g2 = grdf_rdf::rdfxml::parse(&xml).unwrap();
        // Blank restriction nodes may be relabelled; compare modulo blanks.
        assert!(grdf_rdf::isomorphism::isomorphic(&g, &g2));
    }
}
