//! `GrdfStore` — the aggregation API the paper motivates: "to take
//! advantage of the huge amount of geospatial data available … we need to
//! organize and structure the data in a more seamless manner … GRDF
//! provides the basic framework for a geospatial web that understands
//! semantics and can aggregate information on the fly" (§9).

use std::fmt;

use grdf_feature::feature::{Feature, FeatureCollection};
use grdf_feature::rdf_codec::{decode_features, encode_feature};
use grdf_gml::read::GmlError;
use grdf_owl::consistency::{check_consistency, Violation};
use grdf_owl::reasoner::{Reasoner, ReasonerStats};
use grdf_query::eval::{execute, QueryError, QueryResult};
use grdf_rdf::error::RdfError;
use grdf_rdf::graph::Graph;
use grdf_rdf::namespace::PrefixMap;
use grdf_rdf::term::Term;
use grdf_rdf::vocab::{grdf as ns, owl, rdf};

use crate::ontology::grdf_ontology;

/// Errors raised by store operations.
#[derive(Debug, Clone, PartialEq)]
pub enum StoreError {
    /// GML input failed to parse.
    Gml(String),
    /// RDF input failed to parse.
    Rdf(String),
    /// A query failed.
    Query(String),
    /// The store is inconsistent after materialization.
    Inconsistent(Vec<Violation>),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Gml(e) => write!(f, "GML error: {e}"),
            StoreError::Rdf(e) => write!(f, "RDF error: {e}"),
            StoreError::Query(e) => write!(f, "query error: {e}"),
            StoreError::Inconsistent(v) => {
                write!(f, "store is inconsistent ({} violations)", v.len())
            }
        }
    }
}

impl std::error::Error for StoreError {}

impl From<GmlError> for StoreError {
    fn from(e: GmlError) -> Self {
        StoreError::Gml(e.to_string())
    }
}

impl From<RdfError> for StoreError {
    fn from(e: RdfError) -> Self {
        StoreError::Rdf(e.to_string())
    }
}

impl From<QueryError> for StoreError {
    fn from(e: QueryError) -> Self {
        StoreError::Query(e.to_string())
    }
}

/// An aggregating GRDF store: ontology + instance data in one graph.
pub struct GrdfStore {
    graph: Graph,
    prefixes: PrefixMap,
    /// Number of sources merged so far.
    sources: usize,
}

impl Default for GrdfStore {
    fn default() -> Self {
        GrdfStore::new()
    }
}

impl GrdfStore {
    /// A store preloaded with the GRDF ontology.
    pub fn new() -> GrdfStore {
        GrdfStore {
            graph: grdf_ontology(),
            prefixes: PrefixMap::common(),
            sources: 0,
        }
    }

    /// A store without the ontology (for ablation benchmarks).
    pub fn empty() -> GrdfStore {
        GrdfStore {
            graph: Graph::new(),
            prefixes: PrefixMap::common(),
            sources: 0,
        }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Mutable access to the underlying graph (escape hatch).
    pub fn graph_mut(&mut self) -> &mut Graph {
        &mut self.graph
    }

    /// Total triple count (ontology + data + inferences).
    pub fn len(&self) -> usize {
        self.graph.len()
    }

    /// True when even the ontology is absent.
    pub fn is_empty(&self) -> bool {
        self.graph.is_empty()
    }

    /// Number of merged sources.
    pub fn source_count(&self) -> usize {
        self.sources
    }

    /// Prefixes used for serialization.
    pub fn prefixes(&self) -> &PrefixMap {
        &self.prefixes
    }

    /// Insert a native feature; returns its subject term.
    pub fn insert_feature(&mut self, feature: &Feature) -> Result<Term, StoreError> {
        Ok(encode_feature(&mut self.graph, feature))
    }

    /// Load a GML document (one heterogeneous source).
    pub fn load_gml(&mut self, gml: &str) -> Result<usize, StoreError> {
        let fc = grdf_gml::read::parse_gml(gml)?;
        for f in &fc.features {
            encode_feature(&mut self.graph, f);
        }
        self.sources += 1;
        Ok(fc.len())
    }

    /// Like [`GrdfStore::load_gml`], additionally asserting
    /// `grdf:fromSource <source_iri>` provenance on every loaded feature —
    /// queryable lineage for aggregated data.
    pub fn load_gml_from(&mut self, source_iri: &str, gml: &str) -> Result<usize, StoreError> {
        let fc = grdf_gml::read::parse_gml(gml)?;
        let prov = Term::iri(&ns::iri("fromSource"));
        let src = Term::iri(source_iri);
        for f in &fc.features {
            let subject = encode_feature(&mut self.graph, f);
            self.graph.add(subject, prov.clone(), src.clone());
        }
        self.sources += 1;
        Ok(fc.len())
    }

    /// Load Turtle data; blank nodes are renamed to stay hygienic across
    /// sources. Returns the number of triples added.
    pub fn load_turtle(&mut self, turtle: &str) -> Result<usize, StoreError> {
        let g = grdf_rdf::turtle::parse(turtle)?;
        self.sources += 1;
        Ok(self.graph.merge_renaming(&g))
    }

    /// Like [`GrdfStore::load_turtle`] with `grdf:fromSource` provenance on
    /// every loaded subject.
    pub fn load_turtle_from(
        &mut self,
        source_iri: &str,
        turtle: &str,
    ) -> Result<usize, StoreError> {
        let g = grdf_rdf::turtle::parse(turtle)?;
        self.sources += 1;
        let added = self.graph.merge_renaming(&g);
        self.assert_provenance(&g, source_iri);
        Ok(added)
    }

    /// Load RDF/XML data (the paper's listing syntax).
    pub fn load_rdfxml(&mut self, xml: &str) -> Result<usize, StoreError> {
        let g = grdf_rdf::rdfxml::parse(xml)?;
        self.sources += 1;
        Ok(self.graph.merge_renaming(&g))
    }

    /// Like [`GrdfStore::load_rdfxml`] with `grdf:fromSource` provenance.
    pub fn load_rdfxml_from(&mut self, source_iri: &str, xml: &str) -> Result<usize, StoreError> {
        let g = grdf_rdf::rdfxml::parse(xml)?;
        self.sources += 1;
        let added = self.graph.merge_renaming(&g);
        self.assert_provenance(&g, source_iri);
        Ok(added)
    }

    /// Record provenance for every non-blank subject of `loaded`.
    fn assert_provenance(&mut self, loaded: &Graph, source_iri: &str) {
        let prov = Term::iri(&ns::iri("fromSource"));
        let src = Term::iri(source_iri);
        for subject in loaded.all_subjects() {
            if !subject.is_blank() {
                self.graph.add(subject, prov.clone(), src.clone());
            }
        }
    }

    /// Subjects loaded from `source_iri` (requires the `*_from` loaders).
    pub fn subjects_from(&self, source_iri: &str) -> Vec<Term> {
        self.graph
            .subjects(&Term::iri(&ns::iri("fromSource")), &Term::iri(source_iri))
    }

    /// The recorded sources of a subject.
    pub fn sources_of(&self, subject: &Term) -> Vec<Term> {
        self.graph
            .objects(subject, &Term::iri(&ns::iri("fromSource")))
    }

    /// Merge another graph (e.g. a domain ontology extending GRDF).
    pub fn merge_graph(&mut self, other: &Graph) -> usize {
        self.sources += 1;
        self.graph.merge_renaming(other)
    }

    /// Materialize inferences with the default reasoner.
    pub fn materialize(&mut self) -> ReasonerStats {
        Reasoner::default().materialize(&mut self.graph)
    }

    /// Materialize with a custom reasoner configuration.
    pub fn materialize_with(&mut self, reasoner: &Reasoner) -> ReasonerStats {
        reasoner.materialize(&mut self.graph)
    }

    /// Check OWL-DL consistency; `Ok(())` when clean.
    pub fn check(&self) -> Result<(), StoreError> {
        let v = check_consistency(&self.graph);
        if v.is_empty() {
            Ok(())
        } else {
            Err(StoreError::Inconsistent(v))
        }
    }

    /// Run a SPARQL-subset query.
    pub fn query(&self, text: &str) -> Result<QueryResult, StoreError> {
        Ok(execute(&self.graph, text)?)
    }

    /// Decode all features currently in the store.
    pub fn features(&self) -> FeatureCollection {
        decode_features(&self.graph)
    }

    /// Number of subjects typed `grdf:Feature` (asserted or inferred).
    pub fn feature_count(&self) -> usize {
        self.graph
            .subjects(&Term::iri(rdf::TYPE), &Term::iri(&ns::iri("Feature")))
            .len()
    }

    /// Cross-domain links discovered by inference: `owl:sameAs` pairs
    /// between distinct named individuals. Before reasoning this is
    /// typically empty; after `materialize` it surfaces the identities
    /// that make aggregation useful (§1's "a lot of intelligence data can
    /// be extracted or inferred by combining the data").
    pub fn same_as_links(&self) -> Vec<(Term, Term)> {
        let mut out = Vec::new();
        self.graph
            .for_each_match(None, Some(&Term::iri(owl::SAME_AS)), None, |t| {
                if !t.subject.is_blank() && !t.object.is_blank() && t.subject < t.object {
                    out.push((t.subject, t.object));
                }
            });
        out
    }

    /// Build an R-tree over the spatial extents of every feature subject
    /// currently in the store (subjects with a geometry or bounded-by
    /// node). Rebuild after loading new data.
    pub fn spatial_index(&self) -> grdf_geometry::rtree::RTree<Term> {
        let mut items = Vec::new();
        for subject in self.graph.all_subjects() {
            if subject.is_blank() {
                continue;
            }
            if let Some(env) = grdf_query::spatial::feature_envelope(&self.graph, &subject) {
                items.push((env, subject));
            }
        }
        grdf_geometry::rtree::RTree::bulk_load(items)
    }

    /// Feature subjects whose extent intersects `window`, by linear scan
    /// (the ablation baseline for [`GrdfStore::spatial_index`]).
    pub fn features_in_window_scan(&self, window: &grdf_geometry::envelope::Envelope) -> Vec<Term> {
        self.graph
            .all_subjects()
            .into_iter()
            .filter(|s| !s.is_blank())
            .filter(|s| {
                grdf_query::spatial::feature_envelope(&self.graph, s)
                    .is_some_and(|e| e.intersects(window))
            })
            .collect()
    }

    /// Export as a dataset: triples whose subject carries `grdf:fromSource`
    /// provenance go into a named graph per source (a subject recorded from
    /// several sources appears in each); everything else stays in the
    /// default graph. Requires the `*_from` loaders for named graphs to be
    /// non-empty.
    pub fn to_dataset(&self) -> grdf_rdf::dataset::Dataset {
        let mut ds = grdf_rdf::dataset::Dataset::new();
        let prov = Term::iri(&ns::iri("fromSource"));
        for subject in self.graph.all_subjects() {
            let sources = self.graph.objects(&subject, &prov);
            let triples = self.graph.match_pattern(Some(&subject), None, None);
            if sources.is_empty() {
                for t in triples {
                    ds.default_graph_mut().insert(t);
                }
            } else {
                for src in &sources {
                    let Some(name) = src.as_iri() else { continue };
                    let target = ds.graph_mut(name);
                    for t in &triples {
                        target.insert(t.clone());
                    }
                }
            }
        }
        ds
    }

    /// Serialize the whole store as Turtle.
    pub fn to_turtle(&self) -> String {
        grdf_rdf::turtle::serialize(&self.graph, &self.prefixes)
    }

    /// Serialize the whole store as RDF/XML.
    pub fn to_rdfxml(&self) -> Result<String, StoreError> {
        Ok(grdf_rdf::rdfxml::serialize(&self.graph, &self.prefixes)?)
    }

    /// Export the instance features as GML.
    pub fn to_gml(&self) -> String {
        grdf_gml::write::write_gml(&self.features())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grdf_geometry::coord::Coord;
    use grdf_geometry::primitives::{LineString, Point};
    use grdf_rdf::vocab::rdfs;

    const HYDRO_GML: &str = r#"<gml:FeatureCollection xmlns:gml="http://www.opengis.net/gml"
        xmlns:app="http://grdf.org/app#">
      <gml:featureMember>
        <app:Stream gml:id="HYDRO_1">
          <app:hasObjectID>11070</app:hasObjectID>
          <app:centerLineOf>
            <gml:LineString srsName="http://grdf.org/crs/TX83-NCF">
              <gml:posList>0 0 50 50</gml:posList>
            </gml:LineString>
          </app:centerLineOf>
        </app:Stream>
      </gml:featureMember>
    </gml:FeatureCollection>"#;

    const CHEM_TTL: &str = r#"@prefix app: <http://grdf.org/app#> .
      @prefix grdf: <http://grdf.org/ontology#> .
      app:NTEnergy a app:ChemSite , grdf:Feature ;
        app:hasSiteName "North Texas Energy" ;
        app:hasSiteId "004221" .
    "#;

    #[test]
    fn new_store_contains_ontology() {
        let s = GrdfStore::new();
        assert!(s.len() > 200);
        assert_eq!(s.source_count(), 0);
        assert!(GrdfStore::empty().is_empty());
    }

    #[test]
    fn aggregates_heterogeneous_sources() {
        // The paper's headline: GML hydrology + RDF chemical data in one
        // queryable graph.
        let mut s = GrdfStore::new();
        assert_eq!(s.load_gml(HYDRO_GML).unwrap(), 1);
        assert!(s.load_turtle(CHEM_TTL).unwrap() > 0);
        assert_eq!(s.source_count(), 2);
        let rows = s
            .query(
                "PREFIX app: <http://grdf.org/app#>
                 SELECT ?s WHERE { { ?s a app:Stream } UNION { ?s a app:ChemSite } }",
            )
            .unwrap();
        assert_eq!(rows.select_rows().len(), 2);
    }

    #[test]
    fn inference_crosses_sources() {
        let mut s = GrdfStore::new();
        s.load_turtle(CHEM_TTL).unwrap();
        // A second source types the same plant differently and aligns the
        // vocabularies.
        s.load_turtle(
            r"@prefix app: <http://grdf.org/app#> .
               @prefix other: <urn:other#> .
               @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
               other:Facility rdfs:subClassOf app:ChemSite .
               app:NTEnergy a other:Facility .
            ",
        )
        .unwrap();
        s.materialize();
        let rows = s
            .query(
                "PREFIX app: <http://grdf.org/app#>
                 SELECT ?s WHERE { ?s a app:ChemSite }",
            )
            .unwrap();
        assert_eq!(
            rows.select_rows().len(),
            1,
            "one individual, two source views"
        );
    }

    #[test]
    fn same_as_links_surface_after_reasoning() {
        let mut s = GrdfStore::new();
        s.load_turtle(
            r"@prefix app: <http://grdf.org/app#> .
               @prefix owl: <http://www.w3.org/2002/07/owl#> .
               app:hasSiteId a owl:InverseFunctionalProperty .
               app:siteA app:hasSiteId app:id1 .
               app:siteB app:hasSiteId app:id1 .
            ",
        )
        .unwrap();
        assert!(s.same_as_links().is_empty());
        s.materialize();
        let links = s.same_as_links();
        assert_eq!(links.len(), 1);
    }

    #[test]
    fn feature_roundtrip_through_store() {
        let mut s = GrdfStore::new();
        let mut f = Feature::new("urn:app#p1", "Plant");
        f.set_geometry(Point::new(3.0, 4.0).into());
        s.insert_feature(&f).unwrap();
        let fc = s.features();
        let back = fc.find("urn:app#p1").unwrap();
        assert_eq!(back.geometry, f.geometry);
        assert_eq!(s.feature_count(), 1);
    }

    #[test]
    fn feature_count_uses_inference() {
        let mut s = GrdfStore::new();
        // An Observation is a Feature only by subclass inference.
        s.load_turtle(
            r"@prefix grdf: <http://grdf.org/ontology#> .
               <urn:obs1> a grdf:Observation .
            ",
        )
        .unwrap();
        assert_eq!(s.feature_count(), 0, "not yet materialized");
        s.materialize();
        assert_eq!(s.feature_count(), 1);
    }

    #[test]
    fn consistency_check_flags_violations() {
        let mut s = GrdfStore::new();
        s.load_turtle(
            r"@prefix grdf: <http://grdf.org/ontology#> .
               <urn:x> a grdf:Point , grdf:Node .
            ",
        )
        .unwrap();
        s.materialize();
        let err = s.check().unwrap_err();
        assert!(matches!(err, StoreError::Inconsistent(_)));
    }

    #[test]
    fn exports_roundtrip() {
        let mut s = GrdfStore::new();
        let mut f = Feature::new("http://grdf.org/app#line9", "Stream");
        f.set_geometry(
            LineString::new(vec![Coord::xy(0.0, 0.0), Coord::xy(2.0, 2.0)])
                .unwrap()
                .into(),
        );
        s.insert_feature(&f).unwrap();
        // Turtle roundtrip.
        let ttl = s.to_turtle();
        let g = grdf_rdf::turtle::parse(&ttl).unwrap();
        assert_eq!(g.len(), s.len());
        // GML export contains the feature.
        let gml = s.to_gml();
        assert!(gml.contains("line9"), "{gml}");
        // RDF/XML export parses back.
        let xml = s.to_rdfxml().unwrap();
        assert!(grdf_rdf::rdfxml::parse(&xml).is_ok());
    }

    #[test]
    fn bad_inputs_surface_errors() {
        let mut s = GrdfStore::new();
        assert!(matches!(s.load_gml("<oops"), Err(StoreError::Gml(_))));
        assert!(matches!(
            s.load_turtle("@prefix broken"),
            Err(StoreError::Rdf(_))
        ));
        assert!(matches!(s.query("NOT SPARQL"), Err(StoreError::Query(_))));
    }

    #[test]
    fn provenance_tracks_sources_and_survives_identity_merge() {
        let mut s = GrdfStore::new();
        s.load_turtle_from(
            "urn:source:stateA",
            r#"@prefix app: <http://grdf.org/app#> .
               @prefix owl: <http://www.w3.org/2002/07/owl#> .
               app:hasSiteId a owl:InverseFunctionalProperty .
               app:siteA a app:ChemSite ; app:hasSiteId "004221" .
            "#,
        )
        .unwrap();
        s.load_turtle_from(
            "urn:source:stateB",
            r#"@prefix app: <http://grdf.org/app#> .
               app:siteB a app:ChemSite ; app:hasSiteId "004221" .
            "#,
        )
        .unwrap();
        assert_eq!(s.subjects_from("urn:source:stateA").len(), 2); // site + property decl
        assert_eq!(s.subjects_from("urn:source:stateB").len(), 1);
        s.materialize();
        // After sameAs smushing, the merged individual carries BOTH
        // provenance facts — lineage survives aggregation.
        let site_a = Term::iri("http://grdf.org/app#siteA");
        let sources = s.sources_of(&site_a);
        assert_eq!(sources.len(), 2, "{sources:?}");
    }

    #[test]
    fn dataset_export_partitions_by_source() {
        let mut s = GrdfStore::empty();
        s.load_turtle_from(
            "urn:source:a",
            "@prefix e: <urn:e#> . e:x a e:T ; e:p \"va\" .",
        )
        .unwrap();
        s.load_turtle_from("urn:source:b", "@prefix e: <urn:e#> . e:y a e:T .")
            .unwrap();
        let ds = s.to_dataset();
        assert_eq!(ds.graph_names(), vec!["urn:source:a", "urn:source:b"]);
        assert!(ds.graph("urn:source:a").unwrap().len() >= 3);
        assert!(ds.graph("urn:source:b").unwrap().has(
            &Term::iri("urn:e#y"),
            &Term::iri(rdf::TYPE),
            &Term::iri("urn:e#T")
        ));
        // Round-trips through N-Quads.
        let back = grdf_rdf::dataset::Dataset::from_nquads(&ds.to_nquads()).unwrap();
        assert_eq!(back.len(), ds.len());
    }

    #[test]
    fn gml_provenance_loader() {
        let mut s = GrdfStore::new();
        s.load_gml_from("urn:source:nctcog", HYDRO_GML).unwrap();
        let subjects = s.subjects_from("urn:source:nctcog");
        assert_eq!(subjects.len(), 1);
        assert!(subjects[0].as_iri().unwrap().contains("HYDRO_1"));
    }

    #[test]
    fn spatial_index_agrees_with_scan() {
        use grdf_geometry::envelope::Envelope;
        let mut s = GrdfStore::new();
        for i in 0..30 {
            let mut f = Feature::new(&format!("urn:app#pt{i}"), "Site");
            f.set_geometry(Point::new(f64::from(i) * 10.0, f64::from(i) * 5.0).into());
            s.insert_feature(&f).unwrap();
        }
        let index = s.spatial_index();
        assert_eq!(index.len(), 30);
        let window = Envelope::new(Coord::xy(45.0, 0.0), Coord::xy(155.0, 1000.0));
        let mut via_index: Vec<Term> = index.query(&window).into_iter().cloned().collect();
        let mut via_scan = s.features_in_window_scan(&window);
        via_index.sort();
        via_scan.sort();
        assert_eq!(via_index, via_scan);
        assert!(!via_index.is_empty());
    }

    #[test]
    fn blank_nodes_stay_hygienic_across_sources() {
        let mut s = GrdfStore::empty();
        s.load_turtle("@prefix e: <urn:e#> . _:n e:p \"left\" .")
            .unwrap();
        s.load_turtle("@prefix e: <urn:e#> . _:n e:p \"right\" .")
            .unwrap();
        // Two distinct blank subjects, not one merged node.
        assert_eq!(s.graph().all_subjects().len(), 2);
    }

    #[test]
    fn domain_ontology_extends_grdf() {
        // "The intent of GRDF is to allow the lower-level ontologies to
        // bootstrap them from a common semantic platform" (§2).
        let mut s = GrdfStore::new();
        s.load_turtle(
            r"@prefix app: <http://grdf.org/app#> .
               @prefix grdf: <http://grdf.org/ontology#> .
               @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
               app:ChemSite rdfs:subClassOf grdf:Feature .
               app:NTEnergy a app:ChemSite .
            ",
        )
        .unwrap();
        s.materialize();
        // The site is now a Feature and a RootGRDFObject.
        let rows = s
            .query(
                "PREFIX grdf: <http://grdf.org/ontology#>
                 PREFIX app: <http://grdf.org/app#>
                 ASK { app:NTEnergy a grdf:RootGRDFObject }",
            )
            .unwrap();
        assert_eq!(rows.as_bool(), Some(true));
        let _ = rdfs::NS;
    }
}
