//! Escaping and unescaping of XML character data and attribute values.

use std::borrow::Cow;

/// Escape text content: `&`, `<`, `>` (the latter for `]]>` safety).
pub fn escape_text(s: &str) -> Cow<'_, str> {
    escape_with(s, false)
}

/// Escape an attribute value for emission in double quotes: additionally
/// escapes `"`, tab, CR and LF so the value round-trips exactly
/// (attribute-value normalization would otherwise fold whitespace).
pub fn escape_attr(s: &str) -> Cow<'_, str> {
    escape_with(s, true)
}

fn escape_with(s: &str, attr: bool) -> Cow<'_, str> {
    let needs = s.bytes().any(|b| {
        matches!(b, b'&' | b'<' | b'>') || (attr && matches!(b, b'"' | b'\t' | b'\r' | b'\n'))
    });
    if !needs {
        return Cow::Borrowed(s);
    }
    let mut out = String::with_capacity(s.len() + 8);
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' if attr => out.push_str("&quot;"),
            '\t' if attr => out.push_str("&#9;"),
            '\n' if attr => out.push_str("&#10;"),
            '\r' if attr => out.push_str("&#13;"),
            _ => out.push(c),
        }
    }
    Cow::Owned(out)
}

/// Resolve a predefined entity name (`lt`, `gt`, `amp`, `apos`, `quot`) or a
/// numeric character reference body (`#10`, `#x1F`). Returns `None` when the
/// name is not recognized.
pub fn resolve_entity(name: &str) -> Option<char> {
    match name {
        "lt" => Some('<'),
        "gt" => Some('>'),
        "amp" => Some('&'),
        "apos" => Some('\''),
        "quot" => Some('"'),
        _ => {
            let body = name.strip_prefix('#')?;
            let code = if let Some(hex) = body.strip_prefix('x').or_else(|| body.strip_prefix('X'))
            {
                u32::from_str_radix(hex, 16).ok()?
            } else {
                body.parse::<u32>().ok()?
            };
            char::from_u32(code)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_escaping_borrows_when_clean() {
        assert!(matches!(escape_text("hello world"), Cow::Borrowed(_)));
    }

    #[test]
    fn text_escaping_replaces_specials() {
        assert_eq!(escape_text("a<b&c>d"), "a&lt;b&amp;c&gt;d");
    }

    #[test]
    fn attr_escaping_handles_quotes_and_whitespace() {
        assert_eq!(escape_attr("a\"b\nc\td\re"), "a&quot;b&#10;c&#9;d&#13;e");
    }

    #[test]
    fn attr_escaping_borrows_when_clean() {
        assert!(matches!(escape_attr("plain value"), Cow::Borrowed(_)));
    }

    #[test]
    fn predefined_entities_resolve() {
        assert_eq!(resolve_entity("lt"), Some('<'));
        assert_eq!(resolve_entity("gt"), Some('>'));
        assert_eq!(resolve_entity("amp"), Some('&'));
        assert_eq!(resolve_entity("apos"), Some('\''));
        assert_eq!(resolve_entity("quot"), Some('"'));
    }

    #[test]
    fn numeric_references_resolve() {
        assert_eq!(resolve_entity("#65"), Some('A'));
        assert_eq!(resolve_entity("#x41"), Some('A'));
        assert_eq!(resolve_entity("#X41"), Some('A'));
        assert_eq!(resolve_entity("#x1F600"), Some('😀'));
    }

    #[test]
    fn bad_references_are_none() {
        assert_eq!(resolve_entity("nbsp"), None);
        assert_eq!(resolve_entity("#xZZ"), None);
        assert_eq!(resolve_entity("#xD800"), None, "surrogate is not a char");
        assert_eq!(resolve_entity("#"), None);
    }
}
