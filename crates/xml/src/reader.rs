//! Pull tokenizer producing a flat stream of XML events.
//!
//! The tokenizer works on a `&str` and yields [`Event`]s; the tree builder in
//! [`crate::tree`] consumes them. Keeping the event layer public lets large
//! GML documents be scanned without materializing a tree.

use crate::error::{Position, XmlError, XmlResult};
use crate::escape::resolve_entity;
use crate::name::{is_name_char, is_name_start, QName};

/// A single raw attribute as it appears in a start tag (entity references in
/// the value are already resolved).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawAttribute {
    /// Attribute name, possibly prefixed.
    pub name: QName,
    /// Attribute value with entities resolved.
    pub value: String,
}

/// One tokenizer event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// `<name attr="v" ...>` — `self_closing` is true for `<name/>`.
    Start {
        name: QName,
        attributes: Vec<RawAttribute>,
        self_closing: bool,
    },
    /// `</name>`.
    End { name: QName },
    /// Character data between tags, with entities resolved and CDATA inlined.
    /// Adjacent text pieces are merged by the tree builder, not here.
    Text(String),
    /// `<!-- ... -->` contents.
    Comment(String),
    /// End of input.
    Eof,
}

/// Streaming tokenizer over an in-memory XML document.
pub struct Tokenizer<'a> {
    input: &'a str,
    /// Byte offset of the cursor.
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Tokenizer<'a> {
    /// Create a tokenizer over `input`. A leading UTF-8 BOM and the XML
    /// declaration are consumed lazily by the first `next_event` call.
    pub fn new(input: &'a str) -> Self {
        let input = input.strip_prefix('\u{FEFF}').unwrap_or(input);
        Tokenizer {
            input,
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    /// Current position, for error reporting.
    pub fn position(&self) -> Position {
        Position {
            line: self.line,
            column: self.col,
        }
    }

    fn peek(&self) -> Option<char> {
        self.input[self.pos..].chars().next()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s)
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn bump_str(&mut self, s: &str) {
        debug_assert!(self.starts_with(s));
        for _ in s.chars() {
            self.bump();
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_whitespace()) {
            self.bump();
        }
    }

    fn eof_err(&self, expected: &'static str) -> XmlError {
        XmlError::UnexpectedEof {
            expected,
            at: self.position(),
        }
    }

    /// Consume input until `delim` is found; returns the consumed slice
    /// (excluding the delimiter, which is also consumed).
    fn take_until(&mut self, delim: &str, expected: &'static str) -> XmlResult<&'a str> {
        match self.input[self.pos..].find(delim) {
            Some(rel) => {
                let start = self.pos;
                let end = start + rel;
                while self.pos < end {
                    self.bump();
                }
                self.bump_str(delim);
                Ok(&self.input[start..end])
            }
            None => Err(self.eof_err(expected)),
        }
    }

    fn read_name(&mut self) -> XmlResult<QName> {
        let at = self.position();
        let start = self.pos;
        match self.peek() {
            Some(c) if is_name_start(c) => {
                self.bump();
            }
            Some(c) => {
                return Err(XmlError::UnexpectedChar {
                    found: c,
                    expected: "name start",
                    at,
                })
            }
            None => return Err(self.eof_err("name")),
        }
        while matches!(self.peek(), Some(c) if is_name_char(c) || c == ':') {
            self.bump();
        }
        let raw = &self.input[start..self.pos];
        QName::parse(raw).ok_or_else(|| XmlError::InvalidName {
            name: raw.to_string(),
            at,
        })
    }

    /// Resolve `&...;` starting just after the `&`.
    fn read_entity(&mut self) -> XmlResult<char> {
        let at = self.position();
        let body = self.take_until(";", "';' terminating entity reference")?;
        resolve_entity(body).ok_or_else(|| XmlError::UnknownEntity {
            name: body.to_string(),
            at,
        })
    }

    fn read_attr_value(&mut self) -> XmlResult<String> {
        let at = self.position();
        let quote = match self.bump() {
            Some(q @ ('"' | '\'')) => q,
            Some(c) => {
                return Err(XmlError::UnexpectedChar {
                    found: c,
                    expected: "quote",
                    at,
                });
            }
            None => return Err(self.eof_err("attribute value")),
        };
        let mut value = String::new();
        loop {
            match self.peek() {
                None => return Err(self.eof_err("closing quote")),
                Some(c) if c == quote => {
                    self.bump();
                    return Ok(value);
                }
                Some('&') => {
                    self.bump();
                    value.push(self.read_entity()?);
                }
                Some('<') => {
                    return Err(XmlError::UnexpectedChar {
                        found: '<',
                        expected: "attribute value character",
                        at: self.position(),
                    });
                }
                Some(c) => {
                    self.bump();
                    value.push(c);
                }
            }
        }
    }

    fn read_start_tag(&mut self) -> XmlResult<Event> {
        // Cursor is just past '<'.
        let name = self.read_name()?;
        let mut attributes: Vec<RawAttribute> = Vec::new();
        loop {
            self.skip_ws();
            match self.peek() {
                None => return Err(self.eof_err("'>' closing start tag")),
                Some('>') => {
                    self.bump();
                    return Ok(Event::Start {
                        name,
                        attributes,
                        self_closing: false,
                    });
                }
                Some('/') => {
                    self.bump();
                    let at = self.position();
                    match self.bump() {
                        Some('>') => {
                            return Ok(Event::Start {
                                name,
                                attributes,
                                self_closing: true,
                            })
                        }
                        Some(c) => {
                            return Err(XmlError::UnexpectedChar {
                                found: c,
                                expected: "'>'",
                                at,
                            })
                        }
                        None => return Err(self.eof_err("'>'")),
                    }
                }
                Some(_) => {
                    let at = self.position();
                    let attr_name = self.read_name()?;
                    if attributes.iter().any(|a| a.name == attr_name) {
                        return Err(XmlError::DuplicateAttribute {
                            name: attr_name.to_string(),
                            at,
                        });
                    }
                    self.skip_ws();
                    let at_eq = self.position();
                    match self.bump() {
                        Some('=') => {}
                        Some(c) => {
                            return Err(XmlError::UnexpectedChar {
                                found: c,
                                expected: "'='",
                                at: at_eq,
                            })
                        }
                        None => return Err(self.eof_err("'='")),
                    }
                    self.skip_ws();
                    let value = self.read_attr_value()?;
                    attributes.push(RawAttribute {
                        name: attr_name,
                        value,
                    });
                }
            }
        }
    }

    fn read_end_tag(&mut self) -> XmlResult<Event> {
        // Cursor is just past '</'.
        let name = self.read_name()?;
        self.skip_ws();
        let at = self.position();
        match self.bump() {
            Some('>') => Ok(Event::End { name }),
            Some(c) => Err(XmlError::UnexpectedChar {
                found: c,
                expected: "'>'",
                at,
            }),
            None => Err(self.eof_err("'>' closing end tag")),
        }
    }

    /// Produce the next event. After `Eof`, further calls keep returning
    /// `Eof`.
    pub fn next_event(&mut self) -> XmlResult<Event> {
        loop {
            if self.pos >= self.input.len() {
                return Ok(Event::Eof);
            }
            if self.starts_with("<?") {
                // XML declaration or processing instruction: skip.
                self.bump_str("<?");
                self.take_until("?>", "'?>' terminating processing instruction")?;
                continue;
            }
            if self.starts_with("<!--") {
                self.bump_str("<!--");
                let body = self.take_until("-->", "'-->' terminating comment")?;
                return Ok(Event::Comment(body.to_string()));
            }
            if self.starts_with("<![CDATA[") {
                self.bump_str("<![CDATA[");
                let body = self.take_until("]]>", "']]>' terminating CDATA")?;
                return Ok(Event::Text(body.to_string()));
            }
            if self.starts_with("<!") {
                return Err(XmlError::DtdUnsupported {
                    at: self.position(),
                });
            }
            if self.starts_with("</") {
                self.bump_str("</");
                return self.read_end_tag();
            }
            if self.starts_with("<") {
                self.bump();
                return self.read_start_tag();
            }
            // Text run up to the next '<'.
            let mut text = String::new();
            loop {
                match self.peek() {
                    None | Some('<') => break,
                    Some('&') => {
                        self.bump();
                        text.push(self.read_entity()?);
                    }
                    Some(c) => {
                        self.bump();
                        text.push(c);
                    }
                }
            }
            return Ok(Event::Text(text));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn events(input: &str) -> Vec<Event> {
        let mut t = Tokenizer::new(input);
        let mut out = Vec::new();
        loop {
            let e = t.next_event().unwrap();
            let eof = e == Event::Eof;
            out.push(e);
            if eof {
                break;
            }
        }
        out
    }

    #[test]
    fn simple_element() {
        let ev = events("<a>x</a>");
        assert_eq!(ev.len(), 4);
        assert!(
            matches!(&ev[0], Event::Start { name, self_closing: false, .. } if name.local == "a")
        );
        assert_eq!(ev[1], Event::Text("x".into()));
        assert!(matches!(&ev[2], Event::End { name } if name.local == "a"));
    }

    #[test]
    fn self_closing_with_attributes() {
        let ev = events(r#"<p a="1" b='two'/>"#);
        match &ev[0] {
            Event::Start {
                name,
                attributes,
                self_closing,
            } => {
                assert_eq!(name.local, "p");
                assert!(*self_closing);
                assert_eq!(attributes.len(), 2);
                assert_eq!(attributes[0].value, "1");
                assert_eq!(attributes[1].value, "two");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn entities_in_text_and_attrs() {
        let ev = events(r#"<a t="&lt;&#65;&gt;">&amp;ok</a>"#);
        match &ev[0] {
            Event::Start { attributes, .. } => assert_eq!(attributes[0].value, "<A>"),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(ev[1], Event::Text("&ok".into()));
    }

    #[test]
    fn cdata_passes_through_verbatim() {
        let ev = events("<a><![CDATA[<raw> & stuff]]></a>");
        assert_eq!(ev[1], Event::Text("<raw> & stuff".into()));
    }

    #[test]
    fn comments_are_events() {
        let ev = events("<a><!-- note --></a>");
        assert_eq!(ev[1], Event::Comment(" note ".into()));
    }

    #[test]
    fn xml_declaration_is_skipped() {
        let ev = events("<?xml version=\"1.0\" encoding=\"UTF-8\"?><a/>");
        assert!(matches!(&ev[0], Event::Start { .. }));
    }

    #[test]
    fn bom_is_stripped() {
        let ev = events("\u{FEFF}<a/>");
        assert!(matches!(&ev[0], Event::Start { .. }));
    }

    #[test]
    fn unknown_entity_is_error() {
        let mut t = Tokenizer::new("<a>&nope;</a>");
        t.next_event().unwrap();
        let err = t.next_event().unwrap_err();
        assert!(matches!(err, XmlError::UnknownEntity { name, .. } if name == "nope"));
    }

    #[test]
    fn duplicate_attribute_is_error() {
        let mut t = Tokenizer::new(r#"<a x="1" x="2"/>"#);
        let err = t.next_event().unwrap_err();
        assert!(matches!(err, XmlError::DuplicateAttribute { .. }));
    }

    #[test]
    fn dtd_is_rejected() {
        let mut t = Tokenizer::new("<!DOCTYPE html><a/>");
        assert!(matches!(
            t.next_event(),
            Err(XmlError::DtdUnsupported { .. })
        ));
    }

    #[test]
    fn unterminated_tag_is_eof_error() {
        let mut t = Tokenizer::new("<a attr=\"x\"");
        assert!(matches!(
            t.next_event(),
            Err(XmlError::UnexpectedEof { .. })
        ));
    }

    #[test]
    fn line_and_column_tracking() {
        let mut t = Tokenizer::new("<a>\n  <b>&bad;</b></a>");
        t.next_event().unwrap(); // <a>
        t.next_event().unwrap(); // "\n  "
        t.next_event().unwrap(); // <b>
        let err = t.next_event().unwrap_err();
        let at = err.position();
        assert_eq!(at.line, 2);
        assert!(at.column > 5, "column was {}", at.column);
    }

    #[test]
    fn lt_in_attribute_value_is_error() {
        let mut t = Tokenizer::new(r#"<a x="a<b"/>"#);
        assert!(matches!(
            t.next_event(),
            Err(XmlError::UnexpectedChar { found: '<', .. })
        ));
    }
}
