//! Serialization of element trees back to XML text.
//!
//! The writer re-emits namespace declarations exactly where they were
//! recorded on elements (`Element::ns_decls`) and uses each node's recorded
//! prefix; it does not invent prefixes. Builders that construct trees
//! programmatically are responsible for declaring the namespaces they use —
//! [`ensure_ns_decls`] can do that mechanically on a root element.

use std::collections::HashSet;
use std::fmt::Write as _;

use crate::escape::{escape_attr, escape_text};
use crate::tree::{Child, Document, Element};

/// Output options for the writer.
#[derive(Debug, Clone, Copy)]
pub struct WriteOptions {
    /// Emit `<?xml version="1.0" encoding="UTF-8"?>` first.
    pub declaration: bool,
    /// Pretty-print with the given indent width; `None` = compact output.
    pub indent: Option<usize>,
}

impl Default for WriteOptions {
    fn default() -> Self {
        WriteOptions {
            declaration: true,
            indent: Some(2),
        }
    }
}

impl WriteOptions {
    /// Compact output without an XML declaration (useful in tests).
    pub fn compact() -> WriteOptions {
        WriteOptions {
            declaration: false,
            indent: None,
        }
    }
}

/// Serialize a document.
pub fn write_document(doc: &Document, opts: &WriteOptions) -> String {
    let mut out = String::new();
    if opts.declaration {
        out.push_str("<?xml version=\"1.0\" encoding=\"UTF-8\"?>");
        if opts.indent.is_some() {
            out.push('\n');
        }
    }
    write_elem(&mut out, doc.root(), opts, 0);
    if opts.indent.is_some() {
        out.push('\n');
    }
    out
}

/// Serialize a single element subtree.
pub fn write_element(elem: &Element, opts: &WriteOptions) -> String {
    let mut out = String::new();
    write_elem(&mut out, elem, opts, 0);
    out
}

fn qname(elem: &Element) -> String {
    match &elem.prefix {
        Some(p) => format!("{p}:{}", elem.local),
        None => elem.local.clone(),
    }
}

fn write_elem(out: &mut String, elem: &Element, opts: &WriteOptions, depth: usize) {
    let name = qname(elem);
    let _ = write!(out, "<{name}");
    for (prefix, ns) in &elem.ns_decls {
        match prefix {
            None => {
                let _ = write!(out, " xmlns=\"{}\"", escape_attr(ns));
            }
            Some(p) => {
                let _ = write!(out, " xmlns:{p}=\"{}\"", escape_attr(ns));
            }
        }
    }
    for a in &elem.attributes {
        match &a.prefix {
            Some(p) => {
                let _ = write!(out, " {p}:{}=\"{}\"", a.local, escape_attr(&a.value));
            }
            None => {
                let _ = write!(out, " {}=\"{}\"", a.local, escape_attr(&a.value));
            }
        }
    }
    if elem.children.is_empty() {
        out.push_str("/>");
        return;
    }
    out.push('>');

    // Mixed content (any non-whitespace text child) is written inline to
    // preserve the text exactly; so is text-only content (even when the
    // text is pure whitespace — it is a literal value, not formatting).
    // Element-only content may be indented, with whitespace text dropped.
    let has_child_elements = elem.children.iter().any(|c| matches!(c, Child::Element(_)));
    let mixed = elem
        .children
        .iter()
        .any(|c| matches!(c, Child::Text(t) if !t.trim().is_empty()))
        || !has_child_elements;
    let indent = if mixed { None } else { opts.indent };

    for child in &elem.children {
        match child {
            Child::Text(t) => {
                if indent.is_none() {
                    out.push_str(&escape_text(t));
                }
                // In indented element-only content, whitespace text nodes
                // are dropped and regenerated.
            }
            Child::Element(e) => {
                if let Some(w) = indent {
                    out.push('\n');
                    out.push_str(&" ".repeat(w * (depth + 1)));
                }
                write_elem(out, e, opts, depth + 1);
            }
            Child::Comment(c) => {
                if let Some(w) = indent {
                    out.push('\n');
                    out.push_str(&" ".repeat(w * (depth + 1)));
                }
                let _ = write!(out, "<!--{c}-->");
            }
        }
    }
    if let Some(w) = indent {
        if elem.children.iter().any(|c| !matches!(c, Child::Text(_))) {
            out.push('\n');
            out.push_str(&" ".repeat(w * depth));
        }
    }
    let _ = write!(out, "</{name}>");
}

/// Ensure `root` carries `xmlns`/`xmlns:p` declarations for every namespace
/// used (with the recorded prefixes) anywhere in its subtree. Intended for
/// programmatically built trees before serialization.
pub fn ensure_ns_decls(root: &mut Element) {
    let mut needed: Vec<(Option<String>, String)> = Vec::new();
    let mut seen: HashSet<(Option<String>, String)> = HashSet::new();
    collect_ns(root, &mut needed, &mut seen);
    for (prefix, ns) in needed {
        let already = root.ns_decls.iter().any(|(p, _)| *p == prefix);
        if !already {
            root.ns_decls.push((prefix, ns));
        }
    }
}

fn collect_ns(
    elem: &Element,
    needed: &mut Vec<(Option<String>, String)>,
    seen: &mut HashSet<(Option<String>, String)>,
) {
    if let Some(ns) = &elem.namespace {
        let key = (elem.prefix.clone(), ns.clone());
        if seen.insert(key.clone()) {
            needed.push(key);
        }
    }
    for a in &elem.attributes {
        if let (Some(ns), Some(p)) = (&a.namespace, &a.prefix) {
            let key = (Some(p.clone()), ns.clone());
            if seen.insert(key.clone()) {
                needed.push(key);
            }
        }
    }
    for c in elem.child_elements() {
        collect_ns(c, needed, seen);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::parse;

    fn roundtrip(src: &str) -> String {
        let doc = parse(src).unwrap();
        write_document(&doc, &WriteOptions::compact())
    }

    #[test]
    fn compact_roundtrip_preserves_structure() {
        let out = roundtrip(r#"<a xmlns:p="urn:1"><p:b k="v">text</p:b></a>"#);
        let reparsed = parse(&out).unwrap();
        let orig = parse(r#"<a xmlns:p="urn:1"><p:b k="v">text</p:b></a>"#).unwrap();
        assert_eq!(reparsed, orig);
    }

    #[test]
    fn escapes_on_output() {
        let out = roundtrip("<a k=\"&quot;&lt;\">&amp;x</a>");
        assert!(out.contains("&quot;"), "{out}");
        assert!(out.contains("&lt;"), "{out}");
        assert!(out.contains("&amp;x"), "{out}");
        // And it reparses to the same values.
        let doc = parse(&out).unwrap();
        assert_eq!(doc.root().attribute("k"), Some("\"<"));
        assert_eq!(doc.root().text(), "&x");
    }

    #[test]
    fn empty_element_is_self_closed() {
        assert_eq!(roundtrip("<a></a>"), "<a/>");
    }

    #[test]
    fn indented_output_is_stable_under_reparse() {
        let src = r#"<a><b><c k="1"/></b><d/></a>"#;
        let doc = parse(src).unwrap();
        let pretty = write_document(
            &doc,
            &WriteOptions {
                declaration: true,
                indent: Some(2),
            },
        );
        assert!(pretty.starts_with("<?xml"));
        assert!(pretty.contains("\n  <b>"), "{pretty}");
        let reparsed = parse(&pretty).unwrap();
        // Structure preserved modulo whitespace text nodes.
        assert_eq!(reparsed.root().descendants().len(), 3);
    }

    #[test]
    fn mixed_content_is_not_reindented() {
        let src = "<a>one<b/>two</a>";
        let doc = parse(src).unwrap();
        let pretty = write_document(
            &doc,
            &WriteOptions {
                declaration: false,
                indent: Some(2),
            },
        );
        assert_eq!(pretty.trim_end(), "<a>one<b/>two</a>");
    }

    #[test]
    fn ensure_ns_decls_adds_missing_declarations() {
        use crate::tree::Element;
        let mut root = Element::in_ns("urn:root", None, "r");
        let mut child = Element::in_ns("urn:c", Some("c"), "child");
        child.set_attribute_ns("urn:a", "at", "id", "7");
        root.push_element(child);
        ensure_ns_decls(&mut root);
        let out = write_element(&root, &WriteOptions::compact());
        let doc = parse(&out).unwrap();
        let c = doc.root().child("child").unwrap();
        assert_eq!(c.namespace(), Some("urn:c"));
        assert_eq!(c.attribute_ns("urn:a", "id"), Some("7"));
    }
}
