//! Tree (DOM) layer: builds namespace-resolved element trees from the
//! tokenizer event stream.

use std::collections::HashMap;

use crate::error::{XmlError, XmlResult};
use crate::name::QName;
use crate::reader::{Event, Tokenizer};

/// The reserved `xml` prefix namespace, always in scope.
pub const XML_NS: &str = "http://www.w3.org/XML/1998/namespace";

/// A namespace-resolved attribute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    /// Resolved namespace IRI. Unprefixed attributes have no namespace
    /// (per the XML Namespaces spec they do *not* take the default one).
    pub namespace: Option<String>,
    /// Prefix as written, kept for round-tripping.
    pub prefix: Option<String>,
    /// Local name.
    pub local: String,
    /// Attribute value.
    pub value: String,
}

/// A child of an element.
#[derive(Debug, Clone, PartialEq)]
pub enum Child {
    /// Nested element.
    Element(Element),
    /// Character data.
    Text(String),
    /// Comment (preserved so documents round-trip).
    Comment(String),
}

/// A namespace-resolved XML element.
#[derive(Debug, Clone, PartialEq)]
pub struct Element {
    /// Resolved namespace IRI of the element, if any.
    pub namespace: Option<String>,
    /// Prefix as written in the source (kept for round-tripping).
    pub prefix: Option<String>,
    /// Local name.
    pub local: String,
    /// Attributes in document order (namespace declarations excluded).
    pub attributes: Vec<Attribute>,
    /// Namespace declarations written on this element (`None` key = default
    /// namespace). An empty-string value undeclares the default namespace.
    pub ns_decls: Vec<(Option<String>, String)>,
    /// Children in document order.
    pub children: Vec<Child>,
}

impl Element {
    /// Create an element with no namespace and no content.
    pub fn new(local: &str) -> Element {
        Element {
            namespace: None,
            prefix: None,
            local: local.to_string(),
            attributes: Vec::new(),
            ns_decls: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Create an element in `namespace` with the given `prefix` hint.
    pub fn in_ns(namespace: &str, prefix: Option<&str>, local: &str) -> Element {
        Element {
            namespace: Some(namespace.to_string()),
            prefix: prefix.map(str::to_string),
            local: local.to_string(),
            ..Element::new(local)
        }
    }

    /// Local name of the element.
    pub fn local_name(&self) -> &str {
        &self.local
    }

    /// Resolved namespace IRI, if any.
    pub fn namespace(&self) -> Option<&str> {
        self.namespace.as_deref()
    }

    /// True when the element's `(namespace, local)` pair matches.
    pub fn is(&self, namespace: &str, local: &str) -> bool {
        self.namespace.as_deref() == Some(namespace) && self.local == local
    }

    /// Value of the first attribute with `local` name regardless of
    /// namespace.
    pub fn attribute(&self, local: &str) -> Option<&str> {
        self.attributes
            .iter()
            .find(|a| a.local == local)
            .map(|a| a.value.as_str())
    }

    /// Value of the attribute with the given namespace and local name.
    pub fn attribute_ns(&self, namespace: &str, local: &str) -> Option<&str> {
        self.attributes
            .iter()
            .find(|a| a.namespace.as_deref() == Some(namespace) && a.local == local)
            .map(|a| a.value.as_str())
    }

    /// Append an attribute without a namespace.
    pub fn set_attribute(&mut self, local: &str, value: &str) {
        if let Some(a) = self
            .attributes
            .iter_mut()
            .find(|a| a.local == local && a.prefix.is_none())
        {
            a.value = value.to_string();
            return;
        }
        self.attributes.push(Attribute {
            namespace: None,
            prefix: None,
            local: local.to_string(),
            value: value.to_string(),
        });
    }

    /// Append a namespaced attribute.
    pub fn set_attribute_ns(&mut self, namespace: &str, prefix: &str, local: &str, value: &str) {
        self.attributes.push(Attribute {
            namespace: Some(namespace.to_string()),
            prefix: Some(prefix.to_string()),
            local: local.to_string(),
            value: value.to_string(),
        });
    }

    /// Append a child element; returns `&mut self` for chaining.
    pub fn push_element(&mut self, child: Element) -> &mut Element {
        self.children.push(Child::Element(child));
        self
    }

    /// Append character data.
    pub fn push_text(&mut self, text: &str) -> &mut Element {
        self.children.push(Child::Text(text.to_string()));
        self
    }

    /// Iterator over child elements only.
    pub fn child_elements(&self) -> impl Iterator<Item = &Element> {
        self.children.iter().filter_map(|c| match c {
            Child::Element(e) => Some(e),
            _ => None,
        })
    }

    /// First child element with the given local name (any namespace).
    pub fn child(&self, local: &str) -> Option<&Element> {
        self.child_elements().find(|e| e.local == local)
    }

    /// First child element matching `(namespace, local)`.
    pub fn child_ns(&self, namespace: &str, local: &str) -> Option<&Element> {
        self.child_elements().find(|e| e.is(namespace, local))
    }

    /// All descendant elements in document order (depth-first), excluding
    /// `self`.
    pub fn descendants(&self) -> Vec<&Element> {
        let mut out = Vec::new();
        let mut stack: Vec<&Element> = self.child_elements().collect();
        stack.reverse();
        while let Some(e) = stack.pop() {
            out.push(e);
            let mut kids: Vec<&Element> = e.child_elements().collect();
            kids.reverse();
            stack.extend(kids);
        }
        out
    }

    /// Concatenated direct text content (not recursive), trimmed.
    pub fn text(&self) -> String {
        let mut s = String::new();
        for c in &self.children {
            if let Child::Text(t) = c {
                s.push_str(t);
            }
        }
        s.trim().to_string()
    }

    /// Total number of elements in this subtree including `self`.
    pub fn subtree_size(&self) -> usize {
        1 + self.descendants().len()
    }
}

/// A parsed XML document: a single root element.
#[derive(Debug, Clone, PartialEq)]
pub struct Document {
    root: Element,
}

impl Document {
    /// Wrap an element as a document root.
    pub fn with_root(root: Element) -> Document {
        Document { root }
    }

    /// The root element.
    pub fn root(&self) -> &Element {
        &self.root
    }

    /// Mutable access to the root element.
    pub fn root_mut(&mut self) -> &mut Element {
        &mut self.root
    }

    /// Consume the document, returning the root.
    pub fn into_root(self) -> Element {
        self.root
    }
}

/// Lexically scoped namespace environment used during tree building.
struct NsScope {
    /// Stack of frames; each frame records the bindings it shadowed.
    frames: Vec<Vec<(Option<String>, Option<String>)>>,
    /// Current bindings: prefix (None = default) -> namespace IRI.
    bindings: HashMap<Option<String>, String>,
}

impl NsScope {
    fn new() -> NsScope {
        let mut bindings = HashMap::new();
        bindings.insert(Some("xml".to_string()), XML_NS.to_string());
        NsScope {
            frames: Vec::new(),
            bindings,
        }
    }

    fn push(&mut self, decls: &[(Option<String>, String)]) {
        let mut shadowed = Vec::with_capacity(decls.len());
        for (prefix, ns) in decls {
            let old = if ns.is_empty() {
                // xmlns="" undeclares the default namespace.
                self.bindings.remove(prefix)
            } else {
                self.bindings.insert(prefix.clone(), ns.clone())
            };
            shadowed.push((prefix.clone(), old));
        }
        self.frames.push(shadowed);
    }

    fn pop(&mut self) {
        if let Some(shadowed) = self.frames.pop() {
            for (prefix, old) in shadowed.into_iter().rev() {
                match old {
                    Some(ns) => {
                        self.bindings.insert(prefix, ns);
                    }
                    None => {
                        self.bindings.remove(&prefix);
                    }
                }
            }
        }
    }

    fn resolve(&self, prefix: Option<&str>) -> Option<&str> {
        self.bindings
            .get(&prefix.map(str::to_string))
            .map(String::as_str)
    }
}

/// Parse a complete XML document into a tree.
pub fn parse(input: &str) -> XmlResult<Document> {
    let mut tok = Tokenizer::new(input);
    let mut scope = NsScope::new();
    // Stack of partially built elements.
    let mut stack: Vec<Element> = Vec::new();
    let mut root: Option<Element> = None;

    loop {
        let at = tok.position();
        match tok.next_event()? {
            Event::Eof => break,
            Event::Comment(c) => {
                if let Some(top) = stack.last_mut() {
                    top.children.push(Child::Comment(c));
                }
                // Comments outside the root are legal; drop them.
            }
            Event::Text(t) => {
                if let Some(top) = stack.last_mut() {
                    // Merge adjacent text nodes.
                    if let Some(Child::Text(prev)) = top.children.last_mut() {
                        prev.push_str(&t);
                    } else {
                        top.children.push(Child::Text(t));
                    }
                } else if !t.trim().is_empty() {
                    return Err(XmlError::BadDocumentStructure {
                        detail: "text outside the root element",
                        at,
                    });
                }
            }
            Event::Start {
                name,
                attributes,
                self_closing,
            } => {
                if root.is_some() && stack.is_empty() {
                    return Err(XmlError::BadDocumentStructure {
                        detail: "multiple root elements",
                        at,
                    });
                }
                // Partition attributes into namespace declarations and
                // ordinary attributes.
                let mut ns_decls: Vec<(Option<String>, String)> = Vec::new();
                let mut plain: Vec<(QName, String)> = Vec::new();
                for a in attributes {
                    match (&a.name.prefix, a.name.local.as_str()) {
                        (None, "xmlns") => ns_decls.push((None, a.value)),
                        (Some(p), local) if p == "xmlns" => {
                            ns_decls.push((Some(local.to_string()), a.value));
                        }
                        _ => plain.push((a.name, a.value)),
                    }
                }
                scope.push(&ns_decls);

                let namespace = match &name.prefix {
                    Some(p) => Some(
                        scope
                            .resolve(Some(p))
                            .ok_or_else(|| XmlError::UnboundPrefix {
                                prefix: p.clone(),
                                at,
                            })?
                            .to_string(),
                    ),
                    None => scope.resolve(None).map(str::to_string),
                };
                let mut resolved_attrs = Vec::with_capacity(plain.len());
                for (qn, value) in plain {
                    let ns = match &qn.prefix {
                        Some(p) => Some(
                            scope
                                .resolve(Some(p))
                                .ok_or_else(|| XmlError::UnboundPrefix {
                                    prefix: p.clone(),
                                    at,
                                })?
                                .to_string(),
                        ),
                        None => None,
                    };
                    resolved_attrs.push(Attribute {
                        namespace: ns,
                        prefix: qn.prefix,
                        local: qn.local,
                        value,
                    });
                }

                let elem = Element {
                    namespace,
                    prefix: name.prefix.clone(),
                    local: name.local.clone(),
                    attributes: resolved_attrs,
                    ns_decls,
                    children: Vec::new(),
                };

                if self_closing {
                    scope.pop();
                    match stack.last_mut() {
                        Some(parent) => parent.children.push(Child::Element(elem)),
                        None => root = Some(elem),
                    }
                } else {
                    stack.push(elem);
                }
            }
            Event::End { name } => {
                let elem = stack.pop().ok_or_else(|| XmlError::UnbalancedClose {
                    name: name.to_string(),
                    at,
                })?;
                let open_name = match &elem.prefix {
                    Some(p) => format!("{p}:{}", elem.local),
                    None => elem.local.clone(),
                };
                if open_name != name.to_string() {
                    return Err(XmlError::MismatchedTag {
                        open: open_name,
                        close: name.to_string(),
                        at,
                    });
                }
                scope.pop();
                match stack.last_mut() {
                    Some(parent) => parent.children.push(Child::Element(elem)),
                    None => root = Some(elem),
                }
            }
        }
    }

    if let Some(open) = stack.pop() {
        return Err(XmlError::UnexpectedEof {
            expected: "close tag",
            at: tok.position(),
        })
        .inspect_err(|_e| {
            // Preserve the name in the mismatch for clarity when debugging.
            let _ = open;
        });
    }
    root.ok_or(XmlError::BadDocumentStructure {
        detail: "document has no root element",
        at: tok.position(),
    })
    .map(Document::with_root)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_nested_tree() {
        let doc = parse("<a><b><c/></b><b/></a>").unwrap();
        let a = doc.root();
        assert_eq!(a.local, "a");
        assert_eq!(a.child_elements().count(), 2);
        assert_eq!(a.descendants().len(), 3);
        assert_eq!(a.subtree_size(), 4);
    }

    #[test]
    fn default_namespace_applies_to_elements_not_attributes() {
        let doc = parse(r#"<a xmlns="urn:x" k="v"><b/></a>"#).unwrap();
        let a = doc.root();
        assert_eq!(a.namespace(), Some("urn:x"));
        assert_eq!(a.attributes[0].namespace, None);
        assert_eq!(a.child("b").unwrap().namespace(), Some("urn:x"));
    }

    #[test]
    fn prefixed_namespaces_resolve_with_scoping() {
        let doc = parse(r#"<a xmlns:p="urn:1"><p:b><c xmlns:p="urn:2"><p:d/></c></p:b><p:e/></a>"#)
            .unwrap();
        let a = doc.root();
        let b = a.child("b").unwrap();
        assert_eq!(b.namespace(), Some("urn:1"));
        let d = b.child("c").unwrap().child("d").unwrap();
        assert_eq!(d.namespace(), Some("urn:2"), "inner redeclaration wins");
        assert_eq!(
            a.child("e").unwrap().namespace(),
            Some("urn:1"),
            "scope restored"
        );
    }

    #[test]
    fn default_namespace_can_be_undeclared() {
        let doc = parse(r#"<a xmlns="urn:x"><b xmlns=""><c/></b></a>"#).unwrap();
        let b = doc.root().child("b").unwrap();
        assert_eq!(b.namespace(), None);
        assert_eq!(b.child("c").unwrap().namespace(), None);
    }

    #[test]
    fn xml_prefix_is_predeclared() {
        let doc = parse(r#"<a xml:lang="en"/>"#).unwrap();
        assert_eq!(doc.root().attribute_ns(XML_NS, "lang"), Some("en"));
    }

    #[test]
    fn unbound_prefix_is_error() {
        assert!(matches!(
            parse("<p:a/>"),
            Err(XmlError::UnboundPrefix { .. })
        ));
        assert!(matches!(
            parse(r#"<a q:k="v"/>"#),
            Err(XmlError::UnboundPrefix { .. })
        ));
    }

    #[test]
    fn mismatched_tags_error() {
        assert!(matches!(
            parse("<a></b>"),
            Err(XmlError::MismatchedTag { .. })
        ));
    }

    #[test]
    fn unclosed_root_is_error() {
        assert!(matches!(
            parse("<a><b></b>"),
            Err(XmlError::UnexpectedEof { .. })
        ));
    }

    #[test]
    fn multiple_roots_error() {
        assert!(matches!(
            parse("<a/><b/>"),
            Err(XmlError::BadDocumentStructure {
                detail: "multiple root elements",
                ..
            })
        ));
    }

    #[test]
    fn text_outside_root_errors() {
        assert!(matches!(
            parse("hello<a/>"),
            Err(XmlError::BadDocumentStructure { .. })
        ));
        // Whitespace outside the root is fine.
        assert!(parse("  <a/>  ").is_ok());
    }

    #[test]
    fn adjacent_text_is_merged() {
        let doc = parse("<a>x<![CDATA[y]]>z</a>").unwrap();
        assert_eq!(doc.root().children.len(), 1);
        assert_eq!(doc.root().text(), "xyz");
    }

    #[test]
    fn comments_are_preserved_inside_elements() {
        let doc = parse("<a><!--c--></a>").unwrap();
        assert_eq!(doc.root().children, vec![Child::Comment("c".into())]);
    }

    #[test]
    fn mutation_api_builds_trees() {
        let mut a = Element::new("a");
        let mut b = Element::in_ns("urn:x", Some("p"), "b");
        b.set_attribute("k", "v");
        b.set_attribute("k", "v2"); // overwrite
        b.push_text("body");
        a.push_element(b);
        assert_eq!(a.child("b").unwrap().attribute("k"), Some("v2"));
        assert_eq!(a.child("b").unwrap().text(), "body");
    }
}
