//! Minimal, dependency-free XML 1.0 substrate for GRDF.
//!
//! The GRDF reproduction needs XML twice: once to parse/emit GML documents
//! and once for the RDF/XML serialization of ontologies. No XML crate is in
//! the allowed dependency set, so this crate implements the subset of
//! XML 1.0 + Namespaces that those formats require:
//!
//! * well-formed element trees with attributes, text, CDATA and comments,
//! * character/entity references (the five predefined entities plus numeric
//!   references),
//! * namespace declarations (`xmlns`, `xmlns:p`) with lexical scoping and
//!   prefix resolution,
//! * a writer that produces canonical, optionally indented output.
//!
//! Deliberately out of scope: DTDs (rejected), processing instructions other
//! than the XML declaration (skipped), and non-UTF-8 encodings.
//!
//! # Example
//!
//! ```
//! use grdf_xml::parse;
//!
//! let doc = parse("<a xmlns:g='urn:g'><g:b attr='1'>hi</g:b></a>").unwrap();
//! let root = doc.root();
//! assert_eq!(root.local_name(), "a");
//! let b = root.child_elements().next().unwrap();
//! assert_eq!(b.namespace(), Some("urn:g"));
//! assert_eq!(b.attribute("attr"), Some("1"));
//! assert_eq!(b.text(), "hi");
//! ```

pub mod error;
pub mod escape;
pub mod name;
pub mod reader;
pub mod tree;
pub mod writer;

pub use error::{XmlError, XmlResult};
pub use name::QName;
pub use reader::{Event, Tokenizer};
pub use tree::{parse, Document, Element};
pub use writer::{write_document, WriteOptions};
