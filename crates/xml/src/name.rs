//! Qualified names and XML name syntax checks.

use std::fmt;

/// A qualified XML name: optional prefix plus local part, e.g. `gml:Point`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct QName {
    /// The namespace prefix, if any (`gml` in `gml:Point`).
    pub prefix: Option<String>,
    /// The local part (`Point` in `gml:Point`).
    pub local: String,
}

impl QName {
    /// Parse a raw tag/attribute name into prefix and local part.
    /// Returns `None` for syntactically invalid names (empty parts, more
    /// than one colon, illegal characters).
    pub fn parse(raw: &str) -> Option<QName> {
        let mut parts = raw.splitn(3, ':');
        let first = parts.next()?;
        match (parts.next(), parts.next()) {
            (None, _) => {
                if is_ncname(first) {
                    Some(QName {
                        prefix: None,
                        local: first.to_string(),
                    })
                } else {
                    None
                }
            }
            (Some(second), None) => {
                if is_ncname(first) && is_ncname(second) {
                    Some(QName {
                        prefix: Some(first.to_string()),
                        local: second.to_string(),
                    })
                } else {
                    None
                }
            }
            (Some(_), Some(_)) => None,
        }
    }

    /// Construct an unprefixed name. Panics in debug builds on invalid input.
    pub fn local(local: &str) -> QName {
        debug_assert!(is_ncname(local), "invalid NCName {local:?}");
        QName {
            prefix: None,
            local: local.to_string(),
        }
    }

    /// Construct a prefixed name. Panics in debug builds on invalid input.
    pub fn prefixed(prefix: &str, local: &str) -> QName {
        debug_assert!(is_ncname(prefix) && is_ncname(local));
        QName {
            prefix: Some(prefix.to_string()),
            local: local.to_string(),
        }
    }
}

impl fmt::Display for QName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.prefix {
            Some(p) => write!(f, "{p}:{}", self.local),
            None => f.write_str(&self.local),
        }
    }
}

/// Whether `c` can start an XML NCName (no-colon name).
pub fn is_name_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

/// Whether `c` can continue an XML NCName.
pub fn is_name_char(c: char) -> bool {
    c.is_alphanumeric() || matches!(c, '_' | '-' | '.' | '\u{B7}')
}

/// Whether `s` is a valid NCName (non-empty, valid start, valid continuation,
/// no colon).
pub fn is_ncname(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if is_name_start(c) => chars.all(is_name_char),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_unprefixed() {
        let q = QName::parse("Point").unwrap();
        assert_eq!(q.prefix, None);
        assert_eq!(q.local, "Point");
        assert_eq!(q.to_string(), "Point");
    }

    #[test]
    fn parses_prefixed() {
        let q = QName::parse("gml:Point").unwrap();
        assert_eq!(q.prefix.as_deref(), Some("gml"));
        assert_eq!(q.local, "Point");
        assert_eq!(q.to_string(), "gml:Point");
    }

    #[test]
    fn rejects_bad_names() {
        assert!(QName::parse("").is_none());
        assert!(QName::parse(":x").is_none());
        assert!(QName::parse("x:").is_none());
        assert!(QName::parse("a:b:c").is_none());
        assert!(QName::parse("1abc").is_none());
        assert!(QName::parse("a b").is_none());
    }

    #[test]
    fn ncname_rules() {
        assert!(is_ncname("_under"));
        assert!(is_ncname("a-b.c"));
        assert!(is_ncname("héllo"), "alphabetic unicode allowed");
        assert!(!is_ncname("-a"));
        assert!(!is_ncname(".a"));
        assert!(!is_ncname(""));
    }
}
