//! Error type for XML parsing.

use std::fmt;

/// Position of an error in the input, 1-based.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Position {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number (in characters).
    pub column: u32,
}

impl fmt::Display for Position {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.column)
    }
}

/// Errors produced while tokenizing or building an XML tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlError {
    /// Input ended while a construct was still open.
    UnexpectedEof {
        expected: &'static str,
        at: Position,
    },
    /// A character that is not legal at this point of the grammar.
    UnexpectedChar {
        found: char,
        expected: &'static str,
        at: Position,
    },
    /// An `&name;` entity reference that is not one of the five predefined
    /// entities and not a valid numeric reference.
    UnknownEntity { name: String, at: Position },
    /// A close tag whose name does not match the open tag.
    MismatchedTag {
        open: String,
        close: String,
        at: Position,
    },
    /// A close tag with no matching open tag.
    UnbalancedClose { name: String, at: Position },
    /// The same attribute appears twice on one element.
    DuplicateAttribute { name: String, at: Position },
    /// A prefix was used without an in-scope `xmlns:prefix` declaration.
    UnboundPrefix { prefix: String, at: Position },
    /// The document has no root element, or content after the root.
    BadDocumentStructure { detail: &'static str, at: Position },
    /// DTD constructs (`<!DOCTYPE ...>`) are not supported.
    DtdUnsupported { at: Position },
    /// An XML name (element/attribute) is syntactically invalid.
    InvalidName { name: String, at: Position },
}

impl XmlError {
    /// The input position the error was detected at.
    pub fn position(&self) -> Position {
        match self {
            XmlError::UnexpectedEof { at, .. }
            | XmlError::UnexpectedChar { at, .. }
            | XmlError::UnknownEntity { at, .. }
            | XmlError::MismatchedTag { at, .. }
            | XmlError::UnbalancedClose { at, .. }
            | XmlError::DuplicateAttribute { at, .. }
            | XmlError::UnboundPrefix { at, .. }
            | XmlError::BadDocumentStructure { at, .. }
            | XmlError::DtdUnsupported { at }
            | XmlError::InvalidName { at, .. } => *at,
        }
    }
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XmlError::UnexpectedEof { expected, at } => {
                write!(f, "{at}: unexpected end of input, expected {expected}")
            }
            XmlError::UnexpectedChar {
                found,
                expected,
                at,
            } => {
                write!(
                    f,
                    "{at}: unexpected character {found:?}, expected {expected}"
                )
            }
            XmlError::UnknownEntity { name, at } => {
                write!(f, "{at}: unknown entity reference &{name};")
            }
            XmlError::MismatchedTag { open, close, at } => {
                write!(
                    f,
                    "{at}: close tag </{close}> does not match open tag <{open}>"
                )
            }
            XmlError::UnbalancedClose { name, at } => {
                write!(f, "{at}: close tag </{name}> has no matching open tag")
            }
            XmlError::DuplicateAttribute { name, at } => {
                write!(f, "{at}: duplicate attribute {name:?}")
            }
            XmlError::UnboundPrefix { prefix, at } => {
                write!(f, "{at}: namespace prefix {prefix:?} is not bound")
            }
            XmlError::BadDocumentStructure { detail, at } => {
                write!(f, "{at}: bad document structure: {detail}")
            }
            XmlError::DtdUnsupported { at } => {
                write!(f, "{at}: DTD declarations are not supported")
            }
            XmlError::InvalidName { name, at } => {
                write!(f, "{at}: invalid XML name {name:?}")
            }
        }
    }
}

impl std::error::Error for XmlError {}

/// Result alias used across the crate.
pub type XmlResult<T> = Result<T, XmlError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position() {
        let e = XmlError::UnknownEntity {
            name: "nbsp".into(),
            at: Position { line: 3, column: 7 },
        };
        let s = e.to_string();
        assert!(s.contains("3:7"), "{s}");
        assert!(s.contains("nbsp"), "{s}");
    }

    #[test]
    fn position_accessor_matches_variant() {
        let at = Position { line: 1, column: 2 };
        let e = XmlError::DtdUnsupported { at };
        assert_eq!(e.position(), at);
    }
}
