//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this vendored crate
//! reimplements the slice of proptest the workspace's property tests use:
//!
//! * the [`Strategy`] trait with `prop_map` / `prop_flat_map` / `boxed`;
//! * strategies for integer and float ranges, `&str` regex-subset
//!   patterns, tuples, `Vec<S>`, [`collection::vec`], [`option::of`],
//!   [`bool::ANY`], [`Just`], and [`arbitrary::any`];
//! * the [`proptest!`] / [`prop_oneof!`] / `prop_assert*!` /
//!   [`prop_assume!`] macros;
//! * a deterministic per-test, per-case RNG (no shrinking — failures
//!   report the full generated inputs instead of a minimized case).
//!
//! The semantics intentionally favour determinism over coverage tricks:
//! case `k` of test `t` always sees the same inputs, so CI failures
//! reproduce locally without a persisted regression file.

pub mod test_runner {
    /// Run-time configuration for a [`proptest!`] block.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases (the only knob this stand-in has).
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 64 }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// An assertion failed; the message explains which.
        Fail(String),
        /// `prop_assume!` rejected the inputs; the case is skipped.
        Reject,
    }

    impl TestCaseError {
        /// Build a failure with a message.
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Fail(msg.into())
        }
    }

    /// Deterministic xoshiro256++ RNG, seeded from the test path + case
    /// index so each case is reproducible in isolation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Optional global reseed: `GRDF_MASTER_SEED` (decimal or `0x`-hex)
    /// perturbs every generated case while staying fully deterministic,
    /// so CI can sweep the property suites across master seeds and a
    /// failing sweep replays locally verbatim. Unset (the default), the
    /// perturbation is zero and case generation is byte-identical to
    /// what it always was.
    fn env_master_seed() -> u64 {
        static MASTER: std::sync::OnceLock<u64> = std::sync::OnceLock::new();
        *MASTER.get_or_init(|| {
            let Ok(raw) = std::env::var("GRDF_MASTER_SEED") else {
                return 0;
            };
            let raw = raw.trim();
            match raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
                Some(hex) => u64::from_str_radix(hex, 16).unwrap_or(0),
                None => raw.parse().unwrap_or(0),
            }
        })
    }

    impl TestRng {
        /// RNG for case `case` of the test identified by `path`.
        pub fn for_case(path: &str, case: u32) -> TestRng {
            // FNV-1a over the path, mixed with the case index.
            let mut h: u64 = 0xcbf29ce484222325;
            for b in path.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            h ^= env_master_seed();
            TestRng::from_seed(h ^ ((case as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15)))
        }

        /// RNG from a raw 64-bit seed.
        pub fn from_seed(seed: u64) -> TestRng {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            if s == [0, 0, 0, 0] {
                s[0] = 1;
            }
            TestRng { s }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform draw in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            let zone = u64::MAX - (u64::MAX % bound);
            loop {
                let v = self.next_u64();
                if v < zone {
                    return v % bound;
                }
            }
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Fair coin.
        pub fn coin(&mut self) -> bool {
            self.next_u64() & 1 == 1
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::fmt::Debug;
    use std::ops::Range;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value: Debug;

        /// Produce one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map {
                source: self,
                map: f,
            }
        }

        /// Generate an intermediate value, then generate from the strategy
        /// `f` builds out of it.
        fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap {
                source: self,
                flat: f,
            }
        }

        /// Keep only values for which `f` returns true (resamples up to a
        /// bounded number of times, then panics).
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            whence: &'static str,
            f: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter {
                source: self,
                keep: f,
                whence,
            }
        }

        /// Type-erase the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A heap-allocated, type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Always generates a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone + Debug>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) source: S,
        pub(crate) map: F,
    }

    impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.map)(self.source.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        pub(crate) source: S,
        pub(crate) flat: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.flat)(self.source.generate(rng)).generate(rng)
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        pub(crate) source: S,
        pub(crate) keep: F,
        pub(crate) whence: &'static str,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.source.generate(rng);
                if (self.keep)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter rejected 1000 candidates in a row: {}",
                self.whence
            );
        }
    }

    /// Uniform choice among same-valued strategies (see [`prop_oneof!`]).
    pub struct Union<T> {
        branches: Vec<BoxedStrategy<T>>,
    }

    impl<T: Debug> Union<T> {
        /// A union over `branches`; must be non-empty.
        pub fn new(branches: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(
                !branches.is_empty(),
                "prop_oneof! needs at least one branch"
            );
            Union { branches }
        }
    }

    impl<T: Debug> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.branches.len() as u64) as usize;
            self.branches[i].generate(rng)
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
        )+};
    }

    impl_int_range_strategy!(usize, u64, u32, u16, u8, i64, i32, i16, i8);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty range strategy");
            (self.start as f64 + rng.unit_f64() * (self.end - self.start) as f64) as f32
        }
    }

    /// `&str` strategies are regex-subset patterns: literals, `[...]`
    /// classes with ranges, and `{n}` / `{m,n}` / `*` / `+` / `?`
    /// quantifiers.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            crate::string::generate_from_pattern(self, rng)
        }
    }

    impl<S: Strategy> Strategy for Vec<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            self.iter().map(|s| s.generate(rng)).collect()
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($s:ident),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::fmt::Debug;
    use std::marker::PhantomData;

    /// Types with a canonical strategy, reachable via [`any`].
    pub trait Arbitrary: Sized + Debug {
        /// Draw one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// The strategy returned by [`any`].
    pub struct Any<A>(PhantomData<A>);

    impl<A: Arbitrary> Strategy for Any<A> {
        type Value = A;
        fn generate(&self, rng: &mut TestRng) -> A {
            A::arbitrary(rng)
        }
    }

    /// The canonical strategy for `A`.
    pub fn any<A: Arbitrary>() -> Any<A> {
        Any(PhantomData)
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.coin()
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),+) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )+};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for f64 {
        /// Finite doubles across a wide magnitude range (no NaN/inf —
        /// matching how the workspace's tests use `any::<f64>()`).
        fn arbitrary(rng: &mut TestRng) -> f64 {
            let mantissa = rng.unit_f64() * 2.0 - 1.0;
            let exp = (rng.below(61) as i32 - 30) as f64;
            mantissa * exp.exp2()
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> f32 {
            f64::arbitrary(rng) as f32
        }
    }

    impl Arbitrary for char {
        /// Printable ASCII plus a sprinkling of wider codepoints.
        fn arbitrary(rng: &mut TestRng) -> char {
            if rng.below(8) == 0 {
                char::from_u32(0x00A1 + rng.below(0x500) as u32).unwrap_or('¿')
            } else {
                (0x20u8 + rng.below(0x5F) as u8) as char
            }
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec`s with sizes drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `Vec` strategy with between `size.start` and `size.end - 1`
    /// elements.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(
            size.start < size.end,
            "empty size range for collection::vec"
        );
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let n = self.size.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Option`s (see [`of`]).
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `Some(inner)` three times out of four, `None` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// The type of [`ANY`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Fair-coin boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.coin()
        }
    }
}

pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::fmt::Debug;

    /// Strategy choosing one element of a fixed list.
    pub struct Select<T> {
        options: Vec<T>,
    }

    /// Uniform choice from `options` (cloned per case).
    pub fn select<T: Clone + Debug>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "sample::select needs options");
        Select { options }
    }

    impl<T: Clone + Debug> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len() as u64) as usize].clone()
        }
    }
}

pub mod string {
    use crate::test_runner::TestRng;

    /// One parsed pattern atom: the characters it may produce and how many
    /// repetitions it allows.
    struct Atom {
        choices: Vec<char>,
        min: usize,
        max: usize,
    }

    /// Generate a string from the regex subset: literal characters,
    /// `[...]` classes (with `a-z` ranges), and `{n}` / `{m,n}` / `*` /
    /// `+` / `?` quantifiers.
    pub fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let atoms = parse(pattern);
        let mut out = String::new();
        for atom in &atoms {
            let n = atom.min + rng.below((atom.max - atom.min + 1) as u64) as usize;
            for _ in 0..n {
                out.push(atom.choices[rng.below(atom.choices.len() as u64) as usize]);
            }
        }
        out
    }

    fn parse(pattern: &str) -> Vec<Atom> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut atoms = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let choices = match chars[i] {
                '[' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == ']')
                        .map(|p| i + p)
                        .unwrap_or_else(|| panic!("unclosed [ in pattern {pattern:?}"));
                    let class = parse_class(&chars[i + 1..close], pattern);
                    i = close + 1;
                    class
                }
                '\\' => {
                    i += 1;
                    let c = *chars
                        .get(i)
                        .unwrap_or_else(|| panic!("dangling escape in pattern {pattern:?}"));
                    i += 1;
                    match c {
                        'd' => ('0'..='9').collect(),
                        'w' => ('a'..='z').chain('A'..='Z').chain('0'..='9').collect(),
                        's' => vec![' '],
                        other => vec![other],
                    }
                }
                '.' => {
                    i += 1;
                    (' '..='~').collect()
                }
                literal => {
                    i += 1;
                    vec![literal]
                }
            };
            // Optional quantifier.
            let (min, max) = match chars.get(i) {
                Some('{') => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .map(|p| i + p)
                        .unwrap_or_else(|| panic!("unclosed {{ in pattern {pattern:?}"));
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    match body.split_once(',') {
                        Some((lo, hi)) => (
                            lo.trim().parse().expect("bad quantifier"),
                            hi.trim().parse().expect("bad quantifier"),
                        ),
                        None => {
                            let n = body.trim().parse().expect("bad quantifier");
                            (n, n)
                        }
                    }
                }
                Some('*') => {
                    i += 1;
                    (0, 8)
                }
                Some('+') => {
                    i += 1;
                    (1, 8)
                }
                Some('?') => {
                    i += 1;
                    (0, 1)
                }
                _ => (1, 1),
            };
            assert!(min <= max, "inverted quantifier in pattern {pattern:?}");
            atoms.push(Atom { choices, min, max });
        }
        atoms
    }

    fn parse_class(body: &[char], pattern: &str) -> Vec<char> {
        let mut out = Vec::new();
        let mut i = 0;
        while i < body.len() {
            if i + 2 < body.len() && body[i + 1] == '-' {
                let (lo, hi) = (body[i], body[i + 2]);
                assert!(lo <= hi, "inverted class range in pattern {pattern:?}");
                for c in lo..=hi {
                    out.push(c);
                }
                i += 3;
            } else {
                out.push(body[i]);
                i += 1;
            }
        }
        assert!(
            !out.is_empty(),
            "empty character class in pattern {pattern:?}"
        );
        out
    }
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// The `prop::` namespace alias (`prop::collection::vec`, …).
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
        pub use crate::option;
        pub use crate::sample;
    }
}

/// Define property tests. Each `fn name(arg in strategy, ...) { body }`
/// expands to a test running `cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let __strategy = ($($strat,)+);
            for __case in 0..__config.cases {
                let mut __rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                let ($($arg,)+) =
                    $crate::strategy::Strategy::generate(&__strategy, &mut __rng);
                let __inputs = format!(
                    concat!($("  ", stringify!($arg), " = {:?}\n",)+),
                    $(&$arg),+
                );
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                match __outcome {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest case {}/{} failed: {}\ninputs:\n{}",
                            __case + 1,
                            __config.cases,
                            msg,
                            __inputs
                        );
                    }
                }
            }
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}

/// Assert inside a [`proptest!`] body; failures report the generated
/// inputs instead of unwinding immediately.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Equality assertion for [`proptest!`] bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                        stringify!($left), stringify!($right), l, r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{}\n  left: {:?}\n right: {:?}", format!($($fmt)+), l, r),
            ));
        }
    }};
}

/// Inequality assertion for [`proptest!`] bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Skip the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($branch:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($branch)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_and_patterns_generate_in_bounds() {
        let mut rng = TestRng::for_case("self::smoke", 0);
        for _ in 0..200 {
            let v = Strategy::generate(&(3..9usize), &mut rng);
            assert!((3..9).contains(&v));
            let s = Strategy::generate(&"[a-z]{1,8}", &mut rng);
            assert!((1..=8).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            let t = Strategy::generate(&"[a-z][a-z0-9]{0,6}", &mut rng);
            assert!(!t.is_empty() && t.len() <= 7);
        }
    }

    #[test]
    fn deterministic_per_case() {
        let s = (0..100usize, "[ -~]{0,20}");
        let a = Strategy::generate(&s, &mut TestRng::for_case("x", 3));
        let b = Strategy::generate(&s, &mut TestRng::for_case("x", 3));
        assert_eq!(a, b);
        let c = Strategy::generate(&s, &mut TestRng::for_case("x", 4));
        assert!(a != c || Strategy::generate(&s, &mut TestRng::for_case("x", 5)) != a);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_roundtrip(v in prop::collection::vec(0..50i64, 0..10), flag in prop::bool::ANY) {
            prop_assert!(v.len() < 10);
            for x in &v {
                prop_assert!((0..50).contains(x), "{} out of bounds", x);
            }
            prop_assert_eq!(flag || !flag, true);
        }

        #[test]
        fn assume_skips(n in 0..10usize) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn oneof_and_option(x in prop_oneof![(0..5i64), (100..105i64)], o in prop::option::of(0..3usize)) {
            prop_assert!((0..5).contains(&x) || (100..105).contains(&x));
            if let Some(v) = o {
                prop_assert!(v < 3);
            }
        }
    }
}
