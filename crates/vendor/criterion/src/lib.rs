//! Offline stand-in for the `criterion` crate.
//!
//! The build environment cannot reach crates.io, so this vendored crate
//! provides the benchmark-harness API subset the workspace's `benches/`
//! use: [`Criterion::bench_function`] / [`Criterion::benchmark_group`],
//! [`Bencher::iter`] / [`Bencher::iter_batched`], [`BenchmarkId`],
//! [`BatchSize`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros.
//!
//! Measurement is intentionally simple — a fixed number of timed
//! iterations with mean/min/max reported to stdout. When any CLI argument
//! starting with `--test` is present (as `cargo test` passes to
//! `harness = false` bench binaries), each benchmark body runs exactly
//! once as a smoke test and no timing is reported.

use std::time::{Duration, Instant};

/// How a batched iteration's setup output is sized; informational only
/// in this stand-in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration setup output.
    SmallInput,
    /// Large per-iteration setup output.
    LargeInput,
    /// One setup per measured batch.
    PerIteration,
}

/// Identifier for a parameterised benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Identifier carrying only the parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Passed to each benchmark closure; drives the measured iterations.
pub struct Bencher {
    /// Iterations to time (1 in test mode).
    iters: u64,
    /// Collected per-iteration durations.
    samples: Vec<Duration>,
}

impl Bencher {
    /// Time `routine` for the configured number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.iters {
            let start = Instant::now();
            let out = routine();
            self.samples.push(start.elapsed());
            drop(out);
        }
    }

    /// Time `routine` over fresh inputs built by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            let out = routine(input);
            self.samples.push(start.elapsed());
            drop(out);
        }
    }
}

/// The benchmark driver handed to each `criterion_group!` function.
pub struct Criterion {
    /// Run each body exactly once, without timing output.
    test_mode: bool,
    /// Default measured iterations per benchmark.
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        let test_mode = std::env::args().any(|a| a.starts_with("--test") || a == "--list");
        Criterion {
            test_mode,
            sample_size: 20,
        }
    }
}

impl Criterion {
    fn run_one(&self, id: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
        let iters = if self.test_mode {
            1
        } else {
            sample_size as u64
        };
        let mut b = Bencher {
            iters,
            samples: Vec::new(),
        };
        f(&mut b);
        if self.test_mode {
            return;
        }
        if b.samples.is_empty() {
            println!("{id:<48} (no samples)");
            return;
        }
        let total: Duration = b.samples.iter().sum();
        let mean = total / b.samples.len() as u32;
        let min = b.samples.iter().min().copied().unwrap_or_default();
        let max = b.samples.iter().max().copied().unwrap_or_default();
        println!(
            "{id:<48} mean {mean:>12.3?}  min {min:>12.3?}  max {max:>12.3?}  ({} iters)",
            b.samples.len()
        );
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Criterion {
        let size = self.sample_size;
        self.run_one(id, size, &mut f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Override the measured iteration count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    fn effective_sample_size(&self) -> usize {
        self.sample_size.unwrap_or(self.criterion.sample_size)
    }

    /// Run a benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        let size = self.effective_sample_size();
        self.criterion.run_one(&full, size, &mut f);
        self
    }

    /// Run a parameterised benchmark inside the group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        let size = self.effective_sample_size();
        self.criterion.run_one(&full, size, &mut |b| f(b, input));
        self
    }

    /// Close the group (no-op beyond matching criterion's API).
    pub fn finish(self) {}
}

/// Collect benchmark functions under one group name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running every group passed to it.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_and_records() {
        let mut b = Bencher {
            iters: 3,
            samples: Vec::new(),
        };
        let mut count = 0u32;
        b.iter(|| count += 1);
        assert_eq!(count, 3);
        assert_eq!(b.samples.len(), 3);
    }

    #[test]
    fn iter_batched_gets_fresh_inputs() {
        let mut b = Bencher {
            iters: 4,
            samples: Vec::new(),
        };
        let mut built = 0u32;
        b.iter_batched(
            || {
                built += 1;
                vec![built]
            },
            |v| v.len(),
            BatchSize::LargeInput,
        );
        assert_eq!(built, 4);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 10).to_string(), "f/10");
        assert_eq!(BenchmarkId::from_parameter(64).to_string(), "64");
    }
}
