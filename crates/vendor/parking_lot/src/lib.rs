//! Offline stand-in for `parking_lot`: the same non-poisoning `lock()` /
//! `read()` / `write()` API surface, implemented over `std::sync`. A
//! poisoned std lock (a writer panicked) is recovered rather than
//! propagated — matching parking_lot's semantics, where poisoning does not
//! exist.

use std::fmt;
use std::sync::{self, TryLockError};

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
/// Guard type returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard type returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// A mutex whose `lock` never fails: poison is stripped.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock (blocking), ignoring poison.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// A reader-writer lock whose acquisitions never fail: poison is stripped.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard, ignoring poison.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard, ignoring poison.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0.try_read() {
            Ok(g) => f.debug_tuple("RwLock").field(&&*g).finish(),
            Err(TryLockError::Poisoned(e)) => {
                f.debug_tuple("RwLock").field(&&*e.into_inner()).finish()
            }
            Err(TryLockError::WouldBlock) => f.write_str("RwLock(<locked>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn poisoned_mutex_recovers() {
        let m = std::sync::Arc::new(Mutex::new(5));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*m.lock(), 5, "lock() must strip poison");
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(r1.len() + r2.len(), 4);
        }
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
