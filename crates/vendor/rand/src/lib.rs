//! Offline stand-in for the `rand` crate.
//!
//! The build environment cannot reach crates.io, so this vendored crate
//! provides the (small) API subset the workspace actually uses:
//! `StdRng::seed_from_u64`, `Rng::gen`, and `Rng::gen_range` over integer
//! and float ranges. The generator is xoshiro256++ seeded via splitmix64 —
//! deterministic for a given seed, which is all the workload generators
//! and tests rely on.

use std::ops::Range;

/// Low-level entropy source.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators (subset: `seed_from_u64` only).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore + Sized {
    /// Sample a value of a [`Standard`]-distributed type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from a range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + Sized> Rng for R {}

/// Types samplable from raw bits (the `Standard` distribution).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for i64 {
    fn sample<R: RngCore>(rng: &mut R) -> i64 {
        rng.next_u64() as i64
    }
}

impl Standard for i32 {
    fn sample<R: RngCore>(rng: &mut R) -> i32 {
        (rng.next_u64() >> 32) as i32
    }
}

impl Standard for usize {
    fn sample<R: RngCore>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges a value can be drawn from.
pub trait SampleRange<T> {
    /// Draw a value uniformly from `self`.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

/// Unbiased integer draw in `[0, bound)` via Lemire-style rejection.
fn uniform_u64<R: RngCore>(rng: &mut R, bound: u64) -> u64 {
    assert!(bound > 0, "cannot sample from an empty range");
    let zone = u64::MAX - (u64::MAX % bound);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % bound;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_u64(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (start as i128 + uniform_u64(rng, span + 1) as i128) as $t
            }
        }
    )+};
}

impl_int_range!(usize, u64, u32, i64, i32, u8, i8, u16, i16);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + f32::sample(rng) * (self.end - self.start)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Generator implementations.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// xoshiro256++ — fast, high-quality, deterministic.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // Avoid the all-zero state.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E3779B97F4A7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..32 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-200.0..400.0);
            assert!((-200.0..400.0).contains(&f));
            let i = rng.gen_range(-5..5i32);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn small_ranges_cover_all_values() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
