//! Synthetic sensor observations and coverages.
//!
//! §3.3.5/§3.3.8 of the paper introduce `Observation` ("recording/observing
//! of a feature") and `Coverage` ("a series of sensor temperatures could be
//! captured by the Coverage type"). This generator produces water-quality
//! observations along stream networks — the §7.1 incident's monitoring
//! data — as features (so they flow through the same aggregation and
//! security machinery) plus a temperature coverage over the sensor grid.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use grdf_feature::coverage::Coverage;
use grdf_feature::feature::FeatureCollection;
use grdf_feature::observation::Observation;
use grdf_feature::time::{TimeInstant, TimeObject};
use grdf_feature::value::Value;
use grdf_geometry::coord::Coord;

/// Configuration for the sensor generator.
#[derive(Debug, Clone)]
pub struct SensorConfig {
    /// Number of sensor stations.
    pub stations: usize,
    /// Observations per station.
    pub observations_per_station: usize,
    /// IRIs of the stream features being observed (round-robin).
    pub observed_streams: Vec<String>,
    /// First observation time (epoch seconds).
    pub start_epoch: i64,
    /// Seconds between successive observations at one station.
    pub interval_seconds: i64,
    /// RNG seed.
    pub seed: u64,
    /// Southwest corner of the station grid.
    pub origin: Coord,
    /// Side length of the station grid.
    pub extent: f64,
}

impl Default for SensorConfig {
    fn default() -> Self {
        SensorConfig {
            stations: 10,
            observations_per_station: 24,
            observed_streams: Vec::new(),
            // 2026-07-06T00:00:00Z, the day of the incident.
            start_epoch: 1_783_296_000,
            interval_seconds: 3600,
            seed: 42,
            origin: Coord::xy(2_500_000.0, 7_050_000.0),
            extent: 100_000.0,
        }
    }
}

/// Output of the generator.
#[derive(Debug, Clone)]
pub struct SensorData {
    /// Observation features (turbidity readings), ready for encoding.
    pub observations: FeatureCollection,
    /// Station positions.
    pub stations: Vec<Coord>,
    /// A temperature coverage sampled at the stations.
    pub temperature: Coverage,
}

/// Generate observations + coverage. Turbidity trends upward over time at
/// stations observing a "contaminated" stream (the first one) — the signal
/// the §7.1 responders would look for.
pub fn generate_sensors(config: &SensorConfig) -> SensorData {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut observations = FeatureCollection::new();
    let mut stations = Vec::with_capacity(config.stations);
    let mut temps = Vec::with_capacity(config.stations);

    for s in 0..config.stations {
        let pos = Coord::xy(
            config.origin.x + rng.gen::<f64>() * config.extent,
            config.origin.y + rng.gen::<f64>() * config.extent,
        );
        stations.push(pos);
        temps.push(Value::Double(
            ((18.0 + rng.gen::<f64>() * 14.0) * 100.0).round() / 100.0,
        ));

        let target = if config.observed_streams.is_empty() {
            format!("http://grdf.org/app#stream{}", s % 7)
        } else {
            config.observed_streams[s % config.observed_streams.len()].clone()
        };
        let contaminated = s % config.observed_streams.len().max(7) == 0;

        for o in 0..config.observations_per_station {
            let t =
                TimeInstant::from_epoch(config.start_epoch + o as i64 * config.interval_seconds);
            // Baseline turbidity ~2 NTU; contaminated stations ramp up.
            let mut turbidity = 2.0 + rng.gen::<f64>();
            if contaminated {
                turbidity += o as f64 * 0.8;
            }
            let obs = Observation::new(
                &format!("http://grdf.org/app#obs/st{s}/r{o}"),
                &target,
                TimeObject::Instant(t),
                "turbidity",
                Value::Double((turbidity * 100.0).round() / 100.0),
            );
            let mut feature = obs.into_feature();
            feature.set_geometry(grdf_geometry::primitives::Point::at(pos).into());
            observations.push(feature);
        }
    }

    let temperature =
        Coverage::new("temperature", stations.clone(), temps).expect("parallel arrays");
    SensorData {
        observations,
        stations,
        temperature,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SensorConfig {
        SensorConfig {
            stations: 6,
            observations_per_station: 5,
            observed_streams: vec![
                "urn:s#a".to_string(),
                "urn:s#b".to_string(),
                "urn:s#c".to_string(),
            ],
            ..Default::default()
        }
    }

    #[test]
    fn deterministic_and_sized() {
        let a = generate_sensors(&small());
        let b = generate_sensors(&small());
        assert_eq!(a.observations, b.observations);
        assert_eq!(a.observations.len(), 30);
        assert_eq!(a.stations.len(), 6);
        assert_eq!(a.temperature.len(), 6);
    }

    #[test]
    fn observations_are_features_with_time_and_result() {
        let data = generate_sensors(&small());
        for f in &data.observations.features {
            assert_eq!(f.feature_type, "Observation");
            assert!(f.property("observedFeature").is_some());
            assert!(matches!(f.property("phenomenonTime"), Some(Value::Time(_))));
            assert!(matches!(f.property("result"), Some(Value::Double(_))));
            assert!(f.geometry.is_some());
        }
    }

    #[test]
    fn observation_times_advance_per_station() {
        let data = generate_sensors(&small());
        let t0 = data.observations.features[0]
            .property("phenomenonTime")
            .unwrap();
        let t1 = data.observations.features[1]
            .property("phenomenonTime")
            .unwrap();
        match (t0, t1) {
            (Value::Time(a), Value::Time(b)) => {
                assert_eq!(b.epoch_seconds - a.epoch_seconds, 3600);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn contaminated_station_trends_upward() {
        let cfg = SensorConfig {
            observations_per_station: 10,
            ..small()
        };
        let data = generate_sensors(&cfg);
        // Station 0 observes the contaminated stream.
        let station0: Vec<f64> = data
            .observations
            .features
            .iter()
            .filter(|f| f.iri.contains("/st0/"))
            .filter_map(|f| f.property("result").and_then(Value::as_f64))
            .collect();
        assert!(station0.last().unwrap() > &(station0.first().unwrap() + 4.0));
    }

    #[test]
    fn coverage_evaluates_at_stations() {
        let data = generate_sensors(&small());
        let v = data.temperature.evaluate(&data.stations[2]);
        assert!(v.as_f64().is_some());
        assert!(data.temperature.mean().unwrap() > 0.0);
    }

    #[test]
    fn observations_encode_to_rdf_and_reason_as_features() {
        use grdf_rdf::term::Term;
        let data = generate_sensors(&small());
        let mut g = grdf_rdf::turtle::parse(
            "@prefix app: <http://grdf.org/app#> .\n@prefix grdf: <http://grdf.org/ontology#> .\n@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .\napp:Observation rdfs:subClassOf grdf:Observation .",
        )
        .unwrap();
        for f in &data.observations.features {
            grdf_feature::rdf_codec::encode_feature(&mut g, f);
        }
        grdf_owl::reasoner::Reasoner::default().materialize(&mut g);
        // app:Observation ⊑ grdf:Observation ⇒ counts as grdf Observations.
        let n = g
            .subjects(
                &Term::iri(grdf_rdf::vocab::rdf::TYPE),
                &Term::iri("http://grdf.org/ontology#Observation"),
            )
            .len();
        assert_eq!(n, 30);
    }
}
