//! The §7.1 water-contamination incident scenario: dataset, store, the
//! three roles, and both policy encodings (GRDF List-8 fine-grained vs.
//! the GeoXACML object-level approximation).
//!
//! These builders are shared by the Criterion benchmarks, the `figures`
//! report binary, and `grdf-cli`'s policy-analysis commands so every
//! consumer measures/analyzes the same workload.

use grdf_core::store::GrdfStore;
use grdf_feature::rdf_codec::encode_feature;
use grdf_rdf::graph::Graph;
use grdf_rdf::vocab::grdf;
use grdf_security::geoxacml::{XacmlPolicySet, XacmlRule};
use grdf_security::policy::{Policy, PolicySet};

use crate::chemical::{alignment_axioms, generate_chemical_sites, ChemicalConfig};
use crate::hydrology::{generate_hydrology, HydrologyConfig};

/// Role IRIs of the §7.1 scenario.
pub mod roles {
    use grdf_rdf::vocab::grdf;

    /// 'main repair': wastewater pipe crews — extent-only access.
    pub fn main_repair() -> String {
        grdf::sec("MainRep")
    }

    /// 'hazmat personnel': chemical clean-up — chemicals + extents.
    pub fn hazmat() -> String {
        grdf::sec("Hazmat")
    }

    /// 'emergency response': administrative — full access.
    pub fn emergency() -> String {
        grdf::sec("Emergency")
    }
}

/// Build the merged incident dataset: `streams` hydrology features plus
/// `sites` chemical sites (with linked ChemInfo records and ~10%
/// duplicates), plus the alignment axioms. Deterministic per `seed`.
pub fn incident_graph(streams: usize, sites: usize, seed: u64) -> Graph {
    incident_graph_scaled(streams, sites, 1, seed)
}

/// [`incident_graph`] with a density knob: `detail` multiplies the
/// chemicals stored per site and attaches `3 * detail` inventory readings
/// to each ChemInfo record, so triple counts scale past what feature
/// counts alone reach (1000×1000 at `detail` 7 ≈ 400 K triples — the E6
/// large-scale benchmark point). `detail == 1` keeps the per-site shape
/// close to the original §7.1 scenario.
pub fn incident_graph_scaled(streams: usize, sites: usize, detail: usize, seed: u64) -> Graph {
    let detail = detail.max(1);
    let hydro = generate_hydrology(&HydrologyConfig {
        streams,
        seed,
        ..Default::default()
    });
    let chem = generate_chemical_sites(&ChemicalConfig {
        sites,
        seed: seed + 1,
        chemicals_per_site: 2 * detail,
        readings_per_chemical: if detail == 1 { 0 } else { 3 * detail },
        ..Default::default()
    });
    let mut g = grdf_rdf::turtle::parse(alignment_axioms()).expect("axioms parse");
    for f in hydro.features.iter().chain(chem.features.iter()) {
        encode_feature(&mut g, f);
    }
    g
}

/// An incident store (GRDF ontology + incident data), not yet materialized.
pub fn incident_store(streams: usize, sites: usize, seed: u64) -> GrdfStore {
    incident_store_scaled(streams, sites, 1, seed)
}

/// [`incident_store`] over [`incident_graph_scaled`]: the detail knob
/// lets benchmarks reach the 1000×1000 / ~400 K-triple E6 point.
pub fn incident_store_scaled(streams: usize, sites: usize, detail: usize, seed: u64) -> GrdfStore {
    let mut store = GrdfStore::new();
    store.merge_graph(&incident_graph_scaled(streams, sites, detail, seed));
    store
}

/// The three-role GRDF policy set of §7.1 (fine-grained, List 8 style).
pub fn scenario_policies() -> PolicySet {
    PolicySet::new(vec![
        // 'main repair': low-security role; extent only on chemical data,
        // full hydrology.
        Policy::permit_properties(
            &grdf::sec("MainRepPolicy1"),
            &roles::main_repair(),
            &grdf::app("ChemSite"),
            &[&grdf::iri("isBoundedBy"), &grdf::iri("hasGeometry")],
        ),
        Policy::permit(
            &grdf::sec("MainRepPolicy2"),
            &roles::main_repair(),
            &grdf::app("Stream"),
        ),
        // 'hazmat personnel': chemicals and locations, but no contacts.
        Policy::permit_properties(
            &grdf::sec("HazmatPolicy1"),
            &roles::hazmat(),
            &grdf::app("ChemSite"),
            &[
                &grdf::iri("isBoundedBy"),
                &grdf::iri("hasGeometry"),
                &grdf::app("hasChemicalInfo"),
                &grdf::app("hasSiteName"),
            ],
        ),
        Policy::permit(
            &grdf::sec("HazmatPolicy2"),
            &roles::hazmat(),
            &grdf::app("ChemInfo"),
        ),
        Policy::permit(
            &grdf::sec("HazmatPolicy3"),
            &roles::hazmat(),
            &grdf::app("Stream"),
        ),
        // 'emergency response': administrative role, full access.
        Policy::permit(
            &grdf::sec("EmPolicy1"),
            &roles::emergency(),
            &grdf::app("ChemSite"),
        ),
        Policy::permit(
            &grdf::sec("EmPolicy2"),
            &roles::emergency(),
            &grdf::app("ChemInfo"),
        ),
        Policy::permit(
            &grdf::sec("EmPolicy3"),
            &roles::emergency(),
            &grdf::app("Stream"),
        ),
    ])
}

/// The closest object-level (GeoXACML-style) approximation of the same
/// intent: 'main repair' must be granted whole ChemSites (it needs their
/// extents) — which is exactly the over-grant the paper criticizes.
pub fn xacml_policies() -> XacmlPolicySet {
    XacmlPolicySet::new(vec![
        XacmlRule::permit(&roles::main_repair(), &grdf::app("ChemSite")),
        XacmlRule::permit(&roles::main_repair(), &grdf::app("Stream")),
        XacmlRule::permit(&roles::hazmat(), &grdf::app("ChemSite")),
        XacmlRule::permit(&roles::hazmat(), &grdf::app("ChemInfo")),
        XacmlRule::permit(&roles::hazmat(), &grdf::app("Stream")),
        XacmlRule::permit(&roles::emergency(), &grdf::app("ChemSite")),
        XacmlRule::permit(&roles::emergency(), &grdf::app("ChemInfo")),
        XacmlRule::permit(&roles::emergency(), &grdf::app("Stream")),
    ])
}

/// Properties the 'main repair' role must never see — the leak probes of
/// experiment E5.
pub fn sensitive_properties() -> Vec<String> {
    vec![
        grdf::app("hasChemicalInfo"),
        grdf::app("hasContactPhone"),
        grdf::app("hasSiteId"),
        grdf::app("hasChemCode"),
        grdf::app("hasChemName"),
    ]
}
