//! Zipf-skewed request streams for the G-SACS cache experiments (E6).
//!
//! "In many systems, the same queries tend to occur frequently and as a
//! result, having a caching mechanism … would provide a significant
//! performance boost" (§8.4). The skew parameter controls how heavy that
//! repetition is.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A generated request: a role IRI and a query string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Requesting role.
    pub role: String,
    /// SPARQL-subset query text.
    pub query: String,
}

/// Configuration for the request-stream generator.
#[derive(Debug, Clone)]
pub struct RequestConfig {
    /// Number of requests to emit.
    pub count: usize,
    /// Number of distinct query templates in the pool.
    pub distinct_queries: usize,
    /// Zipf exponent (0 = uniform; ≥ 1 = heavily skewed).
    pub zipf_s: f64,
    /// Role IRIs to draw from (uniformly).
    pub roles: Vec<String>,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RequestConfig {
    fn default() -> Self {
        RequestConfig {
            count: 1000,
            distinct_queries: 100,
            zipf_s: 1.0,
            roles: vec![
                "http://grdf.org/security#MainRep".to_string(),
                "http://grdf.org/security#Hazmat".to_string(),
                "http://grdf.org/security#Emergency".to_string(),
            ],
            seed: 42,
        }
    }
}

/// The query template pool: spatial window queries and attribute lookups
/// over the §7.1 scenario vocabulary, parameterized by rank.
pub fn query_pool(distinct: usize) -> Vec<String> {
    (0..distinct)
        .map(|i| {
            let x0 = 2_500_000.0 + (i % 10) as f64 * 10_000.0;
            let y0 = 7_050_000.0 + (i / 10 % 10) as f64 * 10_000.0;
            match i % 3 {
                0 => format!(
                    "PREFIX app: <http://grdf.org/app#>\nSELECT ?f WHERE {{ ?f a app:ChemSite . FILTER(grdf:intersectsBox(?f, {x0}, {y0}, {}, {})) }}",
                    x0 + 20_000.0,
                    y0 + 20_000.0
                ),
                1 => format!(
                    "PREFIX app: <http://grdf.org/app#>\nSELECT ?s ?n WHERE {{ ?s a app:Stream ; app:hasStreamName ?n }} LIMIT {}",
                    (i % 20) + 1
                ),
                _ => format!(
                    "PREFIX app: <http://grdf.org/app#>\nSELECT ?c WHERE {{ ?s app:hasChemicalInfo ?i . ?i app:hasChemCode ?c }} OFFSET {}",
                    i % 7
                ),
            }
        })
        .collect()
}

/// Generate a request stream. Query ranks are drawn from a Zipf
/// distribution (rank 1 most popular); roles are drawn uniformly.
pub fn generate_requests(config: &RequestConfig) -> Vec<Request> {
    assert!(!config.roles.is_empty(), "need at least one role");
    assert!(config.distinct_queries > 0, "need at least one query");
    let pool = query_pool(config.distinct_queries);
    let cdf = zipf_cdf(config.distinct_queries, config.zipf_s);
    let mut rng = StdRng::seed_from_u64(config.seed);
    (0..config.count)
        .map(|_| {
            let u: f64 = rng.gen();
            let rank = cdf.partition_point(|&c| c < u).min(pool.len() - 1);
            Request {
                role: config.roles[rng.gen_range(0..config.roles.len())].clone(),
                query: pool[rank].clone(),
            }
        })
        .collect()
}

/// Cumulative distribution over ranks 1..=n with exponent `s`.
fn zipf_cdf(n: usize, s: f64) -> Vec<f64> {
    let weights: Vec<f64> = (1..=n).map(|k| 1.0 / (k as f64).powf(s)).collect();
    let total: f64 = weights.iter().sum();
    let mut acc = 0.0;
    weights
        .iter()
        .map(|w| {
            acc += w / total;
            acc
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn deterministic_per_seed() {
        let c = RequestConfig {
            count: 50,
            ..Default::default()
        };
        assert_eq!(generate_requests(&c), generate_requests(&c));
    }

    #[test]
    fn zipf_skew_concentrates_mass() {
        let skewed = RequestConfig {
            count: 5000,
            distinct_queries: 100,
            zipf_s: 1.2,
            ..Default::default()
        };
        let uniform = RequestConfig {
            zipf_s: 0.0,
            ..skewed.clone()
        };
        let top_share = |reqs: &[Request]| {
            let mut counts: HashMap<&str, usize> = HashMap::new();
            for r in reqs {
                *counts.entry(r.query.as_str()).or_default() += 1;
            }
            let max = counts.values().max().copied().unwrap_or(0);
            max as f64 / reqs.len() as f64
        };
        let s = top_share(&generate_requests(&skewed));
        let u = top_share(&generate_requests(&uniform));
        assert!(s > 2.0 * u, "skewed top share {s} vs uniform {u}");
        assert!(s > 0.15, "rank-1 should dominate: {s}");
    }

    #[test]
    fn all_roles_appear() {
        let reqs = generate_requests(&RequestConfig {
            count: 300,
            ..Default::default()
        });
        for role in RequestConfig::default().roles {
            assert!(reqs.iter().any(|r| r.role == role), "missing {role}");
        }
    }

    #[test]
    fn queries_come_from_the_pool() {
        let c = RequestConfig {
            count: 100,
            distinct_queries: 10,
            ..Default::default()
        };
        let pool = query_pool(10);
        for r in generate_requests(&c) {
            assert!(pool.contains(&r.query));
        }
    }

    #[test]
    fn pool_queries_parse() {
        for q in query_pool(12) {
            assert!(
                grdf_query::parser::parse_query(&q).is_ok(),
                "unparseable template: {q}"
            );
        }
    }

    #[test]
    fn cdf_is_monotone_and_complete() {
        let cdf = zipf_cdf(10, 1.0);
        assert!((cdf.last().unwrap() - 1.0).abs() < 1e-12);
        assert!(cdf.windows(2).all(|w| w[0] <= w[1]));
    }
}
