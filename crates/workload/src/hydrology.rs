//! Synthetic hydrology: stream centerlines in the List 6 shape.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use grdf_feature::feature::{Feature, FeatureCollection};
use grdf_geometry::coord::Coord;
use grdf_geometry::crs::TX83_NCF;
use grdf_geometry::primitives::LineString;

/// Configuration for the hydrology generator.
#[derive(Debug, Clone)]
pub struct HydrologyConfig {
    /// Number of stream features.
    pub streams: usize,
    /// Vertices per stream centerline.
    pub vertices_per_stream: usize,
    /// RNG seed (generation is deterministic per seed).
    pub seed: u64,
    /// Southwest corner of the study area (TX83-NCF-like units).
    pub origin: Coord,
    /// Side length of the square study area.
    pub extent: f64,
}

impl Default for HydrologyConfig {
    fn default() -> Self {
        // Coordinates in the magnitude range of the paper's List 6 sample.
        HydrologyConfig {
            streams: 100,
            vertices_per_stream: 12,
            seed: 42,
            origin: Coord::xy(2_500_000.0, 7_050_000.0),
            extent: 100_000.0,
        }
    }
}

/// Generate a stream network. Each feature is typed `Stream`, carries
/// `hasObjectID` and `hasStreamName`, a `LineString` centerline in
/// [`TX83_NCF`], and `flowsInto` links forming a forest of confluences
/// (usable by transitive-property reasoning).
pub fn generate_hydrology(config: &HydrologyConfig) -> FeatureCollection {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut fc = FeatureCollection::new();
    for i in 0..config.streams {
        let object_id = 10_000 + i as i64;
        let mut f = Feature::new(
            &format!("http://grdf.org/app#HYDRO_STREAMS_line.{object_id}"),
            "Stream",
        );
        f.set_property("hasObjectID", object_id);
        f.set_property("hasStreamName", stream_name(&mut rng, i).as_str());
        f.srs_name = Some(TX83_NCF.to_string());

        // Random-walk centerline drifting roughly north-east (so networks
        // look like a drainage, not noise).
        let mut x = config.origin.x + rng.gen::<f64>() * config.extent;
        let mut y = config.origin.y + rng.gen::<f64>() * config.extent;
        let mut coords = Vec::with_capacity(config.vertices_per_stream);
        coords.push(Coord::xy(x, y));
        for _ in 1..config.vertices_per_stream.max(2) {
            x += rng.gen_range(50.0..500.0);
            y += rng.gen_range(-200.0..400.0);
            coords.push(Coord::xy(x, y));
        }
        f.set_geometry(LineString::new(coords).expect(">= 2 vertices").into());

        // Most streams flow into an earlier one (confluence forest).
        if i > 0 && rng.gen_bool(0.8) {
            let target = rng.gen_range(0..i);
            f.set_property(
                "flowsInto",
                grdf_feature::value::Value::Uri(format!(
                    "http://grdf.org/app#HYDRO_STREAMS_line.{}",
                    10_000 + target as i64
                )),
            );
        }
        fc.push(f);
    }
    fc
}

fn stream_name(rng: &mut StdRng, idx: usize) -> String {
    const FIRST: &[&str] = &[
        "White Rock",
        "Trinity",
        "Duck",
        "Bear",
        "Cedar",
        "Mountain",
        "Sand",
        "Turtle",
        "Rowlett",
        "Spring",
        "Mustang",
        "Prairie",
    ];
    const KIND: &[&str] = &["Creek", "Branch", "Fork", "Bayou", "River", "Slough"];
    format!(
        "{} {} {}",
        FIRST[rng.gen_range(0..FIRST.len())],
        KIND[rng.gen_range(0..KIND.len())],
        idx
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use grdf_geometry::geometry::Geometry;

    #[test]
    fn deterministic_per_seed() {
        let c = HydrologyConfig {
            streams: 10,
            ..Default::default()
        };
        let a = generate_hydrology(&c);
        let b = generate_hydrology(&c);
        assert_eq!(a, b);
        let c2 = HydrologyConfig { seed: 7, ..c };
        assert_ne!(generate_hydrology(&c2), a);
    }

    #[test]
    fn features_have_list6_shape() {
        let fc = generate_hydrology(&HydrologyConfig {
            streams: 5,
            ..Default::default()
        });
        assert_eq!(fc.len(), 5);
        for f in &fc.features {
            assert_eq!(f.feature_type, "Stream");
            assert!(f.property("hasObjectID").is_some());
            assert_eq!(f.srs_name.as_deref(), Some(TX83_NCF));
            match f.geometry.as_ref().unwrap() {
                Geometry::LineString(l) => {
                    assert!(l.coords.len() >= 2);
                    // Coordinates in the List 6 magnitude range.
                    assert!(l.coords[0].x > 2_000_000.0);
                    assert!(l.coords[0].y > 7_000_000.0);
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn flows_into_references_existing_streams() {
        let fc = generate_hydrology(&HydrologyConfig {
            streams: 50,
            ..Default::default()
        });
        let mut links = 0;
        for f in &fc.features {
            if let Some(v) = f.property("flowsInto") {
                links += 1;
                let target = v.as_str().unwrap();
                assert!(fc.find(target).is_some(), "dangling flowsInto {target}");
            }
        }
        assert!(links > 20, "most streams link somewhere, got {links}");
    }

    #[test]
    fn names_are_readable() {
        let fc = generate_hydrology(&HydrologyConfig {
            streams: 3,
            ..Default::default()
        });
        let n = fc.features[0]
            .property("hasStreamName")
            .unwrap()
            .as_str()
            .unwrap();
        assert!(n.contains(' '), "{n}");
    }
}
