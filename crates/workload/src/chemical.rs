//! Synthetic chemical-facility repository in the List 7 shape.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use grdf_feature::bounding::BoundingShape;
use grdf_feature::feature::{Feature, FeatureCollection};
use grdf_feature::value::Value;
use grdf_geometry::coord::Coord;
use grdf_geometry::crs::TX83_NCF;
use grdf_geometry::envelope::Envelope;

/// Configuration for the chemical-site generator.
#[derive(Debug, Clone)]
pub struct ChemicalConfig {
    /// Number of chemical sites.
    pub sites: usize,
    /// Chemicals stored per site (each becomes a linked ChemInfo record).
    pub chemicals_per_site: usize,
    /// Fraction of sites duplicated under a second IRI (same `hasSiteId`) —
    /// cross-source records that `owl:sameAs` reasoning should identify.
    pub duplicate_fraction: f64,
    /// Inventory readings (`hasReading` literals) per ChemInfo record —
    /// the density knob for large-scale benchmarks. Zero (the default)
    /// keeps the original List-7 shape.
    pub readings_per_chemical: usize,
    /// RNG seed.
    pub seed: u64,
    /// Southwest corner of the area sites are placed in.
    pub origin: Coord,
    /// Side length of the square area.
    pub extent: f64,
}

impl Default for ChemicalConfig {
    fn default() -> Self {
        ChemicalConfig {
            sites: 50,
            chemicals_per_site: 2,
            duplicate_fraction: 0.1,
            readings_per_chemical: 0,
            seed: 42,
            origin: Coord::xy(2_500_000.0, 7_050_000.0),
            extent: 100_000.0,
        }
    }
}

const CHEMICALS: &[(&str, &str)] = &[
    ("Sulfuric Acid", "121NR"),
    ("Chlorine", "017CL"),
    ("Ammonia", "007NH"),
    ("Benzene", "071BZ"),
    ("Toluene", "108TL"),
    ("Hydrochloric Acid", "647HA"),
    ("Sodium Hydroxide", "310SH"),
    ("Methanol", "067ME"),
];

const COMPANY_A: &[&str] = &[
    "North Texas",
    "Trinity",
    "Lone Star",
    "Metroplex",
    "Red River",
    "Blackland",
    "Caddo",
];
const COMPANY_B: &[&str] = &[
    "Energy",
    "Chemical",
    "Refining",
    "Polymers",
    "Industries",
    "Processing",
    "Solutions",
];

/// Generate chemical sites plus their linked `ChemInfo` features.
/// `duplicate_fraction` of the sites get a *second* record (different IRI,
/// same zero-padded `hasSiteId`) mimicking overlapping state repositories.
pub fn generate_chemical_sites(config: &ChemicalConfig) -> FeatureCollection {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut fc = FeatureCollection::new();
    for i in 0..config.sites {
        let site_id = format!("{:06}", 4000 + i);
        let name = format!(
            "{} {}",
            COMPANY_A[rng.gen_range(0..COMPANY_A.len())],
            COMPANY_B[rng.gen_range(0..COMPANY_B.len())]
        );
        let cx = config.origin.x + rng.gen::<f64>() * config.extent;
        let cy = config.origin.y + rng.gen::<f64>() * config.extent;
        let half = rng.gen_range(100.0..800.0);

        let site_iri = format!("http://grdf.org/app#ChemSite.{site_id}");
        let mut site = build_site(&site_iri, &name, &site_id, cx, cy, half);
        for c in 0..config.chemicals_per_site {
            let (chem_name, chem_code) = CHEMICALS[rng.gen_range(0..CHEMICALS.len())];
            let info_iri = format!("{site_iri}/chem{c}");
            site.set_property("hasChemicalInfo", Value::Uri(info_iri.clone()));
            let mut info = Feature::new(&info_iri, "ChemInfo");
            info.set_property("hasChemName", chem_name);
            info.set_property("hasChemCode", chem_code);
            for r in 0..config.readings_per_chemical {
                // Monthly inventory level in gallons: deterministic noise
                // around a per-chemical base quantity.
                let qty = 500.0 + rng.gen::<f64>() * 9_500.0;
                info.set_property(
                    "hasReading",
                    format!("{}:{qty:.1}", 202_401 + r as u64).as_str(),
                );
            }
            fc.push(info);
        }
        fc.push(site);

        if rng.gen_bool(config.duplicate_fraction) {
            // A second state's record of the same facility: new IRI, same
            // site id, slightly different name casing.
            let dup_iri = format!("http://grdf.org/app#StateB.ChemSite.{site_id}");
            let mut dup = build_site(&dup_iri, &name.to_uppercase(), &site_id, cx, cy, half);
            dup.set_property("sourceState", "B");
            fc.push(dup);
        }
    }
    fc
}

fn build_site(iri: &str, name: &str, site_id: &str, cx: f64, cy: f64, half: f64) -> Feature {
    let mut site = Feature::new(iri, "ChemSite");
    site.set_property("hasSiteName", name);
    site.set_property("hasSiteId", site_id);
    site.set_property(
        "hasContactPhone",
        format!("972-555-{:04}", site_id.len() * 817 % 10_000).as_str(),
    );
    site.srs_name = Some(TX83_NCF.to_string());
    site.bounded_by = BoundingShape::Envelope(Envelope::new(
        Coord::xy(cx - half, cy - half),
        Coord::xy(cx + half, cy + half),
    ));
    site
}

/// Turtle alignment axioms: `hasSiteId` inverse-functional (the schema
/// knowledge that lets the reasoner identify duplicate records) plus
/// declarations for the `app:` vocabulary the generators emit, so the
/// incident graphs hold up under `grdf-lint`'s referential pass.
pub fn alignment_axioms() -> &'static str {
    r"@prefix app: <http://grdf.org/app#> .
@prefix owl: <http://www.w3.org/2002/07/owl#> .
@prefix grdf: <http://grdf.org/ontology#> .
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
app:ChemSite a owl:Class ; rdfs:subClassOf grdf:Feature .
app:Stream a owl:Class ; rdfs:subClassOf grdf:Feature .
app:ChemInfo a owl:Class .
app:hasSiteId a owl:InverseFunctionalProperty .
app:flowsInto a owl:TransitiveProperty .
app:hasChemicalInfo a owl:ObjectProperty .
app:hasChemCode a owl:DatatypeProperty .
app:hasChemName a owl:DatatypeProperty .
app:hasContactPhone a owl:DatatypeProperty .
app:hasObjectID a owl:DatatypeProperty .
app:hasReading a owl:DatatypeProperty .
app:hasSiteName a owl:DatatypeProperty .
app:hasStreamName a owl:DatatypeProperty .
app:sourceState a owl:DatatypeProperty .
"
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_sized() {
        let c = ChemicalConfig {
            sites: 20,
            ..Default::default()
        };
        let a = generate_chemical_sites(&c);
        assert_eq!(a, generate_chemical_sites(&c));
        // sites + 2 ChemInfo per site + duplicates.
        assert!(a.len() >= 20 * 3);
    }

    #[test]
    fn list7_shape() {
        let fc = generate_chemical_sites(&ChemicalConfig {
            sites: 5,
            ..Default::default()
        });
        let sites = fc.of_type("ChemSite");
        assert!(!sites.is_empty());
        for s in &sites {
            assert!(s.property("hasSiteName").is_some());
            let id = s.property("hasSiteId").unwrap().as_str().unwrap();
            assert_eq!(id.len(), 6, "zero-padded id, got {id}");
            assert!(s.bounded_by.envelope().is_some(), "BoundedBy per List 7");
        }
        // ChemInfo records are linked.
        let site = sites
            .iter()
            .find(|s| s.property("hasChemicalInfo").is_some())
            .unwrap();
        let info_iri = site.property("hasChemicalInfo").unwrap().as_str().unwrap();
        let info = fc.find(info_iri).unwrap();
        assert!(info.property("hasChemCode").is_some());
    }

    #[test]
    fn duplicates_share_site_ids() {
        let fc = generate_chemical_sites(&ChemicalConfig {
            sites: 100,
            duplicate_fraction: 0.5,
            ..Default::default()
        });
        let dups: Vec<_> = fc
            .features
            .iter()
            .filter(|f| f.iri.contains("StateB"))
            .collect();
        assert!(
            dups.len() > 20,
            "expected many duplicates, got {}",
            dups.len()
        );
        for d in dups {
            let id = d.property("hasSiteId").unwrap().as_str().unwrap();
            let original = fc.features.iter().find(|f| {
                !f.iri.contains("StateB")
                    && f.property("hasSiteId").and_then(|v| v.as_str()) == Some(id)
            });
            assert!(original.is_some(), "duplicate without original: {id}");
        }
    }

    #[test]
    fn zero_duplicate_fraction() {
        let fc = generate_chemical_sites(&ChemicalConfig {
            sites: 30,
            duplicate_fraction: 0.0,
            ..Default::default()
        });
        assert!(fc.features.iter().all(|f| !f.iri.contains("StateB")));
    }

    #[test]
    fn alignment_axioms_parse() {
        let g = grdf_rdf::turtle::parse(alignment_axioms()).unwrap();
        assert!(g.len() >= 4);
    }
}
