//! Synthetic workload generators.
//!
//! The paper's evaluation scenario (§7.1) uses two proprietary datasets:
//! North Central Texas hydrology topology from the NCTCOG clearinghouse
//! (List 6) and a 20-state chemical-facility repository behind erplan.net
//! (List 7). Neither is publicly available, so — per the reproduction's
//! substitution rule (DESIGN.md §2) — this crate generates datasets with
//! the same schema and statistical shape:
//!
//! * [`hydrology`] — stream networks: seeded random-walk polylines in
//!   TX83-NCF-like projected coordinates with `hasObjectID` attributes and
//!   `flowsInto` connectivity.
//! * [`chemical`] — chemical sites: names, zero-padded site ids, contact
//!   data, bounded-by extents, and linked `ChemInfo` records (List 7's
//!   shape), with a controlled fraction of cross-source duplicates for
//!   `owl:sameAs` discovery.
//! * [`requests`] — Zipf-skewed role/query request streams for the G-SACS
//!   cache experiments (E6).
//! * [`sensors`] — water-quality observation series and temperature
//!   coverages (§3.3.5/§3.3.8 types as live data).
//! * [`incident`] — the assembled §7.1 incident scenario: merged dataset,
//!   store, the three roles, and both policy encodings (shared by the
//!   benchmarks, `figures`, and `grdf-cli`'s policy analysis).
//!
//! All generators are deterministic under a caller-supplied seed.

pub mod chemical;
pub mod hydrology;
pub mod incident;
pub mod requests;
pub mod sensors;

pub use chemical::{generate_chemical_sites, ChemicalConfig};
pub use hydrology::{generate_hydrology, HydrologyConfig};
pub use incident::{
    incident_graph, incident_graph_scaled, incident_store, incident_store_scaled,
    scenario_policies, sensitive_properties, xacml_policies,
};
pub use requests::{generate_requests, RequestConfig};
pub use sensors::{generate_sensors, SensorConfig, SensorData};
