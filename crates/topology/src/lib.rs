//! The GRDF topology model (paper §6, Fig. 2).
//!
//! "There are many GIS modelling operations that do not assume a
//! pre-requisite of the existence of coordinates; instead the connectivity
//! information is enough." This crate provides exactly that: a coordinate-
//! free arena of topology primitives (Node, Edge, Face, TopoSolid) with
//! connectivity queries, the aggregate constructs that are *isomorphic* to
//! geometric forms (TopoCurve ≅ Curve, TopoSurface ≅ Surface, TopoVolume ≅
//! Solid, plus TopoComplex), and *realization*: binding primitives to
//! concrete geometry ("a node is modelled as a point, an edge as a curve, a
//! face as a surface, a TopoSolid as solid") with consistency checking.
//!
//! Structural rules from paper List 5 are enforced at construction time:
//! a `Face` is bounded by ≥ 1 directed edges forming a closed loop, bounds
//! at most 1 realized surface, and belongs to at most 2 TopoSolids.
//!
//! # Example
//!
//! ```
//! use grdf_topology::model::TopologyModel;
//!
//! let mut m = TopologyModel::new();
//! let a = m.add_node();
//! let b = m.add_node();
//! let e = m.add_edge(a, b).unwrap();
//! assert_eq!(m.edges_at(a), vec![e]);
//! assert!(m.connected(a, b));
//! ```

pub mod constructs;
pub mod model;
pub mod rdf_codec;
pub mod realize;

pub use constructs::{TopoComplex, TopoCurve, TopoSurface, TopoVolume};
pub use model::{DirectedEdge, EdgeId, FaceId, NodeId, SolidId, TopologyError, TopologyModel};
pub use rdf_codec::{decode_topology, encode_topology};
pub use realize::{Realization, RealizationError};
