//! Realization: binding topology primitives to concrete geometry.
//!
//! "Topological constructions such as nodes or faces are said to be
//! *realized* when they are modelled in terms of concrete geometric forms.
//! A node is modelled as a point, an edge is modelled as a curve, a face is
//! modelled as a surface, a TopoSolid is modelled as solid" (paper §6).
//!
//! A [`Realization`] is a partial map from primitive ids to geometry; it
//! validates geometric consistency against the topology (an edge's curve
//! must run between its nodes' points) and enforces List 5's
//! `maxCardinality 1` on `hasSurface`.

use std::collections::HashMap;
use std::fmt;

use grdf_geometry::coord::Coord;
use grdf_geometry::primitives::{Curve, Point, Solid, Surface};

use crate::model::{EdgeId, FaceId, NodeId, SolidId, TopologyModel};

/// Tolerance for matching realized endpoints to node points.
const EPS: f64 = 1e-6;

/// Errors raised while realizing topology.
#[derive(Debug, Clone, PartialEq)]
pub enum RealizationError {
    /// The primitive does not exist in the model.
    UnknownPrimitive(String),
    /// An edge realization's endpoints do not coincide with its nodes'
    /// realized points.
    EndpointMismatch {
        /// The offending edge.
        edge: EdgeId,
    },
    /// A node an edge depends on has not been realized yet.
    MissingNodeRealization(NodeId),
    /// A face already has a surface — List 5's `maxCardinality 1` on
    /// `hasSurface`.
    FaceAlreadyRealized(FaceId),
}

impl fmt::Display for RealizationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RealizationError::UnknownPrimitive(w) => write!(f, "unknown primitive: {w}"),
            RealizationError::EndpointMismatch { edge } => {
                write!(f, "curve endpoints do not match nodes of edge {edge:?}")
            }
            RealizationError::MissingNodeRealization(n) => {
                write!(f, "node {n:?} must be realized before its edges")
            }
            RealizationError::FaceAlreadyRealized(id) => {
                write!(f, "face {id:?} already has a surface (maxCardinality 1)")
            }
        }
    }
}

impl std::error::Error for RealizationError {}

/// A (partial) geometric realization of a topology model.
#[derive(Debug, Default)]
pub struct Realization {
    nodes: HashMap<NodeId, Point>,
    edges: HashMap<EdgeId, Curve>,
    faces: HashMap<FaceId, Surface>,
    solids: HashMap<SolidId, Solid>,
}

impl Realization {
    /// Empty realization.
    pub fn new() -> Realization {
        Realization::default()
    }

    /// Realize a node as a point.
    pub fn realize_node(
        &mut self,
        model: &TopologyModel,
        node: NodeId,
        point: Point,
    ) -> Result<(), RealizationError> {
        if !model.has_node(node) {
            return Err(RealizationError::UnknownPrimitive("node".into()));
        }
        self.nodes.insert(node, point);
        Ok(())
    }

    /// Realize an edge as a curve; both endpoint nodes must be realized and
    /// the curve must run from the start node's point to the end node's.
    pub fn realize_edge(
        &mut self,
        model: &TopologyModel,
        edge: EdgeId,
        curve: Curve,
    ) -> Result<(), RealizationError> {
        let (s, e) = model
            .edge_nodes(edge)
            .ok_or_else(|| RealizationError::UnknownPrimitive("edge".into()))?;
        let sp = self
            .nodes
            .get(&s)
            .ok_or(RealizationError::MissingNodeRealization(s))?;
        let ep = self
            .nodes
            .get(&e)
            .ok_or(RealizationError::MissingNodeRealization(e))?;
        if !curve.start().approx_eq(&sp.coord, EPS) || !curve.end().approx_eq(&ep.coord, EPS) {
            return Err(RealizationError::EndpointMismatch { edge });
        }
        self.edges.insert(edge, curve);
        Ok(())
    }

    /// Realize a face as a surface; a face can carry at most one surface.
    pub fn realize_face(
        &mut self,
        model: &TopologyModel,
        face: FaceId,
        surface: Surface,
    ) -> Result<(), RealizationError> {
        if model.face_boundary(face).is_none() {
            return Err(RealizationError::UnknownPrimitive("face".into()));
        }
        if self.faces.contains_key(&face) {
            return Err(RealizationError::FaceAlreadyRealized(face));
        }
        self.faces.insert(face, surface);
        Ok(())
    }

    /// Realize a TopoSolid as a solid.
    pub fn realize_solid(
        &mut self,
        model: &TopologyModel,
        solid: SolidId,
        geometry: Solid,
    ) -> Result<(), RealizationError> {
        if model.solid_shell(solid).is_none() {
            return Err(RealizationError::UnknownPrimitive("solid".into()));
        }
        self.solids.insert(solid, geometry);
        Ok(())
    }

    /// The realized point of a node.
    pub fn node_point(&self, n: NodeId) -> Option<&Point> {
        self.nodes.get(&n)
    }

    /// The realized curve of an edge.
    pub fn edge_curve(&self, e: EdgeId) -> Option<&Curve> {
        self.edges.get(&e)
    }

    /// The realized surface of a face.
    pub fn face_surface(&self, f: FaceId) -> Option<&Surface> {
        self.faces.get(&f)
    }

    /// The realized solid geometry.
    pub fn solid_geometry(&self, s: SolidId) -> Option<&Solid> {
        self.solids.get(&s)
    }

    /// How many primitives have been realized.
    pub fn realized_count(&self) -> usize {
        self.nodes.len() + self.edges.len() + self.faces.len() + self.solids.len()
    }

    /// Total length of all realized edges — the kind of metric computation
    /// that *requires* realization ("one cannot perform math on a topology
    /// instance", §3.3.3).
    pub fn total_edge_length(&self) -> f64 {
        self.edges.values().map(Curve::length).sum()
    }

    /// Realize every node/edge of a model from a coordinate assignment,
    /// connecting consecutive nodes with straight curves. Convenience for
    /// workloads and tests.
    pub fn realize_graph_straight(
        model: &TopologyModel,
        coords: &HashMap<NodeId, Coord>,
    ) -> Result<Realization, RealizationError> {
        use grdf_geometry::primitives::LineString;
        let mut r = Realization::new();
        for (n, c) in coords {
            r.realize_node(model, *n, Point::at(*c))?;
        }
        for i in 0..model.edge_count() {
            let e = EdgeId(i as u32);
            let (s, t) = model.edge_nodes(e).expect("edge exists");
            let (Some(sp), Some(tp)) = (coords.get(&s), coords.get(&t)) else {
                return Err(RealizationError::MissingNodeRealization(s));
            };
            let line = LineString::new(vec![*sp, *tp]).expect("two points");
            r.realize_edge(model, e, Curve::from_linestring(line))?;
        }
        Ok(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grdf_geometry::primitives::{LineString, Polygon};

    fn straight(a: Coord, b: Coord) -> Curve {
        Curve::from_linestring(LineString::new(vec![a, b]).unwrap())
    }

    #[test]
    fn node_then_edge_realization() {
        let mut m = TopologyModel::new();
        let a = m.add_node();
        let b = m.add_node();
        let e = m.add_edge(a, b).unwrap();
        let mut r = Realization::new();
        r.realize_node(&m, a, Point::new(0.0, 0.0)).unwrap();
        r.realize_node(&m, b, Point::new(3.0, 4.0)).unwrap();
        r.realize_edge(&m, e, straight(Coord::xy(0.0, 0.0), Coord::xy(3.0, 4.0)))
            .unwrap();
        assert_eq!(r.total_edge_length(), 5.0);
        assert_eq!(r.realized_count(), 3);
    }

    #[test]
    fn edge_before_nodes_fails() {
        let mut m = TopologyModel::new();
        let a = m.add_node();
        let b = m.add_node();
        let e = m.add_edge(a, b).unwrap();
        let mut r = Realization::new();
        let err = r
            .realize_edge(&m, e, straight(Coord::xy(0.0, 0.0), Coord::xy(1.0, 1.0)))
            .unwrap_err();
        assert_eq!(err, RealizationError::MissingNodeRealization(a));
    }

    #[test]
    fn endpoint_mismatch_rejected() {
        let mut m = TopologyModel::new();
        let a = m.add_node();
        let b = m.add_node();
        let e = m.add_edge(a, b).unwrap();
        let mut r = Realization::new();
        r.realize_node(&m, a, Point::new(0.0, 0.0)).unwrap();
        r.realize_node(&m, b, Point::new(1.0, 1.0)).unwrap();
        let err = r
            .realize_edge(&m, e, straight(Coord::xy(0.0, 0.0), Coord::xy(9.0, 9.0)))
            .unwrap_err();
        assert_eq!(err, RealizationError::EndpointMismatch { edge: e });
    }

    #[test]
    fn face_surface_cardinality_one() {
        let mut m = TopologyModel::new();
        let a = m.add_node();
        let b = m.add_node();
        let c = m.add_node();
        let e0 = m.add_edge(a, b).unwrap();
        let e1 = m.add_edge(b, c).unwrap();
        let e2 = m.add_edge(c, a).unwrap();
        let f = m
            .add_face(vec![
                crate::model::DirectedEdge::forward(e0),
                crate::model::DirectedEdge::forward(e1),
                crate::model::DirectedEdge::forward(e2),
            ])
            .unwrap();
        let surf =
            Surface::from_polygon(Polygon::rectangle(Coord::xy(0.0, 0.0), Coord::xy(1.0, 1.0)));
        let mut r = Realization::new();
        r.realize_face(&m, f, surf.clone()).unwrap();
        let err = r.realize_face(&m, f, surf).unwrap_err();
        assert_eq!(err, RealizationError::FaceAlreadyRealized(f));
    }

    #[test]
    fn unknown_primitives_rejected() {
        let m = TopologyModel::new();
        let mut r = Realization::new();
        assert!(r.realize_node(&m, NodeId(0), Point::new(0.0, 0.0)).is_err());
        assert!(r
            .realize_face(
                &m,
                FaceId(0),
                Surface::from_polygon(Polygon::rectangle(Coord::xy(0.0, 0.0), Coord::xy(1.0, 1.0)))
            )
            .is_err());
        assert!(r
            .realize_solid(
                &m,
                SolidId(0),
                Solid::extrude(
                    Polygon::rectangle(Coord::xy(0.0, 0.0), Coord::xy(1.0, 1.0)),
                    1.0
                )
            )
            .is_err());
    }

    #[test]
    fn bulk_straight_realization() {
        let mut m = TopologyModel::new();
        let ns: Vec<NodeId> = (0..4).map(|_| m.add_node()).collect();
        m.add_edge(ns[0], ns[1]).unwrap();
        m.add_edge(ns[1], ns[2]).unwrap();
        m.add_edge(ns[2], ns[3]).unwrap();
        let coords: HashMap<NodeId, Coord> = ns
            .iter()
            .enumerate()
            .map(|(i, n)| (*n, Coord::xy(i as f64, 0.0)))
            .collect();
        let r = Realization::realize_graph_straight(&m, &coords).unwrap();
        assert_eq!(r.total_edge_length(), 3.0);
        assert_eq!(r.realized_count(), 7);
    }
}
