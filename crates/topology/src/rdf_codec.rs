//! Encoding a [`TopologyModel`] as GRDF triples and decoding it back.
//!
//! This puts Fig. 2 on the wire: nodes, edges (with `grdf:startNode` /
//! `grdf:endNode`), faces (with `grdf:hasEdge` co-boundary links and an
//! ordered `grdf:hasBoundary` list preserving edge direction), and
//! TopoSolids (via the List 5 `grdf:hasTopoSolid` property on faces).
//! `grdf:connectedTo` links between adjacent nodes are also emitted so the
//! OWL reasoner's `reachableFrom` rules apply to encoded models.

use grdf_rdf::graph::Graph;
use grdf_rdf::term::Term;
use grdf_rdf::vocab::{grdf as ns, rdf};

use crate::model::{DirectedEdge, EdgeId, FaceId, NodeId, SolidId, TopologyModel};

fn node_iri(base: &str, n: NodeId) -> String {
    format!("{base}node{}", n.0)
}

fn edge_iri(base: &str, e: EdgeId) -> String {
    format!("{base}edge{}", e.0)
}

fn face_iri(base: &str, f: FaceId) -> String {
    format!("{base}face{}", f.0)
}

fn solid_iri(base: &str, s: SolidId) -> String {
    format!("{base}solid{}", s.0)
}

/// Encode the whole model under the IRI prefix `base` (e.g. `urn:topo#`).
/// Returns the number of triples added.
pub fn encode_topology(graph: &mut Graph, base: &str, model: &TopologyModel) -> usize {
    let before = graph.len();
    let ty = Term::iri(rdf::TYPE);

    for i in 0..model.node_count() {
        let n = Term::iri(&node_iri(base, NodeId(i as u32)));
        graph.add(n, ty.clone(), Term::iri(&ns::iri("Node")));
    }
    for i in 0..model.edge_count() {
        let id = EdgeId(i as u32);
        let (s, e) = model.edge_nodes(id).expect("edge exists");
        let edge = Term::iri(&edge_iri(base, id));
        graph.add(edge.clone(), ty.clone(), Term::iri(&ns::iri("Edge")));
        graph.add(
            edge.clone(),
            Term::iri(&ns::iri("startNode")),
            Term::iri(&node_iri(base, s)),
        );
        graph.add(
            edge,
            Term::iri(&ns::iri("endNode")),
            Term::iri(&node_iri(base, e)),
        );
        // Adjacency for connectivity reasoning.
        graph.add(
            Term::iri(&node_iri(base, s)),
            Term::iri(&ns::iri("connectedTo")),
            Term::iri(&node_iri(base, e)),
        );
    }
    for i in 0..model.face_count() {
        let id = FaceId(i as u32);
        let face = Term::iri(&face_iri(base, id));
        graph.add(face.clone(), ty.clone(), Term::iri(&ns::iri("Face")));
        let boundary = model.face_boundary(id).expect("face exists");
        let mut list_items = Vec::with_capacity(boundary.len());
        for d in boundary {
            let edge = Term::iri(&edge_iri(base, d.edge));
            graph.add(face.clone(), Term::iri(&ns::iri("hasEdge")), edge.clone());
            // One blank node per directed use, preserving order + direction.
            let use_node = graph.fresh_blank();
            graph.add(use_node.clone(), Term::iri(&ns::iri("viaEdge")), edge);
            graph.add(
                use_node.clone(),
                Term::iri(&ns::iri("isForward")),
                Term::boolean(d.forward),
            );
            list_items.push(use_node);
        }
        let head = graph.write_list(&list_items);
        graph.add(face, Term::iri(&ns::iri("hasBoundary")), head);
    }
    for i in 0..model.solid_count() {
        let id = SolidId(i as u32);
        let solid = Term::iri(&solid_iri(base, id));
        graph.add(solid.clone(), ty.clone(), Term::iri(&ns::iri("TopoSolid")));
        for f in model.solid_shell(id).expect("solid exists") {
            // List 5's co-boundary property: Face → TopoSolid.
            graph.add(
                Term::iri(&face_iri(base, *f)),
                Term::iri(&ns::iri("hasTopoSolid")),
                solid.clone(),
            );
        }
    }
    graph.len() - before
}

/// Decode a model previously written by [`encode_topology`] under `base`.
/// Returns `None` when the triples are malformed (missing endpoints,
/// broken boundary lists, or List 5 violations).
pub fn decode_topology(graph: &Graph, base: &str) -> Option<TopologyModel> {
    let ty = Term::iri(rdf::TYPE);
    let mut model = TopologyModel::new();

    // Nodes, in index order (IRIs encode the ids).
    let mut node_count = 0usize;
    while graph.has(
        &Term::iri(&node_iri(base, NodeId(node_count as u32))),
        &ty,
        &Term::iri(&ns::iri("Node")),
    ) {
        model.add_node();
        node_count += 1;
    }

    // Edges.
    let mut edge_count = 0usize;
    loop {
        let id = EdgeId(edge_count as u32);
        let edge = Term::iri(&edge_iri(base, id));
        if !graph.has(&edge, &ty, &Term::iri(&ns::iri("Edge"))) {
            break;
        }
        let s = parse_id(
            graph
                .object(&edge, &Term::iri(&ns::iri("startNode")))?
                .as_iri()?,
            base,
            "node",
        )?;
        let e = parse_id(
            graph
                .object(&edge, &Term::iri(&ns::iri("endNode")))?
                .as_iri()?,
            base,
            "node",
        )?;
        model.add_edge(NodeId(s), NodeId(e)).ok()?;
        edge_count += 1;
    }

    // Faces (boundary order + direction from the hasBoundary list).
    let mut face_count = 0usize;
    loop {
        let id = FaceId(face_count as u32);
        let face = Term::iri(&face_iri(base, id));
        if !graph.has(&face, &ty, &Term::iri(&ns::iri("Face"))) {
            break;
        }
        let head = graph.object(&face, &Term::iri(&ns::iri("hasBoundary")))?;
        let uses = graph.read_list(&head)?;
        let mut boundary = Vec::with_capacity(uses.len());
        for u in uses {
            let edge_term = graph.object(&u, &Term::iri(&ns::iri("viaEdge")))?;
            let eid = parse_id(edge_term.as_iri()?, base, "edge")?;
            let forward = graph
                .object(&u, &Term::iri(&ns::iri("isForward")))?
                .as_literal()?
                .as_boolean()?;
            boundary.push(DirectedEdge {
                edge: EdgeId(eid),
                forward,
            });
        }
        model.add_face(boundary).ok()?;
        face_count += 1;
    }

    // Solids from the face→solid co-boundary.
    let mut solids: std::collections::BTreeMap<u32, Vec<FaceId>> =
        std::collections::BTreeMap::new();
    graph.for_each_match(
        None,
        Some(&Term::iri(&ns::iri("hasTopoSolid"))),
        None,
        |t| {
            if let (Some(f), Some(s)) = (
                t.subject.as_iri().and_then(|i| parse_id(i, base, "face")),
                t.object.as_iri().and_then(|i| parse_id(i, base, "solid")),
            ) {
                solids.entry(s).or_default().push(FaceId(f));
            }
        },
    );
    for (_, mut shell) in solids {
        shell.sort();
        shell.dedup();
        model.add_solid(shell).ok()?;
    }
    Some(model)
}

fn parse_id(iri: &str, base: &str, kind: &str) -> Option<u32> {
    iri.strip_prefix(base)?.strip_prefix(kind)?.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_model() -> TopologyModel {
        let mut m = TopologyModel::new();
        let a = m.add_node();
        let b = m.add_node();
        let c = m.add_node();
        let d = m.add_node();
        let ab = m.add_edge(a, b).unwrap();
        let bc = m.add_edge(b, c).unwrap();
        let ca = m.add_edge(c, a).unwrap();
        let bd = m.add_edge(b, d).unwrap();
        let dc = m.add_edge(d, c).unwrap();
        let f1 = m
            .add_face(vec![
                DirectedEdge::forward(ab),
                DirectedEdge::forward(bc),
                DirectedEdge::forward(ca),
            ])
            .unwrap();
        let f2 = m
            .add_face(vec![
                DirectedEdge::forward(bd),
                DirectedEdge::forward(dc),
                DirectedEdge::reverse(bc),
            ])
            .unwrap();
        m.add_solid(vec![f1, f2]).unwrap();
        m
    }

    #[test]
    fn roundtrip_preserves_structure() {
        let m = sample_model();
        let mut g = Graph::new();
        let added = encode_topology(&mut g, "urn:topo#", &m);
        assert!(added > 20);
        let back = decode_topology(&g, "urn:topo#").unwrap();
        assert_eq!(back.node_count(), m.node_count());
        assert_eq!(back.edge_count(), m.edge_count());
        assert_eq!(back.face_count(), m.face_count());
        assert_eq!(back.solid_count(), m.solid_count());
        // Structure, not just counts: same endpoints and boundaries.
        for i in 0..m.edge_count() {
            assert_eq!(
                back.edge_nodes(EdgeId(i as u32)),
                m.edge_nodes(EdgeId(i as u32))
            );
        }
        for i in 0..m.face_count() {
            assert_eq!(
                back.face_boundary(FaceId(i as u32)),
                m.face_boundary(FaceId(i as u32)),
                "face {i} boundary (order + direction)"
            );
        }
        assert_eq!(back.euler_characteristic(), m.euler_characteristic());
        assert!(back.validate().is_ok());
    }

    #[test]
    fn encoded_model_reasons_about_connectivity() {
        // The encoded adjacency + GRDF ontology rules give transitive
        // reachability over the triples.
        let m = sample_model();
        let mut g = Graph::new();
        encode_topology(&mut g, "urn:topo#", &m);
        // Bring in the property characteristics (normally from grdf-core;
        // declared inline here to keep the dependency direction).
        use grdf_rdf::vocab::{owl, rdfs};
        g.add(
            Term::iri(&ns::iri("connectedTo")),
            Term::iri(rdf::TYPE),
            Term::iri(owl::SYMMETRIC_PROPERTY),
        );
        g.add(
            Term::iri(&ns::iri("reachableFrom")),
            Term::iri(rdf::TYPE),
            Term::iri(owl::TRANSITIVE_PROPERTY),
        );
        g.add(
            Term::iri(&ns::iri("connectedTo")),
            Term::iri(rdfs::SUB_PROPERTY_OF),
            Term::iri(&ns::iri("reachableFrom")),
        );
        // A tiny forward-chaining pass from grdf-owl is not available here
        // (no dependency); assert the raw adjacency instead and leave rule
        // application to the integration tests.
        assert!(g.has(
            &Term::iri("urn:topo#node0"),
            &Term::iri(&ns::iri("connectedTo")),
            &Term::iri("urn:topo#node1")
        ));
    }

    #[test]
    fn decode_rejects_corruption() {
        let m = sample_model();
        let mut g = Graph::new();
        encode_topology(&mut g, "urn:topo#", &m);
        // Remove edge0's endNode: edges become undecodable.
        let edge = Term::iri("urn:topo#edge0");
        let end = g.object(&edge, &Term::iri(&ns::iri("endNode"))).unwrap();
        g.remove(&grdf_rdf::term::Triple::new(
            edge,
            Term::iri(&ns::iri("endNode")),
            end,
        ));
        assert!(decode_topology(&g, "urn:topo#").is_none());
    }

    #[test]
    fn empty_model_roundtrips() {
        let m = TopologyModel::new();
        let mut g = Graph::new();
        assert_eq!(encode_topology(&mut g, "urn:topo#", &m), 0);
        let back = decode_topology(&g, "urn:topo#").unwrap();
        assert_eq!(back.node_count(), 0);
    }

    #[test]
    fn distinct_bases_coexist_in_one_graph() {
        let m = sample_model();
        let mut g = Graph::new();
        encode_topology(&mut g, "urn:a#", &m);
        encode_topology(&mut g, "urn:b#", &m);
        let a = decode_topology(&g, "urn:a#").unwrap();
        let b = decode_topology(&g, "urn:b#").unwrap();
        assert_eq!(a.edge_count(), b.edge_count());
    }
}
