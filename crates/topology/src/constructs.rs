//! The higher topology constructs of Fig. 2: TopoCurve, TopoSurface,
//! TopoVolume, and TopoComplex.
//!
//! "Then there is a set of topological constructs that are isomorphic to
//! their corresponding geometric concrete types. A TopoCurve is isomorphic
//! to a geometric curve, whereas a TopoSurface is isomorphic to a geometric
//! surface." TopoComplex "contains other types of primitives connected in a
//! discontinuous fashion … the sub-complexes and primitives have lesser
//! dimension than the TopoComplex itself."

use crate::model::{DirectedEdge, FaceId, NodeId, SolidId, TopologyModel};

/// A chain of directed edges isomorphic to a geometric curve.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopoCurve {
    /// The chained directed edges.
    pub edges: Vec<DirectedEdge>,
}

impl TopoCurve {
    /// Build a TopoCurve; `None` when empty or the directed edges do not
    /// chain end-to-start in `model`.
    pub fn new(model: &TopologyModel, edges: Vec<DirectedEdge>) -> Option<TopoCurve> {
        if edges.is_empty() {
            return None;
        }
        for w in edges.windows(2) {
            if model.directed_end(w[0])? != model.directed_start(w[1])? {
                return None;
            }
        }
        // All edges must exist.
        for d in &edges {
            model.edge_nodes(d.edge)?;
        }
        Some(TopoCurve { edges })
    }

    /// Start node of the chain.
    pub fn start(&self, model: &TopologyModel) -> Option<NodeId> {
        model.directed_start(self.edges[0])
    }

    /// End node of the chain.
    pub fn end(&self, model: &TopologyModel) -> Option<NodeId> {
        model.directed_end(*self.edges.last()?)
    }

    /// Whether the chain returns to its start.
    pub fn is_closed(&self, model: &TopologyModel) -> bool {
        self.start(model)
            .zip(self.end(model))
            .is_some_and(|(s, e)| s == e)
    }

    /// Hop length of the chain.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether the chain has no edges (cannot occur for constructed values).
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }
}

/// A set of faces isomorphic to a geometric surface; faces must be
/// edge-connected to each other.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopoSurface {
    /// The member faces.
    pub faces: Vec<FaceId>,
}

impl TopoSurface {
    /// Build a TopoSurface; `None` when empty, a face is unknown, or the
    /// faces do not form an edge-connected set.
    pub fn new(model: &TopologyModel, faces: Vec<FaceId>) -> Option<TopoSurface> {
        if faces.is_empty() {
            return None;
        }
        for f in &faces {
            model.face_boundary(*f)?;
        }
        // Connectivity via shared edges.
        for i in 1..faces.len() {
            let edges_i: Vec<_> = model
                .face_boundary(faces[i])?
                .iter()
                .map(|d| d.edge)
                .collect();
            let touches = faces[..i].iter().any(|f| {
                model
                    .face_boundary(*f)
                    .is_some_and(|b| b.iter().any(|d| edges_i.contains(&d.edge)))
            });
            if !touches {
                return None;
            }
        }
        Some(TopoSurface { faces })
    }

    /// Number of member faces.
    pub fn len(&self) -> usize {
        self.faces.len()
    }

    /// Whether the surface has no faces (cannot occur for constructed
    /// values).
    pub fn is_empty(&self) -> bool {
        self.faces.is_empty()
    }
}

/// A set of TopoSolids isomorphic to a geometric solid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopoVolume {
    /// The member solids.
    pub solids: Vec<SolidId>,
}

impl TopoVolume {
    /// Build a TopoVolume; `None` when empty or a solid is unknown.
    pub fn new(model: &TopologyModel, solids: Vec<SolidId>) -> Option<TopoVolume> {
        if solids.is_empty() {
            return None;
        }
        for s in &solids {
            model.solid_shell(*s)?;
        }
        Some(TopoVolume { solids })
    }
}

/// A member of a TopoComplex.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopoMember {
    /// An isolated node (dimension 0).
    Node(NodeId),
    /// A directed edge (dimension 1).
    Edge(DirectedEdge),
    /// A face (dimension 2).
    Face(FaceId),
    /// A TopoSolid (dimension 3).
    Solid(SolidId),
    /// A nested sub-complex.
    Complex(TopoComplex),
}

impl TopoMember {
    /// Topological dimension of the member.
    pub fn dimension(&self) -> u8 {
        match self {
            TopoMember::Node(_) => 0,
            TopoMember::Edge(_) => 1,
            TopoMember::Face(_) => 2,
            TopoMember::Solid(_) => 3,
            TopoMember::Complex(c) => c.dimension,
        }
    }
}

/// "A TopoComplex is contained within a single maximal complex and might
/// contain other sub-complexes and primitives. The sub-complexes and
/// primitives have lesser dimension than the TopoComplex itself" — except
/// that primitives of the complex's own dimension are its carriers, so the
/// rule enforced is: members have dimension ≤ the complex dimension, and
/// *sub-complexes* have strictly lesser dimension.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopoComplex {
    /// Declared dimension of the complex.
    pub dimension: u8,
    /// Members (primitives and sub-complexes).
    pub members: Vec<TopoMember>,
}

impl TopoComplex {
    /// Build a complex; `None` when a member violates the dimension rules.
    pub fn new(dimension: u8, members: Vec<TopoMember>) -> Option<TopoComplex> {
        for m in &members {
            match m {
                TopoMember::Complex(c) => {
                    if c.dimension >= dimension {
                        return None;
                    }
                }
                prim => {
                    if prim.dimension() > dimension {
                        return None;
                    }
                }
            }
        }
        Some(TopoComplex { dimension, members })
    }

    /// Total primitive count, recursing into sub-complexes.
    pub fn primitive_count(&self) -> usize {
        self.members
            .iter()
            .map(|m| match m {
                TopoMember::Complex(c) => c.primitive_count(),
                _ => 1,
            })
            .sum()
    }

    /// Nesting depth (1 = no sub-complexes).
    pub fn depth(&self) -> usize {
        1 + self
            .members
            .iter()
            .map(|m| match m {
                TopoMember::Complex(c) => c.depth(),
                _ => 0,
            })
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::TopologyModel;

    fn chain_model(n: usize) -> (TopologyModel, Vec<NodeId>, Vec<DirectedEdge>) {
        let mut m = TopologyModel::new();
        let nodes: Vec<NodeId> = (0..n).map(|_| m.add_node()).collect();
        let edges: Vec<DirectedEdge> = nodes
            .windows(2)
            .map(|w| DirectedEdge::forward(m.add_edge(w[0], w[1]).unwrap()))
            .collect();
        (m, nodes, edges)
    }

    #[test]
    fn topo_curve_chains() {
        let (m, nodes, edges) = chain_model(4);
        let c = TopoCurve::new(&m, edges.clone()).unwrap();
        assert_eq!(c.start(&m), Some(nodes[0]));
        assert_eq!(c.end(&m), Some(nodes[3]));
        assert_eq!(c.len(), 3);
        assert!(!c.is_closed(&m));
        // Out-of-order chain rejected.
        let broken = vec![edges[0], edges[2]];
        assert!(TopoCurve::new(&m, broken).is_none());
        assert!(TopoCurve::new(&m, vec![]).is_none());
    }

    #[test]
    fn closed_topo_curve() {
        let mut m = TopologyModel::new();
        let a = m.add_node();
        let b = m.add_node();
        let c = m.add_node();
        let e0 = DirectedEdge::forward(m.add_edge(a, b).unwrap());
        let e1 = DirectedEdge::forward(m.add_edge(b, c).unwrap());
        let e2 = DirectedEdge::forward(m.add_edge(c, a).unwrap());
        let curve = TopoCurve::new(&m, vec![e0, e1, e2]).unwrap();
        assert!(curve.is_closed(&m));
    }

    #[test]
    fn reversed_edges_in_curve() {
        let mut m = TopologyModel::new();
        let a = m.add_node();
        let b = m.add_node();
        let c = m.add_node();
        let ab = m.add_edge(a, b).unwrap();
        let cb = m.add_edge(c, b).unwrap(); // points the "wrong" way
        let curve = TopoCurve::new(
            &m,
            vec![DirectedEdge::forward(ab), DirectedEdge::reverse(cb)],
        )
        .unwrap();
        assert_eq!(curve.end(&m), Some(c));
    }

    #[test]
    fn topo_surface_requires_shared_edges() {
        let mut m = TopologyModel::new();
        // Two triangles sharing edge bc, plus one distant triangle.
        let a = m.add_node();
        let b = m.add_node();
        let c = m.add_node();
        let d = m.add_node();
        let ab = m.add_edge(a, b).unwrap();
        let bc = m.add_edge(b, c).unwrap();
        let ca = m.add_edge(c, a).unwrap();
        let bd = m.add_edge(b, d).unwrap();
        let dc = m.add_edge(d, c).unwrap();
        let f1 = m
            .add_face(vec![
                DirectedEdge::forward(ab),
                DirectedEdge::forward(bc),
                DirectedEdge::forward(ca),
            ])
            .unwrap();
        let f2 = m
            .add_face(vec![
                DirectedEdge::forward(bd),
                DirectedEdge::forward(dc),
                DirectedEdge::reverse(bc),
            ])
            .unwrap();
        // Distant triangle.
        let x = m.add_node();
        let y = m.add_node();
        let z = m.add_node();
        let xy = m.add_edge(x, y).unwrap();
        let yz = m.add_edge(y, z).unwrap();
        let zx = m.add_edge(z, x).unwrap();
        let f3 = m
            .add_face(vec![
                DirectedEdge::forward(xy),
                DirectedEdge::forward(yz),
                DirectedEdge::forward(zx),
            ])
            .unwrap();

        assert!(TopoSurface::new(&m, vec![f1, f2]).is_some());
        assert!(TopoSurface::new(&m, vec![f1, f3]).is_none(), "disconnected");
        assert!(TopoSurface::new(&m, vec![]).is_none());
        let ts = TopoSurface::new(&m, vec![f1, f2]).unwrap();
        assert_eq!(ts.len(), 2);
    }

    #[test]
    fn topo_volume_checks_solids() {
        let mut m = TopologyModel::new();
        let a = m.add_node();
        let b = m.add_node();
        let c = m.add_node();
        let e0 = m.add_edge(a, b).unwrap();
        let e1 = m.add_edge(b, c).unwrap();
        let e2 = m.add_edge(c, a).unwrap();
        let f = m
            .add_face(vec![
                DirectedEdge::forward(e0),
                DirectedEdge::forward(e1),
                DirectedEdge::forward(e2),
            ])
            .unwrap();
        let s = m.add_solid(vec![f]).unwrap();
        assert!(TopoVolume::new(&m, vec![s]).is_some());
        assert!(TopoVolume::new(&m, vec![SolidId(9)]).is_none());
        assert!(TopoVolume::new(&m, vec![]).is_none());
    }

    #[test]
    fn complex_dimension_rules() {
        let (_, nodes, edges) = chain_model(3);
        // A 1-complex may hold nodes and edges.
        let c1 = TopoComplex::new(
            1,
            vec![TopoMember::Node(nodes[0]), TopoMember::Edge(edges[0])],
        )
        .unwrap();
        assert_eq!(c1.primitive_count(), 2);
        // … but not faces.
        assert!(TopoComplex::new(1, vec![TopoMember::Face(FaceId(0))]).is_none());
        // Sub-complex must have STRICTLY smaller dimension.
        let sub0 = TopoComplex::new(0, vec![TopoMember::Node(nodes[1])]).unwrap();
        let outer = TopoComplex::new(
            1,
            vec![TopoMember::Complex(sub0), TopoMember::Edge(edges[1])],
        )
        .unwrap();
        assert_eq!(outer.depth(), 2);
        assert_eq!(outer.primitive_count(), 2);
        let same_dim_sub = TopoComplex::new(1, vec![TopoMember::Edge(edges[0])]).unwrap();
        assert!(TopoComplex::new(1, vec![TopoMember::Complex(same_dim_sub)]).is_none());
    }
}
